// Split register allocation, end to end: the offline compiler analyzes a
// pressure-heavy function once and attaches a portable eviction order;
// JITs with different register budgets all benefit from the same
// annotation. Prints the annotation contents and the per-policy spill
// counts on two very different cores.
#include <cstdio>

#include "api/svc.h"
#include "regalloc/split_alloc.h"

using namespace svc;

int main() {
  // A kernel whose de-vectorized form carries 16+ simultaneously live
  // lanes: exactly the case where the online allocator's eviction
  // decisions matter.
  const Engine engine = Engine::Builder().build().value();
  const ModuleHandle handle =
      engine.compile(table1_kernels()[3].source).value();  // max u8
  const Module& module = *handle;
  const Function& fn = module.function(0);

  const Annotation* ann =
      find_annotation(fn.annotations(), AnnotationKind::SpillPriority);
  if (ann == nullptr) {
    std::fprintf(stderr, "no SpillPriority annotation?\n");
    return 1;
  }
  const auto prio = SpillPriorityInfo::decode(ann->payload);
  std::printf("offline SpillPriority annotation (%zu bytes for %zu locals):\n"
              "  eviction order:",
              ann->payload.size(), prio->eviction_order.size());
  for (uint32_t local : prio->eviction_order) std::printf(" $%u", local);
  std::printf("\n  (first = best spill candidate; weights are use "
              "densities x256:");
  for (uint32_t w : prio->weights) std::printf(" %u", w);
  std::printf(")\n\n");

  for (TargetKind kind : {TargetKind::SparcSim, TargetKind::PpcSim}) {
    const MachineDesc& desc = target_desc(kind);
    std::printf("%s (%u allocatable int regs):\n", desc.name.c_str(),
                desc.regs[0]);
    for (AllocPolicy policy :
         {AllocPolicy::NaiveOnline, AllocPolicy::SplitGuided,
          AllocPolicy::LinearScan, AllocPolicy::OfflineChaitin}) {
      JitCompiler jit(desc, {policy, true});
      const JitArtifact artifact = jit.compile(module, 0);
      std::printf("  %-16s %3lld spill insts, %6lld alloc work units\n",
                  alloc_policy_name(policy),
                  static_cast<long long>(
                      artifact.stats.get("jit.static_spill_loads") +
                      artifact.stats.get("jit.static_spill_stores")),
                  static_cast<long long>(
                      artifact.stats.get("jit.alloc_work_units")));
    }
  }
  std::printf("\nThe same annotation served both register budgets: the "
              "ranking is an order,\nnot an assignment, so it is valid for "
              "any K (the paper's portability claim).\n");
  return 0;
}
