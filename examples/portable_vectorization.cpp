// Portable vectorization (the Table 1 story, narrated): compile `sum u8`
// once with the vectorizer on, dump the bytecode to show the portable
// builtins, then watch the same module run SIMD-style on x86sim and
// de-vectorized on sparcsim/ppcsim -- including the generated machine
// code for each.
#include <cstdio>

#include "api/svc.h"
#include "bytecode/disassembler.h"
#include "support/rng.h"

using namespace svc;

int main() {
  const KernelInfo& kernel = table1_kernels()[4];  // sum u8

  const Engine engine = Engine::Builder().build().value();
  const ModuleHandle module = engine.compile(kernel.source).value();

  std::printf("=== portable bytecode (one image for every core) ===\n%s\n",
              disassemble(*module).c_str());

  constexpr int kN = 2048;
  for (TargetKind kind : table1_targets()) {
    // One single-core deployment per ISA: the same handle deploys
    // everywhere.
    Deployment device = engine.deploy(module, {{kind, false}}).value();

    Memory& mem = device.memory();
    Rng rng(7);
    int expect = 0;
    for (int i = 0; i < kN; ++i) {
      const auto v = static_cast<uint8_t>(rng.next_u32());
      mem.store_u8(4096 + static_cast<uint32_t>(i), v);
      expect += v;
    }
    const SimResult r =
        device
            .run(kernel.fn_name, {Value::make_i32(4096), Value::make_i32(kN)})
            .value();
    std::printf("=== %s ===\n", device.soc().core(0).desc().name.c_str());
    std::printf("result %d (expected %d), %llu cycles, %llu insts, "
                "%llu spill ops\n",
                r.value.i32, expect,
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<unsigned long long>(r.stats.instructions),
                static_cast<unsigned long long>(r.stats.spill_loads +
                                                r.stats.spill_stores));
    if (kind == TargetKind::X86Sim || kind == TargetKind::SparcSim) {
      std::printf("generated code:\n%s\n",
                  device.soc().core(0).code()[0].str().c_str());
    }
  }
  return 0;
}
