// Quickstart: the whole split-compilation story in one page, through the
// embeddable API (api/svc.h).
//
//   1. Write a kernel in MiniC (the C-like source language).
//   2. Build an Engine and compile OFFLINE once: optimization +
//      auto-vectorization + annotations -> one portable SVIL module,
//      owned by a ModuleHandle.
//   3. Serialize it (the deployment image, checksummed) and load it back
//      -- exactly what shipping to a device does.
//   4. Deploy onto a five-core SoC spanning every ISA (two share one):
//      all cores JIT through one shared CodeCache, so same-ISA cores
//      reuse artifacts.
//   5. Run on each core's cycle-approximate simulator and compare.
//
// Build & run:  ./build/example_quickstart
#include <cstdio>

#include "api/svc.h"

using namespace svc;

int main() {
  // 1. A kernel: y[i] = a*x[i] + y[i].
  const char* source = R"(
    fn saxpy(a: f32, x: *f32, y: *f32, n: i32) {
      var i: i32 = 0;
      while (i < n) {
        y[i] = a * x[i] + y[i];
        i = i + 1;
      }
    }
  )";

  // 2. One Engine = one validated configuration of the whole pipeline
  // (offline schedule, per-target JIT, deployment runtime).
  const Engine engine = Engine::Builder().build().value();

  Statistics stats;
  auto compiled = engine.compile(source, &stats);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed:\n%s", compiled.error_text().c_str());
    return 1;
  }
  std::printf("offline: vectorized %lld loop(s) in %lld us\n",
              static_cast<long long>(stats.get("offline.loops_vectorized")),
              static_cast<long long>(stats.get("offline.compile_us")));

  // The offline schedule is data (see ir/ir_pipeline.h): every pass the
  // manager ran reported its own wall time.
  std::printf("offline pipeline: %s\n",
              default_ir_pipeline({}, true).str().c_str());
  for (const auto& [key, value] : stats.all()) {
    constexpr std::string_view kPrefix = "offline.pass_us.";
    if (key.compare(0, kPrefix.size(), kPrefix) == 0) {
      std::printf("  %-12s %4lld us\n", key.c_str() + kPrefix.size(),
                  static_cast<long long>(value));
    }
  }

  // 3. One deployment image for every device; loading re-verifies it.
  const std::vector<uint8_t> image = Engine::save_bytecode(compiled.value());
  std::printf("deployment image: %zu bytes\n\n", image.size());
  auto loaded = engine.load_bytecode(image);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed:\n%s", loaded.error_text().c_str());
    return 1;
  }
  const ModuleHandle module = std::move(loaded).value();

  // 4. Every ISA in one deployment, plus a fifth core that repeats the
  // first ISA: its whole load is shared-cache hits.
  std::vector<CoreSpec> cores;
  for (TargetKind kind : all_targets()) cores.push_back({kind, false});
  cores.push_back({all_targets().front(), false});

  Deployment deployment = engine.deploy(module, cores).value();

  // 5. The SAME image runs on each core; y[10] must agree everywhere.
  constexpr int kN = 1024;
  for (size_t c = 0; c < deployment.num_cores(); ++c) {
    Memory& mem = deployment.memory();
    for (int i = 0; i < kN; ++i) {
      mem.write_f32(1024 + 4 * static_cast<uint32_t>(i), 1.0f * i);
      mem.write_f32(32768 + 4 * static_cast<uint32_t>(i), 100.0f);
    }
    const SimResult r =
        deployment
            .run_on(c, "saxpy",
                    {Value::make_f32(2.0f), Value::make_i32(1024),
                     Value::make_i32(32768), Value::make_i32(kN)})
            .value();
    std::printf("core %zu %-9s jit %6.0f us, ran in %7llu cycles, y[10]=%g\n",
                c, deployment.soc().core(c).desc().name.c_str(),
                deployment.soc().core(c).jit_seconds() * 1e6,
                static_cast<unsigned long long>(r.stats.cycles),
                mem.read_f32(32768 + 40));
  }

  const Statistics cache_stats = deployment.cache_stats();
  std::printf(
      "\nshared code cache: %lld hits, %lld misses, %lld compiles, "
      "%lld evictions (%lld bytes resident)\n",
      static_cast<long long>(cache_stats.get("cache.hits")),
      static_cast<long long>(cache_stats.get("cache.misses")),
      static_cast<long long>(cache_stats.get("cache.compiles")),
      static_cast<long long>(cache_stats.get("cache.evictions")),
      static_cast<long long>(cache_stats.get("cache.bytes")));
  return 0;
}
