// Quickstart: the whole split-compilation story in one page.
//
//   1. Write a kernel in MiniC (the C-like source language).
//   2. Compile it OFFLINE once: optimization + auto-vectorization +
//      annotations -> one portable SVIL module.
//   3. Serialize it (the deployment image, checksummed).
//   4. On each "device", load + verify + JIT for that core's ISA --
//      through one shared CodeCache, so same-ISA devices reuse artifacts.
//   5. Run on the cycle-approximate simulator and compare targets.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bytecode/serializer.h"
#include "bytecode/verifier.h"
#include "driver/offline_compiler.h"
#include "driver/online_compiler.h"
#include "ir/ir_pipeline.h"
#include "runtime/code_cache.h"

using namespace svc;

int main() {
  // 1. A kernel: y[i] = a*x[i] + y[i].
  const char* source = R"(
    fn saxpy(a: f32, x: *f32, y: *f32, n: i32) {
      var i: i32 = 0;
      while (i < n) {
        y[i] = a * x[i] + y[i];
        i = i + 1;
      }
    }
  )";

  // 2. Offline compile (vectorization + annotations on by default).
  Statistics stats;
  DiagnosticEngine diags;
  auto module = compile_source(source, {}, diags, &stats);
  if (!module) {
    std::fprintf(stderr, "compile failed:\n%s", diags.dump().c_str());
    return 1;
  }
  std::printf("offline: vectorized %lld loop(s) in %lld us\n",
              static_cast<long long>(stats.get("offline.loops_vectorized")),
              static_cast<long long>(stats.get("offline.compile_us")));

  // The offline schedule is data (see ir/ir_pipeline.h): every pass the
  // manager ran reported its own wall time.
  std::printf("offline pipeline: %s\n",
              default_ir_pipeline({}, true).str().c_str());
  for (const auto& [key, value] : stats.all()) {
    constexpr std::string_view kPrefix = "offline.pass_us.";
    if (key.compare(0, kPrefix.size(), kPrefix) == 0) {
      std::printf("  %-12s %4lld us\n", key.c_str() + kPrefix.size(),
                  static_cast<long long>(value));
    }
  }

  // 3. One deployment image for every device.
  const std::vector<uint8_t> image = serialize_module(*module);
  std::printf("deployment image: %zu bytes\n\n", image.size());

  // 4+5. Each device loads the SAME image and JITs for its own ISA. All
  // devices compile through one shared CodeCache (what a multi-core SoC
  // does, see src/runtime/soc.h), so a second device of an already-seen
  // ISA installs pure cache hits.
  const DeserializeResult loaded = deserialize_module(image);
  if (!loaded.module) {
    std::fprintf(stderr, "load failed: %s\n", loaded.error.c_str());
    return 1;
  }
  DiagnosticEngine load_diags;
  if (!verify_module(*loaded.module, load_diags)) {
    std::fprintf(stderr, "verify failed:\n%s", load_diags.dump().c_str());
    return 1;
  }

  CodeCache cache;
  OnlineTarget::Config shared_cache;
  shared_cache.cache = &cache;

  constexpr int kN = 1024;
  const auto deploy = [&](TargetKind kind) {
    OnlineTarget device(kind, {}, shared_cache);
    device.load(*loaded.module);

    Memory mem(1 << 20);
    for (int i = 0; i < kN; ++i) {
      mem.write_f32(1024 + 4 * static_cast<uint32_t>(i), 1.0f * i);
      mem.write_f32(32768 + 4 * static_cast<uint32_t>(i), 100.0f);
    }
    const SimResult r = device.run(
        "saxpy",
        {Value::make_f32(2.0f), Value::make_i32(1024),
         Value::make_i32(32768), Value::make_i32(kN)},
        mem);
    std::printf("%-9s jit %6.0f us, ran in %7llu cycles, y[10]=%g\n",
                device.desc().name.c_str(), device.jit_seconds() * 1e6,
                static_cast<unsigned long long>(r.stats.cycles),
                mem.read_f32(32768 + 40));
  };
  for (TargetKind kind : all_targets()) deploy(kind);
  // A fifth device, same ISA as the first: its whole load() is cache hits.
  deploy(all_targets().front());

  const Statistics cache_stats = cache.stats();
  std::printf(
      "\nshared code cache: %lld hits, %lld misses, %lld compiles, "
      "%lld evictions (%lld bytes resident)\n",
      static_cast<long long>(cache_stats.get("cache.hits")),
      static_cast<long long>(cache_stats.get("cache.misses")),
      static_cast<long long>(cache_stats.get("cache.compiles")),
      static_cast<long long>(cache_stats.get("cache.evictions")),
      static_cast<long long>(cache_stats.get("cache.bytes")));
  return 0;
}
