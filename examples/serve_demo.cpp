// The serving layer, end to end, against only api/svc.h: build a tiered
// profiling engine, deploy one module onto a heterogeneous SoC, wrap it
// in a svc::Server, and let concurrent clients drive it. The server
// routes every function to its mapper-chosen core, batches same-function
// requests so aggregate traffic crosses the tier-promotion thresholds,
// sheds overload at a bounded queue, and reports per-function /
// per-core-shard stats.
//
// Build & run:  ./build/example_serve_demo
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/svc.h"

using namespace svc;

int main() {
  const char* source = R"(
    fn checksum(p: *u8, n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) {
        acc = acc * 31 + p[i];
        i = i + 1;
      }
      return acc;
    }
  )";

  // Tiered + profiling + tier-2, with serving knobs on the same Builder:
  // 2 workers, a 32-deep queue per core, batches of up to 8 requests.
  const Engine engine =
      Engine::Builder()
          .tiered(/*promote_threshold=*/4)
          .profiling()
          .tier2(/*threshold=*/8)
          .pool_threads(2)
          .serving({.workers = 2, .queue_depth = 32, .batch_max = 8})
          .build()
          .value();
  const ModuleHandle module = engine.compile(source).value();

  Server server = serve(engine, module,
                        {{TargetKind::X86Sim, false},
                         {TargetKind::PpcSim, false}})
                      .value();

  constexpr int kN = 256;
  for (int i = 0; i < kN; ++i) {
    server.deployment().memory().store_u8(
        4096 + static_cast<uint32_t>(i), static_cast<uint8_t>(i * 7 + 3));
  }
  const std::vector<Value> args{Value::make_i32(4096), Value::make_i32(kN)};

  // Four closed-loop clients; no single one would cross the tier-2
  // threshold, the aggregate stream does.
  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&server, &args] {
      for (int i = 0; i < kPerClient; ++i) {
        const Result<SimResult> r = server.submit("checksum", args).get();
        if (!r.ok()) std::printf("rejected: %s\n", r.error_text().c_str());
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();

  const ServerStats stats = server.stats();
  std::printf("served %llu/%llu requests at %.0f req/s "
              "(p50 %.1f us, p99 %.1f us)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.submitted),
              stats.requests_per_sec,
              static_cast<double>(stats.latency.percentile(0.50)) / 1000.0,
              static_cast<double>(stats.latency.percentile(0.99)) / 1000.0);
  for (const FunctionServeStats& fs : stats.functions) {
    std::printf("  fn %-10s -> core %zu: tiers %llu/%llu/%llu, "
                "mean latency %.1f us\n",
                fs.name.c_str(), fs.core,
                static_cast<unsigned long long>(fs.tier0),
                static_cast<unsigned long long>(fs.tier1),
                static_cast<unsigned long long>(fs.tier2),
                fs.latency.mean() / 1000.0);
  }
  for (const CoreServeStats& cs : stats.cores) {
    std::printf("  core %zu: %llu requests in %llu batches, peak queue %llu, "
                "rejected %llu\n",
                cs.core, static_cast<unsigned long long>(cs.executed),
                static_cast<unsigned long long>(cs.batches),
                static_cast<unsigned long long>(cs.peak_queue_depth),
                static_cast<unsigned long long>(cs.rejected));
  }
  const Deployment::TierCounters tiers = server.deployment().tier_counters();
  std::printf("runtime: %llu interpreted, %llu jitted (%llu at tier 2), "
              "%llu tier-2 function(s)\n",
              static_cast<unsigned long long>(tiers.interpreted),
              static_cast<unsigned long long>(tiers.jitted),
              static_cast<unsigned long long>(tiers.tier2),
              static_cast<unsigned long long>(tiers.tier2_functions));
  return 0;
}
