// The embeddable API, end to end, against exactly one header: compile ->
// deploy -> profile -> recompile. This is the ~10-line loop the facade
// exists for (see api/engine.h); it runs as a ctest smoke target, so the
// public surface stays sufficient for a real embedder on its own.
//
// Build & run:  ./build/example_embed_api
//
// Optional: --store <dir> persists JIT artifacts to an on-disk code
// cache, so a second invocation against the same directory warms up from
// disk instead of recompiling (docs/PERSISTENCE.md); --assert-warm makes
// that second invocation fail unless warm-up really was served entirely
// from the store (zero JIT compiles) -- the ctest warm-start smoke runs
// the example twice this way (tools/warm_start_smoke.cmake).
#include <cstdio>
#include <cstring>
#include <string>

#include "api/svc.h"

using namespace svc;

int main(int argc, char** argv) {
  std::string store_dir;
  bool assert_warm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--assert-warm") == 0) {
      assert_warm = true;
    } else {
      std::fprintf(stderr, "usage: %s [--store <dir> [--assert-warm]]\n",
                   argv[0]);
      return 2;
    }
  }
  const char* source = R"(
    fn dot(x: *f32, y: *f32, n: i32) -> f32 {
      var acc: f32 = 0.0;
      var i: i32 = 0;
      while (i < n) {
        acc = acc + x[i] * y[i];
        i = i + 1;
      }
      return acc;
    }
  )";

  // One tiered, profiling engine; tier 2 re-specializes hot functions.
  // promote_threshold 2 keeps the first call in the tier-0 interpreter,
  // where the runtime profile is collected.
  Engine::Builder builder;
  builder.tiered(/*promote_threshold=*/2).profiling().tier2(/*threshold=*/8);
  // One extra line turns on restart persistence: JIT artifacts written
  // under store_dir survive this process and warm the next boot.
  if (!store_dir.empty()) builder.persistent_cache(store_dir);
  const Engine engine = builder.build().value();

  const ModuleHandle module = engine.compile(source).value();
  Deployment dep =
      engine.deploy(module, {{TargetKind::X86Sim, false}}).value();

  constexpr int kN = 256;
  for (int i = 0; i < kN; ++i) {
    dep.memory().write_f32(1024 + 4 * static_cast<uint32_t>(i), 0.5f);
    dep.memory().write_f32(8192 + 4 * static_cast<uint32_t>(i), 2.0f);
  }
  const std::vector<Value> args{Value::make_i32(1024), Value::make_i32(8192),
                                Value::make_i32(kN)};

  // First call interprets (tier 0) while the JIT warms up; warm_up()
  // finishes the promotion, later calls run JITed (tiers 1 then 2).
  const SimResult cold = dep.run("dot", args).value();
  dep.warm_up().get();
  if (!store_dir.empty()) {
    const Statistics cache = dep.cache_stats();
    std::printf("persistent store '%s': %lld compiles, %lld disk hits, "
                "%lld disk writes\n",
                store_dir.c_str(),
                static_cast<long long>(cache.get("cache.compiles")),
                static_cast<long long>(cache.get("cache.disk_hits")),
                static_cast<long long>(cache.get("cache.disk_writes")));
    if (assert_warm && (cache.get("cache.disk_hits") == 0 ||
                        cache.get("cache.compiles") != 0)) {
      std::fprintf(stderr, "--assert-warm: warm-up was not served from "
                           "the store\n");
      return 1;
    }
  }
  SimResult hot = cold;
  for (int i = 0; i < 16; ++i) hot = dep.run("dot", args).value();

  if (cold.value.f32 != hot.value.f32) {
    std::fprintf(stderr, "tier divergence: %g vs %g\n", cold.value.f32,
                 hot.value.f32);
    return 1;
  }
  const Deployment::TierCounters tiers = dep.tier_counters();
  std::printf("dot = %g on tiers 0/%d; calls per tier: %llu interpreted, "
              "%llu jitted (%llu at tier 2)\n",
              hot.value.f32, hot.tier,
              static_cast<unsigned long long>(tiers.interpreted),
              static_cast<unsigned long long>(tiers.jitted),
              static_cast<unsigned long long>(tiers.tier2));

  // Close the loop: observed behavior seeds the next offline compile.
  const Engine tuned = Engine::Builder()
                           .with_profile(dep.export_profile())
                           .build()
                           .value();
  const ModuleHandle recompiled = tuned.compile(source).value();
  std::printf("profile-seeded recompile: %zu function(s), image %zu bytes\n",
              recompiled->num_functions(),
              Engine::save_bytecode(recompiled).size());
  return 0;
}
