// Iterative compilation as the virtualization layer's adaptive-tuning
// engine (S4): search the offline knob space for one kernel, per core,
// and show that deployment-time evaluation picks different winners on
// different cores -- the branchy max kernel wants if-conversion only
// where mispredictions are expensive.
#include <cstdio>

#include "api/svc.h"
#include "support/rng.h"

using namespace svc;

int main() {
  const KernelInfo& kernel = branchy_max_kernel();
  constexpr int kN = 4096;

  auto workload = [&](OnlineTarget& target) -> uint64_t {
    Memory mem(1 << 20);
    Rng rng(11);
    for (int i = 0; i < kN; ++i) {
      mem.store_u8(1024 + static_cast<uint32_t>(i),
                   static_cast<uint8_t>(rng.next_u32()));
    }
    const SimResult r = target.run(
        kernel.fn_name, {Value::make_i32(1024), Value::make_i32(kN)}, mem);
    return r.ok() ? r.stats.cycles : UINT64_MAX;
  };

  // The search space is the "classic8" preset: each point is a named
  // offline pipeline spec (the knobs of old, now pipeline-as-data).
  std::printf("tuning '%s' over the classic8 preset per core:\n\n",
              std::string(kernel.name).c_str());
  for (TargetKind kind : all_targets()) {
    const TuneResult result = tune(kernel.source, kind, workload);
    std::printf("%s:\n", target_desc(kind).name.c_str());
    for (const TuneCandidate& c : result.all) {
      const bool best = c.cycles == result.best.cycles;
      std::printf("  %-18s %9.1fk cycles%s\n", c.config.str().c_str(),
                  c.cycles / 1000.0, best ? "   <== best" : "");
    }
    std::printf("  winning pipeline: %s\n",
                result.best.config.pipeline.str().c_str());
  }
  std::printf("\nEach core picked its own configuration -- the decision "
              "could only be\nmade after deployment, i.e. below the "
              "virtualization layer.\n");
  return 0;
}
