// Heterogeneous pipeline: one bytecode module placed across a simulated
// SoC (ppcsim host + two spusim accelerators) by the annotation-driven
// mapper, then run as a static-dataflow pipeline. Demonstrates the S3
// "whole-system programming" direction: the same deployment image
// programs both the host and the accelerators.
#include <cstdio>

#include "api/svc.h"
#include "support/rng.h"

using namespace svc;

int main() {
  const std::string source =
      std::string(fir_source()) + std::string(control_kernel().source);

  const Engine engine = Engine::Builder().build().value();
  const ModuleHandle handle = engine.compile(source).value();
  const Module& module = *handle;

  // An SoC with one host core and two vector accelerators; the dataflow
  // Pipeline drives the underlying Soc runtime directly.
  Deployment deployment = engine.deploy(handle, {{TargetKind::PpcSim, false},
                                                 {TargetKind::SpuSim, true},
                                                 {TargetKind::SpuSim, true}})
                              .value();
  Soc& soc = deployment.soc();

  constexpr int kBlock = 1024;
  Rng rng(3);
  for (int i = 0; i < kBlock + 4; ++i) {
    soc.memory().write_f32(256 + 4 * static_cast<uint32_t>(i),
                           rng.next_f32());
  }

  std::printf("annotation-driven placement:\n");
  std::vector<size_t> core_of(module.num_functions());
  for (uint32_t f = 0; f < module.num_functions(); ++f) {
    core_of[f] = choose_core(soc, module.function(f));
    std::printf("  %-12s -> core %zu (%s)\n",
                module.function(f).name().c_str(), core_of[f],
                soc.core(core_of[f]).desc().name.c_str());
  }

  // fir4 -> gain -> energy, each stage on its mapped core. Distinct
  // accelerators take different stages, pipelining block k+1's FIR with
  // block k's gain.
  Pipeline pipeline(soc);
  const uint32_t in = 256, mid = 1 << 16;
  pipeline.add_stage({"fir4", core_of[0], 2u * kBlock * 4u, [&]() {
                        return soc.run_on(core_of[0], "fir4",
                                          {Value::make_i32(mid),
                                           Value::make_i32(in),
                                           Value::make_i32(kBlock),
                                           Value::make_f32(0.6f),
                                           Value::make_f32(0.4f)});
                      }});
  pipeline.add_stage({"gain", core_of[1], 2u * kBlock * 4u, [&]() {
                        return soc.run_on(core_of[1], "gain",
                                          {Value::make_i32(mid),
                                           Value::make_i32(kBlock),
                                           Value::make_f32(0.5f)});
                      }});
  pipeline.add_stage({"energy", core_of[2], kBlock * 4u, [&]() {
                        return soc.run_on(core_of[2], "energy",
                                          {Value::make_i32(mid),
                                           Value::make_i32(kBlock)});
                      }});

  const PipelineReport report = pipeline.run(/*blocks=*/128);
  std::printf("\npipeline over %llu blocks of %d samples:\n",
              static_cast<unsigned long long>(report.blocks), kBlock);
  for (const StageReport& s : report.stages) {
    std::printf("  %-8s core %zu: %8llu compute + %6llu dma cycles/firing\n",
                s.name.c_str(), s.core,
                static_cast<unsigned long long>(s.fire_cycles),
                static_cast<unsigned long long>(s.dma_cycles));
  }
  std::printf("  latency %llu cycles, steady-state total %llu cycles "
              "(bottleneck %llu/block)\n",
              static_cast<unsigned long long>(report.latency_cycles),
              static_cast<unsigned long long>(report.steady_total_cycles),
              static_cast<unsigned long long>(report.bottleneck_cycles()));
  std::printf("\nfiltered energy of last block: %g\n",
              soc.memory().read_f32(mid));
  return 0;
}
