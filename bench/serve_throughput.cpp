// Closed-loop multi-client serving bench: C client threads drive a
// svc::Server over a 4-core heterogeneous SoC, each submitting the next
// request only after the previous one resolved -- the classic
// closed-loop load model. Three runtime configurations are compared:
//
//   eager           install-time JIT of everything (batch precompile)
//   tiered          interpret first, background-promote to tier 1
//   tiered+profile  tiered + runtime profiling + tier-2 re-specialization
//
// Reported per configuration: steady-state wall throughput
// (requests/sec), steady-state p50/p99 end-to-end latency (measured by
// the clients, warm-up excluded), mean simulated cycles per request (the
// deterministic number: tiered+profile must match or beat eager here at
// steady state, since tier-2 code is profile-specialized), the tier mix,
// and the shared-cache counters. Every result is checked bit-for-bit
// against a sequential reference; any divergence aborts, so this doubles
// as the serving smoke test (registered in ctest).
//
// The workload is the three read-only Table 1 reductions: requests can
// share the deployment's linear memory without coordination, which is
// exactly the traffic shape the serving layer batches per core.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "support/latency_histogram.h"

namespace {

using namespace svc;
using namespace svc::bench;

constexpr int kElems = 256;
constexpr uint32_t kDataBase = 4096;
constexpr int kClients = 4;
constexpr int kWarmRounds = 12;   // per client, per kernel
constexpr int kSteadyRounds = 16; // per client, per kernel

ModuleHandle build_suite() {
  Module suite;
  suite.set_name("serve_suite");
  for (const KernelInfo& k : table1_kernels()) {
    if (k.shape != KernelShape::ReduceU8 && k.shape != KernelShape::ReduceU16) {
      continue;
    }
    Module m = value_or_die(compile_module(k.source));
    suite.add_function(m.function(0));
  }
  return ModuleHandle::adopt(std::move(suite));
}

std::vector<CoreSpec> soc_cores() {
  return {{TargetKind::X86Sim, false},
          {TargetKind::X86Sim, false},
          {TargetKind::PpcSim, false},
          {TargetKind::SpuSim, true}};
}

void fill_data(Memory& mem) {
  for (uint32_t i = 0; i < 2 * kElems; ++i) {
    mem.store_u8(kDataBase + i, static_cast<uint8_t>(i * 37 + 11));
  }
}

std::vector<Value> reduce_args() {
  return {Value::make_i32(kDataBase), Value::make_i32(kElems)};
}

struct ConfigReport {
  std::string name;
  double steady_ms = 0.0;
  double requests_per_sec = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double mean_cycles = 0.0;  // simulated cycles per steady-state request
  uint64_t tier0 = 0, tier1 = 0, tier2 = 0;
  uint64_t rejected = 0;
  int64_t compiles = 0;
  uint64_t batches = 0;
  // Cold start: wall time from Server creation until the first response
  // served by JITed code (tier >= 1), and how many requests that took --
  // the restart-under-traffic number (near-zero requests_to_tier1 for
  // eager, promote-threshold-shaped for tiered).
  double cold_start_ms = 0.0;
  uint64_t requests_to_tier1 = 0;
};

/// One client: closed-loop rounds over every kernel; verifies each
/// result against `expected` and accumulates into the shared steady
/// meters when `measure` is set.
void run_client(Server& server, const ModuleHandle& suite,
                const std::vector<Value>& expected, int rounds, bool measure,
                LatencyHistogram* latency, std::atomic<uint64_t>* cycles,
                std::atomic<uint64_t>* count) {
  using Clock = std::chrono::steady_clock;
  for (int r = 0; r < rounds; ++r) {
    for (uint32_t f = 0; f < suite->num_functions(); ++f) {
      const auto t0 = Clock::now();
      Result<SimResult> result =
          server.submit(suite->function(f).name(), reduce_args()).get();
      const auto t1 = Clock::now();
      if (!result.ok() || !result->ok()) {
        std::fprintf(stderr, "serve_throughput: request failed: %s\n",
                     result.ok() ? "trap" : result.error_text().c_str());
        std::abort();
      }
      if (!(result->value == expected[f])) {
        std::fprintf(stderr,
                     "serve_throughput: BIT DIVERGENCE on '%s' (tier %d)\n",
                     std::string(suite->function(f).name()).c_str(),
                     result->tier);
        std::abort();
      }
      if (measure) {
        latency->record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        cycles->fetch_add(result->stats.cycles, std::memory_order_relaxed);
        count->fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void run_phase(Server& server, const ModuleHandle& suite,
               const std::vector<Value>& expected, int rounds, bool measure,
               LatencyHistogram* latency, std::atomic<uint64_t>* cycles,
               std::atomic<uint64_t>* count) {
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      run_client(server, suite, expected, rounds, measure, latency, cycles,
                 count);
    });
  }
  for (auto& t : clients) t.join();
  server.drain();
}

ConfigReport run_config(const std::string& name, const Engine& engine,
                        const ModuleHandle& suite,
                        const std::vector<Value>& expected) {
  ConfigReport report;
  report.name = name;

  const auto t_create = std::chrono::steady_clock::now();
  Server server = value_or_die(serve(engine, suite, soc_cores()));
  fill_data(server.deployment().memory());

  // Cold start: single closed-loop probe client until the first response
  // comes back from JITed code. Wall time includes Server creation
  // (install-time JIT for eager configs pays its bill here).
  for (uint32_t f = 0; report.requests_to_tier1 < 100000; f =
           (f + 1) % static_cast<uint32_t>(suite->num_functions())) {
    Result<SimResult> result =
        server.submit(suite->function(f).name(), reduce_args()).get();
    if (!result.ok() || !result->ok()) {
      std::fprintf(stderr, "serve_throughput: cold-start request failed\n");
      std::abort();
    }
    ++report.requests_to_tier1;
    if (result->tier >= 1) break;
  }
  report.cold_start_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_create)
                             .count();

  // Warm up: enough aggregate closed-loop traffic to cross the tiered
  // thresholds (and, with profiling, install tier-2 artifacts).
  run_phase(server, suite, expected, kWarmRounds, /*measure=*/false, nullptr,
            nullptr, nullptr);
  server.deployment().wait_warmup();

  // Steady state: the measured phase.
  LatencyHistogram latency;
  std::atomic<uint64_t> cycles{0};
  std::atomic<uint64_t> count{0};
  const auto t0 = std::chrono::steady_clock::now();
  run_phase(server, suite, expected, kSteadyRounds, /*measure=*/true,
            &latency, &cycles, &count);
  const auto t1 = std::chrono::steady_clock::now();

  report.steady_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const uint64_t n = count.load();
  report.requests_per_sec =
      report.steady_ms > 0.0
          ? static_cast<double>(n) / (report.steady_ms / 1000.0)
          : 0.0;
  const LatencyHistogram::Snapshot lat = latency.snapshot();
  report.p50_ns = lat.percentile(0.50);
  report.p99_ns = lat.percentile(0.99);
  report.mean_cycles =
      n > 0 ? static_cast<double>(cycles.load()) / static_cast<double>(n) : 0.0;

  const ServerStats stats = server.stats();
  for (const FunctionServeStats& fs : stats.functions) {
    report.tier0 += fs.tier0;
    report.tier1 += fs.tier1;
    report.tier2 += fs.tier2;
  }
  report.rejected = stats.rejected;
  report.compiles = stats.cache.get("cache.compiles");
  report.batches = stats.batches;
  return report;
}

}  // namespace

int main() {
  const ModuleHandle suite = build_suite();

  // Sequential reference values (eager, single core): the bits every
  // configuration and tier must reproduce.
  const Engine ref_engine = value_or_die(Engine::Builder().build());
  Deployment reference = value_or_die(
      ref_engine.deploy(suite, {{TargetKind::X86Sim, false}}));
  fill_data(reference.memory());
  std::vector<Value> expected;
  for (uint32_t f = 0; f < suite->num_functions(); ++f) {
    const SimResult r = value_or_die(
        reference.run(suite->function(f).name(), reduce_args()));
    if (!r.ok()) {
      std::fprintf(stderr, "reference run trapped\n");
      return 1;
    }
    expected.push_back(r.value);
  }

  const ServerOptions serving{.workers = 0, .queue_depth = 256,
                              .batch_max = 8};
  const Engine eager = value_or_die(
      Engine::Builder().serving(serving).build());
  const Engine tiered = value_or_die(Engine::Builder()
                                         .tiered(/*promote_threshold=*/4)
                                         .pool_threads(2)
                                         .serving(serving)
                                         .build());
  const Engine profiled = value_or_die(Engine::Builder()
                                           .tiered(/*promote_threshold=*/4)
                                           .profiling()
                                           .tier2(/*threshold=*/8)
                                           .pool_threads(2)
                                           .serving(serving)
                                           .build());

  const std::vector<ConfigReport> reports = {
      run_config("eager", eager, suite, expected),
      run_config("tiered", tiered, suite, expected),
      run_config("tiered+profile", profiled, suite, expected),
  };

  std::printf("closed-loop serving on a 4-core SoC (2x x86sim, ppcsim, "
              "spusim accel)\n%d clients x %d steady rounds x %zu read-only "
              "kernels, n=%d\n",
              kClients, kSteadyRounds, suite->num_functions(), kElems);
  std::printf("%-16s %9s %10s %9s %9s %11s %6s %6s %6s %8s %8s %8s\n",
              "config", "steady ms", "req/s", "p50 us", "p99 us", "cyc/req",
              "tier0", "tier1", "tier2", "batches", "cold ms", "req->t1");
  print_rule(118);
  for (const ConfigReport& r : reports) {
    std::printf("%-16s %9.2f %10.0f %9.1f %9.1f %11.1f %6llu %6llu %6llu "
                "%8llu %8.2f %8llu\n",
                r.name.c_str(), r.steady_ms, r.requests_per_sec,
                static_cast<double>(r.p50_ns) / 1000.0,
                static_cast<double>(r.p99_ns) / 1000.0, r.mean_cycles,
                static_cast<unsigned long long>(r.tier0),
                static_cast<unsigned long long>(r.tier1),
                static_cast<unsigned long long>(r.tier2),
                static_cast<unsigned long long>(r.batches), r.cold_start_ms,
                static_cast<unsigned long long>(r.requests_to_tier1));
  }
  print_rule(118);

  const double eager_cyc = reports[0].mean_cycles;
  const double profiled_cyc = reports[2].mean_cycles;
  std::printf(
      "steady-state simulated throughput, tiered+profile vs eager: %.2fx\n"
      "(mean cycles/request %0.1f vs %0.1f; tier-2 code is "
      "profile-specialized, so >= 1.00x is expected)\n",
      profiled_cyc > 0.0 ? eager_cyc / profiled_cyc : 0.0, profiled_cyc,
      eager_cyc);
  std::printf("every result verified bit-identical to the sequential "
              "reference across all configs and tiers; rejected: "
              "%llu/%llu/%llu\n",
              static_cast<unsigned long long>(reports[0].rejected),
              static_cast<unsigned long long>(reports[1].rejected),
              static_cast<unsigned long long>(reports[2].rejected));

  // Machine-readable trajectory (docs/BENCHMARKS.md). Wall-clock numbers
  // are host-dependent; mean_cycles is the deterministic column.
  std::vector<BenchMetric> metrics;
  metrics.emplace_back("clients", kClients);
  metrics.emplace_back("steady_rounds", kSteadyRounds);
  for (const ConfigReport& r : reports) {
    metrics.emplace_back(r.name + ".requests_per_sec", r.requests_per_sec);
    metrics.emplace_back(r.name + ".p50_us",
                         static_cast<double>(r.p50_ns) / 1000.0);
    metrics.emplace_back(r.name + ".p99_us",
                         static_cast<double>(r.p99_ns) / 1000.0);
    metrics.emplace_back(r.name + ".cycles_per_request", r.mean_cycles);
    metrics.emplace_back(r.name + ".tier0", static_cast<double>(r.tier0));
    metrics.emplace_back(r.name + ".tier1", static_cast<double>(r.tier1));
    metrics.emplace_back(r.name + ".tier2", static_cast<double>(r.tier2));
    metrics.emplace_back(r.name + ".batches", static_cast<double>(r.batches));
    metrics.emplace_back(r.name + ".cold_start_ms", r.cold_start_ms);
    metrics.emplace_back(r.name + ".requests_to_tier1",
                         static_cast<double>(r.requests_to_tier1));
  }
  bench_report("serve", metrics);
  return 0;
}
