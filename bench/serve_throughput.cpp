// Closed-loop multi-client serving bench: C client threads drive a
// svc::Server over a 4-core heterogeneous SoC, each submitting the next
// request only after the previous one resolved -- the classic
// closed-loop load model. Three runtime configurations are compared:
//
//   eager           install-time JIT of everything (batch precompile)
//   tiered          interpret first, background-promote to tier 1
//   tiered+profile  tiered + runtime profiling + tier-2 re-specialization
//
// Reported per configuration: steady-state wall throughput
// (requests/sec), steady-state p50/p99 end-to-end latency (measured by
// the clients, warm-up excluded), mean simulated cycles per request (the
// deterministic number: tiered+profile must match or beat eager here at
// steady state, since tier-2 code is profile-specialized), the tier mix,
// and the shared-cache counters. Every result is checked bit-for-bit
// against a sequential reference; any divergence aborts, so this doubles
// as the serving smoke test (registered in ctest).
//
// The workload is the three read-only Table 1 reductions: requests can
// share the deployment's linear memory without coordination, which is
// exactly the traffic shape the serving layer batches per core.
//
// A second section measures the svc::Cluster scaling curve, 1 -> N
// shards (each shard one 4-core Deployment, least-loaded routing):
//   closed loop   the same client model as above; the scaling number is
//                 deterministic -- critical-path simulated cycles
//                 (max per-shard sim_cycles) against the 1-shard run --
//                 because wall-clock scaling is host-dependent (on a
//                 1-CPU host the shards timeshare one core).
//   open loop     Poisson arrivals at a rate overloading one shard
//                 (offered = kOverloadFactor x the measured 1-shard
//                 closed-loop throughput): p50/p99 under overload and
//                 admission rejections per shard count.
// Every cluster result is bit-checked against the same sequential
// reference. `--max-shards K` truncates the shard sweep (the ctest
// smoke runs with --max-shards 2).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "support/latency_histogram.h"
#include "support/rng.h"

namespace {

using namespace svc;
using namespace svc::bench;

constexpr int kElems = 256;
constexpr uint32_t kDataBase = 4096;
constexpr int kClients = 4;
constexpr int kWarmRounds = 12;   // per client, per kernel
constexpr int kSteadyRounds = 16; // per client, per kernel

// Cluster scaling sections.
constexpr int kClusterClients = 8;  // closed-loop clients
constexpr int kClusterRounds = 12;  // per client, per kernel
constexpr int kOpenRequests = 600;  // open-loop arrivals per shard count
constexpr double kOverloadFactor = 2.0;  // offered / 1-shard capacity

ModuleHandle build_suite() {
  Module suite;
  suite.set_name("serve_suite");
  for (const KernelInfo& k : table1_kernels()) {
    if (k.shape != KernelShape::ReduceU8 && k.shape != KernelShape::ReduceU16) {
      continue;
    }
    Module m = value_or_die(compile_module(k.source));
    suite.add_function(m.function(0));
  }
  return ModuleHandle::adopt(std::move(suite));
}

std::vector<CoreSpec> soc_cores() {
  return {{TargetKind::X86Sim, false},
          {TargetKind::X86Sim, false},
          {TargetKind::PpcSim, false},
          {TargetKind::SpuSim, true}};
}

void fill_data(Memory& mem) {
  for (uint32_t i = 0; i < 2 * kElems; ++i) {
    mem.store_u8(kDataBase + i, static_cast<uint8_t>(i * 37 + 11));
  }
}

std::vector<Value> reduce_args() {
  return {Value::make_i32(kDataBase), Value::make_i32(kElems)};
}

struct ConfigReport {
  std::string name;
  double steady_ms = 0.0;
  double requests_per_sec = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double mean_cycles = 0.0;  // simulated cycles per steady-state request
  uint64_t tier0 = 0, tier1 = 0, tier2 = 0;
  uint64_t rejected = 0;
  int64_t compiles = 0;
  uint64_t batches = 0;
  // Cold start: wall time from Server creation until the first response
  // served by JITed code (tier >= 1), and how many requests that took --
  // the restart-under-traffic number (near-zero requests_to_tier1 for
  // eager, promote-threshold-shaped for tiered).
  double cold_start_ms = 0.0;
  uint64_t requests_to_tier1 = 0;
};

/// One client: closed-loop rounds over every kernel; verifies each
/// result against `expected` and accumulates into the shared steady
/// meters when `measure` is set.
void run_client(Server& server, const ModuleHandle& suite,
                const std::vector<Value>& expected, int rounds, bool measure,
                LatencyHistogram* latency, std::atomic<uint64_t>* cycles,
                std::atomic<uint64_t>* count) {
  using Clock = std::chrono::steady_clock;
  for (int r = 0; r < rounds; ++r) {
    for (uint32_t f = 0; f < suite->num_functions(); ++f) {
      const auto t0 = Clock::now();
      Result<SimResult> result =
          server.submit(suite->function(f).name(), reduce_args()).get();
      const auto t1 = Clock::now();
      if (!result.ok() || !result->ok()) {
        std::fprintf(stderr, "serve_throughput: request failed: %s\n",
                     result.ok() ? "trap" : result.error_text().c_str());
        std::abort();
      }
      if (!(result->value == expected[f])) {
        std::fprintf(stderr,
                     "serve_throughput: BIT DIVERGENCE on '%s' (tier %d)\n",
                     std::string(suite->function(f).name()).c_str(),
                     result->tier);
        std::abort();
      }
      if (measure) {
        latency->record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        cycles->fetch_add(result->stats.cycles, std::memory_order_relaxed);
        count->fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void run_phase(Server& server, const ModuleHandle& suite,
               const std::vector<Value>& expected, int rounds, bool measure,
               LatencyHistogram* latency, std::atomic<uint64_t>* cycles,
               std::atomic<uint64_t>* count) {
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      run_client(server, suite, expected, rounds, measure, latency, cycles,
                 count);
    });
  }
  for (auto& t : clients) t.join();
  server.drain();
}

ConfigReport run_config(const std::string& name, const Engine& engine,
                        const ModuleHandle& suite,
                        const std::vector<Value>& expected) {
  ConfigReport report;
  report.name = name;

  const auto t_create = std::chrono::steady_clock::now();
  Server server = value_or_die(serve(engine, suite, soc_cores()));
  fill_data(server.deployment().memory());

  // Cold start: single closed-loop probe client until the first response
  // comes back from JITed code. Wall time includes Server creation
  // (install-time JIT for eager configs pays its bill here).
  for (uint32_t f = 0; report.requests_to_tier1 < 100000; f =
           (f + 1) % static_cast<uint32_t>(suite->num_functions())) {
    Result<SimResult> result =
        server.submit(suite->function(f).name(), reduce_args()).get();
    if (!result.ok() || !result->ok()) {
      std::fprintf(stderr, "serve_throughput: cold-start request failed\n");
      std::abort();
    }
    ++report.requests_to_tier1;
    if (result->tier >= 1) break;
  }
  report.cold_start_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_create)
                             .count();

  // Warm up: enough aggregate closed-loop traffic to cross the tiered
  // thresholds (and, with profiling, install tier-2 artifacts).
  run_phase(server, suite, expected, kWarmRounds, /*measure=*/false, nullptr,
            nullptr, nullptr);
  server.deployment().wait_warmup();

  // Steady state: the measured phase.
  LatencyHistogram latency;
  std::atomic<uint64_t> cycles{0};
  std::atomic<uint64_t> count{0};
  const auto t0 = std::chrono::steady_clock::now();
  run_phase(server, suite, expected, kSteadyRounds, /*measure=*/true,
            &latency, &cycles, &count);
  const auto t1 = std::chrono::steady_clock::now();

  report.steady_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const uint64_t n = count.load();
  report.requests_per_sec =
      report.steady_ms > 0.0
          ? static_cast<double>(n) / (report.steady_ms / 1000.0)
          : 0.0;
  const LatencyHistogram::Snapshot lat = latency.snapshot();
  report.p50_ns = lat.percentile(0.50);
  report.p99_ns = lat.percentile(0.99);
  report.mean_cycles =
      n > 0 ? static_cast<double>(cycles.load()) / static_cast<double>(n) : 0.0;

  const ServerStats stats = server.stats();
  for (const FunctionServeStats& fs : stats.functions) {
    report.tier0 += fs.tier0;
    report.tier1 += fs.tier1;
    report.tier2 += fs.tier2;
  }
  report.rejected = stats.rejected;
  report.compiles = stats.cache.get("cache.compiles");
  report.batches = stats.batches;
  return report;
}

// ---------------------------------------------------------- cluster --

struct ClusterReport {
  size_t shards = 0;
  // Closed loop.
  double requests_per_sec = 0.0;       // aggregate wall throughput
  double per_shard_rps = 0.0;          // req/s-per-shard efficiency column
  double critical_cycles = 0.0;        // max per-shard sim_cycles
  double sim_speedup = 0.0;            // vs the 1-shard critical path
  uint64_t routed_min = 0, routed_max = 0;
  uint64_t p50_ns = 0, p99_ns = 0;     // server-side submit -> resolve
  // Open loop (Poisson arrivals at overload).
  double offered_rps = 0.0;
  double open_completed_rps = 0.0;
  uint64_t open_p50_ns = 0, open_p99_ns = 0;
  uint64_t open_rejected = 0;          // admission-control refusals
};

Cluster make_cluster(const Engine& engine, const ModuleHandle& suite,
                     size_t shards) {
  ClusterOptions opts;
  opts.shards = shards;
  // Least-loaded: the consistent-hash policy pins each function to one
  // shard, so same-function traffic could never scale past 1.
  opts.routing = RoutingPolicy::LeastLoaded;
  opts.memory_init = fill_data;
  return value_or_die(Cluster::create(engine, suite, soc_cores(), opts));
}

void verify_or_die(const Result<SimResult>& result, const Value& expected) {
  if (!result.ok() || !result->ok()) {
    std::fprintf(stderr, "serve_throughput: cluster request failed: %s\n",
                 result.ok() ? "trap" : result.error_text().c_str());
    std::abort();
  }
  if (!(result->value == expected)) {
    std::fprintf(stderr, "serve_throughput: cluster BIT DIVERGENCE\n");
    std::abort();
  }
}

/// Closed-loop scaling point: kClusterClients clients drive the fleet;
/// throughput and latency come from the cluster's own stats, and the
/// deterministic scaling number is the critical-path simulated cycles
/// (the busiest shard's sim_cycles).
void run_cluster_closed(const Engine& engine, const ModuleHandle& suite,
                        const std::vector<Value>& expected,
                        ClusterReport& report) {
  Cluster cluster = make_cluster(engine, suite, report.shards);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClusterClients);
  for (int t = 0; t < kClusterClients; ++t) {
    clients.emplace_back([&] {
      for (int r = 0; r < kClusterRounds; ++r) {
        for (uint32_t f = 0; f < suite->num_functions(); ++f) {
          verify_or_die(
              cluster.submit(suite->function(f).name(), reduce_args()).get(),
              expected[f]);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  cluster.drain();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  const ClusterStats stats = cluster.stats();
  report.requests_per_sec =
      wall_s > 0.0 ? static_cast<double>(stats.aggregate.completed) / wall_s
                   : 0.0;
  report.per_shard_rps =
      report.requests_per_sec / static_cast<double>(report.shards);
  report.p50_ns = stats.aggregate.latency.percentile(0.50);
  report.p99_ns = stats.aggregate.latency.percentile(0.99);
  report.routed_min = UINT64_MAX;
  for (const ShardStats& ss : stats.shards) {
    report.critical_cycles = std::max(
        report.critical_cycles, static_cast<double>(ss.server.sim_cycles));
    report.routed_min = std::min(report.routed_min, ss.routed);
    report.routed_max = std::max(report.routed_max, ss.routed);
  }
}

/// Open-loop overload point: one generator submits kOpenRequests with
/// exponential inter-arrival gaps at `offered_rps` and never waits;
/// latency (including queueing) comes from the servers' own histograms.
void run_cluster_open(const Engine& engine, const ModuleHandle& suite,
                      const std::vector<Value>& expected, double offered_rps,
                      ClusterReport& report) {
  Cluster cluster = make_cluster(engine, suite, report.shards);
  report.offered_rps = offered_rps;
  const double mean_gap_s = offered_rps > 0.0 ? 1.0 / offered_rps : 0.0;
  Rng rng(/*seed=*/123);
  std::vector<std::future<Result<SimResult>>> futures;
  std::vector<uint32_t> fns;
  futures.reserve(kOpenRequests);
  fns.reserve(kOpenRequests);
  const auto t0 = std::chrono::steady_clock::now();
  auto next_arrival = t0;
  for (int i = 0; i < kOpenRequests; ++i) {
    const uint32_t f =
        static_cast<uint32_t>(i) % static_cast<uint32_t>(suite->num_functions());
    fns.push_back(f);
    futures.push_back(
        cluster.submit(suite->function(f).name(), reduce_args()));
    const double u = std::min(rng.next_f32(), 0.999999f);
    next_arrival += std::chrono::nanoseconds(static_cast<int64_t>(
        -mean_gap_s * std::log(1.0 - u) * 1e9));
    std::this_thread::sleep_until(next_arrival);
  }
  cluster.drain();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  uint64_t completed = 0;
  for (int i = 0; i < kOpenRequests; ++i) {
    Result<SimResult> result = futures[static_cast<size_t>(i)].get();
    if (!result.ok()) continue;  // admission-control rejection under overload
    verify_or_die(result, expected[fns[static_cast<size_t>(i)]]);
    ++completed;
  }
  const ClusterStats stats = cluster.stats();
  report.open_p50_ns = stats.aggregate.latency.percentile(0.50);
  report.open_p99_ns = stats.aggregate.latency.percentile(0.99);
  report.open_rejected = stats.aggregate.rejected;
  report.open_completed_rps =
      wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t max_shards = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--max-shards") == 0) {
      max_shards = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
  }

  const ModuleHandle suite = build_suite();

  // Sequential reference values (eager, single core): the bits every
  // configuration and tier must reproduce.
  const Engine ref_engine = value_or_die(Engine::Builder().build());
  Deployment reference = value_or_die(
      ref_engine.deploy(suite, {{TargetKind::X86Sim, false}}));
  fill_data(reference.memory());
  std::vector<Value> expected;
  for (uint32_t f = 0; f < suite->num_functions(); ++f) {
    const SimResult r = value_or_die(
        reference.run(suite->function(f).name(), reduce_args()));
    if (!r.ok()) {
      std::fprintf(stderr, "reference run trapped\n");
      return 1;
    }
    expected.push_back(r.value);
  }

  const ServerOptions serving{.workers = 0, .queue_depth = 256,
                              .batch_max = 8};
  const Engine eager = value_or_die(
      Engine::Builder().serving(serving).build());
  const Engine tiered = value_or_die(Engine::Builder()
                                         .tiered(/*promote_threshold=*/4)
                                         .pool_threads(2)
                                         .serving(serving)
                                         .build());
  const Engine profiled = value_or_die(Engine::Builder()
                                           .tiered(/*promote_threshold=*/4)
                                           .profiling()
                                           .tier2(/*threshold=*/8)
                                           .pool_threads(2)
                                           .serving(serving)
                                           .build());

  const std::vector<ConfigReport> reports = {
      run_config("eager", eager, suite, expected),
      run_config("tiered", tiered, suite, expected),
      run_config("tiered+profile", profiled, suite, expected),
  };

  std::printf("closed-loop serving on a 4-core SoC (2x x86sim, ppcsim, "
              "spusim accel)\n%d clients x %d steady rounds x %zu read-only "
              "kernels, n=%d\n",
              kClients, kSteadyRounds, suite->num_functions(), kElems);
  std::printf("%-16s %9s %10s %9s %9s %11s %6s %6s %6s %8s %8s %8s\n",
              "config", "steady ms", "req/s", "p50 us", "p99 us", "cyc/req",
              "tier0", "tier1", "tier2", "batches", "cold ms", "req->t1");
  print_rule(118);
  for (const ConfigReport& r : reports) {
    std::printf("%-16s %9.2f %10.0f %9.1f %9.1f %11.1f %6llu %6llu %6llu "
                "%8llu %8.2f %8llu\n",
                r.name.c_str(), r.steady_ms, r.requests_per_sec,
                static_cast<double>(r.p50_ns) / 1000.0,
                static_cast<double>(r.p99_ns) / 1000.0, r.mean_cycles,
                static_cast<unsigned long long>(r.tier0),
                static_cast<unsigned long long>(r.tier1),
                static_cast<unsigned long long>(r.tier2),
                static_cast<unsigned long long>(r.batches), r.cold_start_ms,
                static_cast<unsigned long long>(r.requests_to_tier1));
  }
  print_rule(118);

  const double eager_cyc = reports[0].mean_cycles;
  const double profiled_cyc = reports[2].mean_cycles;
  std::printf(
      "steady-state simulated throughput, tiered+profile vs eager: %.2fx\n"
      "(mean cycles/request %0.1f vs %0.1f; tier-2 code is "
      "profile-specialized, so >= 1.00x is expected)\n",
      profiled_cyc > 0.0 ? eager_cyc / profiled_cyc : 0.0, profiled_cyc,
      eager_cyc);
  std::printf("every result verified bit-identical to the sequential "
              "reference across all configs and tiers; rejected: "
              "%llu/%llu/%llu\n",
              static_cast<unsigned long long>(reports[0].rejected),
              static_cast<unsigned long long>(reports[1].rejected),
              static_cast<unsigned long long>(reports[2].rejected));

  // --- cluster scaling curve: 1 -> N shards -----------------------------
  std::vector<size_t> shard_counts;
  for (const size_t n : {size_t{1}, size_t{2}, size_t{4}}) {
    if (n <= max_shards) shard_counts.push_back(n);
  }
  std::vector<ClusterReport> cluster_reports;
  std::string shard_list;
  for (const size_t n : shard_counts) {
    ClusterReport cr;
    cr.shards = n;
    run_cluster_closed(eager, suite, expected, cr);
    cluster_reports.push_back(cr);
    shard_list += (shard_list.empty() ? "" : ",") + std::to_string(n);
  }
  // The deterministic scaling number: critical-path simulated cycles of
  // the busiest shard, against the 1-shard run. Requests cost identical
  // cycles on every shard (same eager engine, same kernels), so this
  // measures routing spread, not host parallelism.
  const double base_critical = cluster_reports[0].critical_cycles;
  for (ClusterReport& cr : cluster_reports) {
    cr.sim_speedup =
        cr.critical_cycles > 0.0 ? base_critical / cr.critical_cycles : 0.0;
  }
  // Open-loop overload: offered load is a fixed multiple of the measured
  // 1-shard closed-loop throughput, held constant across shard counts.
  const double offered =
      kOverloadFactor * cluster_reports[0].requests_per_sec;
  for (ClusterReport& cr : cluster_reports) {
    run_cluster_open(eager, suite, expected, offered, cr);
  }

  std::printf("\ncluster scaling, least-loaded routing, %d closed-loop "
              "clients (x%d rounds), then %d open-loop Poisson arrivals at "
              "%.0f req/s offered\n",
              kClusterClients, kClusterRounds, kOpenRequests, offered);
  std::printf("%-7s %10s %11s %13s %9s %13s %10s %10s %9s\n", "shards",
              "req/s", "req/s/shard", "crit Mcycles", "speedup",
              "routed min/max", "open p50us", "open p99us", "open rej");
  print_rule(100);
  for (const ClusterReport& cr : cluster_reports) {
    std::printf("%-7zu %10.0f %11.0f %13.2f %8.2fx %6llu/%-6llu %10.1f "
                "%10.1f %9llu\n",
                cr.shards, cr.requests_per_sec, cr.per_shard_rps,
                cr.critical_cycles / 1e6, cr.sim_speedup,
                static_cast<unsigned long long>(cr.routed_min),
                static_cast<unsigned long long>(cr.routed_max),
                static_cast<double>(cr.open_p50_ns) / 1000.0,
                static_cast<double>(cr.open_p99_ns) / 1000.0,
                static_cast<unsigned long long>(cr.open_rejected));
  }
  print_rule(100);
  const ClusterReport& last = cluster_reports.back();
  std::printf("%zu-shard critical-path speedup vs 1 shard: %.2fx "
              "(deterministic simulated cycles; wall req/s is "
              "host-dependent)\n",
              last.shards, last.sim_speedup);
  if (last.shards >= 4 && last.sim_speedup < 2.5) {
    std::fprintf(stderr, "serve_throughput: 4-shard scaling below 2.5x\n");
    return 1;
  }

  // Machine-readable trajectory (docs/BENCHMARKS.md). Wall-clock numbers
  // are host-dependent; mean_cycles is the deterministic column.
  std::vector<BenchMetric> metrics;
  for (const ConfigReport& r : reports) {
    metrics.emplace_back(r.name + ".requests_per_sec", r.requests_per_sec);
    metrics.emplace_back(r.name + ".p50_us",
                         static_cast<double>(r.p50_ns) / 1000.0);
    metrics.emplace_back(r.name + ".p99_us",
                         static_cast<double>(r.p99_ns) / 1000.0);
    metrics.emplace_back(r.name + ".cycles_per_request", r.mean_cycles);
    metrics.emplace_back(r.name + ".tier0", static_cast<double>(r.tier0));
    metrics.emplace_back(r.name + ".tier1", static_cast<double>(r.tier1));
    metrics.emplace_back(r.name + ".tier2", static_cast<double>(r.tier2));
    metrics.emplace_back(r.name + ".batches", static_cast<double>(r.batches));
    metrics.emplace_back(r.name + ".cold_start_ms", r.cold_start_ms);
    metrics.emplace_back(r.name + ".requests_to_tier1",
                         static_cast<double>(r.requests_to_tier1));
  }
  for (const ClusterReport& cr : cluster_reports) {
    const std::string key = "cluster_closed.shards" + std::to_string(cr.shards);
    metrics.emplace_back(key + ".requests_per_sec", cr.requests_per_sec);
    metrics.emplace_back(key + ".requests_per_sec_per_shard",
                         cr.per_shard_rps);
    metrics.emplace_back(key + ".p50_us",
                         static_cast<double>(cr.p50_ns) / 1000.0);
    metrics.emplace_back(key + ".p99_us",
                         static_cast<double>(cr.p99_ns) / 1000.0);
    metrics.emplace_back(key + ".critical_cycles", cr.critical_cycles);
    metrics.emplace_back(key + ".sim_speedup_vs_1", cr.sim_speedup);
    metrics.emplace_back(key + ".routed_min",
                         static_cast<double>(cr.routed_min));
    metrics.emplace_back(key + ".routed_max",
                         static_cast<double>(cr.routed_max));
    const std::string open = "cluster_open.shards" + std::to_string(cr.shards);
    metrics.emplace_back(open + ".offered_rps", cr.offered_rps);
    metrics.emplace_back(open + ".completed_rps", cr.open_completed_rps);
    metrics.emplace_back(open + ".p50_us",
                         static_cast<double>(cr.open_p50_ns) / 1000.0);
    metrics.emplace_back(open + ".p99_us",
                         static_cast<double>(cr.open_p99_ns) / 1000.0);
    metrics.emplace_back(open + ".rejected",
                         static_cast<double>(cr.open_rejected));
  }
  bench_report("serve",
               {{"clients", std::to_string(kClients)},
                {"steady_rounds", std::to_string(kSteadyRounds)},
                {"cluster_clients", std::to_string(kClusterClients)},
                {"cluster_rounds", std::to_string(kClusterRounds)},
                {"shard_counts", shard_list},
                {"open_requests", std::to_string(kOpenRequests)},
                {"overload_factor", std::to_string(kOverloadFactor)},
                {"routing", "least_loaded"}},
               metrics);
  return 0;
}
