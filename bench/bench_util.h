// Shared bench harness helpers: kernel workload setup/arguments, cycle
// measurement through OnlineTarget, Result unwrapping, and paper-style
// table printing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "api/svc.h"
#include "bench_report.h"
#include "support/rng.h"

namespace svc::bench {

/// Unwraps a Result<T>, aborting with its diagnostics on failure (bench
/// inputs are known-good kernels).
template <typename T>
[[nodiscard]] T value_or_die(Result<T> result) {
  if (!result.ok()) fatal("value_or_die:\n" + result.error_text());
  return std::move(result).value();
}

inline void value_or_die(Result<void> result) {
  if (!result.ok()) fatal("value_or_die:\n" + result.error_text());
}

/// Loads `module` into an OnlineTarget / Soc with borrowed lifetime (the
/// bench keeps the module alive), aborting on error.
template <typename Runtime>
void load_or_die(Runtime& runtime, const Module& module) {
  value_or_die(runtime.load_module(borrow_module(module)));
}

inline constexpr uint32_t kArrA = 1024;     // f32 array / output
inline constexpr uint32_t kArrB = 1 << 16;  // f32 array
inline constexpr uint32_t kArrC = 1 << 17;  // f32 array
inline constexpr uint32_t kBytes = 1 << 18; // u8/u16 data

/// Fills the standard workload arrays for `n` elements (deterministic).
inline void setup_memory(Memory& mem, int n, uint64_t seed = 42) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<uint32_t>(i);
    mem.write_f32(kArrA + 4 * u, rng.next_f32());
    mem.write_f32(kArrB + 4 * u, rng.next_f32());
    mem.write_f32(kArrC + 4 * u, rng.next_f32());
    mem.store_u8(kBytes + u, static_cast<uint8_t>(rng.next_u32()));
    mem.store_u16(kBytes + 2 * u, static_cast<uint16_t>(rng.next_u32()));
  }
}

/// Argument vector for a Table 1 kernel over `n` elements.
inline std::vector<Value> kernel_args(const KernelInfo& k, int n) {
  switch (k.shape) {
    case KernelShape::MapF32:
      if (k.fn_name == std::string_view("saxpy")) {
        return {Value::make_f32(1.25f), Value::make_i32(kArrB),
                Value::make_i32(kArrC), Value::make_i32(n)};
      }
      return {Value::make_i32(kArrA), Value::make_i32(kArrB),
              Value::make_i32(kArrC), Value::make_i32(n)};
    case KernelShape::ScaleF32:
      return {Value::make_f32(0.99f), Value::make_i32(kArrB),
              Value::make_i32(n)};
    case KernelShape::ReduceU8:
    case KernelShape::ReduceU16:
      return {Value::make_i32(kBytes), Value::make_i32(n)};
  }
  return {};
}

/// Runs `k` once on `target` over `n` elements; returns simulated cycles.
inline uint64_t run_kernel_cycles(OnlineTarget& target, const KernelInfo& k,
                                  int n) {
  Memory mem(1 << 20);
  setup_memory(mem, n);
  const SimResult r = target.run(k.fn_name, kernel_args(k, n), mem);
  if (!r.ok()) {
    std::fprintf(stderr, "kernel %s trapped on %s\n",
                 std::string(k.name).c_str(), target.desc().name.c_str());
    std::abort();
  }
  return r.stats.cycles;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace svc::bench
