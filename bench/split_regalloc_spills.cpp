// E3 -- reproduces the S4 split-register-allocation claim (Diouf et al.
// [18]): portable offline annotations drive a linear-time online
// assignment that "saves up to 40% of the spills" of a naive online
// allocator, approaching offline (Chaitin-Briggs) quality.
//
// Workload: synthetic pressure functions (P live values, P in 8..32) plus
// the vectorized Table 1 kernels (whose de-vectorized byte loops are the
// pressure-heavy case on real JITs). Register budget K is swept by
// cloning a machine description -- the *same annotation* serves every K,
// which is the portability point of the paper's scheme.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bytecode/builder.h"
#include "bytecode/verifier.h"
#include "jit/jit_compiler.h"
#include "regalloc/split_alloc.h"

using namespace svc;
using namespace svc::bench;

namespace {

/// Pressure-P function: loads p[0..P-1], then consumes them in reverse
/// order so all P values are simultaneously live.
Function make_pressure_fn(int p_count) {
  FunctionBuilder b("pressure" + std::to_string(p_count),
                    {{Type::I32}, Type::I32});
  std::vector<uint32_t> locals;
  for (int k = 0; k < p_count; ++k) locals.push_back(b.add_local(Type::I32));
  for (int k = 0; k < p_count; ++k) {
    b.get(0).load(Opcode::LoadI32, 4 * k).set(locals[static_cast<size_t>(k)]);
  }
  b.get(locals.back());
  for (int k = p_count - 2; k >= 0; --k) {
    b.get(locals[static_cast<size_t>(k)]).op(Opcode::AddI32);
  }
  b.ret();
  Function fn = b.take();
  annotate_spill_priorities(fn);
  return fn;
}

int64_t static_spills(const Module& m, const MachineDesc& desc,
                      AllocPolicy policy) {
  JitCompiler jit(desc, {policy, true});
  Statistics stats;
  (void)jit.compile_module(m, &stats);
  return stats.get("jit.static_spill_loads") +
         stats.get("jit.static_spill_stores");
}

}  // namespace

int main() {
  std::printf("Split register allocation: spills vs allocator, K sweep\n");
  std::printf("(static spill instructions; lower is better)\n\n");

  Module pressure_module;
  for (int p : {8, 12, 16, 20, 24, 32}) {
    pressure_module.add_function(make_pressure_fn(p));
  }
  {
    DiagnosticEngine diags;
    if (!verify_module(pressure_module, diags)) {
      std::fprintf(stderr, "%s\n", diags.dump().c_str());
      return 1;
    }
  }

  std::printf("%4s %14s %14s %14s %16s %12s\n", "K", "naive-online",
              "split-guided", "linear-scan", "offline-chaitin",
              "split saves");
  double worst_saving = 0;
  for (uint32_t k_regs : {6u, 8u, 12u, 16u, 24u}) {
    MachineDesc desc = target_desc(TargetKind::SparcSim);
    desc.regs[static_cast<size_t>(RegClass::Int)] = k_regs;
    const int64_t naive =
        static_spills(pressure_module, desc, AllocPolicy::NaiveOnline);
    const int64_t split =
        static_spills(pressure_module, desc, AllocPolicy::SplitGuided);
    const int64_t lscan =
        static_spills(pressure_module, desc, AllocPolicy::LinearScan);
    const int64_t chaitin =
        static_spills(pressure_module, desc, AllocPolicy::OfflineChaitin);
    const double saving =
        naive == 0 ? 0.0
                   : 100.0 * static_cast<double>(naive - split) /
                         static_cast<double>(naive);
    worst_saving = std::max(worst_saving, saving);
    std::printf("%4u %14lld %14lld %14lld %16lld %11.1f%%\n", k_regs,
                static_cast<long long>(naive), static_cast<long long>(split),
                static_cast<long long>(lscan),
                static_cast<long long>(chaitin), saving);
  }
  std::printf("\nbest split-vs-naive saving: %.1f%% (paper: up to 40%%)\n\n",
              worst_saving);

  std::printf("Vectorized Table 1 kernels on sparcsim (de-vectorized lanes\n"
              "are the pressure source); spills per allocator:\n");
  std::printf("%-12s %14s %14s %16s\n", "kernel", "naive-online",
              "split-guided", "offline-chaitin");
  const MachineDesc& sparc = target_desc(TargetKind::SparcSim);
  for (const KernelInfo& k : table1_kernels()) {
    const Module m = value_or_die(compile_module(k.source));
    std::printf("%-12s %14lld %14lld %16lld\n", std::string(k.name).c_str(),
                static_cast<long long>(
                    static_spills(m, sparc, AllocPolicy::NaiveOnline)),
                static_cast<long long>(
                    static_spills(m, sparc, AllocPolicy::SplitGuided)),
                static_cast<long long>(
                    static_spills(m, sparc, AllocPolicy::OfflineChaitin)));
  }
  return 0;
}
