// AOT warm start from the persistent on-disk code cache: cold boot vs.
// second boot vs. a second process sharing the same store directory.
//
// The split-compilation premise is that expensive work happens once and
// is reused; the persistent cache (runtime/persistent_cache.h) extends
// that across process restarts. This bench proves the claim three ways:
//
//   cold    fresh store: every warm_up() compile runs the JIT and
//           writes its artifact back to disk
//   warm    same store, new Engine/Deployment (a restart): warm_up()
//           must complete with ZERO CompileFn invocations -- all disk
//           hits -- and must be >= several times faster by wall clock
//   shared  the same binary re-executed as a child process against the
//           store: the fleet scenario (N server processes, one host)
//
// Also measured: time-to-tier-1 -- wall time and requests served from
// Server-less closed-loop traffic until a full round is answered by
// JITed code -- the restart-under-traffic number the serving layer
// cares about. Bit-identity between disk-loaded and freshly compiled
// code is asserted on every result (value bits, cycles, instructions);
// any divergence or any compile on the warm path aborts, so this doubles
// as the warm-start smoke test in ctest.
//
// Writes BENCH_warmstart.json (docs/BENCHMARKS.md) when run from the
// repo root.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "bench_util.h"

namespace {

using namespace svc;
using namespace svc::bench;

constexpr int kElems = 256;
// Each Table 1 kernel is cloned this many times under fresh names: a
// module of ~dozens of functions, so the cold JIT bill is long enough to
// measure and the disk-vs-compile gap is not noise.
constexpr int kClones = 8;

Function clone_function(const Function& fn, const std::string& name) {
  Function out(name, fn.sig());
  for (size_t i = fn.num_params(); i < fn.num_locals(); ++i) {
    out.add_local(fn.local_type(static_cast<uint32_t>(i)));
  }
  for (const BasicBlock& block : fn.blocks()) {
    const uint32_t b = out.add_block();
    for (const Instruction& inst : block.insts) out.append(b, inst);
  }
  out.annotations() = fn.annotations();
  return out;
}

std::vector<uint8_t> build_suite_image() {
  Module suite;
  suite.set_name("warm_start_suite");
  for (const KernelInfo& k : table1_kernels()) {
    Module m = value_or_die(compile_module(k.source));
    const Function& fn = m.function(0);
    suite.add_function(fn);
    for (int d = 1; d < kClones; ++d) {
      suite.add_function(clone_function(fn, fn.name() + "_c" +
                                                std::to_string(d)));
    }
  }
  return serialize_module(suite);
}

Engine make_engine(const std::string& store_dir, size_t pool_threads) {
  Engine::Builder builder;
  // The expensive offline-quality allocator: the configuration where
  // persisting artifacts pays most -- compile cost is high, reload cost
  // is a file read.
  builder.tiered(/*promote_threshold=*/1)
      .alloc_policy(AllocPolicy::OfflineChaitin)
      .persistent_cache(store_dir);
  if (pool_threads > 0) builder.pool_threads(pool_threads);
  return value_or_die(builder.build());
}

struct BootReport {
  double warmup_ms = 0.0;
  int64_t compiles = 0;
  int64_t disk_hits = 0;
  int64_t disk_misses = 0;
  int64_t disk_writes = 0;
  int64_t disk_rejects = 0;
};

/// One boot: load the deployment image, deploy, time warm_up().
BootReport boot(const Engine& engine, std::span<const uint8_t> image,
                const std::vector<CoreSpec>& cores) {
  const ModuleHandle module = value_or_die(engine.load_bytecode(image));
  Deployment dep = value_or_die(engine.deploy(module, cores));

  const auto t0 = std::chrono::steady_clock::now();
  dep.warm_up().get();
  const auto t1 = std::chrono::steady_clock::now();

  BootReport report;
  report.warmup_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const Statistics stats = dep.cache_stats();
  report.compiles = stats.get("cache.compiles");
  report.disk_hits = stats.get("cache.disk_hits");
  report.disk_misses = stats.get("cache.disk_misses");
  report.disk_writes = stats.get("cache.disk_writes");
  report.disk_rejects = stats.get("cache.disk_rejects");
  return report;
}

void require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "warm_start: REQUIREMENT FAILED: %s\n", what);
    std::abort();
  }
}

/// Runs every original (non-clone) kernel once on `dep`; returns results
/// for bit-comparison.
std::vector<SimResult> run_kernels(Deployment& dep) {
  setup_memory(dep.memory(), kElems);
  std::vector<SimResult> results;
  for (const KernelInfo& k : table1_kernels()) {
    SimResult r = value_or_die(dep.run(k.fn_name, kernel_args(k, kElems)));
    require(r.ok(), "kernel trapped");
    results.push_back(r);
  }
  return results;
}

/// Restart-under-traffic: no explicit warm-up; closed-loop requests over
/// every kernel until one full round is served entirely by JITed code.
struct TierUpReport {
  double to_tier1_ms = 0.0;
  uint64_t requests = 0;
  double reqs_per_sec = 0.0;
};

TierUpReport time_to_tier1(const Engine& engine,
                           std::span<const uint8_t> image,
                           const std::vector<CoreSpec>& cores) {
  const ModuleHandle module = value_or_die(engine.load_bytecode(image));
  Deployment dep = value_or_die(engine.deploy(module, cores));
  setup_memory(dep.memory(), kElems);

  TierUpReport report;
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < 10000; ++round) {
    bool all_jitted = true;
    for (const KernelInfo& k : table1_kernels()) {
      const SimResult r =
          value_or_die(dep.run(k.fn_name, kernel_args(k, kElems)));
      require(r.ok(), "kernel trapped during tier-up");
      ++report.requests;
      all_jitted = all_jitted && r.tier >= 1;
    }
    if (all_jitted) break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.to_tier1_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.reqs_per_sec =
      report.to_tier1_ms > 0.0
          ? static_cast<double>(report.requests) / (report.to_tier1_ms / 1e3)
          : 0.0;
  return report;
}

std::vector<CoreSpec> het_cores() {
  return {{TargetKind::X86Sim, false},
          {TargetKind::SparcSim, false},
          {TargetKind::PpcSim, false},
          {TargetKind::SpuSim, true}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<uint8_t> image = build_suite_image();

  // Child mode (the shared-store second process): warm-boot against the
  // given store and enforce the zero-compile contract from a process
  // that has never compiled anything.
  if (argc == 3 && std::string(argv[1]) == "--warm-child") {
    const Engine engine = make_engine(argv[2], /*pool_threads=*/0);
    const BootReport warm =
        boot(engine, image, {{TargetKind::X86Sim, false}});
    require(warm.compiles == 0, "child process compiled despite warm store");
    require(warm.disk_hits > 0, "child process saw no disk hits");
    std::printf("warm child: warm_up %.2f ms, %lld disk hits, 0 compiles\n",
                warm.warmup_ms, static_cast<long long>(warm.disk_hits));
    return 0;
  }

  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("svc_warm_start_" + std::to_string(static_cast<long long>(
#ifdef _WIN32
                               _getpid()
#else
                               getpid()
#endif
                               )));
  fs::remove_all(root);
  const std::string x86_store = (root / "x86").string();
  const std::string het_store = (root / "het").string();

  const std::vector<CoreSpec> x86_cores = {{TargetKind::X86Sim, false}};
  const size_t n_functions = table1_kernels().size() * kClones;

  // Reference deployment from an engine WITHOUT the store: its warm_up
  // always runs the JIT, so the bit-identity check below really compares
  // disk-loaded code against a fresh compile.
  Engine::Builder plain_builder;
  plain_builder.tiered(/*promote_threshold=*/1)
      .alloc_policy(AllocPolicy::OfflineChaitin);
  const Engine plain_engine = value_or_die(plain_builder.build());
  Deployment fresh_dep = value_or_die(plain_engine.deploy(
      value_or_die(plain_engine.load_bytecode(image)), x86_cores));

  // --- x86sim: cold boot, then a restart against the same store ---------
  const Engine x86_engine = make_engine(x86_store, /*pool_threads=*/0);
  const BootReport cold = boot(x86_engine, image, x86_cores);
  require(cold.compiles == static_cast<int64_t>(n_functions),
          "cold boot must compile every function");
  require(cold.disk_writes == cold.compiles,
          "every cold compile must write back to the store");

  // A restart is a fresh Engine over the same directory: nothing cached
  // in memory, everything on disk.
  const Engine restart_engine = make_engine(x86_store, /*pool_threads=*/0);
  BootReport warm;
  {
    const ModuleHandle module =
        value_or_die(restart_engine.load_bytecode(image));
    Deployment dep = value_or_die(restart_engine.deploy(module, x86_cores));
    const auto t0 = std::chrono::steady_clock::now();
    dep.warm_up().get();
    const auto t1 = std::chrono::steady_clock::now();
    warm.warmup_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const Statistics stats = dep.cache_stats();
    warm.compiles = stats.get("cache.compiles");
    warm.disk_hits = stats.get("cache.disk_hits");
    warm.disk_misses = stats.get("cache.disk_misses");
    warm.disk_writes = stats.get("cache.disk_writes");
    warm.disk_rejects = stats.get("cache.disk_rejects");

    // Bit-identity: disk-loaded code must reproduce the freshly compiled
    // deployment's results exactly -- value bits, cycles, instructions.
    fresh_dep.warm_up().get();
    std::vector<SimResult> expected = run_kernels(fresh_dep);
    std::vector<SimResult> got = run_kernels(dep);
    for (size_t i = 0; i < expected.size(); ++i) {
      require(got[i].value == expected[i].value,
              "disk-loaded result bits diverge from fresh compile");
      require(got[i].stats.cycles == expected[i].stats.cycles,
              "disk-loaded cycle count diverges from fresh compile");
      require(got[i].stats.instructions == expected[i].stats.instructions,
              "disk-loaded step count diverges from fresh compile");
      require(got[i].tier == expected[i].tier,
              "disk-loaded tier diverges from fresh compile");
    }
  }
  require(warm.compiles == 0,
          "second boot ran the JIT despite a complete store");
  require(warm.disk_hits == static_cast<int64_t>(n_functions),
          "second boot must load every function from disk");
  const double speedup =
      warm.warmup_ms > 0.0 ? cold.warmup_ms / warm.warmup_ms : 0.0;

  // --- restart under traffic: time-to-tier-1 without explicit warm-up ---
  const TierUpReport traffic_cold = time_to_tier1(
      make_engine((root / "traffic").string(), /*pool_threads=*/2), image,
      x86_cores);
  const TierUpReport traffic_warm = time_to_tier1(
      make_engine((root / "traffic").string(), /*pool_threads=*/2), image,
      x86_cores);

  // --- heterogeneous SoC: 4 kinds x n_functions artifacts ---------------
  const BootReport het_cold =
      boot(make_engine(het_store, /*pool_threads=*/0), image, het_cores());
  const BootReport het_warm =
      boot(make_engine(het_store, /*pool_threads=*/0), image, het_cores());
  require(het_warm.compiles == 0, "het second boot ran the JIT");
  const double het_speedup =
      het_warm.warmup_ms > 0.0 ? het_cold.warmup_ms / het_warm.warmup_ms
                               : 0.0;

  // --- shared store, second process -------------------------------------
  int child_ok = 0;
  {
    const std::string cmd =
        std::string(argv[0]) + " --warm-child " + x86_store;
    child_ok = std::system(cmd.c_str()) == 0 ? 1 : 0;
    require(child_ok == 1, "shared-store child process failed");
  }

  std::printf("persistent code cache warm start (%zu functions, store %s)\n",
              n_functions, root.string().c_str());
  std::printf("%-22s %12s %9s %10s %10s\n", "boot", "warm_up ms", "compiles",
              "disk hits", "disk wr");
  print_rule(68);
  std::printf("%-22s %12.2f %9lld %10lld %10lld\n", "x86sim cold",
              cold.warmup_ms, static_cast<long long>(cold.compiles),
              static_cast<long long>(cold.disk_hits),
              static_cast<long long>(cold.disk_writes));
  std::printf("%-22s %12.2f %9lld %10lld %10lld\n", "x86sim warm (restart)",
              warm.warmup_ms, static_cast<long long>(warm.compiles),
              static_cast<long long>(warm.disk_hits),
              static_cast<long long>(warm.disk_writes));
  std::printf("%-22s %12.2f %9lld %10lld %10lld\n", "het-4 cold",
              het_cold.warmup_ms, static_cast<long long>(het_cold.compiles),
              static_cast<long long>(het_cold.disk_hits),
              static_cast<long long>(het_cold.disk_writes));
  std::printf("%-22s %12.2f %9lld %10lld %10lld\n", "het-4 warm (restart)",
              het_warm.warmup_ms, static_cast<long long>(het_warm.compiles),
              static_cast<long long>(het_warm.disk_hits),
              static_cast<long long>(het_warm.disk_writes));
  print_rule(68);
  std::printf("warm_up speedup: %.1fx on x86sim, %.1fx on the het SoC "
              "(zero JIT compiles on every warm path)\n",
              speedup, het_speedup);
  std::printf("time-to-tier-1 under traffic: cold %.2f ms (%llu reqs, "
              "%.0f req/s), warm %.2f ms (%llu reqs, %.0f req/s)\n",
              traffic_cold.to_tier1_ms,
              static_cast<unsigned long long>(traffic_cold.requests),
              traffic_cold.reqs_per_sec, traffic_warm.to_tier1_ms,
              static_cast<unsigned long long>(traffic_warm.requests),
              traffic_warm.reqs_per_sec);
  std::printf("shared-store second process: %s\n",
              child_ok ? "ok (0 compiles, all disk hits)" : "FAILED");
  std::printf("every disk-loaded result verified bit-identical to a fresh "
              "compile\n");

  bench_report(
      "warmstart",
      {
          {"functions", std::to_string(n_functions)},
          {"elems", std::to_string(kElems)},
          {"clones", std::to_string(kClones)},
      },
      {
          {"x86sim.cold.warmup_ms", cold.warmup_ms},
          {"x86sim.cold.compiles", static_cast<double>(cold.compiles)},
          {"x86sim.cold.disk_writes",
           static_cast<double>(cold.disk_writes)},
          {"x86sim.warm.warmup_ms", warm.warmup_ms},
          {"x86sim.warm.compiles", static_cast<double>(warm.compiles)},
          {"x86sim.warm.disk_hits", static_cast<double>(warm.disk_hits)},
          {"x86sim.warmup_speedup", speedup},
          {"x86sim.cold.time_to_tier1_ms", traffic_cold.to_tier1_ms},
          {"x86sim.cold.tier1_reqs_per_sec", traffic_cold.reqs_per_sec},
          {"x86sim.warm.time_to_tier1_ms", traffic_warm.to_tier1_ms},
          {"x86sim.warm.tier1_reqs_per_sec", traffic_warm.reqs_per_sec},
          {"het4.cold.warmup_ms", het_cold.warmup_ms},
          {"het4.cold.compiles", static_cast<double>(het_cold.compiles)},
          {"het4.warm.warmup_ms", het_warm.warmup_ms},
          {"het4.warm.compiles", static_cast<double>(het_warm.compiles)},
          {"het4.warm.disk_hits", static_cast<double>(het_warm.disk_hits)},
          {"het4.warmup_speedup", het_speedup},
          {"shared_process.ok", static_cast<double>(child_ok)},
      });

  std::error_code ec;
  fs::remove_all(root, ec);
  return 0;
}
