// E5 -- the S4 iterative-compilation direction: "virtual machine monitors
// may be the ideal engines to drive adaptive tuning". The driver searches
// the offline knob space (vectorize x if-convert x simplify) *per target*,
// evaluating each candidate on the deployed core's simulator. The point
// the bench demonstrates: the winning configuration differs across
// heterogeneous cores, so the decision belongs after deployment -- which
// only a virtualized distribution format allows.
#include <cstdio>

#include "bench_util.h"

using namespace svc;
using namespace svc::bench;

namespace {

void tune_kernel(const KernelInfo& k, int n) {
  std::printf("%s (N=%d):\n", std::string(k.name).c_str(), n);
  std::printf("  %-10s %-16s %12s %12s %9s\n", "target", "best config",
              "best cyc", "worst cyc", "range");
  for (TargetKind kind : all_targets()) {
    const TuneResult result =
        tune(k.source, kind, [&](OnlineTarget& target) {
          return run_kernel_cycles(target, k, n);
        });
    uint64_t worst = 0;
    for (const TuneCandidate& c : result.all) {
      worst = std::max(worst, c.cycles);
    }
    std::printf("  %-10s %-16s %11.1fk %11.1fk %8.2fx\n",
                target_desc(kind).name.c_str(),
                result.best.config.str().c_str(),
                result.best.cycles / 1000.0, worst / 1000.0,
                static_cast<double>(worst) /
                    static_cast<double>(result.best.cycles));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Iterative compilation: per-target pipeline-spec search "
              "(classic8 preset, 8 configurations each)\n\n");
  tune_kernel(table1_kernels()[2], 4096);   // dscal
  tune_kernel(table1_kernels()[3], 4096);   // max u8 (builtin form)
  tune_kernel(branchy_max_kernel(), 4096);  // branchy form: if-convert matters
  return 0;
}
