// Cold-start and steady-state comparison of the deployment-runtime
// configurations on a 4-core heterogeneous SoC: eager install-time JIT
// (the paper's batch precompile) vs. tiered execution vs. tiered +
// annotation-driven prefetch. Reports, per configuration: load() wall
// time, compiles actually run, first-call latency per kernel (simulated
// cycles, which tier answered), steady-state throughput after warm-up,
// and the shared-cache hit rate.
//
// Registered in CMake as a ctest smoke target: sizes are kept small so a
// full run stays well under a second per configuration.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace svc;
using namespace svc::bench;

constexpr int kElems = 256;
constexpr int kSteadyReps = 10;

Module build_suite() {
  Module suite;
  suite.set_name("warmup_suite");
  for (const KernelInfo& k : table1_kernels()) {
    Module m = value_or_die(compile_module(k.source));
    suite.add_function(m.function(0));
  }
  return suite;
}

std::vector<CoreSpec> soc_cores() {
  return {{TargetKind::X86Sim, false},
          {TargetKind::X86Sim, false},
          {TargetKind::PpcSim, false},
          {TargetKind::SpuSim, true}};
}

struct ConfigReport {
  std::string name;
  double load_ms = 0.0;
  double warm_ms = 0.0;  // background-compile drain after load
  int64_t compiles = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  uint64_t first_call_cycles = 0;  // sum over kernels, each on its best core
  uint64_t tier0_first_calls = 0;
  uint64_t steady_cycles = 0;  // sum over kernels x reps after warm-up
  double hit_rate = 0.0;
};

ConfigReport run_config(const std::string& name, const Module& suite,
                        SocOptions options) {
  ConfigReport report;
  report.name = name;

  Soc soc(soc_cores(), 1 << 20, options);
  const auto t0 = std::chrono::steady_clock::now();
  load_or_die(soc, suite);
  const auto t1 = std::chrono::steady_clock::now();
  report.load_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  // Let any prefetch jobs land before traffic arrives -- the install-time
  // window the paper's cheap JIT is meant to fit into. Without prefetch
  // nothing is in flight and this is free.
  soc.wait_warmup();
  const auto t2 = std::chrono::steady_clock::now();
  report.warm_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();

  setup_memory(soc.memory(), kElems);
  const auto kernels = table1_kernels();

  // Cold start: the first call of each kernel on its mapper-chosen core.
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelInfo& k = kernels[i];
    const size_t core =
        choose_core(soc, suite.function(static_cast<uint32_t>(i)));
    const SimResult r =
        soc.run_on(core, k.fn_name, kernel_args(k, kElems));
    if (!r.ok()) {
      std::fprintf(stderr, "%s trapped in config %s\n",
                   std::string(k.name).c_str(), name.c_str());
      std::abort();
    }
    report.first_call_cycles += r.stats.cycles;
    report.tier0_first_calls += r.interpreted ? 1 : 0;
  }

  // Steady state: identical for every configuration once warmed up.
  soc.wait_warmup();
  for (int rep = 0; rep < kSteadyReps; ++rep) {
    for (size_t i = 0; i < kernels.size(); ++i) {
      const KernelInfo& k = kernels[i];
      const size_t core =
          choose_core(soc, suite.function(static_cast<uint32_t>(i)));
      const SimResult r =
          soc.run_on(core, k.fn_name, kernel_args(k, kElems));
      report.steady_cycles += r.stats.cycles;
    }
  }

  const Statistics stats = soc.code_cache().stats();
  report.compiles = stats.get("cache.compiles");
  report.hits = stats.get("cache.hits");
  report.misses = stats.get("cache.misses");
  report.evictions = stats.get("cache.evictions");
  const int64_t lookups = report.hits + report.misses;
  report.hit_rate = lookups > 0
                        ? 100.0 * static_cast<double>(report.hits) /
                              static_cast<double>(lookups)
                        : 0.0;
  return report;
}

}  // namespace

int main() {
  const Module suite = build_suite();
  const size_t fns = suite.num_functions();

  SocOptions eager;  // defaults: eager mode, shared cache

  SocOptions tiered;
  tiered.mode = LoadMode::Tiered;
  tiered.pool_threads = 2;

  SocOptions prefetch = tiered;
  prefetch.prefetch = true;

  const std::vector<ConfigReport> reports = {
      run_config("eager", suite, eager),
      run_config("tiered", suite, tiered),
      run_config("tiered+prefetch", suite, prefetch),
  };

  std::printf("warm-up / throughput on a 4-core SoC "
              "(2x x86sim, ppcsim, spusim accel; %zu kernels, n=%d)\n",
              fns, kElems);
  std::printf("%-16s %9s %9s %9s %14s %7s %14s %8s\n", "config", "load ms",
              "warm ms", "compiles", "1st-call cyc", "tier0", "steady cyc",
              "hit rate");
  print_rule(94);
  for (const ConfigReport& r : reports) {
    std::printf("%-16s %9.2f %9.2f %9lld %14llu %7llu %14llu %7.1f%%\n",
                r.name.c_str(), r.load_ms, r.warm_ms,
                static_cast<long long>(r.compiles),
                static_cast<unsigned long long>(r.first_call_cycles),
                static_cast<unsigned long long>(r.tier0_first_calls),
                static_cast<unsigned long long>(r.steady_cycles),
                r.hit_rate);
  }
  print_rule(94);
  std::printf("shared-cache counters per config "
              "(hits / misses / compiles / evictions):\n");
  for (const ConfigReport& r : reports) {
    std::printf("  %-16s %lld / %lld / %lld / %lld\n", r.name.c_str(),
                static_cast<long long>(r.hits),
                static_cast<long long>(r.misses),
                static_cast<long long>(r.compiles),
                static_cast<long long>(r.evictions));
  }
  std::printf(
      "eager compiles every function per kind before anything runs;\n"
      "tiered answers first calls from the interpreter (%llux cycle cost "
      "per step)\nwhile the JIT warms up; prefetch hides that by "
      "background-compiling each\nfunction on its top-ranked core at "
      "load. Steady-state cycles converge.\n",
      static_cast<unsigned long long>(kInterpreterCyclesPerStep));
  return 0;
}
