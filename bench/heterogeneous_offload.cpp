// E4 -- the S3 heterogeneous-offload scenario: "the JIT compiler for an
// IBM Cell processor could decide to offload some of the numerical
// computations to a vector accelerator (SPU), running the control-
// oriented code on the PowerPC core."
//
// One bytecode module (FIR pipeline + a branchy scanner) deploys onto a
// simulated SoC: ppcsim host + spusim accelerator. We compare:
//   host-only     every stage on ppcsim
//   annotation-driven   each function placed by the mapper from its
//                 HardwareHints annotation (numeric -> SPU incl. DMA,
//                 control-heavy -> host)
//   worst-case    control code forced onto the accelerator (what naive
//                 offload does to branchy code)
#include <cstdio>

#include "bench_util.h"

using namespace svc;
using namespace svc::bench;

namespace {

constexpr int kBlock = 2048;            // samples per firing
constexpr uint64_t kBlocks = 64;        // blocks through the pipeline
constexpr uint32_t kIn = 1024;          // input buffer
constexpr uint32_t kMid = 1 << 16;      // intermediate buffer
constexpr uint32_t kOut = 1 << 17;      // output buffer

Pipeline::Stage make_fir_stage(Soc& soc, size_t core) {
  return {"fir4", core, 2u * kBlock * 4u, [&soc, core]() {
            return soc.run_on(core, "fir4",
                              {Value::make_i32(kMid), Value::make_i32(kIn),
                               Value::make_i32(kBlock),
                               Value::make_f32(0.7f), Value::make_f32(0.3f)});
          }};
}

Pipeline::Stage make_gain_stage(Soc& soc, size_t core) {
  return {"gain", core, 2u * kBlock * 4u, [&soc, core]() {
            return soc.run_on(core, "gain",
                              {Value::make_i32(kMid), Value::make_i32(kBlock),
                               Value::make_f32(1.1f)});
          }};
}

Pipeline::Stage make_energy_stage(Soc& soc, size_t core) {
  return {"energy", core, kBlock * 4u, [&soc, core]() {
            return soc.run_on(core, "energy",
                              {Value::make_i32(kMid),
                               Value::make_i32(kBlock)});
          }};
}

uint64_t run_pipeline(Soc& soc, size_t fir_core, size_t gain_core,
                      size_t energy_core, const char* label) {
  Pipeline pipeline(soc);
  pipeline.add_stage(make_fir_stage(soc, fir_core));
  pipeline.add_stage(make_gain_stage(soc, gain_core));
  pipeline.add_stage(make_energy_stage(soc, energy_core));
  const PipelineReport report = pipeline.run(kBlocks);
  std::printf("%-20s", label);
  for (const StageReport& s : report.stages) {
    std::printf("  %s@core%zu %7.1fk(+%.1fk dma)", s.name.c_str(), s.core,
                s.fire_cycles / 1000.0, s.dma_cycles / 1000.0);
  }
  std::printf("  total %.1fk cycles\n", report.steady_total_cycles / 1000.0);
  return report.steady_total_cycles;
}

}  // namespace

int main() {
  std::printf("Heterogeneous offload (S3 Cell scenario): ppcsim host + "
              "spusim accelerator\n\n");

  const std::string source =
      std::string(fir_source()) + std::string(control_kernel().source);
  const Module module = value_or_die(compile_module(source));

  Soc soc({{TargetKind::PpcSim, false}, {TargetKind::SpuSim, true}},
          1 << 20);
  load_or_die(soc, module);
  setup_memory(soc.memory(), kBlock + 8);

  // Mapper decisions straight from the annotations.
  std::printf("mapper decisions (core 0 = ppcsim host, core 1 = spusim):\n");
  for (uint32_t f = 0; f < module.num_functions(); ++f) {
    const Function& fn = module.function(f);
    const auto ranked = rank_cores(soc, fn);
    std::printf("  %-12s -> core %zu (scores:", fn.name().c_str(),
                ranked[0].core);
    for (const auto& ms : ranked) {
      std::printf(" core%zu=%.2f", ms.core, ms.score);
    }
    std::printf(")\n");
  }

  const size_t fir_core = choose_core(soc, module.function(0));
  const size_t gain_core = choose_core(soc, module.function(1));
  const size_t energy_core = choose_core(soc, module.function(2));

  std::printf("\npipeline of %llu blocks x %d samples:\n",
              static_cast<unsigned long long>(kBlocks), kBlock);
  const uint64_t host_only = run_pipeline(soc, 0, 0, 0, "host-only");
  const uint64_t mapped =
      run_pipeline(soc, fir_core, gain_core, energy_core, "annotation-driven");

  std::printf("\nspeedup of annotation-driven mapping: %.2fx\n",
              static_cast<double>(host_only) / static_cast<double>(mapped));

  // The cautionary half of the scenario: control code on the accelerator.
  Memory mem(1 << 20);
  setup_memory(mem, 1 << 15);
  const std::vector<Value> scan_args = {
      Value::make_i32(kBytes), Value::make_i32(1 << 15), Value::make_i32(128)};
  const SimResult on_host = soc.core(0).run("count_runs", scan_args, mem);
  const SimResult on_spu = soc.core(1).run("count_runs", scan_args, mem);
  std::printf(
      "\ncontrol-heavy count_runs: host %.1fk cycles, accelerator %.1fk "
      "cycles (%.2fx slower off-host; mispredicts %llu vs %llu)\n",
      on_host.stats.cycles / 1000.0, on_spu.stats.cycles / 1000.0,
      static_cast<double>(on_spu.stats.cycles) /
          static_cast<double>(on_host.stats.cycles),
      static_cast<unsigned long long>(on_host.stats.mispredicts),
      static_cast<unsigned long long>(on_spu.stats.mispredicts));
  return 0;
}
