// Tier-0 dispatch-engine comparison: the reference switch interpreter vs
// the pre-decoded computed-goto engine, with and without superinstruction
// fusion, measured as steady-state interpreted steps per wall second.
//
// The workload is the Table 1 kernel suite run through OnlineTarget in
// tiered mode with promotion disabled, so every call is served by tier 0
// exactly as a cold deployment serves it (per-call Interpreter over the
// target's persistent PredecodeCache). One row per simulated ISA: tier-0
// execution is target-independent, so the rows double as a check that no
// per-ISA state leaks into the interpreter -- the columns should agree
// across rows to within noise.
//
// Before timing, the first rounds of every engine are checked bit-for-bit
// (result value, dynamic step count, simulated cycles) against the switch
// engine; any divergence aborts, which makes this bench the perf smoke
// test registered in ctest. Results land in BENCH_interp.json
// (bench_report in bench_util.h) so the tier-0 perf trajectory is
// recorded across PRs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace svc;
using namespace svc::bench;

constexpr int kElems = 1024;     // elements per kernel invocation
constexpr int kVerifyRounds = 2; // bit-checked rounds before timing
constexpr double kMinWindowSec = 0.15;  // per (ISA, engine) timing window

struct EngineSpec {
  const char* name;      // table / JSON label
  DispatchKind dispatch;
  bool fusion;
};

constexpr EngineSpec kEngines[] = {
    {"switch", DispatchKind::Switch, false},
    {"threaded", DispatchKind::Threaded, false},
    {"threaded_fused", DispatchKind::Threaded, true},
};

struct IsaSpec {
  const char* name;
  TargetKind kind;
};

constexpr IsaSpec kIsas[] = {
    {"x86sim", TargetKind::X86Sim},
    {"ppcsim", TargetKind::PpcSim},
    {"spusim", TargetKind::SpuSim},
};

Module build_suite() {
  Module suite;
  suite.set_name("interp_dispatch_suite");
  for (const KernelInfo& k : table1_kernels()) {
    Module m = value_or_die(compile_module(k.source));
    suite.add_function(m.function(0));
  }
  return suite;
}

/// One observation of a kernel call, compared bit-for-bit across engines.
struct RoundResult {
  Value value;
  uint64_t steps = 0;
  uint64_t cycles = 0;

  friend bool operator==(const RoundResult& a, const RoundResult& b) {
    return a.value == b.value && a.steps == b.steps && a.cycles == b.cycles;
  }
};

/// Tier-0-only target config: tiered mode with promotion disabled means
/// run() never leaves the interpreter, exercising the production tier-0
/// path (per-call Interpreter over the target's persistent
/// PredecodeCache).
OnlineTarget::Config tier0_config(const EngineSpec& engine) {
  OnlineTarget::Config config;
  config.mode = LoadMode::Tiered;
  config.promote_threshold = UINT32_MAX;
  config.tier0_dispatch = engine.dispatch;
  config.tier0_fusion = engine.fusion;
  return config;
}

/// Runs every kernel once; returns per-kernel observations and the total
/// dynamic step count.
uint64_t run_round(OnlineTarget& target, Memory& mem,
                   std::span<const KernelInfo> kernels,
                   std::vector<RoundResult>* out) {
  uint64_t steps = 0;
  for (const KernelInfo& k : kernels) {
    const SimResult r = target.run(k.fn_name, kernel_args(k, kElems), mem);
    if (!r.ok() || !r.interpreted) {
      std::fprintf(stderr, "interp_dispatch: %s %s on %s\n",
                   std::string(k.name).c_str(),
                   r.ok() ? "left tier 0" : "trapped",
                   target.desc().name.c_str());
      std::abort();
    }
    steps += r.stats.instructions;
    if (out) out->push_back({r.value, r.stats.instructions, r.stats.cycles});
  }
  return steps;
}

struct Measurement {
  std::vector<RoundResult> verify;  // first kVerifyRounds observations
  double steps_per_sec = 0.0;
};

Measurement measure(TargetKind kind, const EngineSpec& engine,
                    const Module& suite,
                    std::span<const KernelInfo> kernels) {
  Measurement m;
  OnlineTarget target(kind, {}, tier0_config(engine));
  load_or_die(target, suite);
  Memory mem(1 << 20);
  setup_memory(mem, kElems);

  // Warm-up doubles as the differential check: memory evolves
  // deterministically round by round, so these observations must agree
  // bit-for-bit across engines of the same ISA.
  for (int r = 0; r < kVerifyRounds; ++r) {
    run_round(target, mem, kernels, &m.verify);
  }

  // Steady state: the pre-decoded streams are cached, every call is pure
  // dispatch. Time whole rounds until the window is filled.
  using Clock = std::chrono::steady_clock;
  uint64_t steps = 0;
  const auto t0 = Clock::now();
  auto t1 = t0;
  do {
    steps += run_round(target, mem, kernels, nullptr);
    t1 = Clock::now();
  } while (std::chrono::duration<double>(t1 - t0).count() < kMinWindowSec);
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  m.steps_per_sec = sec > 0.0 ? static_cast<double>(steps) / sec : 0.0;
  return m;
}

}  // namespace

int main() {
  const Module suite = build_suite();
  const std::span<const KernelInfo> kernels = table1_kernels();

  std::printf("tier-0 dispatch engines, steady-state interpreted steps/sec\n"
              "(%zu Table 1 kernels, n=%d, >=%.0f ms window per cell; "
              "threaded engine %s in this build)\n",
              kernels.size(), kElems, kMinWindowSec * 1000.0,
              Interpreter::threaded_available() ? "available" : "COMPILED OUT");
  std::printf("%-8s %14s %14s %16s %10s %10s\n", "isa", "switch", "threaded",
              "threaded+fused", "thr/sw", "fused/sw");
  print_rule(78);

  std::vector<BenchMetric> metrics;
  metrics.emplace_back("threaded_available",
                       Interpreter::threaded_available() ? 1.0 : 0.0);
  metrics.emplace_back("elems", kElems);
  metrics.emplace_back("kernels", static_cast<double>(kernels.size()));

  for (const IsaSpec& isa : kIsas) {
    double sps[std::size(kEngines)] = {};
    std::vector<RoundResult> oracle;
    for (size_t e = 0; e < std::size(kEngines); ++e) {
      const Measurement m = measure(isa.kind, kEngines[e], suite, kernels);
      sps[e] = m.steps_per_sec;
      if (e == 0) {
        oracle = m.verify;
      } else if (!(m.verify == oracle)) {
        std::fprintf(stderr,
                     "interp_dispatch: BIT DIVERGENCE between switch and %s "
                     "on %s\n", kEngines[e].name, isa.name);
        std::abort();
      }
      metrics.emplace_back(std::string(isa.name) + "." + kEngines[e].name +
                               ".steps_per_sec", m.steps_per_sec);
    }
    const double thr = sps[0] > 0.0 ? sps[1] / sps[0] : 0.0;
    const double fused = sps[0] > 0.0 ? sps[2] / sps[0] : 0.0;
    metrics.emplace_back(std::string(isa.name) + ".speedup.threaded", thr);
    metrics.emplace_back(std::string(isa.name) + ".speedup.threaded_fused",
                         fused);
    std::printf("%-8s %14.3e %14.3e %16.3e %9.2fx %9.2fx\n", isa.name, sps[0],
                sps[1], sps[2], thr, fused);
  }
  print_rule(78);
  std::printf("every engine verified bit-identical to the switch oracle "
              "(%d rounds x %zu kernels per ISA)\n",
              kVerifyRounds, kernels.size());

  bench_report("interp",
               {{"elems", std::to_string(kElems)},
                {"verify_rounds", std::to_string(kVerifyRounds)}},
               metrics);
  return 0;
}
