// E7 -- ablation on the JIT time budget (S5: "just-in-time compilers are
// constrained by their allocated memory and CPU time budget"). Wall-clock
// measurement (google-benchmark) of:
//   - the offline step (parse -> IR -> passes -> vectorize -> lower);
//   - the online step per target;
//   - the online register-allocation policies, showing the split
//     allocator's annotation-driven mode costs naive-online time while
//     Chaitin-quality allocation costs an order of magnitude more.
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace svc;
using namespace svc::bench;

namespace {

void BM_OfflineCompile(benchmark::State& state) {
  const KernelInfo& k = table1_kernels()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto module = compile_module(k.source);
    benchmark::DoNotOptimize(module);
  }
  state.SetLabel(std::string(k.name));
}
BENCHMARK(BM_OfflineCompile)->DenseRange(0, 5);

void BM_JitCompile(benchmark::State& state) {
  const KernelInfo& k = table1_kernels()[static_cast<size_t>(state.range(0))];
  const auto kind = static_cast<TargetKind>(state.range(1));
  const Module module = value_or_die(compile_module(k.source));
  for (auto _ : state) {
    JitCompiler jit(target_desc(kind));
    JitArtifact artifact = jit.compile(module, 0);
    benchmark::DoNotOptimize(artifact);
  }
  state.SetLabel(std::string(k.name) + " on " + target_desc(kind).name);
}
BENCHMARK(BM_JitCompile)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1, 2}});

void BM_AllocPolicy(benchmark::State& state) {
  const auto policy = static_cast<AllocPolicy>(state.range(0));
  // sum u8 on sparcsim: the de-vectorized, pressure-heavy case.
  const Module module = value_or_die(compile_module(table1_kernels()[4].source));
  for (auto _ : state) {
    JitCompiler jit(target_desc(TargetKind::SparcSim), {policy, true});
    JitArtifact artifact = jit.compile(module, 0);
    benchmark::DoNotOptimize(artifact);
  }
  state.SetLabel(alloc_policy_name(policy));
}
BENCHMARK(BM_AllocPolicy)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
