// E6 -- the S2.1 compactness claim ([15]: "CLI makes a compact program
// representation for embedded and general-purpose targets") and the
// split-compilation overhead question: how many bytes do the annotations
// add to the deployment image?
//
// Compares, over the kernel suite: serialized SVIL size (one image) vs
// emitted native code size per target (what shipping binaries costs), and
// the annotation share of the image.
#include <cstdio>

#include "bench_util.h"
#include "bytecode/serializer.h"

using namespace svc;
using namespace svc::bench;

int main() {
  std::printf("Deployment-image size: portable bytecode vs native code\n\n");
  std::printf("%-12s %10s %10s %12s", "kernel", "svil B", "ann B", "ann %");
  for (TargetKind kind : table1_targets()) {
    std::printf(" %10s", target_desc(kind).name.c_str());
  }
  std::printf(" %12s\n", "3-target sum");

  size_t total_svil = 0, total_native = 0;
  for (const KernelInfo& k : table1_kernels()) {
    const Module m = value_or_die(compile_module(k.source));
    const std::vector<uint8_t> image = serialize_module(m);
    size_t ann_bytes = 0;
    for (const Function& fn : m.functions()) {
      for (const Annotation& a : fn.annotations()) {
        ann_bytes += a.payload.size() + 2;
      }
    }
    std::printf("%-12s %10zu %10zu %11.1f%%", std::string(k.name).c_str(),
                image.size(), ann_bytes,
                100.0 * static_cast<double>(ann_bytes) /
                    static_cast<double>(image.size()));
    size_t native_sum = 0;
    for (TargetKind kind : table1_targets()) {
      OnlineTarget target(kind);
      load_or_die(target, m);
      std::printf(" %10zu", target.code_bytes());
      native_sum += target.code_bytes();
    }
    std::printf(" %12zu\n", native_sum);
    total_svil += image.size();
    total_native += native_sum;
  }
  std::printf(
      "\ntotals: one portable image %zu B vs per-target binaries %zu B "
      "(%.2fx smaller deployment)\n",
      total_svil, total_native,
      static_cast<double>(total_native) / static_cast<double>(total_svil));
  return 0;
}
