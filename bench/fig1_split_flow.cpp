// E2 -- reproduces **Figure 1**: the split compilation flow. Quantifies
// the claim that one portable, annotated bytecode gives (i) near-native
// code quality, (ii) a tiny online step, and (iii) one deployment image
// instead of one binary per target.
//
// Three deployment strategies per kernel:
//   A  portable-scalar: scalar bytecode, plain JIT (no offline effort)
//   B  split (the paper): vectorized + annotated bytecode, plain JIT
//   C  per-target offline: same final code as B, but compiled separately
//      for every target (no portability; offline cost scales with #targets)
//
// The second table isolates the split-regalloc half of the flow: online
// allocation effort (abstract work units) with and without the offline
// SpillPriority annotation.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "regalloc/split_alloc.h"

using namespace svc;
using namespace svc::bench;

int main() {
  constexpr int kN = 4096;
  const auto targets = table1_targets();

  std::printf("Figure 1 reproduction: split compilation flow\n\n");
  std::printf("Strategy comparison (geomean over the six Table 1 kernels):\n");
  std::printf("%-22s %14s %14s %14s %10s\n", "strategy", "offline us",
              "online us/target", "cycles (geo)", "images");

  struct Strategy {
    const char* name;
    bool vectorize;
    int images;  // deployment artifacts for 3 targets
  };
  const Strategy strategies[] = {
      {"A portable-scalar", false, 1},
      {"B split (paper)", true, 1},
      {"C per-target native", true, 3},
  };

  for (const Strategy& s : strategies) {
    OfflineOptions opts;
    opts.vectorize = s.vectorize;
    double offline_us = 0, online_us = 0, log_cycles = 0;
    int samples = 0;
    for (const KernelInfo& k : table1_kernels()) {
      Statistics stats;
      auto module = compile_module(k.source, opts, &stats);
      if (!module.ok()) return 1;
      // Strategy C repeats the offline step once per target.
      offline_us +=
          static_cast<double>(stats.get("offline.compile_us")) * s.images;
      for (TargetKind kind : targets) {
        OnlineTarget target(kind);
        load_or_die(target, *module);
        online_us += target.jit_seconds() * 1e6;
        const uint64_t cycles = run_kernel_cycles(target, k, kN);
        log_cycles += std::log(static_cast<double>(cycles));
        ++samples;
      }
    }
    std::printf("%-22s %14.0f %14.1f %14.0f %10d\n", s.name, offline_us,
                online_us / static_cast<double>(targets.size()),
                std::exp(log_cycles / samples), s.images);
  }

  std::printf(
      "\nSplit register allocation: online effort with/without the offline\n"
      "SpillPriority annotation (work units = interval ops; sparcsim):\n");
  std::printf("%-12s %18s %18s %18s\n", "kernel", "naive (units)",
              "split (units)", "full scan (units)");
  for (const KernelInfo& k : table1_kernels()) {
    const Module module = value_or_die(compile_module(k.source));
    auto work_units = [&](AllocPolicy policy) {
      OnlineTarget target(TargetKind::SparcSim, {policy, true});
      load_or_die(target, module);
      return target.jit_stats().get("jit.alloc_work_units");
    };
    std::printf("%-12s %18lld %18lld %18lld\n",
                std::string(k.name).c_str(),
                static_cast<long long>(work_units(AllocPolicy::NaiveOnline)),
                static_cast<long long>(work_units(AllocPolicy::SplitGuided)),
                static_cast<long long>(work_units(AllocPolicy::LinearScan)));
  }
  return 0;
}
