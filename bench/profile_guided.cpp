// Steady-state throughput of tier 1 (fast first JIT) vs tier 2
// (profile-guided re-specialization) on the heterogeneous pipeline
// workload: the FIR chain (fir4 -> gain -> energy) plus a register-hungry
// accumulator kernel, run on every core of a 4-kind SoC.
//
// Both configurations run the identical call sequence; results must match
// bit for bit (the runtime's cross-tier identity contract) and the bench
// aborts if they do not. What may differ is timing: tier 2 re-runs the
// JIT for hot functions with a profile-derived pipeline and -- where the
// observed register demand overcommits a class -- the offline-quality
// Chaitin allocator, so spill-bound kernels speed up on the small
// register files (x86sim/sparcsim) and stay put on the large ones.
//
// Registered in CMake as a ctest smoke target; sizes keep a full run well
// under a second.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace svc;
using namespace svc::bench;

constexpr int kElems = 256;
constexpr uint32_t kIn = 4096;    // f32 input samples (kElems + 1)
constexpr uint32_t kOut = 16384;  // f32 pipeline buffer
constexpr int kWarmCalls = 12;    // past promote (2) and tier-2 (4) gates
constexpr int kSteadyReps = 8;

// The FIR chain plus a 12-accumulator reduction: enough simultaneously
// live f32 values to overcommit the 14-register float files but not the
// 24/40-register ones, so the tier-2 allocator upgrade is per-ISA.
std::string workload_source() {
  std::string source(fir_source());
  source += R"(
fn acc12(x: *f32, n: i32) -> f32 {
  var a0: f32 = 0.0;  var a1: f32 = 0.0;  var a2: f32 = 0.0;
  var a3: f32 = 0.0;  var a4: f32 = 0.0;  var a5: f32 = 0.0;
  var a6: f32 = 0.0;  var a7: f32 = 0.0;  var a8: f32 = 0.0;
  var a9: f32 = 0.0;  var a10: f32 = 0.0; var a11: f32 = 0.0;
  var i: i32 = 0;
  while (i < n) {
    a0 = a0 + x[i];
    a1 = a1 + x[i + 1];
    a2 = a2 + x[i + 2];
    a3 = a3 + x[i + 3];
    a4 = a4 + x[i + 4];
    a5 = a5 + x[i + 5];
    a6 = a6 + x[i + 6];
    a7 = a7 + x[i + 7];
    a8 = a8 + x[i + 8];
    a9 = a9 + x[i + 9];
    a10 = a10 + x[i + 10];
    a11 = a11 + x[i + 11];
    i = i + 12;
  }
  return ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7)) +
         ((a8 + a9) + (a10 + a11));
}
)";
  return source;
}

std::vector<CoreSpec> soc_cores() {
  return {{TargetKind::X86Sim, false},
          {TargetKind::SparcSim, false},
          {TargetKind::PpcSim, false},
          {TargetKind::SpuSim, true}};
}

struct Call {
  const char* fn;
  std::vector<Value> args;
};

std::vector<Call> pipeline_calls() {
  return {
      {"fir4",
       {Value::make_i32(kOut), Value::make_i32(kIn), Value::make_i32(kElems),
        Value::make_f32(0.75f), Value::make_f32(0.25f)}},
      {"gain", {Value::make_i32(kOut), Value::make_i32(kElems),
                Value::make_f32(0.5f)}},
      {"energy", {Value::make_i32(kOut), Value::make_i32(kElems)}},
      {"acc12", {Value::make_i32(kIn), Value::make_i32(kElems - 16)}},
  };
}

void setup_samples(Memory& mem) {
  for (int i = 0; i <= kElems + 16; ++i) {
    mem.write_f32(kIn + 4 * static_cast<uint32_t>(i),
                  0.001f * static_cast<float>(i) - 0.1f);
  }
}

struct ConfigReport {
  std::string name;
  // Per-core steady-state cycles, then the counters that explain them.
  std::vector<uint64_t> core_cycles;
  std::vector<size_t> tier2_fns;
  std::vector<Value> results;  // bit-identity check across configs
  int64_t hits = 0, misses = 0, compiles = 0, evictions = 0;
};

ConfigReport run_config(const std::string& name, const Module& module,
                        uint32_t tier2_threshold) {
  SocOptions options;
  options.mode = LoadMode::Tiered;
  options.promote_threshold = 2;
  options.profile = true;
  options.tier2_threshold = tier2_threshold;
  // No pool: every compile is synchronous, so the run is deterministic
  // and the smoke target cannot flake on scheduling.
  options.pool_threads = 0;

  Soc soc(soc_cores(), 1 << 20, options);
  load_or_die(soc, module);
  setup_samples(soc.memory());

  ConfigReport report;
  report.name = name;
  const auto calls = pipeline_calls();

  // Warm-up: drive every core through tier 0 -> tier 1 (-> tier 2).
  for (int rep = 0; rep < kWarmCalls; ++rep) {
    for (size_t c = 0; c < soc.num_cores(); ++c) {
      for (const Call& call : calls) {
        const SimResult r = soc.run_on(c, call.fn, call.args);
        if (!r.ok()) {
          std::fprintf(stderr, "%s trapped during warm-up (%s)\n", call.fn,
                       name.c_str());
          std::abort();
        }
      }
    }
  }

  // Steady state: same sequence, cycles and values recorded.
  for (size_t c = 0; c < soc.num_cores(); ++c) {
    uint64_t cycles = 0;
    for (int rep = 0; rep < kSteadyReps; ++rep) {
      for (const Call& call : calls) {
        const SimResult r = soc.run_on(c, call.fn, call.args);
        if (!r.ok()) {
          std::fprintf(stderr, "%s trapped in steady state (%s)\n", call.fn,
                       name.c_str());
          std::abort();
        }
        cycles += r.stats.cycles;
        report.results.push_back(r.value);
      }
    }
    report.core_cycles.push_back(cycles);
    report.tier2_fns.push_back(soc.core(c).tier2_functions());
  }

  const Statistics stats = soc.code_cache().stats();
  report.hits = stats.get("cache.hits");
  report.misses = stats.get("cache.misses");
  report.compiles = stats.get("cache.compiles");
  report.evictions = stats.get("cache.evictions");
  return report;
}

}  // namespace

int main() {
  const Module module = value_or_die(compile_module(workload_source()));

  const ConfigReport tier1 = run_config("tier1", module, 0);
  const ConfigReport tier2 = run_config("tier2", module, 4);

  if (tier1.results != tier2.results) {
    std::fprintf(stderr,
                 "BUG: tier-1 and tier-2 steady-state results diverged\n");
    std::abort();
  }

  const auto cores = soc_cores();
  std::printf("profile-guided re-specialization: steady-state cycles per "
              "core\n(FIR pipeline + acc12, %d reps x %zu kernels, n=%d; "
              "identical results verified)\n\n",
              kSteadyReps, pipeline_calls().size(), kElems);
  std::printf("%-10s %14s %14s %9s %10s\n", "core", "tier1 cyc", "tier2 cyc",
              "delta", "tier2 fns");
  print_rule(62);
  for (size_t c = 0; c < cores.size(); ++c) {
    const double delta =
        100.0 *
        (static_cast<double>(tier1.core_cycles[c]) -
         static_cast<double>(tier2.core_cycles[c])) /
        static_cast<double>(tier1.core_cycles[c]);
    std::printf("%-10s %14llu %14llu %+8.1f%% %10zu\n",
                target_desc(cores[c].kind).name.c_str(),
                static_cast<unsigned long long>(tier1.core_cycles[c]),
                static_cast<unsigned long long>(tier2.core_cycles[c]), delta,
                tier2.tier2_fns[c]);
  }
  print_rule(62);
  std::printf("shared-cache counters (hits/misses/compiles/evictions): "
              "tier1 %lld/%lld/%lld/%lld, tier2 %lld/%lld/%lld/%lld\n",
              static_cast<long long>(tier1.hits),
              static_cast<long long>(tier1.misses),
              static_cast<long long>(tier1.compiles),
              static_cast<long long>(tier1.evictions),
              static_cast<long long>(tier2.hits),
              static_cast<long long>(tier2.misses),
              static_cast<long long>(tier2.compiles),
              static_cast<long long>(tier2.evictions));
  std::printf(
      "tier 2 re-runs the JIT for hot functions with profile-derived "
      "options;\nwhere the observed register demand overcommits a class "
      "the Chaitin\nallocator replaces linear scan, cutting spill cycles "
      "on the small\nregister files. Results are bit-identical across "
      "tiers by contract.\n");
  return 0;
}
