// E1 -- reproduces **Table 1** of the paper: run times and speedups of
// split automatic vectorization.
//
// Six kernels are compiled ONCE to portable bytecode, twice over: scalar
// (vectorizer off) and vectorized (portable v128 builtins + annotations).
// Each module is then JIT-compiled on the three simulated hosts:
//   x86sim   -- SIMD available: builtins select 1:1 (paper: 1.6x-15.6x)
//   sparcsim -- no SIMD, few registers: de-vectorized, byte kernels dip
//               below 1.0 from spill pressure (paper: 0.78x-1.5x)
//   ppcsim   -- no SIMD, many registers: de-vectorization acts as
//               unrolling (paper: 1.1x-1.5x)
// Reported numbers are simulated cycles for N elements; the paper's
// absolute milliseconds are not comparable (2009 hardware), the *shape*
// is (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"

using namespace svc;
using namespace svc::bench;

int main() {
  constexpr int kN = 4096;

  std::printf("Table 1 reproduction: split automatic vectorization\n");
  std::printf("(simulated cycles for N=%d elements; relative = scalar/vect)\n\n",
              kN);
  std::printf("%-12s", "benchmark");
  for (TargetKind kind : table1_targets()) {
    std::printf(" | %-10s scalar     vect   relative",
                target_desc(kind).name.c_str());
  }
  std::printf("\n");
  print_rule(130);

  OfflineOptions scalar_opts;
  scalar_opts.vectorize = false;

  for (const KernelInfo& k : table1_kernels()) {
    const Module scalar = value_or_die(compile_module(k.source, scalar_opts));
    const Module vectorized = value_or_die(compile_module(k.source));

    std::printf("%-12s", std::string(k.name).c_str());
    for (TargetKind kind : table1_targets()) {
      OnlineTarget ts(kind), tv(kind);
      load_or_die(ts, scalar);
      load_or_die(tv, vectorized);
      const uint64_t cs = run_kernel_cycles(ts, k, kN);
      const uint64_t cv = run_kernel_cycles(tv, k, kN);
      std::printf(" | %10s %8.1fk %8.1fk %7.2fx", "",
                  cs / 1000.0, cv / 1000.0,
                  static_cast<double>(cs) / static_cast<double>(cv));
    }
    std::printf("\n");
  }
  print_rule(130);
  std::printf(
      "\npaper's relative columns: x86 2.2/2.1/1.6/15.6/5.3/2.6, "
      "UltraSparc 1.4/1.2/1.5/0.95/0.94/0.78, PowerPC 1.1/1.3/1.1/1.4/1.5/1.5\n");
  return 0;
}
