// The one JSON trajectory writer behind every bench executable
// (bench/interp_dispatch.cpp, bench/warm_start.cpp,
// bench/serve_throughput.cpp): each bench previously hand-rolled its own
// fprintf JSON; this header is the shared schema so the files stay
// uniform and docs/BENCHMARKS.md documents one format.
//
// Schema (version 2):
//   {
//     "bench": "<name>",
//     "schema": 2,
//     "timestamp": "<ISO-8601 UTC of the run>",
//     "config": { "<key>": "<string>", ... },   // workload shape
//     "metrics": { "<dotted.key>": <number>, ... }
//   }
// config records what was run (client counts, shard lists, element
// sizes) as strings; metrics record what was measured as numbers, flat
// and insertion-ordered. Keys must not need JSON escaping (plain
// [A-Za-z0-9._+-]); non-finite metric values are recorded as 0 to keep
// the file valid JSON.
#pragma once

#include <cmath>
#include <cstdio>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

namespace svc::bench {

/// One row of a machine-readable bench report: flat dotted key, numeric
/// value (e.g. {"x86sim.threaded_fused.steps_per_sec", 1.2e8}).
using BenchMetric = std::pair<std::string, double>;

/// One workload-shape entry of the report's config object (stringly:
/// {"clients", "4"}).
using BenchConfigEntry = std::pair<std::string, std::string>;

/// Writes `BENCH_<name>.json` in the current working directory. Benches
/// are run from the repo root so the trajectory files land next to the
/// sources and get versioned across PRs.
inline void bench_report(const std::string& name,
                         const std::vector<BenchConfigEntry>& config,
                         const std::vector<BenchMetric>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return;
  }
  char timestamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm utc{}; gmtime_r(&now, &utc) != nullptr) {
    std::strftime(timestamp, sizeof timestamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"schema\": 2,\n"
               "  \"timestamp\": \"%s\",\n  \"config\": {\n",
               name.c_str(), timestamp);
  for (size_t i = 0; i < config.size(); ++i) {
    std::fprintf(f, "    \"%s\": \"%s\"%s\n", config[i].first.c_str(),
                 config[i].second.c_str(),
                 i + 1 < config.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"metrics\": {\n");
  for (size_t i = 0; i < metrics.size(); ++i) {
    const double v = std::isfinite(metrics[i].second) ? metrics[i].second : 0.0;
    std::fprintf(f, "    \"%s\": %.10g%s\n", metrics[i].first.c_str(), v,
                 i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("bench_report: wrote %s\n", path.c_str());
}

/// Config-free convenience overload (an empty config object is still
/// written, so every report parses the same).
inline void bench_report(const std::string& name,
                         const std::vector<BenchMetric>& metrics) {
  bench_report(name, {}, metrics);
}

}  // namespace svc::bench
