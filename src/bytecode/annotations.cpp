#include "bytecode/annotations.h"

#include "support/varint.h"

namespace svc {

Annotation VectorizedLoopInfo::encode() const {
  Annotation a{AnnotationKind::VectorizedLoop, {}};
  write_uleb(a.payload, header_block);
  write_uleb(a.payload, vector_factor);
  write_uleb(a.payload, has_epilogue ? 1 : 0);
  return a;
}

std::optional<VectorizedLoopInfo> VectorizedLoopInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const auto header = r.read_uleb();
  const auto vf = r.read_uleb();
  const auto epi = r.read_uleb();
  if (!header || !vf || !epi) return std::nullopt;
  VectorizedLoopInfo info;
  info.header_block = static_cast<uint32_t>(*header);
  info.vector_factor = static_cast<uint32_t>(*vf);
  info.has_epilogue = *epi != 0;
  return info;
}

Annotation SpillPriorityInfo::encode() const {
  Annotation a{AnnotationKind::SpillPriority, {}};
  write_uleb(a.payload, eviction_order.size());
  // Delta-encoding keeps typical payloads around 1-2 bytes per local.
  for (uint32_t local : eviction_order) write_uleb(a.payload, local);
  write_uleb(a.payload, weights.size());
  for (uint32_t w : weights) write_uleb(a.payload, w);
  return a;
}

std::optional<SpillPriorityInfo> SpillPriorityInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  SpillPriorityInfo info;
  const auto n = r.read_uleb();
  if (!n) return std::nullopt;
  info.eviction_order.reserve(static_cast<size_t>(*n));
  for (uint64_t i = 0; i < *n; ++i) {
    const auto v = r.read_uleb();
    if (!v) return std::nullopt;
    info.eviction_order.push_back(static_cast<uint32_t>(*v));
  }
  const auto m = r.read_uleb();
  if (!m) return std::nullopt;
  info.weights.reserve(static_cast<size_t>(*m));
  for (uint64_t i = 0; i < *m; ++i) {
    const auto v = r.read_uleb();
    if (!v) return std::nullopt;
    info.weights.push_back(static_cast<uint32_t>(*v));
  }
  return info;
}

Annotation HardwareHintsInfo::encode() const {
  Annotation a{AnnotationKind::HardwareHints, {}};
  write_uleb(a.payload, features);
  write_uleb(a.payload, vector_intensity);
  return a;
}

std::optional<HardwareHintsInfo> HardwareHintsInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const auto features = r.read_uleb();
  const auto intensity = r.read_uleb();
  if (!features || !intensity) return std::nullopt;
  HardwareHintsInfo info;
  info.features = static_cast<uint32_t>(*features);
  info.vector_intensity = static_cast<uint32_t>(*intensity);
  return info;
}

Annotation LoopTripInfo::encode() const {
  Annotation a{AnnotationKind::LoopTripInfo, {}};
  write_uleb(a.payload, header_block);
  write_uleb(a.payload, trip_multiple);
  write_uleb(a.payload, trip_min);
  return a;
}

std::optional<LoopTripInfo> LoopTripInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const auto header = r.read_uleb();
  const auto mult = r.read_uleb();
  const auto min = r.read_uleb();
  if (!header || !mult || !min) return std::nullopt;
  LoopTripInfo info;
  info.header_block = static_cast<uint32_t>(*header);
  info.trip_multiple = static_cast<uint32_t>(*mult);
  info.trip_min = static_cast<uint32_t>(*min);
  return info;
}

const Annotation* find_annotation(std::span<const Annotation> annotations,
                                  AnnotationKind kind) {
  for (const auto& a : annotations) {
    if (a.kind == kind) return &a;
  }
  return nullptr;
}

}  // namespace svc
