#include "bytecode/annotations.h"

#include "support/crc32.h"
#include "support/varint.h"

namespace svc {

Annotation VectorizedLoopInfo::encode() const {
  Annotation a{AnnotationKind::VectorizedLoop, {}};
  write_uleb(a.payload, header_block);
  write_uleb(a.payload, vector_factor);
  write_uleb(a.payload, has_epilogue ? 1 : 0);
  return a;
}

std::optional<VectorizedLoopInfo> VectorizedLoopInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const auto header = r.read_uleb();
  const auto vf = r.read_uleb();
  const auto epi = r.read_uleb();
  if (!header || !vf || !epi) return std::nullopt;
  VectorizedLoopInfo info;
  info.header_block = static_cast<uint32_t>(*header);
  info.vector_factor = static_cast<uint32_t>(*vf);
  info.has_epilogue = *epi != 0;
  return info;
}

Annotation SpillPriorityInfo::encode() const {
  Annotation a{AnnotationKind::SpillPriority, {}};
  write_uleb(a.payload, eviction_order.size());
  // Delta-encoding keeps typical payloads around 1-2 bytes per local.
  for (uint32_t local : eviction_order) write_uleb(a.payload, local);
  write_uleb(a.payload, weights.size());
  for (uint32_t w : weights) write_uleb(a.payload, w);
  return a;
}

std::optional<SpillPriorityInfo> SpillPriorityInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  SpillPriorityInfo info;
  const auto n = r.read_uleb();
  if (!n) return std::nullopt;
  info.eviction_order.reserve(static_cast<size_t>(*n));
  for (uint64_t i = 0; i < *n; ++i) {
    const auto v = r.read_uleb();
    if (!v) return std::nullopt;
    info.eviction_order.push_back(static_cast<uint32_t>(*v));
  }
  const auto m = r.read_uleb();
  if (!m) return std::nullopt;
  info.weights.reserve(static_cast<size_t>(*m));
  for (uint64_t i = 0; i < *m; ++i) {
    const auto v = r.read_uleb();
    if (!v) return std::nullopt;
    info.weights.push_back(static_cast<uint32_t>(*v));
  }
  return info;
}

Annotation HardwareHintsInfo::encode() const {
  Annotation a{AnnotationKind::HardwareHints, {}};
  write_uleb(a.payload, features);
  write_uleb(a.payload, vector_intensity);
  return a;
}

std::optional<HardwareHintsInfo> HardwareHintsInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const auto features = r.read_uleb();
  const auto intensity = r.read_uleb();
  if (!features || !intensity) return std::nullopt;
  HardwareHintsInfo info;
  info.features = static_cast<uint32_t>(*features);
  info.vector_intensity = static_cast<uint32_t>(*intensity);
  return info;
}

Annotation LoopTripInfo::encode() const {
  Annotation a{AnnotationKind::LoopTripInfo, {}};
  write_uleb(a.payload, header_block);
  write_uleb(a.payload, trip_multiple);
  write_uleb(a.payload, trip_min);
  return a;
}

std::optional<LoopTripInfo> LoopTripInfo::decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const auto header = r.read_uleb();
  const auto mult = r.read_uleb();
  const auto min = r.read_uleb();
  if (!header || !mult || !min) return std::nullopt;
  LoopTripInfo info;
  info.header_block = static_cast<uint32_t>(*header);
  info.trip_multiple = static_cast<uint32_t>(*mult);
  info.trip_min = static_cast<uint32_t>(*min);
  return info;
}

size_t trip_bucket(uint64_t trips) {
  size_t bucket = 0;
  while (trips > 1 && bucket + 1 < kProfileTripBuckets) {
    trips >>= 1;
    ++bucket;
  }
  return bucket;
}

uint64_t trip_bucket_floor(size_t i) { return uint64_t{1} << i; }

uint32_t ProfileInfo::widest_lanes() const {
  if (lane16_ops > 0) return 16;
  if (lane8_ops > 0) return 8;
  if (lane4_ops > 0) return 4;
  return 0;
}

bool ProfileInfo::empty() const {
  return calls == 0 && scalar_ops == 0 && vector_ops() == 0 &&
         branches.empty() && loops.empty();
}

void ProfileInfo::merge(const ProfileInfo& other) {
  calls += other.calls;
  scalar_ops += other.scalar_ops;
  lane16_ops += other.lane16_ops;
  lane8_ops += other.lane8_ops;
  lane4_ops += other.lane4_ops;
  for (const auto& [block, counts] : other.branches) {
    BranchProfile& mine = branches[block];
    mine.taken += counts.taken;
    mine.not_taken += counts.not_taken;
  }
  for (const auto& [header, histogram] : other.loops) {
    TripHistogram& mine = loops[header];
    for (size_t i = 0; i < kProfileTripBuckets; ++i) {
      mine[i] += histogram[i];
    }
  }
}

uint64_t ProfileInfo::hash() const {
  // FNV-1a over the canonical encoding (maps iterate sorted, so the byte
  // stream is deterministic for equal profiles).
  const Annotation encoded = encode();
  uint64_t h = 0xcbf29ce484222325ull;
  for (const uint8_t byte : encoded.payload) {
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  return h;
}

Annotation ProfileInfo::encode() const {
  Annotation a{AnnotationKind::Profile, {}};
  write_uleb(a.payload, kProfileVersion);
  write_uleb(a.payload, calls);
  write_uleb(a.payload, scalar_ops);
  write_uleb(a.payload, lane16_ops);
  write_uleb(a.payload, lane8_ops);
  write_uleb(a.payload, lane4_ops);
  write_uleb(a.payload, branches.size());
  for (const auto& [block, counts] : branches) {
    write_uleb(a.payload, block);
    write_uleb(a.payload, counts.taken);
    write_uleb(a.payload, counts.not_taken);
  }
  write_uleb(a.payload, loops.size());
  for (const auto& [header, histogram] : loops) {
    write_uleb(a.payload, header);
    for (const uint64_t bucket : histogram) write_uleb(a.payload, bucket);
  }
  const uint32_t crc = crc32(a.payload);
  for (int i = 0; i < 4; ++i) {
    a.payload.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  return a;
}

std::optional<ProfileInfo> ProfileInfo::decode(
    std::span<const uint8_t> payload) {
  if (payload.size() < 4) return std::nullopt;
  const auto body = payload.first(payload.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(payload[body.size() + i]) << (8 * i);
  }
  if (crc32(body) != stored) return std::nullopt;

  ByteReader r(body);
  const auto version = r.read_uleb();
  if (!version || *version != kProfileVersion) return std::nullopt;
  ProfileInfo info;
  const auto calls = r.read_uleb();
  const auto scalar = r.read_uleb();
  const auto lane16 = r.read_uleb();
  const auto lane8 = r.read_uleb();
  const auto lane4 = r.read_uleb();
  if (!calls || !scalar || !lane16 || !lane8 || !lane4) return std::nullopt;
  info.calls = *calls;
  info.scalar_ops = *scalar;
  info.lane16_ops = *lane16;
  info.lane8_ops = *lane8;
  info.lane4_ops = *lane4;

  const auto nbranches = r.read_uleb();
  if (!nbranches || *nbranches > 1u << 20) return std::nullopt;
  for (uint64_t i = 0; i < *nbranches; ++i) {
    const auto block = r.read_uleb();
    const auto taken = r.read_uleb();
    const auto not_taken = r.read_uleb();
    if (!block || !taken || !not_taken) return std::nullopt;
    info.branches[static_cast<uint32_t>(*block)] = {*taken, *not_taken};
  }
  const auto nloops = r.read_uleb();
  if (!nloops || *nloops > 1u << 20) return std::nullopt;
  for (uint64_t i = 0; i < *nloops; ++i) {
    const auto header = r.read_uleb();
    if (!header) return std::nullopt;
    TripHistogram histogram{};
    for (size_t b = 0; b < kProfileTripBuckets; ++b) {
      const auto bucket = r.read_uleb();
      if (!bucket) return std::nullopt;
      histogram[b] = *bucket;
    }
    info.loops[static_cast<uint32_t>(*header)] = histogram;
  }
  if (!r.at_end()) return std::nullopt;
  return info;
}

const Annotation* find_annotation(std::span<const Annotation> annotations,
                                  AnnotationKind kind) {
  for (const auto& a : annotations) {
    if (a.kind == kind) return &a;
  }
  return nullptr;
}

}  // namespace svc
