#include "bytecode/function.h"

namespace svc {

size_t Function::size() const {
  size_t n = 0;
  for (const auto& b : blocks_) n += b.insts.size();
  return n;
}

}  // namespace svc
