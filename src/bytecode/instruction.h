// A single SVIL instruction. The meaning of a/b/imm is given by the
// opcode's ImmKind (see opcode.h). Instructions are plain values; all
// structure (blocks, functions) lives in function.h.
#pragma once

#include <bit>
#include <cstdint>

#include "bytecode/opcode.h"

namespace svc {

struct Instruction {
  Opcode op = Opcode::Nop;
  uint32_t a = 0;   // local idx | func idx | lane | branch target 0
  uint32_t b = 0;   // branch target 1 (BranchIf fallthrough)
  int64_t imm = 0;  // integer constant | float bits | memory offset

  [[nodiscard]] float f32_imm() const {
    return std::bit_cast<float>(static_cast<uint32_t>(imm));
  }
  [[nodiscard]] double f64_imm() const {
    return std::bit_cast<double>(static_cast<uint64_t>(imm));
  }

  static Instruction make(Opcode op) { return {op, 0, 0, 0}; }
  static Instruction with_a(Opcode op, uint32_t a) { return {op, a, 0, 0}; }
  static Instruction with_imm(Opcode op, int64_t imm) {
    return {op, 0, 0, imm};
  }
  static Instruction with_f32(Opcode op, float v) {
    return {op, 0, 0, static_cast<int64_t>(std::bit_cast<uint32_t>(v))};
  }
  static Instruction with_f64(Opcode op, double v) {
    return {op, 0, 0, static_cast<int64_t>(std::bit_cast<uint64_t>(v))};
  }

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

}  // namespace svc
