#include "bytecode/verifier.h"

#include <string>
#include <vector>

namespace svc {
namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& module, const Function& fn,
                   DiagnosticEngine& diags)
      : module_(module), fn_(fn), diags_(diags) {}

  bool run() {
    if (fn_.num_blocks() == 0) {
      error("function has no blocks");
      return false;
    }
    for (uint32_t b = 0; b < fn_.num_blocks(); ++b) {
      verify_block(b);
    }
    return ok_;
  }

 private:
  void error(std::string msg) {
    diags_.error({}, fn_.name() + ": " + std::move(msg));
    ok_ = false;
  }
  void block_error(uint32_t block, size_t idx, const Instruction& inst,
                   std::string msg) {
    error("block " + std::to_string(block) + " inst " + std::to_string(idx) +
          " (" + std::string(op_mnemonic(inst.op)) + "): " + std::move(msg));
  }

  bool pop(uint32_t block, size_t idx, const Instruction& inst,
           Type expected) {
    if (stack_.empty()) {
      block_error(block, idx, inst, "stack underflow");
      return false;
    }
    const Type got = stack_.back();
    stack_.pop_back();
    if (got != expected) {
      block_error(block, idx, inst,
                  "expected " + std::string(type_name(expected)) + ", got " +
                      std::string(type_name(got)));
      return false;
    }
    return true;
  }

  bool pop_any(uint32_t block, size_t idx, const Instruction& inst) {
    if (stack_.empty()) {
      block_error(block, idx, inst, "stack underflow");
      return false;
    }
    stack_.pop_back();
    return true;
  }

  /// Pops operands per `pops` signature (listed in push order, so popped
  /// back-to-front).
  bool pop_signature(uint32_t block, size_t idx, const Instruction& inst,
                     std::string_view pops) {
    for (size_t i = pops.size(); i-- > 0;) {
      if (!pop(block, idx, inst, type_from_code(pops[i]))) return false;
    }
    return true;
  }

  void verify_block(uint32_t block_idx) {
    const BasicBlock& block = fn_.block(block_idx);
    stack_.clear();
    if (block.empty()) {
      error("block " + std::to_string(block_idx) + " is empty");
      return;
    }
    for (size_t i = 0; i < block.insts.size(); ++i) {
      const Instruction& inst = block.insts[i];
      const bool is_last = i + 1 == block.insts.size();
      if (is_terminator(inst.op) != is_last) {
        block_error(block_idx, i, inst,
                    is_last ? "block does not end with a terminator"
                            : "terminator in the middle of a block");
        return;
      }
      if (!verify_inst(block_idx, i, inst)) return;
    }
    if (!stack_.empty()) {
      error("block " + std::to_string(block_idx) +
            " leaves " + std::to_string(stack_.size()) +
            " values on the stack at its boundary");
    }
  }

  bool check_block_target(uint32_t block, size_t idx, const Instruction& inst,
                          uint32_t target) {
    if (target >= fn_.num_blocks()) {
      block_error(block, idx, inst,
                  "branch target " + std::to_string(target) + " out of range");
      return false;
    }
    return true;
  }

  bool verify_inst(uint32_t block, size_t idx, const Instruction& inst) {
    if (static_cast<size_t>(inst.op) >= kNumOpcodes) {
      block_error(block, idx, inst, "unknown opcode");
      return false;
    }
    const OpInfo& info = op_info(inst.op);

    switch (inst.op) {
      case Opcode::LocalGet: {
        if (inst.a >= fn_.num_locals()) {
          block_error(block, idx, inst, "local index out of range");
          return false;
        }
        stack_.push_back(fn_.local_type(inst.a));
        return true;
      }
      case Opcode::LocalSet: {
        if (inst.a >= fn_.num_locals()) {
          block_error(block, idx, inst, "local index out of range");
          return false;
        }
        return pop(block, idx, inst, fn_.local_type(inst.a));
      }
      case Opcode::Ret: {
        if (fn_.sig().ret != Type::Void) {
          if (!pop(block, idx, inst, fn_.sig().ret)) return false;
        }
        if (!stack_.empty()) {
          block_error(block, idx, inst, "stack not empty at return");
          return false;
        }
        return true;
      }
      case Opcode::Call: {
        if (inst.a >= module_.num_functions()) {
          block_error(block, idx, inst, "callee index out of range");
          return false;
        }
        const FunctionSig& callee = module_.function(inst.a).sig();
        for (size_t p = callee.params.size(); p-- > 0;) {
          if (!pop(block, idx, inst, callee.params[p])) return false;
        }
        if (callee.ret != Type::Void) stack_.push_back(callee.ret);
        return true;
      }
      case Opcode::Drop:
        return pop_any(block, idx, inst);
      case Opcode::Jump:
        return check_block_target(block, idx, inst, inst.a);
      case Opcode::BranchIf: {
        if (!pop(block, idx, inst, Type::I32)) return false;
        return check_block_target(block, idx, inst, inst.a) &&
               check_block_target(block, idx, inst, inst.b);
      }
      default:
        break;
    }

    // Immediate validity.
    switch (info.imm) {
      case ImmKind::MemOff:
        if (inst.imm < 0 || inst.imm >= (int64_t{1} << 31)) {
          block_error(block, idx, inst, "memory offset out of range");
          return false;
        }
        break;
      case ImmKind::Lane:
        if (inst.a >= lane_count(info.lanes)) {
          block_error(block, idx, inst, "lane index out of range");
          return false;
        }
        break;
      default:
        break;
    }

    // Generic typed stack effect.
    if (!pop_signature(block, idx, inst, info.pops)) return false;
    if (!info.pushes.empty()) stack_.push_back(info.push_type());
    return true;
  }

  const Module& module_;
  const Function& fn_;
  DiagnosticEngine& diags_;
  std::vector<Type> stack_;
  bool ok_ = true;
};

}  // namespace

bool verify_function(const Module& module, const Function& fn,
                     DiagnosticEngine& diags) {
  return FunctionVerifier(module, fn, diags).run();
}

bool verify_module(const Module& module, DiagnosticEngine& diags) {
  bool ok = true;
  for (const auto& fn : module.functions()) {
    ok &= verify_function(module, fn, diags);
  }
  return ok;
}

}  // namespace svc
