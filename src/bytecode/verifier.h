// SVIL verifier: the load-time safety gate every deployed module passes
// before interpretation or JIT compilation (paper S2.2: verification is an
// offline/load-time responsibility in a deferred-compilation toolchain).
//
// Checks, per function:
//  - every block is non-empty and ends with exactly one terminator;
//  - branch targets, local indices, callee indices and lane indices are
//    in range;
//  - abstract interpretation of stack *types* through each block: operand
//    types match opcode signatures, locals are accessed at their declared
//    type, Call matches the callee signature, Ret matches the return type;
//  - the evaluation stack is empty at every block boundary (the SVIL
//    structural restriction) and never underflows;
//  - memory offsets are non-negative and below 2^31.
#pragma once

#include "bytecode/module.h"
#include "support/diagnostics.h"

namespace svc {

/// Verifies the whole module; diagnostics (prefixed with the function
/// name) are appended to `diags`. Returns true when no error was found.
bool verify_module(const Module& module, DiagnosticEngine& diags);

/// Verifies one function against its containing module (needed for Call).
bool verify_function(const Module& module, const Function& fn,
                     DiagnosticEngine& diags);

}  // namespace svc
