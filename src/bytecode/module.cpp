#include "bytecode/module.h"

#include <atomic>
#include <cassert>

namespace svc {

uint64_t next_module_id() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  // Ids are never reused: a 64-bit monotonic counter cannot wrap in any
  // real process, and the debug assert documents the invariant the
  // CodeCache relies on.
  assert(id != 0 && "module id counter wrapped; ids would be reused");
  return id;
}

std::optional<uint32_t> Module::find_function(std::string_view name) const {
  for (uint32_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name() == name) return i;
  }
  return std::nullopt;
}

}  // namespace svc
