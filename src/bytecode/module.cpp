#include "bytecode/module.h"

namespace svc {

std::optional<uint32_t> Module::find_function(std::string_view name) const {
  for (uint32_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name() == name) return i;
  }
  return std::nullopt;
}

}  // namespace svc
