// Opcode enumeration and static metadata, generated from opcodes.def.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "bytecode/type.h"

namespace svc {

enum class Opcode : uint16_t {
#define SVC_OP(Name, mnemonic, pops, pushes, imm, category, lanes, membytes) \
  Name,
#include "bytecode/opcodes.def"
#undef SVC_OP
  Count_,
};

inline constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::Count_);

/// What the `a`/`b`/`imm` fields of an Instruction mean for an opcode.
enum class ImmKind : uint8_t {
  NoImm,     // no immediate
  I64,       // imm = integer constant
  F32,       // imm = bit_cast of a float constant
  F64,       // imm = bit_cast of a double constant
  LocalIdx,  // a = local index
  FuncIdx,   // a = callee function index
  MemOff,    // imm = byte offset added to popped address
  Lane,      // a = vector lane index
  Block,     // a = jump target block
  Block2,    // a = taken target block, b = fallthrough target block
};

enum class OpCategory : uint8_t {
  Const,
  Local,
  IntArith,
  FloatArith,
  Cmp,
  Select,
  Conv,
  Load,
  Store,
  VectorConst,
  VectorArith,
  VectorReduce,
  VectorLane,
  Control,
  Call,
  Misc,
};

/// Static description of one opcode. `pops` lists popped operand types in
/// push order (top of stack is the last character). Polymorphic opcodes
/// (locals, ret, call, drop) have empty signatures and are special-cased
/// by the verifier / interpreter / JIT.
struct OpInfo {
  std::string_view mnemonic;
  std::string_view pops;
  std::string_view pushes;
  ImmKind imm = ImmKind::NoImm;
  OpCategory category = OpCategory::Misc;
  LaneKind lanes = LaneKind::None;
  uint8_t mem_bytes = 0;

  [[nodiscard]] bool is_terminator_category() const {
    return category == OpCategory::Control;
  }
  [[nodiscard]] Type push_type() const {
    return pushes.empty() ? Type::Void : type_from_code(pushes[0]);
  }
};

[[nodiscard]] const OpInfo& op_info(Opcode op);
[[nodiscard]] std::string_view op_mnemonic(Opcode op);

/// True for opcodes that must end a basic block (Jump/BranchIf/Ret/Trap).
[[nodiscard]] bool is_terminator(Opcode op);

/// True for the vector builtins the split vectorizer emits.
[[nodiscard]] bool is_vector_op(Opcode op);

/// Reverse lookup used by the assembler in tests; O(n), fine offline.
[[nodiscard]] std::optional<Opcode> opcode_from_mnemonic(std::string_view m);

}  // namespace svc
