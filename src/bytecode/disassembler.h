// Textual dump of SVIL functions/modules, used by tests, examples and the
// debugging workflow ("same bytecode runs on the workstation", paper S3).
#pragma once

#include <string>

#include "bytecode/module.h"

namespace svc {

[[nodiscard]] std::string disassemble(const Instruction& inst);
[[nodiscard]] std::string disassemble(const Function& fn);
[[nodiscard]] std::string disassemble(const Module& module);

}  // namespace svc
