// Textual dump of SVIL functions/modules, used by tests, examples and the
// debugging workflow ("same bytecode runs on the workstation", paper S3).
#pragma once

#include <string>

#include "bytecode/module.h"

namespace svc {

[[nodiscard]] std::string disassemble(const Instruction& inst);
/// Decoded, human-readable form of one annotation record: the payload is
/// parsed per kind (vectorized_loop, spill_priority, hw_hints, loop_trip,
/// profile); unknown kinds and undecodable payloads print as raw byte
/// counts, mirroring how loaders skip them.
[[nodiscard]] std::string disassemble(const Annotation& ann);
[[nodiscard]] std::string disassemble(const Function& fn);
[[nodiscard]] std::string disassemble(const Module& module);

}  // namespace svc
