// Split-compilation annotations: the channel through which the offline
// compiler hands distilled semantic facts to the online (JIT) step.
//
// Annotations are *advisory* (paper S3): a consumer that ignores them must
// still produce correct code, and unknown kinds are skipped by loaders.
// Each annotation is a (kind, payload) record attached to a function; the
// payload is a compact varint-encoded blob so the deployment-image
// overhead stays in the low percent range (measured by bench/bytecode_size).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace svc {

enum class AnnotationKind : uint16_t {
  // Marks a loop the offline vectorizer transformed: which block is the
  // vector-loop header, the vectorization factor, and whether a scalar
  // epilogue follows. Lets the JIT skip its own loop analysis.
  VectorizedLoop = 1,
  // Portable register-allocation hints (Diouf et al. [18]): locals sorted
  // by eviction preference (best spill candidate first) plus a use-density
  // weight per local. Target-independent: valid for any register count K.
  SpillPriority = 2,
  // Hardware affinity of the function, used by the heterogeneous mapper:
  // which core features it benefits from and an estimated intensity.
  HardwareHints = 3,
  // Trip-count facts for a loop header: guaranteed multiple and minimum,
  // letting the JIT drop epilogues or prologue guards.
  LoopTripInfo = 4,
  // Runtime profile of the function, collected by the deployed tier-0
  // interpreter and fed back both online (tier-2 re-specialization) and
  // offline (seeding the iterative tuner). Unlike the kinds above, the
  // payload is *versioned and CRC-checked*: it travels back from devices,
  // so a reader must reject skewed or corrupted records cleanly.
  Profile = 5,
};

struct Annotation {
  AnnotationKind kind;
  std::vector<uint8_t> payload;

  friend bool operator==(const Annotation&, const Annotation&) = default;
};

// --- Typed views over the payloads --------------------------------------

struct VectorizedLoopInfo {
  uint32_t header_block = 0;
  uint32_t vector_factor = 0;
  bool has_epilogue = false;

  [[nodiscard]] Annotation encode() const;
  static std::optional<VectorizedLoopInfo> decode(
      std::span<const uint8_t> payload);
};

struct SpillPriorityInfo {
  // Locals in eviction order: the first entry is the local the online
  // allocator should spill first when pressure exceeds K.
  std::vector<uint32_t> eviction_order;
  // Parallel use-density weights (uses per live-range length, scaled by
  // 256); purely informational, kept for diagnostics and benches.
  std::vector<uint32_t> weights;

  [[nodiscard]] Annotation encode() const;
  static std::optional<SpillPriorityInfo> decode(
      std::span<const uint8_t> payload);
};

// Bitmask of core features a function benefits from.
enum HardwareFeature : uint32_t {
  kFeatureSimd = 1u << 0,
  kFeatureFloat = 1u << 1,
  kFeatureDouble = 1u << 2,
  kFeatureControlHeavy = 1u << 3,
  kFeatureMemoryHeavy = 1u << 4,
};

struct HardwareHintsInfo {
  uint32_t features = 0;
  // Fraction (0-100) of dynamic work estimated to be vectorizable.
  uint32_t vector_intensity = 0;

  [[nodiscard]] Annotation encode() const;
  static std::optional<HardwareHintsInfo> decode(
      std::span<const uint8_t> payload);
};

struct LoopTripInfo {
  uint32_t header_block = 0;
  uint32_t trip_multiple = 1;  // trip count is a multiple of this
  uint32_t trip_min = 0;       // trip count is at least this

  [[nodiscard]] Annotation encode() const;
  static std::optional<LoopTripInfo> decode(std::span<const uint8_t> payload);
};

// --- Runtime profile (the feedback channel) ------------------------------

/// Version of the Profile payload format. decode() rejects any other
/// version (old readers on newer modules fail cleanly; the module itself
/// still loads because annotations are advisory).
inline constexpr uint32_t kProfileVersion = 1;

/// Loop trip counts land in power-of-two buckets: bucket i counts
/// completed loop executions with trip count in [2^i, 2^(i+1)), the last
/// bucket is open-ended.
inline constexpr size_t kProfileTripBuckets = 8;

struct BranchProfile {
  uint64_t taken = 0;
  uint64_t not_taken = 0;

  [[nodiscard]] uint64_t total() const { return taken + not_taken; }
  /// True when the minority outcome is at least a quarter of executions:
  /// the branch is data-dependent enough that if-conversion may pay.
  [[nodiscard]] bool is_mixed() const {
    return 4 * std::min(taken, not_taken) >= total() && total() > 0;
  }
  friend bool operator==(const BranchProfile&, const BranchProfile&) = default;
};

using TripHistogram = std::array<uint64_t, kProfileTripBuckets>;

/// Per-function runtime profile: what the tier-0 interpreter observed.
/// Doubles as the typed view of the Profile annotation payload.
struct ProfileInfo {
  uint64_t calls = 0;
  uint64_t scalar_ops = 0;
  // Observed vector widths: executed vector ops by lane interpretation
  // (16 x u8, 8 x u16, 4 x i32/f32). These drive the tier-2 scalarization
  // and register-pressure estimates.
  uint64_t lane16_ops = 0;
  uint64_t lane8_ops = 0;
  uint64_t lane4_ops = 0;
  // Taken / not-taken counts per BranchIf site (keyed by block index: the
  // stack discipline makes every branch a block terminator).
  std::map<uint32_t, BranchProfile> branches;
  // Trip-count histogram per observed loop header block.
  std::map<uint32_t, TripHistogram> loops;

  [[nodiscard]] uint64_t vector_ops() const {
    return lane16_ops + lane8_ops + lane4_ops;
  }
  /// Widest observed lane count (16/8/4), or 0 when no vector op ran.
  [[nodiscard]] uint32_t widest_lanes() const;
  [[nodiscard]] bool empty() const;

  void merge(const ProfileInfo& other);

  /// Stable content hash over the canonical encoding; part of the tier-2
  /// CodeCacheKey so artifacts specialized against different profiles
  /// coexist and evict independently.
  [[nodiscard]] uint64_t hash() const;

  /// Payload layout: version, counters, branch sites, loop histograms
  /// (all varint), then a little-endian CRC-32 over the preceding payload
  /// bytes.
  [[nodiscard]] Annotation encode() const;
  /// Rejects (nullopt) on version skew, CRC mismatch, or truncation.
  static std::optional<ProfileInfo> decode(std::span<const uint8_t> payload);

  friend bool operator==(const ProfileInfo&, const ProfileInfo&) = default;
};

/// Bucket index of `trips` in a TripHistogram (floor(log2), clamped).
[[nodiscard]] size_t trip_bucket(uint64_t trips);
/// Lower bound of histogram bucket `i` (inverse of trip_bucket).
[[nodiscard]] uint64_t trip_bucket_floor(size_t i);

/// Finds the first annotation of `kind` in `annotations`, or nullptr.
/// Accepts any contiguous range of annotations (vector, array, subspan).
const Annotation* find_annotation(std::span<const Annotation> annotations,
                                  AnnotationKind kind);

}  // namespace svc
