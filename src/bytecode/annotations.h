// Split-compilation annotations: the channel through which the offline
// compiler hands distilled semantic facts to the online (JIT) step.
//
// Annotations are *advisory* (paper S3): a consumer that ignores them must
// still produce correct code, and unknown kinds are skipped by loaders.
// Each annotation is a (kind, payload) record attached to a function; the
// payload is a compact varint-encoded blob so the deployment-image
// overhead stays in the low percent range (measured by bench/bytecode_size).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace svc {

enum class AnnotationKind : uint16_t {
  // Marks a loop the offline vectorizer transformed: which block is the
  // vector-loop header, the vectorization factor, and whether a scalar
  // epilogue follows. Lets the JIT skip its own loop analysis.
  VectorizedLoop = 1,
  // Portable register-allocation hints (Diouf et al. [18]): locals sorted
  // by eviction preference (best spill candidate first) plus a use-density
  // weight per local. Target-independent: valid for any register count K.
  SpillPriority = 2,
  // Hardware affinity of the function, used by the heterogeneous mapper:
  // which core features it benefits from and an estimated intensity.
  HardwareHints = 3,
  // Trip-count facts for a loop header: guaranteed multiple and minimum,
  // letting the JIT drop epilogues or prologue guards.
  LoopTripInfo = 4,
};

struct Annotation {
  AnnotationKind kind;
  std::vector<uint8_t> payload;

  friend bool operator==(const Annotation&, const Annotation&) = default;
};

// --- Typed views over the payloads --------------------------------------

struct VectorizedLoopInfo {
  uint32_t header_block = 0;
  uint32_t vector_factor = 0;
  bool has_epilogue = false;

  [[nodiscard]] Annotation encode() const;
  static std::optional<VectorizedLoopInfo> decode(
      std::span<const uint8_t> payload);
};

struct SpillPriorityInfo {
  // Locals in eviction order: the first entry is the local the online
  // allocator should spill first when pressure exceeds K.
  std::vector<uint32_t> eviction_order;
  // Parallel use-density weights (uses per live-range length, scaled by
  // 256); purely informational, kept for diagnostics and benches.
  std::vector<uint32_t> weights;

  [[nodiscard]] Annotation encode() const;
  static std::optional<SpillPriorityInfo> decode(
      std::span<const uint8_t> payload);
};

// Bitmask of core features a function benefits from.
enum HardwareFeature : uint32_t {
  kFeatureSimd = 1u << 0,
  kFeatureFloat = 1u << 1,
  kFeatureDouble = 1u << 2,
  kFeatureControlHeavy = 1u << 3,
  kFeatureMemoryHeavy = 1u << 4,
};

struct HardwareHintsInfo {
  uint32_t features = 0;
  // Fraction (0-100) of dynamic work estimated to be vectorizable.
  uint32_t vector_intensity = 0;

  [[nodiscard]] Annotation encode() const;
  static std::optional<HardwareHintsInfo> decode(
      std::span<const uint8_t> payload);
};

struct LoopTripInfo {
  uint32_t header_block = 0;
  uint32_t trip_multiple = 1;  // trip count is a multiple of this
  uint32_t trip_min = 0;       // trip count is at least this

  [[nodiscard]] Annotation encode() const;
  static std::optional<LoopTripInfo> decode(std::span<const uint8_t> payload);
};

/// Finds the first annotation of `kind` in `annotations`, or nullptr.
/// Accepts any contiguous range of annotations (vector, array, subspan).
const Annotation* find_annotation(std::span<const Annotation> annotations,
                                  AnnotationKind kind);

}  // namespace svc
