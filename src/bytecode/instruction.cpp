#include "bytecode/instruction.h"

// Instruction is a plain value type; this TU anchors it in the library.
