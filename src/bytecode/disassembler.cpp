#include "bytecode/disassembler.h"

#include <sstream>

namespace svc {

std::string disassemble(const Instruction& inst) {
  const OpInfo& info = op_info(inst.op);
  std::ostringstream os;
  os << info.mnemonic;
  switch (info.imm) {
    case ImmKind::NoImm:
      break;
    case ImmKind::I64:
      os << ' ' << inst.imm;
      break;
    case ImmKind::F32:
      os << ' ' << inst.f32_imm();
      break;
    case ImmKind::F64:
      os << ' ' << inst.f64_imm();
      break;
    case ImmKind::LocalIdx:
      os << " $" << inst.a;
      break;
    case ImmKind::FuncIdx:
      os << " @" << inst.a;
      break;
    case ImmKind::MemOff:
      if (inst.imm != 0) os << " +" << inst.imm;
      break;
    case ImmKind::Lane:
      os << " [" << inst.a << ']';
      break;
    case ImmKind::Block:
      os << " ->bb" << inst.a;
      break;
    case ImmKind::Block2:
      os << " ->bb" << inst.a << " else ->bb" << inst.b;
      break;
  }
  return os.str();
}

namespace {

void append_hw_features(std::ostringstream& os, uint32_t features) {
  if (features == 0) {
    os << "none";
    return;
  }
  const char* sep = "";
  const auto flag = [&](uint32_t bit, const char* name) {
    if (features & bit) {
      os << sep << name;
      sep = "|";
    }
  };
  flag(kFeatureSimd, "simd");
  flag(kFeatureFloat, "float");
  flag(kFeatureDouble, "double");
  flag(kFeatureControlHeavy, "control");
  flag(kFeatureMemoryHeavy, "memory");
}

}  // namespace

std::string disassemble(const Annotation& ann) {
  std::ostringstream os;
  switch (ann.kind) {
    case AnnotationKind::VectorizedLoop:
      if (const auto info = VectorizedLoopInfo::decode(ann.payload)) {
        os << "vectorized_loop header=bb" << info->header_block
           << " vf=" << info->vector_factor
           << " epilogue=" << (info->has_epilogue ? "yes" : "no");
        return os.str();
      }
      break;
    case AnnotationKind::SpillPriority:
      if (const auto info = SpillPriorityInfo::decode(ann.payload)) {
        os << "spill_priority order=[";
        for (size_t i = 0; i < info->eviction_order.size(); ++i) {
          os << (i ? " " : "") << '$' << info->eviction_order[i];
        }
        os << "] weights=[";
        for (size_t i = 0; i < info->weights.size(); ++i) {
          os << (i ? " " : "") << info->weights[i];
        }
        os << ']';
        return os.str();
      }
      break;
    case AnnotationKind::HardwareHints:
      if (const auto info = HardwareHintsInfo::decode(ann.payload)) {
        os << "hw_hints features=";
        append_hw_features(os, info->features);
        os << " vector_intensity=" << info->vector_intensity << '%';
        return os.str();
      }
      break;
    case AnnotationKind::LoopTripInfo:
      if (const auto info = LoopTripInfo::decode(ann.payload)) {
        os << "loop_trip header=bb" << info->header_block
           << " multiple=" << info->trip_multiple
           << " min=" << info->trip_min;
        return os.str();
      }
      break;
    case AnnotationKind::Profile:
      if (const auto info = ProfileInfo::decode(ann.payload)) {
        os << "profile v" << kProfileVersion << " calls=" << info->calls
           << " scalar_ops=" << info->scalar_ops << " vec_ops[x16="
           << info->lane16_ops << " x8=" << info->lane8_ops
           << " x4=" << info->lane4_ops << ']';
        for (const auto& [block, counts] : info->branches) {
          os << " branch bb" << block << ": " << counts.taken << '/'
             << counts.not_taken;
        }
        for (const auto& [header, histogram] : info->loops) {
          os << " loop bb" << header << ":";
          for (size_t b = 0; b < histogram.size(); ++b) {
            if (histogram[b] == 0) continue;
            os << " trips>=" << trip_bucket_floor(b) << " x" << histogram[b];
          }
        }
        return os.str();
      }
      break;
  }
  // Unknown kind or undecodable payload: report and move on, exactly the
  // advisory-annotations contract loaders follow.
  os << "annotation kind=" << static_cast<uint32_t>(ann.kind)
     << " bytes=" << ann.payload.size() << " (unknown or skewed, skipped)";
  return os.str();
}

std::string disassemble(const Function& fn) {
  std::ostringstream os;
  os << "fn " << fn.name() << '(';
  for (size_t i = 0; i < fn.sig().params.size(); ++i) {
    if (i) os << ", ";
    os << type_name(fn.sig().params[i]);
  }
  os << ')';
  if (fn.sig().ret != Type::Void) os << " -> " << type_name(fn.sig().ret);
  os << '\n';
  for (size_t i = fn.num_params(); i < fn.num_locals(); ++i) {
    os << "  local $" << i << ": "
       << type_name(fn.local_type(static_cast<uint32_t>(i))) << '\n';
  }
  for (const auto& ann : fn.annotations()) {
    os << "  ;; " << disassemble(ann) << '\n';
  }
  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    os << "bb" << b << ":\n";
    for (const auto& inst : fn.block(b).insts) {
      os << "  " << disassemble(inst) << '\n';
    }
  }
  return os.str();
}

std::string disassemble(const Module& module) {
  std::string out;
  for (const auto& fn : module.functions()) {
    out += disassemble(fn);
    out += '\n';
  }
  return out;
}

}  // namespace svc
