#include "bytecode/disassembler.h"

#include <sstream>

namespace svc {

std::string disassemble(const Instruction& inst) {
  const OpInfo& info = op_info(inst.op);
  std::ostringstream os;
  os << info.mnemonic;
  switch (info.imm) {
    case ImmKind::NoImm:
      break;
    case ImmKind::I64:
      os << ' ' << inst.imm;
      break;
    case ImmKind::F32:
      os << ' ' << inst.f32_imm();
      break;
    case ImmKind::F64:
      os << ' ' << inst.f64_imm();
      break;
    case ImmKind::LocalIdx:
      os << " $" << inst.a;
      break;
    case ImmKind::FuncIdx:
      os << " @" << inst.a;
      break;
    case ImmKind::MemOff:
      if (inst.imm != 0) os << " +" << inst.imm;
      break;
    case ImmKind::Lane:
      os << " [" << inst.a << ']';
      break;
    case ImmKind::Block:
      os << " ->bb" << inst.a;
      break;
    case ImmKind::Block2:
      os << " ->bb" << inst.a << " else ->bb" << inst.b;
      break;
  }
  return os.str();
}

std::string disassemble(const Function& fn) {
  std::ostringstream os;
  os << "fn " << fn.name() << '(';
  for (size_t i = 0; i < fn.sig().params.size(); ++i) {
    if (i) os << ", ";
    os << type_name(fn.sig().params[i]);
  }
  os << ')';
  if (fn.sig().ret != Type::Void) os << " -> " << type_name(fn.sig().ret);
  os << '\n';
  for (size_t i = fn.num_params(); i < fn.num_locals(); ++i) {
    os << "  local $" << i << ": "
       << type_name(fn.local_type(static_cast<uint32_t>(i))) << '\n';
  }
  for (const auto& ann : fn.annotations()) {
    os << "  ;; annotation kind=" << static_cast<uint32_t>(ann.kind)
       << " bytes=" << ann.payload.size() << '\n';
  }
  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    os << "bb" << b << ":\n";
    for (const auto& inst : fn.block(b).insts) {
      os << "  " << disassemble(inst) << '\n';
    }
  }
  return os.str();
}

std::string disassemble(const Module& module) {
  std::string out;
  for (const auto& fn : module.functions()) {
    out += disassemble(fn);
    out += '\n';
  }
  return out;
}

}  // namespace svc
