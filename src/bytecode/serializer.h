// Binary (de)serialization of SVIL modules -- the deployment image format
// (paper S2.1: bytecode as a compact distribution format; bench/bytecode_size
// measures the compactness claim).
//
// Layout: magic "SVIL", format version, module name, memory hint, function
// table, then a CRC-32 trailer over everything before it. All integers are
// LEB128; instruction immediates are encoded per ImmKind, so instructions
// without immediates take exactly one or two bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bytecode/module.h"

namespace svc {

[[nodiscard]] std::vector<uint8_t> serialize_module(const Module& module);

/// Serialized image of one function -- the exact per-function record of
/// the module image (name, signature, locals, blocks, annotations). Used
/// by the persistent code cache to derive restart-stable content hashes:
/// two functions with equal images compile to equal code given equal
/// options, target, and callee signatures.
[[nodiscard]] std::vector<uint8_t> serialize_function(const Function& fn);

struct DeserializeResult {
  std::optional<Module> module;
  std::string error;  // set when module is nullopt
};

[[nodiscard]] DeserializeResult deserialize_module(
    std::span<const uint8_t> bytes);

}  // namespace svc
