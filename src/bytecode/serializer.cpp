#include "bytecode/serializer.h"

#include <array>

#include "support/crc32.h"
#include "support/varint.h"

namespace svc {
namespace {

constexpr std::array<uint8_t, 4> kMagic = {'S', 'V', 'I', 'L'};
constexpr uint32_t kFormatVersion = 1;

void write_string(std::vector<uint8_t>& out, const std::string& s) {
  write_uleb(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::optional<std::string> read_string(ByteReader& r) {
  const auto n = r.read_uleb();
  if (!n || *n > r.remaining()) return std::nullopt;
  const auto bytes = r.read_bytes(static_cast<size_t>(*n));
  if (!bytes) return std::nullopt;
  return std::string(bytes->begin(), bytes->end());
}

void write_instruction(std::vector<uint8_t>& out, const Instruction& inst) {
  write_uleb(out, static_cast<uint64_t>(inst.op));
  switch (op_info(inst.op).imm) {
    case ImmKind::NoImm:
      break;
    case ImmKind::I64:
    case ImmKind::F32:
    case ImmKind::F64:
    case ImmKind::MemOff:
      write_sleb(out, inst.imm);
      break;
    case ImmKind::LocalIdx:
    case ImmKind::FuncIdx:
    case ImmKind::Lane:
    case ImmKind::Block:
      write_uleb(out, inst.a);
      break;
    case ImmKind::Block2:
      write_uleb(out, inst.a);
      write_uleb(out, inst.b);
      break;
  }
}

std::optional<Instruction> read_instruction(ByteReader& r) {
  const auto op_raw = r.read_uleb();
  if (!op_raw || *op_raw >= kNumOpcodes) return std::nullopt;
  Instruction inst;
  inst.op = static_cast<Opcode>(*op_raw);
  switch (op_info(inst.op).imm) {
    case ImmKind::NoImm:
      break;
    case ImmKind::I64:
    case ImmKind::F32:
    case ImmKind::F64:
    case ImmKind::MemOff: {
      const auto v = r.read_sleb();
      if (!v) return std::nullopt;
      inst.imm = *v;
      break;
    }
    case ImmKind::LocalIdx:
    case ImmKind::FuncIdx:
    case ImmKind::Lane:
    case ImmKind::Block: {
      const auto v = r.read_uleb();
      if (!v) return std::nullopt;
      inst.a = static_cast<uint32_t>(*v);
      break;
    }
    case ImmKind::Block2: {
      const auto a = r.read_uleb();
      const auto b = r.read_uleb();
      if (!a || !b) return std::nullopt;
      inst.a = static_cast<uint32_t>(*a);
      inst.b = static_cast<uint32_t>(*b);
      break;
    }
  }
  return inst;
}

void write_function(std::vector<uint8_t>& out, const Function& fn) {
  write_string(out, fn.name());
  write_uleb(out, fn.sig().params.size());
  for (Type t : fn.sig().params) out.push_back(static_cast<uint8_t>(t));
  out.push_back(static_cast<uint8_t>(fn.sig().ret));
  // Non-parameter locals only; parameters are re-derived at load.
  write_uleb(out, fn.num_locals() - fn.num_params());
  for (size_t i = fn.num_params(); i < fn.num_locals(); ++i) {
    out.push_back(
        static_cast<uint8_t>(fn.local_type(static_cast<uint32_t>(i))));
  }
  write_uleb(out, fn.num_blocks());
  for (const auto& block : fn.blocks()) {
    write_uleb(out, block.insts.size());
    for (const auto& inst : block.insts) write_instruction(out, inst);
  }
  write_uleb(out, fn.annotations().size());
  for (const auto& ann : fn.annotations()) {
    write_uleb(out, static_cast<uint64_t>(ann.kind));
    write_uleb(out, ann.payload.size());
    out.insert(out.end(), ann.payload.begin(), ann.payload.end());
  }
}

std::optional<Type> read_type(ByteReader& r) {
  const auto b = r.read_byte();
  if (!b || *b > static_cast<uint8_t>(Type::V128)) return std::nullopt;
  return static_cast<Type>(*b);
}

std::optional<Function> read_function(ByteReader& r) {
  const auto name = read_string(r);
  if (!name) return std::nullopt;
  const auto nparams = r.read_uleb();
  if (!nparams || *nparams > 1u << 16) return std::nullopt;
  FunctionSig sig;
  for (uint64_t i = 0; i < *nparams; ++i) {
    const auto t = read_type(r);
    if (!t || *t == Type::Void) return std::nullopt;
    sig.params.push_back(*t);
  }
  const auto ret = read_type(r);
  if (!ret) return std::nullopt;
  sig.ret = *ret;

  Function fn(*name, sig);
  const auto nlocals = r.read_uleb();
  if (!nlocals || *nlocals > 1u << 20) return std::nullopt;
  for (uint64_t i = 0; i < *nlocals; ++i) {
    const auto t = read_type(r);
    if (!t || *t == Type::Void) return std::nullopt;
    fn.add_local(*t);
  }

  const auto nblocks = r.read_uleb();
  if (!nblocks || *nblocks > 1u << 20) return std::nullopt;
  // Function starts with zero blocks when deserializing.
  for (uint64_t b = 0; b < *nblocks; ++b) {
    const uint32_t block = fn.add_block();
    const auto ninsts = r.read_uleb();
    if (!ninsts || *ninsts > 1u << 24) return std::nullopt;
    for (uint64_t i = 0; i < *ninsts; ++i) {
      const auto inst = read_instruction(r);
      if (!inst) return std::nullopt;
      fn.append(block, *inst);
    }
  }

  const auto nann = r.read_uleb();
  if (!nann || *nann > 1u << 16) return std::nullopt;
  for (uint64_t i = 0; i < *nann; ++i) {
    const auto kind = r.read_uleb();
    const auto len = r.read_uleb();
    if (!kind || !len || *len > r.remaining()) return std::nullopt;
    const auto payload = r.read_bytes(static_cast<size_t>(*len));
    if (!payload) return std::nullopt;
    Annotation ann;
    ann.kind = static_cast<AnnotationKind>(*kind);
    ann.payload.assign(payload->begin(), payload->end());
    fn.annotations().push_back(std::move(ann));
  }
  return fn;
}

}  // namespace

std::vector<uint8_t> serialize_function(const Function& fn) {
  std::vector<uint8_t> out;
  write_function(out, fn);
  return out;
}

std::vector<uint8_t> serialize_module(const Module& module) {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  write_uleb(out, kFormatVersion);
  write_string(out, module.name());
  write_uleb(out, module.memory_hint());
  write_uleb(out, module.num_functions());
  for (const auto& fn : module.functions()) write_function(out, fn);
  const uint32_t crc = crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  return out;
}

DeserializeResult deserialize_module(std::span<const uint8_t> bytes) {
  if (bytes.size() < kMagic.size() + 4) {
    return {std::nullopt, "image too small"};
  }
  // CRC covers everything except the 4-byte trailer.
  const auto body = bytes.first(bytes.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(bytes[bytes.size() - 4 + i]) << (8 * i);
  }
  if (crc32(body) != stored) {
    return {std::nullopt, "checksum mismatch (corrupt image)"};
  }

  ByteReader r(body);
  const auto magic = r.read_bytes(kMagic.size());
  if (!magic || !std::equal(magic->begin(), magic->end(), kMagic.begin())) {
    return {std::nullopt, "bad magic"};
  }
  const auto version = r.read_uleb();
  if (!version) return {std::nullopt, "truncated header"};
  if (*version != kFormatVersion) {
    return {std::nullopt, "unsupported format version"};
  }
  const auto name = read_string(r);
  if (!name) return {std::nullopt, "truncated module name"};
  const auto mem = r.read_uleb();
  if (!mem) return {std::nullopt, "truncated memory hint"};
  const auto nfuncs = r.read_uleb();
  if (!nfuncs || *nfuncs > 1u << 16) {
    return {std::nullopt, "bad function count"};
  }

  Module module;
  module.set_name(*name);
  module.set_memory_hint(*mem);
  for (uint64_t i = 0; i < *nfuncs; ++i) {
    auto fn = read_function(r);
    if (!fn) {
      return {std::nullopt,
              "malformed function #" + std::to_string(i)};
    }
    module.add_function(std::move(*fn));
  }
  if (!r.at_end()) return {std::nullopt, "trailing bytes after module"};
  return {std::move(module), {}};
}

}  // namespace svc
