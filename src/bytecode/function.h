// SVIL functions and basic blocks.
//
// Design restriction (documented in DESIGN.md S5.1): the evaluation stack
// is empty at every basic-block boundary. Values that live across blocks
// are held in locals. This keeps the verifier a per-block type-checker
// and makes the JIT's stack-to-register translation a single forward walk.
// The offline lowering always produces code in this form.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/annotations.h"
#include "bytecode/instruction.h"
#include "bytecode/type.h"

namespace svc {

struct BasicBlock {
  std::vector<Instruction> insts;

  [[nodiscard]] bool empty() const { return insts.empty(); }
  [[nodiscard]] const Instruction& terminator() const { return insts.back(); }
};

struct FunctionSig {
  std::vector<Type> params;
  Type ret = Type::Void;

  friend bool operator==(const FunctionSig&, const FunctionSig&) = default;
};

class Function {
 public:
  Function() = default;
  Function(std::string name, FunctionSig sig)
      : name_(std::move(name)), sig_(std::move(sig)) {
    locals_ = sig_.params;  // locals [0, params) alias the parameters
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const FunctionSig& sig() const { return sig_; }
  [[nodiscard]] size_t num_params() const { return sig_.params.size(); }

  /// Adds a non-parameter local; returns its index.
  uint32_t add_local(Type t) {
    locals_.push_back(t);
    return static_cast<uint32_t>(locals_.size() - 1);
  }
  [[nodiscard]] const std::vector<Type>& locals() const { return locals_; }
  [[nodiscard]] Type local_type(uint32_t idx) const { return locals_[idx]; }
  [[nodiscard]] size_t num_locals() const { return locals_.size(); }

  /// Appends an empty block; returns its index. Block 0 is the entry.
  uint32_t add_block() {
    blocks_.emplace_back();
    return static_cast<uint32_t>(blocks_.size() - 1);
  }
  [[nodiscard]] std::vector<BasicBlock>& blocks() { return blocks_; }
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] BasicBlock& block(uint32_t idx) { return blocks_[idx]; }
  [[nodiscard]] const BasicBlock& block(uint32_t idx) const {
    return blocks_[idx];
  }
  [[nodiscard]] size_t num_blocks() const { return blocks_.size(); }

  void append(uint32_t block, Instruction inst) {
    blocks_[block].insts.push_back(inst);
  }

  [[nodiscard]] std::vector<Annotation>& annotations() { return annotations_; }
  [[nodiscard]] const std::vector<Annotation>& annotations() const {
    return annotations_;
  }

  /// Total instruction count across all blocks.
  [[nodiscard]] size_t size() const;

 private:
  std::string name_;
  FunctionSig sig_;
  std::vector<Type> locals_;
  std::vector<BasicBlock> blocks_;
  std::vector<Annotation> annotations_;
};

}  // namespace svc
