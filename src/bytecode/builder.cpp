#include "bytecode/builder.h"

// Header-only fluent builder; TU anchors the component in the library.
