// SVIL value types. The virtual ISA is typed (like CLI): every stack slot,
// local and instruction operand has one of these types. V128 is the
// portable vector type backing the split-vectorization builtins; its lane
// interpretation (16xU8, 8xU16, 4xI32, 4xF32) is chosen per opcode, not
// carried by the value, exactly like SSE/AltiVec registers.
#pragma once

#include <cstdint>
#include <string_view>

namespace svc {

enum class Type : uint8_t {
  Void = 0,
  I32,
  I64,
  F32,
  F64,
  V128,
};

[[nodiscard]] std::string_view type_name(Type t);

/// Size in bytes of a value of type `t` in linear memory (Void -> 0).
[[nodiscard]] uint32_t type_size(Type t);

/// Single-character code used in opcode stack signatures ('i','l','f','d','v').
[[nodiscard]] char type_code(Type t);

/// Inverse of type_code; returns Type::Void for unknown codes.
[[nodiscard]] Type type_from_code(char c);

/// Lane interpretations of V128 used by vector opcodes.
enum class LaneKind : uint8_t {
  None = 0,
  U8x16,
  U16x8,
  I32x4,
  F32x4,
};

[[nodiscard]] std::string_view lane_kind_name(LaneKind k);
[[nodiscard]] uint32_t lane_count(LaneKind k);
[[nodiscard]] uint32_t lane_bytes(LaneKind k);
/// Scalar SVIL type used when one lane is extracted / scalarized.
[[nodiscard]] Type lane_scalar_type(LaneKind k);

}  // namespace svc
