// An SVIL module: the unit of deployment. Holds functions plus a linear-
// memory size hint. This is what the offline compiler produces, what gets
// serialized for distribution, and what every JIT and the interpreter load.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bytecode/function.h"

namespace svc {

class Module {
 public:
  /// Appends a function; returns its index.
  uint32_t add_function(Function fn) {
    functions_.push_back(std::move(fn));
    return static_cast<uint32_t>(functions_.size() - 1);
  }

  [[nodiscard]] const std::vector<Function>& functions() const {
    return functions_;
  }
  [[nodiscard]] std::vector<Function>& functions() { return functions_; }
  [[nodiscard]] size_t num_functions() const { return functions_.size(); }
  [[nodiscard]] const Function& function(uint32_t idx) const {
    return functions_[idx];
  }
  [[nodiscard]] Function& function(uint32_t idx) { return functions_[idx]; }

  [[nodiscard]] std::optional<uint32_t> find_function(
      std::string_view name) const;

  /// Minimum linear-memory size (bytes) the module expects at run time.
  void set_memory_hint(uint64_t bytes) { memory_hint_ = bytes; }
  [[nodiscard]] uint64_t memory_hint() const { return memory_hint_; }

  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<Function> functions_;
  uint64_t memory_hint_ = 1 << 20;
};

}  // namespace svc
