// An SVIL module: the unit of deployment. Holds functions plus a linear-
// memory size hint. This is what the offline compiler produces, what gets
// serialized for distribution, and what every JIT and the interpreter load.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bytecode/function.h"

namespace svc {

/// Mints the next process-unique module id (monotonic, starts at 1, never
/// reused; asserts on wrap in debug builds). 0 is reserved for
/// moved-from modules.
[[nodiscard]] uint64_t next_module_id();

class Module {
 public:
  /// Every module carries a process-unique identity from birth: the
  /// CodeCache keys artifacts by it (not by address), so a module freed
  /// and another allocated at the same address can never alias a stale
  /// artifact. Copies are distinct modules (the copy may be mutated
  /// independently) and mint a fresh id; moves transfer the id and leave
  /// the source at id 0, which the loaders assert against.
  Module() = default;
  Module(const Module& other)
      : name_(other.name_),
        functions_(other.functions_),
        memory_hint_(other.memory_hint_) {}
  Module& operator=(const Module& other) {
    if (this != &other) {
      name_ = other.name_;
      functions_ = other.functions_;
      memory_hint_ = other.memory_hint_;
      id_ = next_module_id();
    }
    return *this;
  }
  Module(Module&& other) noexcept
      : name_(std::move(other.name_)),
        functions_(std::move(other.functions_)),
        memory_hint_(other.memory_hint_),
        id_(other.id_) {
    other.id_ = 0;
  }
  Module& operator=(Module&& other) noexcept {
    if (this != &other) {
      name_ = std::move(other.name_);
      functions_ = std::move(other.functions_);
      memory_hint_ = other.memory_hint_;
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }

  /// Stable identity for caches and registries. Monotonic across the
  /// process; 0 only for moved-from husks.
  [[nodiscard]] uint64_t id() const { return id_; }

  /// Appends a function; returns its index.
  uint32_t add_function(Function fn) {
    functions_.push_back(std::move(fn));
    return static_cast<uint32_t>(functions_.size() - 1);
  }

  [[nodiscard]] const std::vector<Function>& functions() const {
    return functions_;
  }
  [[nodiscard]] std::vector<Function>& functions() { return functions_; }
  [[nodiscard]] size_t num_functions() const { return functions_.size(); }
  [[nodiscard]] const Function& function(uint32_t idx) const {
    return functions_[idx];
  }
  [[nodiscard]] Function& function(uint32_t idx) { return functions_[idx]; }

  [[nodiscard]] std::optional<uint32_t> find_function(
      std::string_view name) const;

  /// Minimum linear-memory size (bytes) the module expects at run time.
  void set_memory_hint(uint64_t bytes) { memory_hint_ = bytes; }
  [[nodiscard]] uint64_t memory_hint() const { return memory_hint_; }

  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<Function> functions_;
  uint64_t memory_hint_ = 1 << 20;
  uint64_t id_ = next_module_id();
};

/// Non-owning std::shared_ptr view of a caller-managed module: the bridge
/// from the legacy raw-reference lifetime contract ("module must outlive
/// the target") to the shared-ownership loaders. The caller remains
/// responsible for keeping `module` alive; prefer real shared ownership
/// (api/svc.h ModuleHandle) in new code.
[[nodiscard]] inline std::shared_ptr<const Module> borrow_module(
    const Module& module) {
  return {std::shared_ptr<const Module>(), &module};
}

}  // namespace svc
