#include "bytecode/opcode.h"

#include <array>

#include "support/diagnostics.h"

namespace svc {
namespace {

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
#define SVC_OP(Name, mnemonic, pops, pushes, imm, category, lanes, membytes) \
  OpInfo{mnemonic,       pops,                                               \
         pushes,         ImmKind::imm,                                       \
         OpCategory::category, LaneKind::lanes,                              \
         membytes},
#include "bytecode/opcodes.def"
#undef SVC_OP
}};

}  // namespace

const OpInfo& op_info(Opcode op) {
  const auto idx = static_cast<size_t>(op);
  if (idx >= kNumOpcodes) fatal("op_info: opcode out of range");
  return kOpTable[idx];
}

std::string_view op_mnemonic(Opcode op) { return op_info(op).mnemonic; }

bool is_terminator(Opcode op) {
  switch (op) {
    case Opcode::Jump:
    case Opcode::BranchIf:
    case Opcode::Ret:
    case Opcode::Trap:
      return true;
    default:
      return false;
  }
}

bool is_vector_op(Opcode op) {
  switch (op_info(op).category) {
    case OpCategory::VectorConst:
    case OpCategory::VectorArith:
    case OpCategory::VectorReduce:
    case OpCategory::VectorLane:
      return true;
    case OpCategory::Load:
    case OpCategory::Store:
      return op_info(op).mem_bytes == 16;
    default:
      return false;
  }
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view m) {
  for (size_t i = 0; i < kNumOpcodes; ++i) {
    if (kOpTable[i].mnemonic == m) return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

}  // namespace svc
