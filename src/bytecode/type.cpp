#include "bytecode/type.h"

#include "support/diagnostics.h"

namespace svc {

std::string_view type_name(Type t) {
  switch (t) {
    case Type::Void: return "void";
    case Type::I32: return "i32";
    case Type::I64: return "i64";
    case Type::F32: return "f32";
    case Type::F64: return "f64";
    case Type::V128: return "v128";
  }
  return "?";
}

uint32_t type_size(Type t) {
  switch (t) {
    case Type::Void: return 0;
    case Type::I32: return 4;
    case Type::I64: return 8;
    case Type::F32: return 4;
    case Type::F64: return 8;
    case Type::V128: return 16;
  }
  return 0;
}

char type_code(Type t) {
  switch (t) {
    case Type::Void: return ' ';
    case Type::I32: return 'i';
    case Type::I64: return 'l';
    case Type::F32: return 'f';
    case Type::F64: return 'd';
    case Type::V128: return 'v';
  }
  return '?';
}

Type type_from_code(char c) {
  switch (c) {
    case 'i': return Type::I32;
    case 'l': return Type::I64;
    case 'f': return Type::F32;
    case 'd': return Type::F64;
    case 'v': return Type::V128;
    default: return Type::Void;
  }
}

std::string_view lane_kind_name(LaneKind k) {
  switch (k) {
    case LaneKind::None: return "none";
    case LaneKind::U8x16: return "u8x16";
    case LaneKind::U16x8: return "u16x8";
    case LaneKind::I32x4: return "i32x4";
    case LaneKind::F32x4: return "f32x4";
  }
  return "?";
}

uint32_t lane_count(LaneKind k) {
  switch (k) {
    case LaneKind::None: return 0;
    case LaneKind::U8x16: return 16;
    case LaneKind::U16x8: return 8;
    case LaneKind::I32x4: return 4;
    case LaneKind::F32x4: return 4;
  }
  return 0;
}

uint32_t lane_bytes(LaneKind k) {
  switch (k) {
    case LaneKind::None: return 0;
    case LaneKind::U8x16: return 1;
    case LaneKind::U16x8: return 2;
    case LaneKind::I32x4: return 4;
    case LaneKind::F32x4: return 4;
  }
  return 0;
}

Type lane_scalar_type(LaneKind k) {
  switch (k) {
    case LaneKind::None: return Type::Void;
    case LaneKind::U8x16:
    case LaneKind::U16x8:
    case LaneKind::I32x4:
      return Type::I32;
    case LaneKind::F32x4:
      return Type::F32;
  }
  return Type::Void;
}

}  // namespace svc
