// Fluent construction of SVIL functions. Used by the offline lowering,
// the tests and the synthetic workload generators. The builder tracks the
// current block and provides typed emit helpers so call sites read like
// assembly listings.
#pragma once

#include "bytecode/function.h"
#include "bytecode/module.h"

namespace svc {

class FunctionBuilder {
 public:
  FunctionBuilder(std::string name, FunctionSig sig)
      : fn_(std::move(name), std::move(sig)) {
    current_ = fn_.add_block();
  }

  [[nodiscard]] Function take() { return std::move(fn_); }
  [[nodiscard]] Function& fn() { return fn_; }

  uint32_t add_local(Type t) { return fn_.add_local(t); }

  /// Creates a new (empty) block without switching to it.
  uint32_t new_block() { return fn_.add_block(); }
  /// Makes `block` the emission target.
  void switch_to(uint32_t block) { current_ = block; }
  [[nodiscard]] uint32_t current_block() const { return current_; }

  FunctionBuilder& emit(Instruction inst) {
    fn_.append(current_, inst);
    return *this;
  }
  FunctionBuilder& op(Opcode o) { return emit(Instruction::make(o)); }

  // Constants.
  FunctionBuilder& const_i32(int32_t v) {
    return emit(Instruction::with_imm(Opcode::ConstI32, v));
  }
  FunctionBuilder& const_i64(int64_t v) {
    return emit(Instruction::with_imm(Opcode::ConstI64, v));
  }
  FunctionBuilder& const_f32(float v) {
    return emit(Instruction::with_f32(Opcode::ConstF32, v));
  }
  FunctionBuilder& const_f64(double v) {
    return emit(Instruction::with_f64(Opcode::ConstF64, v));
  }

  // Locals.
  FunctionBuilder& get(uint32_t local) {
    return emit(Instruction::with_a(Opcode::LocalGet, local));
  }
  FunctionBuilder& set(uint32_t local) {
    return emit(Instruction::with_a(Opcode::LocalSet, local));
  }

  // Memory (offset defaults to 0).
  FunctionBuilder& load(Opcode o, int64_t offset = 0) {
    return emit(Instruction::with_imm(o, offset));
  }
  FunctionBuilder& store(Opcode o, int64_t offset = 0) {
    return emit(Instruction::with_imm(o, offset));
  }

  // Vector lane ops.
  FunctionBuilder& lane_op(Opcode o, uint32_t lane) {
    return emit(Instruction::with_a(o, lane));
  }

  // Control.
  FunctionBuilder& jump(uint32_t target) {
    return emit(Instruction::with_a(Opcode::Jump, target));
  }
  FunctionBuilder& br_if(uint32_t taken, uint32_t fallthrough) {
    return emit({Opcode::BranchIf, taken, fallthrough, 0});
  }
  FunctionBuilder& ret() { return op(Opcode::Ret); }
  FunctionBuilder& call(uint32_t func_idx) {
    return emit(Instruction::with_a(Opcode::Call, func_idx));
  }

  FunctionBuilder& annotate(Annotation a) {
    fn_.annotations().push_back(std::move(a));
    return *this;
  }

 private:
  Function fn_;
  uint32_t current_ = 0;
};

}  // namespace svc
