// Linear memory: the VM's flat byte-addressable address space. Pointers in
// SVIL are i32 byte offsets into this memory. The same memory object is
// shared by the interpreter and the target simulators so results are
// directly comparable, and by "DMA" transfers in the SoC model.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "vm/value.h"

namespace svc {

class Memory {
 public:
  explicit Memory(size_t size_bytes) : data_(size_bytes, 0) {}

  [[nodiscard]] size_t size() const { return data_.size(); }

  /// True when [addr, addr+len) is fully inside memory.
  [[nodiscard]] bool in_bounds(uint64_t addr, uint64_t len) const {
    return addr + len <= data_.size() && addr + len >= addr;
  }

  // Unchecked fast-path accessors; callers bounds-check first.
  [[nodiscard]] uint8_t load_u8(uint32_t addr) const { return data_[addr]; }
  [[nodiscard]] uint16_t load_u16(uint32_t addr) const {
    uint16_t v;
    std::memcpy(&v, &data_[addr], 2);
    return v;
  }
  [[nodiscard]] uint32_t load_u32(uint32_t addr) const {
    uint32_t v;
    std::memcpy(&v, &data_[addr], 4);
    return v;
  }
  [[nodiscard]] uint64_t load_u64(uint32_t addr) const {
    uint64_t v;
    std::memcpy(&v, &data_[addr], 8);
    return v;
  }
  [[nodiscard]] V128 load_v128(uint32_t addr) const {
    V128 v;
    std::memcpy(v.bytes.data(), &data_[addr], 16);
    return v;
  }

  void store_u8(uint32_t addr, uint8_t v) { data_[addr] = v; }
  void store_u16(uint32_t addr, uint16_t v) { std::memcpy(&data_[addr], &v, 2); }
  void store_u32(uint32_t addr, uint32_t v) { std::memcpy(&data_[addr], &v, 4); }
  void store_u64(uint32_t addr, uint64_t v) { std::memcpy(&data_[addr], &v, 8); }
  void store_v128(uint32_t addr, const V128& v) {
    std::memcpy(&data_[addr], v.bytes.data(), 16);
  }

  // Host-side typed helpers for setting up workloads.
  void write_f32(uint32_t addr, float v) {
    store_u32(addr, std::bit_cast<uint32_t>(v));
  }
  [[nodiscard]] float read_f32(uint32_t addr) const {
    return std::bit_cast<float>(load_u32(addr));
  }
  void write_i32(uint32_t addr, int32_t v) {
    store_u32(addr, static_cast<uint32_t>(v));
  }
  [[nodiscard]] int32_t read_i32(uint32_t addr) const {
    return static_cast<int32_t>(load_u32(addr));
  }

  [[nodiscard]] std::span<uint8_t> bytes() { return data_; }
  [[nodiscard]] std::span<const uint8_t> bytes() const { return data_; }

  /// Copies a region from another memory (models DMA between cores).
  void copy_from(const Memory& src, uint32_t src_addr, uint32_t dst_addr,
                 uint32_t len) {
    std::memcpy(&data_[dst_addr], &src.data_[src_addr], len);
  }

 private:
  std::vector<uint8_t> data_;
};

/// Simple bump allocator over a Memory, for workload setup in examples,
/// tests and benches. Alignment is always 16 so V128 accesses are aligned.
class BumpAllocator {
 public:
  explicit BumpAllocator(Memory& mem, uint32_t base = 64)
      : mem_(mem), top_(base) {}

  /// Allocates `bytes`, 16-byte aligned; returns the address.
  uint32_t alloc(uint32_t bytes);

  [[nodiscard]] uint32_t used() const { return top_; }

 private:
  Memory& mem_;
  uint32_t top_;
};

}  // namespace svc
