#include "vm/profile.h"

#include <algorithm>

namespace svc {

bool ProfileData::empty() const {
  return std::all_of(fns_.begin(), fns_.end(),
                     [](const ProfileInfo& f) { return f.empty(); });
}

void ProfileData::merge(const ProfileData& other) {
  if (other.fns_.size() > fns_.size()) fns_.resize(other.fns_.size());
  for (size_t i = 0; i < other.fns_.size(); ++i) {
    fns_[i].merge(other.fns_[i]);
  }
}

void ProfileData::record_op(uint32_t fn, Opcode op) {
  ProfileInfo& info = fns_[fn];
  switch (op_info(op).lanes) {
    case LaneKind::None: ++info.scalar_ops; break;
    case LaneKind::U8x16: ++info.lane16_ops; break;
    case LaneKind::U16x8: ++info.lane8_ops; break;
    case LaneKind::I32x4:
    case LaneKind::F32x4: ++info.lane4_ops; break;
  }
}

ProfileData merge_profiles(std::span<const ProfileData* const> parts) {
  ProfileData merged;
  for (const ProfileData* part : parts) {
    if (part) merged.merge(*part);
  }
  return merged;
}

Module attach_profile(const Module& module, const ProfileData& profile) {
  Module out = module;
  for (uint32_t i = 0; i < out.num_functions(); ++i) {
    auto& annotations = out.function(i).annotations();
    std::erase_if(annotations, [](const Annotation& a) {
      return a.kind == AnnotationKind::Profile;
    });
    if (i < profile.num_functions() && !profile.function(i).empty()) {
      annotations.push_back(profile.function(i).encode());
    }
  }
  return out;
}

ProfileData extract_profile(const Module& module) {
  ProfileData profile(module.num_functions());
  for (uint32_t i = 0; i < module.num_functions(); ++i) {
    const Annotation* ann = find_annotation(module.function(i).annotations(),
                                            AnnotationKind::Profile);
    if (!ann) continue;
    if (auto info = ProfileInfo::decode(ann->payload)) {
      profile.function(i) = std::move(*info);
    }
  }
  return profile;
}

bool has_profile(const Module& module) {
  for (const Function& fn : module.functions()) {
    const Annotation* ann =
        find_annotation(fn.annotations(), AnnotationKind::Profile);
    if (!ann) continue;
    const auto info = ProfileInfo::decode(ann->payload);
    if (info && !info->empty()) return true;
  }
  return false;
}

}  // namespace svc
