#include "vm/value.h"

#include <cmath>
#include <sstream>

namespace svc {

namespace detail {

float fmin32(float a, float b) { return std::fmin(a, b); }
float fmax32(float a, float b) { return std::fmax(a, b); }
double fmin64(double a, double b) { return std::fmin(a, b); }
double fmax64(double a, double b) { return std::fmax(a, b); }

}  // namespace detail

Value Value::zero_of(Type t) {
  Value v;
  v.type = t;
  v.i64 = 0;
  v.v128 = V128{};
  return v;
}

std::string Value::str() const {
  std::ostringstream os;
  switch (type) {
    case Type::Void: os << "void"; break;
    case Type::I32: os << i32 << ":i32"; break;
    case Type::I64: os << i64 << ":i64"; break;
    case Type::F32: os << f32 << ":f32"; break;
    case Type::F64: os << f64 << ":f64"; break;
    case Type::V128: {
      os << "v128[";
      for (size_t i = 0; i < 16; ++i) {
        if (i) os << ' ';
        os << static_cast<int>(v128.u8(i));
      }
      os << ']';
      break;
    }
  }
  return os.str();
}

bool operator==(const Value& a, const Value& b) {
  // Bit equality on purpose: differential tests must distinguish NaN
  // payloads and signed zeros identically across interpreter and JIT.
  // Scalars compare as one masked 8-byte word (a width mask rather than a
  // per-type switch: this runs per element in differential test loops);
  // memcpy keeps the union read well-defined under UBSan.
  if (a.type != b.type) return false;
  if (a.type == Type::V128) return a.v128 == b.v128;
  uint64_t pa;
  uint64_t pb;
  std::memcpy(&pa, &a.i64, sizeof pa);
  std::memcpy(&pb, &b.i64, sizeof pb);
  const bool wide = a.type == Type::I64 || a.type == Type::F64;
  const uint64_t mask = a.type == Type::Void ? 0
                        : wide               ? ~uint64_t{0}
                                             : uint64_t{0xffffffff};
  return (pa & mask) == (pb & mask);
}

}  // namespace svc
