#include "vm/value.h"

#include <sstream>

namespace svc {

Value Value::zero_of(Type t) {
  Value v;
  v.type = t;
  v.i64 = 0;
  v.v128 = V128{};
  return v;
}

std::string Value::str() const {
  std::ostringstream os;
  switch (type) {
    case Type::Void: os << "void"; break;
    case Type::I32: os << i32 << ":i32"; break;
    case Type::I64: os << i64 << ":i64"; break;
    case Type::F32: os << f32 << ":f32"; break;
    case Type::F64: os << f64 << ":f64"; break;
    case Type::V128: {
      os << "v128[";
      for (size_t i = 0; i < 16; ++i) {
        if (i) os << ' ';
        os << static_cast<int>(v128.u8(i));
      }
      os << ']';
      break;
    }
  }
  return os.str();
}

bool operator==(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::Void: return true;
    case Type::I32: return a.i32 == b.i32;
    case Type::I64: return a.i64 == b.i64;
    // Bit equality on purpose: differential tests must distinguish NaN
    // payloads and signed zeros identically across interpreter and JIT.
    case Type::F32:
      return std::bit_cast<uint32_t>(a.f32) == std::bit_cast<uint32_t>(b.f32);
    case Type::F64:
      return std::bit_cast<uint64_t>(a.f64) == std::bit_cast<uint64_t>(b.f64);
    case Type::V128: return a.v128 == b.v128;
  }
  return false;
}

}  // namespace svc
