// Runtime values for the interpreter and the host API. A Value is a typed
// 128-bit-wide scalar-or-vector; V128 carries raw bytes whose lane
// interpretation is chosen by each opcode (as on real SIMD register files).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "bytecode/type.h"

namespace svc {

struct V128 {
  alignas(16) std::array<uint8_t, 16> bytes{};

  [[nodiscard]] uint8_t u8(size_t lane) const { return bytes[lane]; }
  void set_u8(size_t lane, uint8_t v) { bytes[lane] = v; }

  [[nodiscard]] uint16_t u16(size_t lane) const {
    uint16_t v;
    std::memcpy(&v, bytes.data() + lane * 2, 2);
    return v;
  }
  void set_u16(size_t lane, uint16_t v) {
    std::memcpy(bytes.data() + lane * 2, &v, 2);
  }

  [[nodiscard]] uint32_t u32(size_t lane) const {
    uint32_t v;
    std::memcpy(&v, bytes.data() + lane * 4, 4);
    return v;
  }
  void set_u32(size_t lane, uint32_t v) {
    std::memcpy(bytes.data() + lane * 4, &v, 4);
  }

  [[nodiscard]] float f32(size_t lane) const {
    return std::bit_cast<float>(u32(lane));
  }
  void set_f32(size_t lane, float v) {
    set_u32(lane, std::bit_cast<uint32_t>(v));
  }

  static V128 splat_u8(uint8_t v) {
    V128 r;
    r.bytes.fill(v);
    return r;
  }
  static V128 splat_u16(uint16_t v) {
    V128 r;
    for (size_t i = 0; i < 8; ++i) r.set_u16(i, v);
    return r;
  }
  static V128 splat_u32(uint32_t v) {
    V128 r;
    for (size_t i = 0; i < 4; ++i) r.set_u32(i, v);
    return r;
  }
  static V128 splat_f32(float v) {
    return splat_u32(std::bit_cast<uint32_t>(v));
  }

  friend bool operator==(const V128&, const V128&) = default;
};

struct Value {
  Type type = Type::Void;
  union {
    int32_t i32;
    int64_t i64;
    float f32;
    double f64;
  };
  V128 v128;  // valid when type == V128

  Value() : i64(0) {}

  static Value make_i32(int32_t v) {
    Value r;
    r.type = Type::I32;
    r.i32 = v;
    return r;
  }
  static Value make_i64(int64_t v) {
    Value r;
    r.type = Type::I64;
    r.i64 = v;
    return r;
  }
  static Value make_f32(float v) {
    Value r;
    r.type = Type::F32;
    r.f32 = v;
    return r;
  }
  static Value make_f64(double v) {
    Value r;
    r.type = Type::F64;
    r.f64 = v;
    return r;
  }
  static Value make_v128(V128 v) {
    Value r;
    r.type = Type::V128;
    r.v128 = v;
    return r;
  }
  /// Zero value of a given type (used for local initialization).
  static Value zero_of(Type t);

  // Cold by contract: str() exists for error reports and test logs,
  // never for the execution path.
  [[nodiscard, gnu::cold]] std::string str() const;

  friend bool operator==(const Value& a, const Value& b);
};

namespace detail {

// Float min/max shared by every tier-0 engine. std::fmin/fmax leave the
// sign of a (+0, -0) result implementation-defined, so two engines
// compiled in different translation units can legally disagree bit-wise;
// routing both through these single out-of-line symbols pins the choice
// once for the whole process (noinline so no TU re-specializes them).
[[nodiscard, gnu::noinline]] float fmin32(float a, float b);
[[nodiscard, gnu::noinline]] float fmax32(float a, float b);
[[nodiscard, gnu::noinline]] double fmin64(double a, double b);
[[nodiscard, gnu::noinline]] double fmax64(double a, double b);

}  // namespace detail

}  // namespace svc
