// Reference interpreter for SVIL. Defines the semantics of the virtual
// ISA; every JIT target is differential-tested against it. Deliberately
// simple and defensive: all memory accesses are bounds-checked, division
// by zero and call-stack overflow trap, and a step budget guards against
// runaway loops in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bytecode/module.h"
#include "vm/memory.h"
#include "vm/profile.h"
#include "vm/value.h"

namespace svc {

enum class TrapKind : uint8_t {
  None = 0,
  OutOfBoundsMemory,
  DivideByZero,
  IntegerOverflow,
  CallStackOverflow,
  StepBudgetExceeded,
  ExplicitTrap,
};

struct ExecResult {
  std::optional<Value> value;  // set on normal return (Void -> Value{})
  TrapKind trap = TrapKind::None;
  uint64_t steps = 0;  // dynamic instruction count

  [[nodiscard]] bool ok() const { return trap == TrapKind::None; }
  [[nodiscard]] std::string trap_message() const;
};

class Interpreter {
 public:
  Interpreter(const Module& module, Memory& memory)
      : module_(module), memory_(memory) {}

  /// Maximum dynamic instructions before trapping (default 1<<30).
  void set_step_budget(uint64_t steps) { step_budget_ = steps; }
  void set_max_call_depth(uint32_t depth) { max_call_depth_ = depth; }

  /// Attaches a profile collector (sized for this module's functions; may
  /// be nullptr to disable). Not owned; must outlive every run(). With no
  /// collector attached the execution loop pays only a null check per
  /// recorded event -- profiling off is effectively free.
  void set_profile(ProfileData* profile) { profile_ = profile; }

  /// Runs function `func_idx` with `args` (must match the signature).
  [[nodiscard]] ExecResult run(uint32_t func_idx,
                               const std::vector<Value>& args);
  /// Convenience: look up by name first.
  [[nodiscard]] ExecResult run(std::string_view name,
                               const std::vector<Value>& args);

 private:
  friend class FrameExecutor;
  const Module& module_;
  Memory& memory_;
  uint64_t step_budget_ = uint64_t{1} << 30;
  uint64_t steps_used_ = 0;
  uint32_t max_call_depth_ = 256;
  uint32_t call_depth_ = 0;
  ProfileData* profile_ = nullptr;
};

}  // namespace svc
