// Tier-0 execution for SVIL, with two dispatch engines over the same
// semantics:
//
//   * Switch: the reference interpreter -- a single switch over Opcode
//     walking the original Function/BasicBlock structures. Deliberately
//     simple and defensive; every JIT target and the threaded engine are
//     differential-tested against it, and it is the portable fallback
//     when SVC_THREADED_DISPATCH is configured OFF.
//   * Threaded: the production tier-0 engine -- a computed-goto dispatch
//     loop (GCC/Clang &&label tables) over pre-decoded code streams
//     (vm/predecode.h) with superinstruction fusion. Typically several
//     times faster; bit-identical results, traps, step counts and
//     profiles by construction (tests/dispatch_test.cpp).
//
// Both engines bounds-check all memory accesses, trap on division by
// zero and call-stack overflow, and honor a step budget that guards
// against runaway loops in tests. See docs/INTERPRETER.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bytecode/module.h"
#include "vm/memory.h"
#include "vm/predecode.h"
#include "vm/profile.h"
#include "vm/value.h"

namespace svc {

enum class TrapKind : uint8_t {
  None = 0,
  OutOfBoundsMemory,
  DivideByZero,
  IntegerOverflow,
  CallStackOverflow,
  StepBudgetExceeded,
  ExplicitTrap,
};

struct ExecResult {
  std::optional<Value> value;  // set on normal return (Void -> Value{})
  TrapKind trap = TrapKind::None;
  uint64_t steps = 0;  // dynamic instruction count

  [[nodiscard]] bool ok() const { return trap == TrapKind::None; }
  // Cold by contract: formatting is for error reports, never the
  // execution path.
  [[nodiscard, gnu::cold]] std::string trap_message() const;
};

/// Which tier-0 dispatch engine serves run().
enum class DispatchKind : uint8_t {
  Switch,    // portable reference switch (the differential oracle)
  Threaded,  // pre-decoded computed-goto loop with fusion
};

class Interpreter {
 public:
  Interpreter(const Module& module, Memory& memory)
      : module_(module), memory_(memory) {}

  /// Maximum dynamic instructions before trapping (default 1<<30).
  void set_step_budget(uint64_t steps) { step_budget_ = steps; }
  void set_max_call_depth(uint32_t depth) { max_call_depth_ = depth; }

  /// Attaches a profile collector (sized for this module's functions; may
  /// be nullptr to disable). Not owned; must outlive every run(). With no
  /// collector attached the execution loop pays only a null check per
  /// recorded event -- profiling off is effectively free.
  void set_profile(ProfileData* profile) { profile_ = profile; }

  /// True when this build carries the computed-goto engine (CMake option
  /// SVC_THREADED_DISPATCH, GCC/Clang only). When false, Threaded
  /// requests silently run on the Switch engine.
  [[nodiscard]] static bool threaded_available();

  /// Selects the dispatch engine (default: Threaded when available).
  /// Results, traps, step counts and collected profiles are identical
  /// across engines; only speed differs.
  void set_dispatch(DispatchKind kind) { dispatch_ = kind; }
  [[nodiscard]] DispatchKind dispatch() const { return dispatch_; }

  /// Enables/disables superinstruction fusion in the threaded engine
  /// (default on; no effect on the Switch engine). The profiling
  /// instantiation always runs unfused streams -- profiles are recorded
  /// per original opcode.
  void set_fusion(bool on) { fusion_ = on; }

  /// Shares a pre-decoded-stream cache (typically one per OnlineTarget
  /// or Soc, so streams are lowered once per deployment, not per
  /// Interpreter). Not owned; must outlive every run(). Without one the
  /// interpreter lowers into a private cache, amortized across its own
  /// run() calls only.
  void set_predecode_cache(PredecodeCache* cache) { pcache_ = cache; }

  /// Runs function `func_idx` with `args` (must match the signature).
  [[nodiscard]] ExecResult run(uint32_t func_idx,
                               const std::vector<Value>& args);
  /// Convenience: look up by name first.
  [[nodiscard]] ExecResult run(std::string_view name,
                               const std::vector<Value>& args);

 private:
  friend class FrameExecutor;
  friend struct ThreadedEngine;

  [[nodiscard]] ExecResult run_switch(uint32_t func_idx,
                                      const std::vector<Value>& args);
  // Defined in vm/dispatch_threaded.cpp; falls back to run_switch when
  // the computed-goto engine is compiled out.
  [[nodiscard]] ExecResult run_threaded(uint32_t func_idx,
                                        const std::vector<Value>& args);

  const Module& module_;
  Memory& memory_;
  uint64_t step_budget_ = uint64_t{1} << 30;
  uint64_t steps_used_ = 0;
  uint32_t max_call_depth_ = 256;
  uint32_t call_depth_ = 0;
  ProfileData* profile_ = nullptr;
  DispatchKind dispatch_ = DispatchKind::Threaded;
  bool fusion_ = true;
  PredecodeCache* pcache_ = nullptr;
  PredecodeCache own_cache_;
};

}  // namespace svc
