// Pre-decoded tier-0 code streams. The reference interpreter walks
// Function/BasicBlock/Instruction structures and re-decodes operands on
// every execution; the threaded-dispatch engine instead executes a PCode:
// a dense, execution-ready instruction stream lowered once per function
// and cached. Lowering
//
//   * flattens all basic blocks into one contiguous PInst array and
//     resolves branch targets to stream offsets,
//   * inlines immediates and pre-resolves call metadata (callee index,
//     parameter count, has-result) so the hot loop never touches the
//     Module, and
//   * optionally fuses the hottest instruction sequences into
//     superinstructions (vm/fused_ops.def) selected by a static table.
//
// A PCode is immutable after construction and owns all its storage (no
// pointers into the source Module), so cached streams stay valid for as
// long as any executing frame holds a reference. PredecodeCache is the
// build-once keyed store: thread-safe, keyed by (module id, function,
// fused), shared across the cores of a Soc the same way the CodeCache is.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "bytecode/module.h"
#include "vm/value.h"

namespace svc {

/// Pre-decoded opcode space: every Opcode, numerically identical, plus
/// the superinstructions of fused_ops.def appended after Opcode::Count_'s
/// position. The shared prefix lets the unfused stream cast POp <->
/// Opcode directly (the profiling dispatch loop records per original
/// opcode).
enum class POp : uint16_t {
#define SVC_OP(Name, mnemonic, pops, pushes, imm, category, lanes, membytes) \
  Name,
#include "bytecode/opcodes.def"
#undef SVC_OP
#define SVC_FUSED_OP(Name, mnemonic, steps) Name,
#include "vm/fused_ops.def"
#undef SVC_FUSED_OP
  Count_,
};

inline constexpr size_t kNumPOps = static_cast<size_t>(POp::Count_);

/// True for superinstructions (no Opcode counterpart).
[[nodiscard]] constexpr bool is_fused_op(POp op) {
  return static_cast<size_t>(op) >= kNumOpcodes;
}

/// Mnemonic of a pre-decoded op (original mnemonics for the shared
/// prefix, fused_ops.def mnemonics for superinstructions).
[[nodiscard]] std::string_view pop_mnemonic(POp op);

/// One execution-ready instruction. Operand meaning by op:
///   LocalGet/LocalSet            a = local index
///   Const*                       imm = constant bits
///   Load*/Store*                 imm = byte offset
///   VExtract*/VInsert*           a = lane
///   Call                         a = callee, b = #params, imm = has result
///   Ret                          a = 1 when a value is returned
///   Jump                         a = target stream offset, b = target block
///   BranchIf                     a/b = taken/not-taken stream offsets,
///                                imm = taken | not-taken block ids (lo/hi)
///   F*Br superinstructions       a/b = taken/not-taken stream offsets
///   FGetGetLtSBr                 a/b = locals, imm = taken|not-taken offsets
///   FGetGet*/FGetSet             a/b = locals
///   FGetConstAddI32/FConstI32Set a = local, imm = constant
///   FIncLocalI32                 a = source local, b = destination local,
///                                imm = increment
/// `steps` is the number of original instructions the op stands for: the
/// step budget and the deterministic kInterpreterCyclesPerStep cost model
/// are charged per original instruction, so fusion never changes
/// SimResult cycles.
struct PInst {
  POp op = POp::Nop;
  uint8_t steps = 1;
  uint32_t a = 0;
  uint32_t b = 0;
  int64_t imm = 0;
};

/// The pre-decoded form of one function.
struct PCode {
  uint32_t fn_idx = 0;
  uint32_t num_locals = 0;
  // Maximum operand-stack depth of any block (stack is empty at block
  // boundaries), computed during lowering so frames allocate exactly.
  uint32_t max_stack = 0;
  bool fused = false;
  std::vector<PInst> code;
  // Typed zero values of every local, in index order: a frame initializes
  // by copying this (then overwriting the parameter slots) instead of
  // consulting the Function's type list per call.
  std::vector<Value> locals_init;
  // Stream offset of each basic block's first instruction.
  std::vector<uint32_t> block_offsets;
  // Superinstructions emitted (0 when lowered with fuse = false).
  size_t fused_count = 0;
};

/// Lowers `module`.function(fn_idx) into a pre-decoded stream. With
/// `fuse` set, the static fusion table is applied greedily (longest
/// pattern first) inside each basic block.
[[nodiscard]] PCode predecode(const Module& module, uint32_t fn_idx,
                              bool fuse);

/// Build-once store of pre-decoded streams, keyed by (module id,
/// function index, fused). Thread-safe; a stream is lowered on first
/// request and shared afterwards (frames hold shared_ptrs, so entries
/// stay valid across a concurrent reset for a new module). One cache is
/// typically shared by every core of a Soc: pre-decoding is
/// target-independent, so the streams are too.
class PredecodeCache {
 public:
  PredecodeCache() = default;
  PredecodeCache(const PredecodeCache&) = delete;
  PredecodeCache& operator=(const PredecodeCache&) = delete;

  [[nodiscard]] std::shared_ptr<const PCode> get(const Module& module,
                                                 uint32_t fn_idx, bool fused);

  /// Streams currently cached (both variants counted separately).
  [[nodiscard]] size_t size() const;

 private:
  mutable std::mutex mutex_;
  uint64_t module_id_ = 0;
  // slots_[fn][fused ? 1 : 0]
  std::vector<std::array<std::shared_ptr<const PCode>, 2>> slots_;
};

}  // namespace svc
