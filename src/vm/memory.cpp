#include "vm/memory.h"

#include "support/diagnostics.h"

namespace svc {

uint32_t BumpAllocator::alloc(uint32_t bytes) {
  top_ = (top_ + 15u) & ~15u;
  const uint32_t addr = top_;
  if (!mem_.in_bounds(addr, bytes)) {
    fatal("BumpAllocator: out of VM memory");
  }
  top_ += bytes;
  return addr;
}

}  // namespace svc
