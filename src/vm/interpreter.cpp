#include "vm/interpreter.h"

#include <cmath>
#include <limits>

#include "support/diagnostics.h"

namespace svc {

std::string ExecResult::trap_message() const {
  switch (trap) {
    case TrapKind::None: return "no trap";
    case TrapKind::OutOfBoundsMemory: return "out-of-bounds memory access";
    case TrapKind::DivideByZero: return "integer divide by zero";
    case TrapKind::IntegerOverflow: return "integer overflow in division";
    case TrapKind::CallStackOverflow: return "call stack overflow";
    case TrapKind::StepBudgetExceeded: return "step budget exceeded";
    case TrapKind::ExplicitTrap: return "explicit trap";
  }
  return "?";
}

namespace {

// Control outcome of executing one frame.
struct FrameResult {
  Value ret;
  TrapKind trap = TrapKind::None;
};

}  // namespace

// Executes one function invocation. Lives outside the class so the hot
// switch stays in one translation unit; state shared with the Interpreter
// (step budget, call depth) is threaded through the reference.
class FrameExecutor {
 public:
  FrameExecutor(Interpreter& interp, const Function& fn, uint32_t fn_idx)
      : interp_(interp),
        module_(interp.module_),
        mem_(interp.memory_),
        fn_(fn),
        fn_idx_(fn_idx),
        profile_(interp.profile_) {}

  FrameResult run(const std::vector<Value>& args) {
    locals_.resize(fn_.num_locals());
    for (size_t i = 0; i < fn_.num_locals(); ++i) {
      locals_[i] = Value::zero_of(fn_.local_type(static_cast<uint32_t>(i)));
    }
    for (size_t i = 0; i < args.size() && i < fn_.num_locals(); ++i) {
      locals_[i] = args[i];
    }
    stack_.reserve(16);
    if (profile_) {
      profile_->record_call(fn_idx_);
      trip_runs_.assign(fn_.num_blocks(), 0);
    }

    uint32_t block = 0;
    for (;;) {
      const BasicBlock& bb = fn_.block(block);
      cur_block_ = block;
      for (const Instruction& inst : bb.insts) {
        if (++interp_.steps_used_ > interp_.step_budget_) {
          if (profile_) flush_trip_runs();
          return {{}, TrapKind::StepBudgetExceeded};
        }
        if (profile_) profile_->record_op(fn_idx_, inst.op);
        const StepOutcome out = step(inst);
        switch (out.kind) {
          case StepOutcome::Next:
            break;
          case StepOutcome::Goto:
            if (profile_) record_transfer(block, out.target);
            block = out.target;
            goto next_block;
          case StepOutcome::Return:
            if (profile_) flush_trip_runs();
            return {out.ret, TrapKind::None};
          case StepOutcome::Trapped:
            // Completed loop executions are recorded even when the frame
            // ends in a trap -- a budget-bound profiling run still counts.
            if (profile_) flush_trip_runs();
            return {{}, out.trap};
        }
      }
      // Verifier guarantees a terminator ends every block, so this point
      // is unreachable for verified code.
      fatal("interpreter: block fell through without terminator");
    next_block:;
    }
  }

 private:
  struct StepOutcome {
    enum Kind { Next, Goto, Return, Trapped } kind = Next;
    uint32_t target = 0;
    Value ret;
    TrapKind trap = TrapKind::None;

    static StepOutcome next() { return {}; }
    static StepOutcome jump(uint32_t t) { return {Goto, t, {}, {}}; }
    static StepOutcome ret_value(Value v) { return {Return, 0, v, {}}; }
    static StepOutcome trapped(TrapKind t) { return {Trapped, 0, {}, t}; }
  };

  Value pop() {
    Value v = stack_.back();
    stack_.pop_back();
    return v;
  }
  void push(Value v) { stack_.push_back(v); }
  void push_i32(int32_t v) { push(Value::make_i32(v)); }
  void push_f32(float v) { push(Value::make_f32(v)); }

  bool mem_check(uint64_t addr, uint32_t len) const {
    return mem_.in_bounds(addr, len);
  }

  StepOutcome step(const Instruction& inst);

  // A control transfer to an earlier-or-equal block is a back edge: its
  // target is a loop header and one more iteration ran. A forward entry
  // into a block with a pending run completes that loop execution (the
  // trip count is the back-edge count plus the initial entry).
  void record_transfer(uint32_t from, uint32_t to) {
    if (to <= from) {
      ++trip_runs_[to];
    } else if (trip_runs_[to] > 0) {
      profile_->record_loop_run(fn_idx_, to, trip_runs_[to] + 1);
      trip_runs_[to] = 0;
    }
  }

  void flush_trip_runs() {
    for (uint32_t h = 0; h < trip_runs_.size(); ++h) {
      if (trip_runs_[h] > 0) {
        profile_->record_loop_run(fn_idx_, h, trip_runs_[h] + 1);
        trip_runs_[h] = 0;
      }
    }
  }

  Interpreter& interp_;
  const Module& module_;
  Memory& mem_;
  const Function& fn_;
  uint32_t fn_idx_ = 0;
  ProfileData* profile_ = nullptr;
  uint32_t cur_block_ = 0;
  std::vector<uint64_t> trip_runs_;  // back edges taken per pending header
  std::vector<Value> locals_;
  std::vector<Value> stack_;
};

namespace {

int32_t as_u32_op(uint32_t v) { return static_cast<int32_t>(v); }

}  // namespace

FrameExecutor::StepOutcome FrameExecutor::step(const Instruction& inst) {
  using O = StepOutcome;
  switch (inst.op) {
    // --- constants / locals ---------------------------------------------
    case Opcode::ConstI32:
      push_i32(static_cast<int32_t>(inst.imm));
      return O::next();
    case Opcode::ConstI64:
      push(Value::make_i64(inst.imm));
      return O::next();
    case Opcode::ConstF32:
      push_f32(inst.f32_imm());
      return O::next();
    case Opcode::ConstF64:
      push(Value::make_f64(inst.f64_imm()));
      return O::next();
    case Opcode::LocalGet:
      push(locals_[inst.a]);
      return O::next();
    case Opcode::LocalSet:
      locals_[inst.a] = pop();
      return O::next();

    // --- i32 arithmetic ---------------------------------------------------
    case Opcode::AddI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(static_cast<int32_t>(static_cast<uint32_t>(a) +
                                    static_cast<uint32_t>(b)));
      return O::next();
    }
    case Opcode::SubI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(static_cast<int32_t>(static_cast<uint32_t>(a) -
                                    static_cast<uint32_t>(b)));
      return O::next();
    }
    case Opcode::MulI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(static_cast<int32_t>(static_cast<uint32_t>(a) *
                                    static_cast<uint32_t>(b)));
      return O::next();
    }
    case Opcode::DivSI32: {
      const auto b = pop().i32, a = pop().i32;
      if (b == 0) return O::trapped(TrapKind::DivideByZero);
      if (a == std::numeric_limits<int32_t>::min() && b == -1) {
        return O::trapped(TrapKind::IntegerOverflow);
      }
      push_i32(a / b);
      return O::next();
    }
    case Opcode::DivUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      if (b == 0) return O::trapped(TrapKind::DivideByZero);
      push_i32(as_u32_op(a / b));
      return O::next();
    }
    case Opcode::RemSI32: {
      const auto b = pop().i32, a = pop().i32;
      if (b == 0) return O::trapped(TrapKind::DivideByZero);
      if (a == std::numeric_limits<int32_t>::min() && b == -1) {
        push_i32(0);
        return O::next();
      }
      push_i32(a % b);
      return O::next();
    }
    case Opcode::RemUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      if (b == 0) return O::trapped(TrapKind::DivideByZero);
      push_i32(as_u32_op(a % b));
      return O::next();
    }
    case Opcode::AndI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a & b);
      return O::next();
    }
    case Opcode::OrI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a | b);
      return O::next();
    }
    case Opcode::XorI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a ^ b);
      return O::next();
    }
    case Opcode::ShlI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(as_u32_op(static_cast<uint32_t>(a) << (b & 31)));
      return O::next();
    }
    case Opcode::ShrSI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a >> (b & 31));
      return O::next();
    }
    case Opcode::ShrUI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(as_u32_op(static_cast<uint32_t>(a) >> (b & 31)));
      return O::next();
    }
    case Opcode::MinSI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a < b ? a : b);
      return O::next();
    }
    case Opcode::MaxSI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a > b ? a : b);
      return O::next();
    }
    case Opcode::MinUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      push_i32(as_u32_op(a < b ? a : b));
      return O::next();
    }
    case Opcode::MaxUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      push_i32(as_u32_op(a > b ? a : b));
      return O::next();
    }
    case Opcode::EqzI32:
      push_i32(pop().i32 == 0 ? 1 : 0);
      return O::next();

    // --- i32 comparisons --------------------------------------------------
    case Opcode::EqI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a == b);
      return O::next();
    }
    case Opcode::NeI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a != b);
      return O::next();
    }
    case Opcode::LtSI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a < b);
      return O::next();
    }
    case Opcode::LtUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      push_i32(a < b);
      return O::next();
    }
    case Opcode::LeSI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a <= b);
      return O::next();
    }
    case Opcode::LeUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      push_i32(a <= b);
      return O::next();
    }
    case Opcode::GtSI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a > b);
      return O::next();
    }
    case Opcode::GtUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      push_i32(a > b);
      return O::next();
    }
    case Opcode::GeSI32: {
      const auto b = pop().i32, a = pop().i32;
      push_i32(a >= b);
      return O::next();
    }
    case Opcode::GeUI32: {
      const auto b = static_cast<uint32_t>(pop().i32);
      const auto a = static_cast<uint32_t>(pop().i32);
      push_i32(a >= b);
      return O::next();
    }

    // --- i64 ---------------------------------------------------------------
    case Opcode::AddI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(static_cast<int64_t>(static_cast<uint64_t>(a) +
                                                static_cast<uint64_t>(b))));
      return O::next();
    }
    case Opcode::SubI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(static_cast<int64_t>(static_cast<uint64_t>(a) -
                                                static_cast<uint64_t>(b))));
      return O::next();
    }
    case Opcode::MulI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(static_cast<int64_t>(static_cast<uint64_t>(a) *
                                                static_cast<uint64_t>(b))));
      return O::next();
    }
    case Opcode::DivSI64: {
      const auto b = pop().i64, a = pop().i64;
      if (b == 0) return O::trapped(TrapKind::DivideByZero);
      if (a == std::numeric_limits<int64_t>::min() && b == -1) {
        return O::trapped(TrapKind::IntegerOverflow);
      }
      push(Value::make_i64(a / b));
      return O::next();
    }
    case Opcode::AndI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(a & b));
      return O::next();
    }
    case Opcode::OrI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(a | b));
      return O::next();
    }
    case Opcode::XorI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(a ^ b));
      return O::next();
    }
    case Opcode::ShlI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(
          static_cast<int64_t>(static_cast<uint64_t>(a) << (b & 63))));
      return O::next();
    }
    case Opcode::ShrSI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(a >> (b & 63)));
      return O::next();
    }
    case Opcode::ShrUI64: {
      const auto b = pop().i64, a = pop().i64;
      push(Value::make_i64(
          static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63))));
      return O::next();
    }
    case Opcode::EqI64: {
      const auto b = pop().i64, a = pop().i64;
      push_i32(a == b);
      return O::next();
    }
    case Opcode::NeI64: {
      const auto b = pop().i64, a = pop().i64;
      push_i32(a != b);
      return O::next();
    }
    case Opcode::LtSI64: {
      const auto b = pop().i64, a = pop().i64;
      push_i32(a < b);
      return O::next();
    }
    case Opcode::GtSI64: {
      const auto b = pop().i64, a = pop().i64;
      push_i32(a > b);
      return O::next();
    }

    // --- f32 ---------------------------------------------------------------
    case Opcode::AddF32: {
      const auto b = pop().f32, a = pop().f32;
      push_f32(a + b);
      return O::next();
    }
    case Opcode::SubF32: {
      const auto b = pop().f32, a = pop().f32;
      push_f32(a - b);
      return O::next();
    }
    case Opcode::MulF32: {
      const auto b = pop().f32, a = pop().f32;
      push_f32(a * b);
      return O::next();
    }
    case Opcode::DivF32: {
      const auto b = pop().f32, a = pop().f32;
      push_f32(a / b);
      return O::next();
    }
    case Opcode::MinF32: {
      const auto b = pop().f32, a = pop().f32;
      push_f32(detail::fmin32(a, b));
      return O::next();
    }
    case Opcode::MaxF32: {
      const auto b = pop().f32, a = pop().f32;
      push_f32(detail::fmax32(a, b));
      return O::next();
    }
    case Opcode::NegF32:
      push_f32(-pop().f32);
      return O::next();
    case Opcode::AbsF32:
      push_f32(std::fabs(pop().f32));
      return O::next();
    case Opcode::SqrtF32:
      push_f32(std::sqrt(pop().f32));
      return O::next();
    case Opcode::EqF32: {
      const auto b = pop().f32, a = pop().f32;
      push_i32(a == b);
      return O::next();
    }
    case Opcode::NeF32: {
      const auto b = pop().f32, a = pop().f32;
      push_i32(a != b);
      return O::next();
    }
    case Opcode::LtF32: {
      const auto b = pop().f32, a = pop().f32;
      push_i32(a < b);
      return O::next();
    }
    case Opcode::LeF32: {
      const auto b = pop().f32, a = pop().f32;
      push_i32(a <= b);
      return O::next();
    }
    case Opcode::GtF32: {
      const auto b = pop().f32, a = pop().f32;
      push_i32(a > b);
      return O::next();
    }
    case Opcode::GeF32: {
      const auto b = pop().f32, a = pop().f32;
      push_i32(a >= b);
      return O::next();
    }

    // --- f64 ---------------------------------------------------------------
    case Opcode::AddF64: {
      const auto b = pop().f64, a = pop().f64;
      push(Value::make_f64(a + b));
      return O::next();
    }
    case Opcode::SubF64: {
      const auto b = pop().f64, a = pop().f64;
      push(Value::make_f64(a - b));
      return O::next();
    }
    case Opcode::MulF64: {
      const auto b = pop().f64, a = pop().f64;
      push(Value::make_f64(a * b));
      return O::next();
    }
    case Opcode::DivF64: {
      const auto b = pop().f64, a = pop().f64;
      push(Value::make_f64(a / b));
      return O::next();
    }
    case Opcode::MinF64: {
      const auto b = pop().f64, a = pop().f64;
      push(Value::make_f64(detail::fmin64(a, b)));
      return O::next();
    }
    case Opcode::MaxF64: {
      const auto b = pop().f64, a = pop().f64;
      push(Value::make_f64(detail::fmax64(a, b)));
      return O::next();
    }
    case Opcode::NegF64:
      push(Value::make_f64(-pop().f64));
      return O::next();
    case Opcode::SqrtF64:
      push(Value::make_f64(std::sqrt(pop().f64)));
      return O::next();
    case Opcode::EqF64: {
      const auto b = pop().f64, a = pop().f64;
      push_i32(a == b);
      return O::next();
    }
    case Opcode::NeF64: {
      const auto b = pop().f64, a = pop().f64;
      push_i32(a != b);
      return O::next();
    }
    case Opcode::LtF64: {
      const auto b = pop().f64, a = pop().f64;
      push_i32(a < b);
      return O::next();
    }
    case Opcode::LeF64: {
      const auto b = pop().f64, a = pop().f64;
      push_i32(a <= b);
      return O::next();
    }
    case Opcode::GtF64: {
      const auto b = pop().f64, a = pop().f64;
      push_i32(a > b);
      return O::next();
    }
    case Opcode::GeF64: {
      const auto b = pop().f64, a = pop().f64;
      push_i32(a >= b);
      return O::next();
    }

    // --- selects -----------------------------------------------------------
    case Opcode::SelectI32:
    case Opcode::SelectI64:
    case Opcode::SelectF32:
    case Opcode::SelectF64: {
      const auto cond = pop().i32;
      const Value b = pop();
      const Value a = pop();
      push(cond != 0 ? a : b);
      return O::next();
    }

    // --- conversions ---------------------------------------------------------
    case Opcode::I32ToI64S:
      push(Value::make_i64(pop().i32));
      return O::next();
    case Opcode::I32ToI64U:
      push(Value::make_i64(static_cast<uint32_t>(pop().i32)));
      return O::next();
    case Opcode::I64ToI32:
      push_i32(static_cast<int32_t>(pop().i64));
      return O::next();
    case Opcode::I32ToF32S:
      push_f32(static_cast<float>(pop().i32));
      return O::next();
    case Opcode::F32ToI32S:
      push_i32(static_cast<int32_t>(pop().f32));
      return O::next();
    case Opcode::I32ToF64S:
      push(Value::make_f64(pop().i32));
      return O::next();
    case Opcode::F64ToI32S:
      push_i32(static_cast<int32_t>(pop().f64));
      return O::next();
    case Opcode::F32ToF64:
      push(Value::make_f64(pop().f32));
      return O::next();
    case Opcode::F64ToF32:
      push_f32(static_cast<float>(pop().f64));
      return O::next();
    case Opcode::I64ToF64S:
      push(Value::make_f64(static_cast<double>(pop().i64)));
      return O::next();
    case Opcode::F64ToI64S:
      push(Value::make_i64(static_cast<int64_t>(pop().f64)));
      return O::next();

    // --- memory ----------------------------------------------------------
    case Opcode::LoadI8U:
    case Opcode::LoadI8S:
    case Opcode::LoadI16U:
    case Opcode::LoadI16S:
    case Opcode::LoadI32:
    case Opcode::LoadI64:
    case Opcode::LoadF32:
    case Opcode::LoadF64:
    case Opcode::LoadV128: {
      const uint64_t addr =
          static_cast<uint32_t>(pop().i32) + static_cast<uint64_t>(inst.imm);
      const uint32_t len = op_info(inst.op).mem_bytes;
      if (!mem_check(addr, len)) {
        return O::trapped(TrapKind::OutOfBoundsMemory);
      }
      const auto a32 = static_cast<uint32_t>(addr);
      switch (inst.op) {
        case Opcode::LoadI8U: push_i32(mem_.load_u8(a32)); break;
        case Opcode::LoadI8S:
          push_i32(static_cast<int8_t>(mem_.load_u8(a32)));
          break;
        case Opcode::LoadI16U: push_i32(mem_.load_u16(a32)); break;
        case Opcode::LoadI16S:
          push_i32(static_cast<int16_t>(mem_.load_u16(a32)));
          break;
        case Opcode::LoadI32:
          push_i32(static_cast<int32_t>(mem_.load_u32(a32)));
          break;
        case Opcode::LoadI64:
          push(Value::make_i64(static_cast<int64_t>(mem_.load_u64(a32))));
          break;
        case Opcode::LoadF32:
          push_f32(std::bit_cast<float>(mem_.load_u32(a32)));
          break;
        case Opcode::LoadF64:
          push(Value::make_f64(std::bit_cast<double>(mem_.load_u64(a32))));
          break;
        case Opcode::LoadV128:
          push(Value::make_v128(mem_.load_v128(a32)));
          break;
        default: break;
      }
      return O::next();
    }
    case Opcode::StoreI8:
    case Opcode::StoreI16:
    case Opcode::StoreI32:
    case Opcode::StoreI64:
    case Opcode::StoreF32:
    case Opcode::StoreF64:
    case Opcode::StoreV128: {
      const Value v = pop();
      const uint64_t addr =
          static_cast<uint32_t>(pop().i32) + static_cast<uint64_t>(inst.imm);
      const uint32_t len = op_info(inst.op).mem_bytes;
      if (!mem_check(addr, len)) {
        return O::trapped(TrapKind::OutOfBoundsMemory);
      }
      const auto a32 = static_cast<uint32_t>(addr);
      switch (inst.op) {
        case Opcode::StoreI8:
          mem_.store_u8(a32, static_cast<uint8_t>(v.i32));
          break;
        case Opcode::StoreI16:
          mem_.store_u16(a32, static_cast<uint16_t>(v.i32));
          break;
        case Opcode::StoreI32:
          mem_.store_u32(a32, static_cast<uint32_t>(v.i32));
          break;
        case Opcode::StoreI64:
          mem_.store_u64(a32, static_cast<uint64_t>(v.i64));
          break;
        case Opcode::StoreF32:
          mem_.store_u32(a32, std::bit_cast<uint32_t>(v.f32));
          break;
        case Opcode::StoreF64:
          mem_.store_u64(a32, std::bit_cast<uint64_t>(v.f64));
          break;
        case Opcode::StoreV128:
          mem_.store_v128(a32, v.v128);
          break;
        default: break;
      }
      return O::next();
    }

    // --- vector ------------------------------------------------------------
    case Opcode::VZero:
      push(Value::make_v128(V128{}));
      return O::next();
    case Opcode::VSplatI8:
      push(Value::make_v128(
          V128::splat_u8(static_cast<uint8_t>(pop().i32))));
      return O::next();
    case Opcode::VSplatI16:
      push(Value::make_v128(
          V128::splat_u16(static_cast<uint16_t>(pop().i32))));
      return O::next();
    case Opcode::VSplatI32:
      push(Value::make_v128(
          V128::splat_u32(static_cast<uint32_t>(pop().i32))));
      return O::next();
    case Opcode::VSplatF32:
      push(Value::make_v128(V128::splat_f32(pop().f32)));
      return O::next();

    case Opcode::VAddI8:
    case Opcode::VSubI8:
    case Opcode::VMinU8:
    case Opcode::VMaxU8: {
      const V128 b = pop().v128, a = pop().v128;
      V128 r;
      for (size_t i = 0; i < 16; ++i) {
        const uint8_t x = a.u8(i), y = b.u8(i);
        uint8_t o = 0;
        switch (inst.op) {
          case Opcode::VAddI8: o = static_cast<uint8_t>(x + y); break;
          case Opcode::VSubI8: o = static_cast<uint8_t>(x - y); break;
          case Opcode::VMinU8: o = x < y ? x : y; break;
          case Opcode::VMaxU8: o = x > y ? x : y; break;
          default: break;
        }
        r.set_u8(i, o);
      }
      push(Value::make_v128(r));
      return O::next();
    }
    case Opcode::VAddI16:
    case Opcode::VSubI16:
    case Opcode::VMinU16:
    case Opcode::VMaxU16: {
      const V128 b = pop().v128, a = pop().v128;
      V128 r;
      for (size_t i = 0; i < 8; ++i) {
        const uint16_t x = a.u16(i), y = b.u16(i);
        uint16_t o = 0;
        switch (inst.op) {
          case Opcode::VAddI16: o = static_cast<uint16_t>(x + y); break;
          case Opcode::VSubI16: o = static_cast<uint16_t>(x - y); break;
          case Opcode::VMinU16: o = x < y ? x : y; break;
          case Opcode::VMaxU16: o = x > y ? x : y; break;
          default: break;
        }
        r.set_u16(i, o);
      }
      push(Value::make_v128(r));
      return O::next();
    }
    case Opcode::VAddI32:
    case Opcode::VSubI32:
    case Opcode::VMulI32:
    case Opcode::VMinSI32:
    case Opcode::VMaxSI32: {
      const V128 b = pop().v128, a = pop().v128;
      V128 r;
      for (size_t i = 0; i < 4; ++i) {
        const uint32_t x = a.u32(i), y = b.u32(i);
        const int32_t xs = static_cast<int32_t>(x);
        const int32_t ys = static_cast<int32_t>(y);
        uint32_t o = 0;
        switch (inst.op) {
          case Opcode::VAddI32: o = x + y; break;
          case Opcode::VSubI32: o = x - y; break;
          case Opcode::VMulI32: o = x * y; break;
          case Opcode::VMinSI32:
            o = static_cast<uint32_t>(xs < ys ? xs : ys);
            break;
          case Opcode::VMaxSI32:
            o = static_cast<uint32_t>(xs > ys ? xs : ys);
            break;
          default: break;
        }
        r.set_u32(i, o);
      }
      push(Value::make_v128(r));
      return O::next();
    }
    case Opcode::VAddF32:
    case Opcode::VSubF32:
    case Opcode::VMulF32:
    case Opcode::VDivF32:
    case Opcode::VMinF32:
    case Opcode::VMaxF32: {
      const V128 b = pop().v128, a = pop().v128;
      V128 r;
      for (size_t i = 0; i < 4; ++i) {
        const float x = a.f32(i), y = b.f32(i);
        float o = 0;
        switch (inst.op) {
          case Opcode::VAddF32: o = x + y; break;
          case Opcode::VSubF32: o = x - y; break;
          case Opcode::VMulF32: o = x * y; break;
          case Opcode::VDivF32: o = x / y; break;
          case Opcode::VMinF32: o = detail::fmin32(x, y); break;
          case Opcode::VMaxF32: o = detail::fmax32(x, y); break;
          default: break;
        }
        r.set_f32(i, o);
      }
      push(Value::make_v128(r));
      return O::next();
    }
    case Opcode::VAnd:
    case Opcode::VOr:
    case Opcode::VXor: {
      const V128 b = pop().v128, a = pop().v128;
      V128 r;
      for (size_t i = 0; i < 16; ++i) {
        uint8_t o = 0;
        switch (inst.op) {
          case Opcode::VAnd: o = a.u8(i) & b.u8(i); break;
          case Opcode::VOr: o = a.u8(i) | b.u8(i); break;
          case Opcode::VXor: o = a.u8(i) ^ b.u8(i); break;
          default: break;
        }
        r.set_u8(i, o);
      }
      push(Value::make_v128(r));
      return O::next();
    }

    case Opcode::VRSumU8: {
      const V128 a = pop().v128;
      int32_t s = 0;
      for (size_t i = 0; i < 16; ++i) s += a.u8(i);
      push_i32(s);
      return O::next();
    }
    case Opcode::VRSumU16: {
      const V128 a = pop().v128;
      int32_t s = 0;
      for (size_t i = 0; i < 8; ++i) s += a.u16(i);
      push_i32(s);
      return O::next();
    }
    case Opcode::VRSumI32: {
      const V128 a = pop().v128;
      uint32_t s = 0;
      for (size_t i = 0; i < 4; ++i) s += a.u32(i);
      push_i32(static_cast<int32_t>(s));
      return O::next();
    }
    case Opcode::VRSumF32: {
      const V128 a = pop().v128;
      // Defined reduction order: ((l0+l1)+(l2+l3)) -- pairwise, matching
      // the tree a SIMD target uses, and reproduced by scalarized code.
      push_f32((a.f32(0) + a.f32(1)) + (a.f32(2) + a.f32(3)));
      return O::next();
    }
    case Opcode::VRMaxU8: {
      const V128 a = pop().v128;
      uint8_t m = 0;
      for (size_t i = 0; i < 16; ++i) m = std::max(m, a.u8(i));
      push_i32(m);
      return O::next();
    }
    case Opcode::VRMinU8: {
      const V128 a = pop().v128;
      uint8_t m = 0xff;
      for (size_t i = 0; i < 16; ++i) m = std::min(m, a.u8(i));
      push_i32(m);
      return O::next();
    }
    case Opcode::VRMaxU16: {
      const V128 a = pop().v128;
      uint16_t m = 0;
      for (size_t i = 0; i < 8; ++i) m = std::max(m, a.u16(i));
      push_i32(m);
      return O::next();
    }
    case Opcode::VRMaxSI32: {
      const V128 a = pop().v128;
      int32_t m = std::numeric_limits<int32_t>::min();
      for (size_t i = 0; i < 4; ++i) {
        m = std::max(m, static_cast<int32_t>(a.u32(i)));
      }
      push_i32(m);
      return O::next();
    }
    case Opcode::VRMaxF32: {
      const V128 a = pop().v128;
      float m = a.f32(0);
      for (size_t i = 1; i < 4; ++i) m = detail::fmax32(m, a.f32(i));
      push_f32(m);
      return O::next();
    }
    case Opcode::VRMinF32: {
      const V128 a = pop().v128;
      float m = a.f32(0);
      for (size_t i = 1; i < 4; ++i) m = detail::fmin32(m, a.f32(i));
      push_f32(m);
      return O::next();
    }

    case Opcode::VExtractU8:
      push_i32(pop().v128.u8(inst.a));
      return O::next();
    case Opcode::VExtractU16:
      push_i32(pop().v128.u16(inst.a));
      return O::next();
    case Opcode::VExtractI32:
      push_i32(static_cast<int32_t>(pop().v128.u32(inst.a)));
      return O::next();
    case Opcode::VExtractF32:
      push_f32(pop().v128.f32(inst.a));
      return O::next();
    case Opcode::VInsertI8: {
      const auto v = pop().i32;
      V128 r = pop().v128;
      r.set_u8(inst.a, static_cast<uint8_t>(v));
      push(Value::make_v128(r));
      return O::next();
    }
    case Opcode::VInsertI16: {
      const auto v = pop().i32;
      V128 r = pop().v128;
      r.set_u16(inst.a, static_cast<uint16_t>(v));
      push(Value::make_v128(r));
      return O::next();
    }
    case Opcode::VInsertI32: {
      const auto v = pop().i32;
      V128 r = pop().v128;
      r.set_u32(inst.a, static_cast<uint32_t>(v));
      push(Value::make_v128(r));
      return O::next();
    }
    case Opcode::VInsertF32: {
      const auto v = pop().f32;
      V128 r = pop().v128;
      r.set_f32(inst.a, v);
      push(Value::make_v128(r));
      return O::next();
    }

    // --- control -------------------------------------------------------
    case Opcode::Jump:
      return O::jump(inst.a);
    case Opcode::BranchIf: {
      const auto cond = pop().i32;
      if (profile_) profile_->record_branch(fn_idx_, cur_block_, cond != 0);
      return O::jump(cond != 0 ? inst.a : inst.b);
    }
    case Opcode::Ret: {
      if (fn_.sig().ret == Type::Void) return O::ret_value(Value{});
      return O::ret_value(pop());
    }
    case Opcode::Trap:
      return O::trapped(TrapKind::ExplicitTrap);
    case Opcode::Call: {
      const Function& callee = module_.function(inst.a);
      std::vector<Value> args(callee.num_params());
      for (size_t i = callee.num_params(); i-- > 0;) args[i] = pop();
      if (++interp_.call_depth_ > interp_.max_call_depth_) {
        return O::trapped(TrapKind::CallStackOverflow);
      }
      FrameExecutor child(interp_, callee, inst.a);
      const FrameResult res = child.run(args);
      --interp_.call_depth_;
      if (res.trap != TrapKind::None) return O::trapped(res.trap);
      if (callee.sig().ret != Type::Void) push(res.ret);
      return O::next();
    }
    case Opcode::Drop:
      pop();
      return O::next();
    case Opcode::Nop:
      return O::next();
    case Opcode::Count_:
      break;
  }
  fatal("interpreter: unhandled opcode");
}

ExecResult Interpreter::run_switch(uint32_t func_idx,
                                   const std::vector<Value>& args) {
  steps_used_ = 0;
  call_depth_ = 0;
  FrameExecutor exec(*this, module_.function(func_idx), func_idx);
  const FrameResult res = exec.run(args);
  ExecResult out;
  out.steps = steps_used_;
  out.trap = res.trap;
  if (res.trap == TrapKind::None) out.value = res.ret;
  return out;
}

ExecResult Interpreter::run(uint32_t func_idx,
                            const std::vector<Value>& args) {
  if (dispatch_ == DispatchKind::Threaded) {
    return run_threaded(func_idx, args);
  }
  return run_switch(func_idx, args);
}

ExecResult Interpreter::run(std::string_view name,
                            const std::vector<Value>& args) {
  const auto idx = module_.find_function(name);
  if (!idx) fatal("Interpreter::run: no such function");
  return run(*idx, args);
}

}  // namespace svc
