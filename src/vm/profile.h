// Runtime profile collector for the tier-0 interpreter: per-function call
// counts, per-branch taken counts, loop trip-count histograms and observed
// vector widths, accumulated into the ProfileInfo records that serialize
// as Profile annotations (bytecode/annotations.h).
//
// Cost contract: a ProfileData is attached to an Interpreter via
// set_profile(); when none is attached the interpreter pays one
// well-predicted null check per event (near-zero). ProfileData itself is
// not thread-safe -- concurrent runtimes collect into a per-call local
// and merge() under their own lock (see OnlineTarget::interpret).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bytecode/annotations.h"
#include "bytecode/module.h"

namespace svc {

class ProfileData {
 public:
  ProfileData() = default;
  explicit ProfileData(size_t num_functions) : fns_(num_functions) {}

  void reset(size_t num_functions) { fns_.assign(num_functions, {}); }
  [[nodiscard]] size_t num_functions() const { return fns_.size(); }
  [[nodiscard]] ProfileInfo& function(uint32_t idx) { return fns_[idx]; }
  [[nodiscard]] const ProfileInfo& function(uint32_t idx) const {
    return fns_[idx];
  }

  /// True when nothing has been recorded for any function.
  [[nodiscard]] bool empty() const;

  /// Accumulates `other` (merged per function index; sizes may differ,
  /// the result covers the union).
  void merge(const ProfileData& other);

  // --- Recording hooks (hot; called by the interpreter) -----------------

  void record_call(uint32_t fn) { ++fns_[fn].calls; }
  /// Classifies one executed instruction by observed width.
  void record_op(uint32_t fn, Opcode op);
  void record_branch(uint32_t fn, uint32_t block, bool taken) {
    BranchProfile& b = fns_[fn].branches[block];
    if (taken) {
      ++b.taken;
    } else {
      ++b.not_taken;
    }
  }
  /// One completed loop execution of `trips` header visits.
  void record_loop_run(uint32_t fn, uint32_t header, uint64_t trips) {
    ++fns_[fn].loops[header][trip_bucket(trips)];
  }

 private:
  std::vector<ProfileInfo> fns_;
};

/// Merges any number of profile snapshots into one aggregate view: the
/// result covers the union of the inputs' function ranges, with each
/// function's record accumulated across every input (the semantics of
/// ProfileData::merge, applied n-ways). This is the one merge behind
/// every multi-collector view -- a Soc merging its per-core collectors
/// (Soc::profile) and a svc::Cluster merging its per-shard Socs into the
/// fleet-wide profile tier-2 re-specialization is seeded from. Null
/// entries are skipped.
[[nodiscard]] ProfileData merge_profiles(
    std::span<const ProfileData* const> parts);

/// Copy of `module` with each function's Profile annotation replaced by
/// the collected record (functions with empty profiles carry none). This
/// is the export path: the returned module serializes like any other, so
/// a deployed SoC can ship its observations back to the offline tuner.
[[nodiscard]] Module attach_profile(const Module& module,
                                    const ProfileData& profile);

/// Reads Profile annotations back out of an annotated module (import
/// path). Functions without a decodable record get an empty profile;
/// version-skewed or corrupt records are skipped, not fatal.
[[nodiscard]] ProfileData extract_profile(const Module& module);

/// True when any function of `module` carries a decodable Profile
/// annotation.
[[nodiscard]] bool has_profile(const Module& module);

}  // namespace svc
