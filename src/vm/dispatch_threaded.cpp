// The threaded-dispatch tier-0 engine: a computed-goto loop (GCC/Clang
// &&label tables) over pre-decoded code streams (vm/predecode.h).
//
// Semantics are defined by the switch engine in vm/interpreter.cpp; this
// file is an execution strategy, not a second implementation of meaning.
// Every opcode body below mirrors its FrameExecutor::step() case
// bit-for-bit (float behavior included), traps are identical, the step
// budget is charged per *original* instruction (fused ops carry their
// expansion length in PInst::steps), and the profiling instantiation
// records exactly the oracle's event stream. tests/dispatch_test.cpp
// differential-tests all of this per opcode and per fused pattern.
//
// Layout of one frame: a single contiguous Value buffer of
// num_locals + max_stack slots; locals at the bottom, the operand stack
// growing upward through a raw Value* -- no per-push bookkeeping. The
// dispatch macro threads control directly from one opcode body to the
// next without returning to a central loop, so a correctly-predicted
// indirect branch per instruction replaces the oracle's
// switch-plus-outcome-decode round trip.
//
// Two instantiations of the loop exist (template <bool kProfile>): the
// profiling variant runs the *unfused* stream and mirrors every
// ProfileData hook; the plain variant carries zero profiling code -- not
// even a null check -- so tier-0 steady state pays nothing for the
// collector machinery.

#include <cmath>
#include <limits>
#include <vector>

#include "support/diagnostics.h"
#include "vm/interpreter.h"

// CMake option SVC_THREADED_DISPATCH (default ON) defines this to 0/1;
// standalone builds of the file default to on. The engine additionally
// needs the GNU labels-as-values extension, so MSVC and friends fall
// back to the switch engine even when configured ON.
#ifndef SVC_THREADED_DISPATCH
#define SVC_THREADED_DISPATCH 1
#endif

#if SVC_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define SVC_HAS_THREADED_DISPATCH 1
#else
#define SVC_HAS_THREADED_DISPATCH 0
#endif

namespace svc {

bool Interpreter::threaded_available() {
  return SVC_HAS_THREADED_DISPATCH != 0;
}

#if !SVC_HAS_THREADED_DISPATCH

// Portable fallback: Threaded requests run on the reference switch.
ExecResult Interpreter::run_threaded(uint32_t func_idx,
                                     const std::vector<Value>& args) {
  return run_switch(func_idx, args);
}

#else  // SVC_HAS_THREADED_DISPATCH

struct ThreadedEngine {
  Interpreter& I;
  PredecodeCache& cache;
  bool fuse;

  struct FrameRes {
    Value ret;
    TrapKind trap = TrapKind::None;
  };

  template <bool kProfile>
  FrameRes exec(uint32_t fn_idx, const Value* args, size_t nargs);
};

template <bool kProfile>
ThreadedEngine::FrameRes ThreadedEngine::exec(uint32_t fn_idx,
                                              const Value* args,
                                              size_t nargs) {
  // The profiling loop always runs the unfused stream: profiles are
  // recorded per original opcode, and POp's unfused prefix is
  // numerically identical to Opcode, so record_op casts directly.
  const std::shared_ptr<const PCode> pcode =
      cache.get(I.module_, fn_idx, fuse && !kProfile);
  const PCode& pc = *pcode;

  std::vector<Value> frame(pc.num_locals + pc.max_stack);
  Value* const locals = frame.data();
  std::copy(pc.locals_init.begin(), pc.locals_init.end(), locals);
  for (size_t i = 0; i < nargs && i < pc.num_locals; ++i) locals[i] = args[i];
  Value* sp = locals + pc.num_locals;

  Memory& mem = I.memory_;
  const PInst* const code = pc.code.data();
  const PInst* ip = code;
  uint64_t steps = I.steps_used_;
  const uint64_t budget = I.step_budget_;
  TrapKind trap = TrapKind::None;

  // Loop-trip bookkeeping, mirroring FrameExecutor: a transfer to an
  // earlier-or-equal block is a back edge; a forward entry into a block
  // with a pending run completes that loop execution.
  [[maybe_unused]] uint32_t cur_block = 0;
  [[maybe_unused]] std::vector<uint64_t> trip_runs;
  if constexpr (kProfile) {
    I.profile_->record_call(fn_idx);
    trip_runs.assign(pc.block_offsets.size(), 0);
  }
  const auto flush_trips = [&] {
    if constexpr (kProfile) {
      for (uint32_t h = 0; h < trip_runs.size(); ++h) {
        if (trip_runs[h] > 0) {
          I.profile_->record_loop_run(fn_idx, h, trip_runs[h] + 1);
          trip_runs[h] = 0;
        }
      }
    }
  };
  [[maybe_unused]] const auto transfer = [&](uint32_t from, uint32_t to) {
    if constexpr (kProfile) {
      if (to <= from) {
        ++trip_runs[to];
      } else if (trip_runs[to] > 0) {
        I.profile_->record_loop_run(fn_idx, to, trip_runs[to] + 1);
        trip_runs[to] = 0;
      }
      cur_block = to;
    }
  };

  // One entry per POp, in .def order; a missing label is a compile
  // error here, so the table enforces full opcode coverage.
  static const void* const kLabels[] = {
#define SVC_OP(Name, mnemonic, pops, pushes, imm, category, lanes, membytes) \
  &&L_##Name,
#include "bytecode/opcodes.def"
#undef SVC_OP
#define SVC_FUSED_OP(Name, mnemonic, steps) &&L_##Name,
#include "vm/fused_ops.def"
#undef SVC_FUSED_OP
  };
  static_assert(std::size(kLabels) == kNumPOps);

// Budget first, then the profile hook, then the opcode body -- the
// oracle's exact per-instruction order.
#define DISPATCH()                                                   \
  do {                                                               \
    steps += ip->steps;                                              \
    if (steps > budget) goto budget_trap;                            \
    if constexpr (kProfile) {                                        \
      I.profile_->record_op(fn_idx, static_cast<Opcode>(ip->op));    \
    }                                                                \
    goto* kLabels[static_cast<size_t>(ip->op)];                      \
  } while (0)
#define NEXT() \
  do {         \
    ++ip;      \
    DISPATCH(); \
  } while (0)
#define PUSH(v) (*sp++ = (v))
#define POP() (*--sp)
#define PUSH_I32(v) (*sp++ = Value::make_i32(v))
#define PUSH_F32(v) (*sp++ = Value::make_f32(v))
#define TRAP(kind)              \
  do {                          \
    trap = TrapKind::kind;      \
    goto trapped;               \
  } while (0)

  DISPATCH();

  // --- constants / locals -----------------------------------------------
L_ConstI32:
  PUSH_I32(static_cast<int32_t>(ip->imm));
  NEXT();
L_ConstI64:
  PUSH(Value::make_i64(ip->imm));
  NEXT();
L_ConstF32:
  PUSH_F32(std::bit_cast<float>(static_cast<uint32_t>(ip->imm)));
  NEXT();
L_ConstF64:
  PUSH(Value::make_f64(std::bit_cast<double>(static_cast<uint64_t>(ip->imm))));
  NEXT();
L_LocalGet:
  PUSH(locals[ip->a]);
  NEXT();
L_LocalSet:
  locals[ip->a] = POP();
  NEXT();

  // --- i32 arithmetic ---------------------------------------------------
L_AddI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(static_cast<int32_t>(static_cast<uint32_t>(a) +
                                static_cast<uint32_t>(b)));
}
  NEXT();
L_SubI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(static_cast<int32_t>(static_cast<uint32_t>(a) -
                                static_cast<uint32_t>(b)));
}
  NEXT();
L_MulI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(static_cast<int32_t>(static_cast<uint32_t>(a) *
                                static_cast<uint32_t>(b)));
}
  NEXT();
L_DivSI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  if (b == 0) TRAP(DivideByZero);
  if (a == std::numeric_limits<int32_t>::min() && b == -1) {
    TRAP(IntegerOverflow);
  }
  PUSH_I32(a / b);
}
  NEXT();
L_DivUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  const auto a = static_cast<uint32_t>(POP().i32);
  if (b == 0) TRAP(DivideByZero);
  PUSH_I32(static_cast<int32_t>(a / b));
}
  NEXT();
L_RemSI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  if (b == 0) TRAP(DivideByZero);
  if (a == std::numeric_limits<int32_t>::min() && b == -1) {
    PUSH_I32(0);
  } else {
    PUSH_I32(a % b);
  }
}
  NEXT();
L_RemUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  const auto a = static_cast<uint32_t>(POP().i32);
  if (b == 0) TRAP(DivideByZero);
  PUSH_I32(static_cast<int32_t>(a % b));
}
  NEXT();
L_AndI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 & b);
}
  NEXT();
L_OrI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 | b);
}
  NEXT();
L_XorI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 ^ b);
}
  NEXT();
L_ShlI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(static_cast<int32_t>(static_cast<uint32_t>(a) << (b & 31)));
}
  NEXT();
L_ShrSI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(a >> (b & 31));
}
  NEXT();
L_ShrUI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(static_cast<int32_t>(static_cast<uint32_t>(a) >> (b & 31)));
}
  NEXT();
L_MinSI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(a < b ? a : b);
}
  NEXT();
L_MaxSI32: {
  const int32_t b = POP().i32;
  const int32_t a = POP().i32;
  PUSH_I32(a > b ? a : b);
}
  NEXT();
L_MinUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  const auto a = static_cast<uint32_t>(POP().i32);
  PUSH_I32(static_cast<int32_t>(a < b ? a : b));
}
  NEXT();
L_MaxUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  const auto a = static_cast<uint32_t>(POP().i32);
  PUSH_I32(static_cast<int32_t>(a > b ? a : b));
}
  NEXT();
L_EqzI32:
  PUSH_I32(POP().i32 == 0 ? 1 : 0);
  NEXT();

  // --- i32 comparisons --------------------------------------------------
L_EqI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 == b);
}
  NEXT();
L_NeI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 != b);
}
  NEXT();
L_LtSI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 < b);
}
  NEXT();
L_LtUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  PUSH_I32(static_cast<uint32_t>(POP().i32) < b);
}
  NEXT();
L_LeSI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 <= b);
}
  NEXT();
L_LeUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  PUSH_I32(static_cast<uint32_t>(POP().i32) <= b);
}
  NEXT();
L_GtSI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 > b);
}
  NEXT();
L_GtUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  PUSH_I32(static_cast<uint32_t>(POP().i32) > b);
}
  NEXT();
L_GeSI32: {
  const int32_t b = POP().i32;
  PUSH_I32(POP().i32 >= b);
}
  NEXT();
L_GeUI32: {
  const auto b = static_cast<uint32_t>(POP().i32);
  PUSH_I32(static_cast<uint32_t>(POP().i32) >= b);
}
  NEXT();

  // --- i64 --------------------------------------------------------------
L_AddI64: {
  const int64_t b = POP().i64;
  const int64_t a = POP().i64;
  PUSH(Value::make_i64(static_cast<int64_t>(static_cast<uint64_t>(a) +
                                            static_cast<uint64_t>(b))));
}
  NEXT();
L_SubI64: {
  const int64_t b = POP().i64;
  const int64_t a = POP().i64;
  PUSH(Value::make_i64(static_cast<int64_t>(static_cast<uint64_t>(a) -
                                            static_cast<uint64_t>(b))));
}
  NEXT();
L_MulI64: {
  const int64_t b = POP().i64;
  const int64_t a = POP().i64;
  PUSH(Value::make_i64(static_cast<int64_t>(static_cast<uint64_t>(a) *
                                            static_cast<uint64_t>(b))));
}
  NEXT();
L_DivSI64: {
  const int64_t b = POP().i64;
  const int64_t a = POP().i64;
  if (b == 0) TRAP(DivideByZero);
  if (a == std::numeric_limits<int64_t>::min() && b == -1) {
    TRAP(IntegerOverflow);
  }
  PUSH(Value::make_i64(a / b));
}
  NEXT();
L_AndI64: {
  const int64_t b = POP().i64;
  PUSH(Value::make_i64(POP().i64 & b));
}
  NEXT();
L_OrI64: {
  const int64_t b = POP().i64;
  PUSH(Value::make_i64(POP().i64 | b));
}
  NEXT();
L_XorI64: {
  const int64_t b = POP().i64;
  PUSH(Value::make_i64(POP().i64 ^ b));
}
  NEXT();
L_ShlI64: {
  const int64_t b = POP().i64;
  const int64_t a = POP().i64;
  PUSH(Value::make_i64(
      static_cast<int64_t>(static_cast<uint64_t>(a) << (b & 63))));
}
  NEXT();
L_ShrSI64: {
  const int64_t b = POP().i64;
  const int64_t a = POP().i64;
  PUSH(Value::make_i64(a >> (b & 63)));
}
  NEXT();
L_ShrUI64: {
  const int64_t b = POP().i64;
  const int64_t a = POP().i64;
  PUSH(Value::make_i64(
      static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63))));
}
  NEXT();
L_EqI64: {
  const int64_t b = POP().i64;
  PUSH_I32(POP().i64 == b);
}
  NEXT();
L_NeI64: {
  const int64_t b = POP().i64;
  PUSH_I32(POP().i64 != b);
}
  NEXT();
L_LtSI64: {
  const int64_t b = POP().i64;
  PUSH_I32(POP().i64 < b);
}
  NEXT();
L_GtSI64: {
  const int64_t b = POP().i64;
  PUSH_I32(POP().i64 > b);
}
  NEXT();

  // --- f32 --------------------------------------------------------------
L_AddF32: {
  const float b = POP().f32;
  PUSH_F32(POP().f32 + b);
}
  NEXT();
L_SubF32: {
  const float b = POP().f32;
  PUSH_F32(POP().f32 - b);
}
  NEXT();
L_MulF32: {
  const float b = POP().f32;
  PUSH_F32(POP().f32 * b);
}
  NEXT();
L_DivF32: {
  const float b = POP().f32;
  PUSH_F32(POP().f32 / b);
}
  NEXT();
L_MinF32: {
  const float b = POP().f32;
  PUSH_F32(detail::fmin32(POP().f32, b));
}
  NEXT();
L_MaxF32: {
  const float b = POP().f32;
  PUSH_F32(detail::fmax32(POP().f32, b));
}
  NEXT();
L_NegF32:
  PUSH_F32(-POP().f32);
  NEXT();
L_AbsF32:
  PUSH_F32(std::fabs(POP().f32));
  NEXT();
L_SqrtF32:
  PUSH_F32(std::sqrt(POP().f32));
  NEXT();
L_EqF32: {
  const float b = POP().f32;
  PUSH_I32(POP().f32 == b);
}
  NEXT();
L_NeF32: {
  const float b = POP().f32;
  PUSH_I32(POP().f32 != b);
}
  NEXT();
L_LtF32: {
  const float b = POP().f32;
  PUSH_I32(POP().f32 < b);
}
  NEXT();
L_LeF32: {
  const float b = POP().f32;
  PUSH_I32(POP().f32 <= b);
}
  NEXT();
L_GtF32: {
  const float b = POP().f32;
  PUSH_I32(POP().f32 > b);
}
  NEXT();
L_GeF32: {
  const float b = POP().f32;
  PUSH_I32(POP().f32 >= b);
}
  NEXT();

  // --- f64 --------------------------------------------------------------
L_AddF64: {
  const double b = POP().f64;
  PUSH(Value::make_f64(POP().f64 + b));
}
  NEXT();
L_SubF64: {
  const double b = POP().f64;
  PUSH(Value::make_f64(POP().f64 - b));
}
  NEXT();
L_MulF64: {
  const double b = POP().f64;
  PUSH(Value::make_f64(POP().f64 * b));
}
  NEXT();
L_DivF64: {
  const double b = POP().f64;
  PUSH(Value::make_f64(POP().f64 / b));
}
  NEXT();
L_MinF64: {
  const double b = POP().f64;
  PUSH(Value::make_f64(detail::fmin64(POP().f64, b)));
}
  NEXT();
L_MaxF64: {
  const double b = POP().f64;
  PUSH(Value::make_f64(detail::fmax64(POP().f64, b)));
}
  NEXT();
L_NegF64:
  PUSH(Value::make_f64(-POP().f64));
  NEXT();
L_SqrtF64:
  PUSH(Value::make_f64(std::sqrt(POP().f64)));
  NEXT();
L_EqF64: {
  const double b = POP().f64;
  PUSH_I32(POP().f64 == b);
}
  NEXT();
L_NeF64: {
  const double b = POP().f64;
  PUSH_I32(POP().f64 != b);
}
  NEXT();
L_LtF64: {
  const double b = POP().f64;
  PUSH_I32(POP().f64 < b);
}
  NEXT();
L_LeF64: {
  const double b = POP().f64;
  PUSH_I32(POP().f64 <= b);
}
  NEXT();
L_GtF64: {
  const double b = POP().f64;
  PUSH_I32(POP().f64 > b);
}
  NEXT();
L_GeF64: {
  const double b = POP().f64;
  PUSH_I32(POP().f64 >= b);
}
  NEXT();

  // --- selects ----------------------------------------------------------
L_SelectI32:
L_SelectI64:
L_SelectF32:
L_SelectF64: {
  const int32_t cond = POP().i32;
  const Value b = POP();
  const Value a = POP();
  PUSH(cond != 0 ? a : b);
}
  NEXT();

  // --- conversions ------------------------------------------------------
L_I32ToI64S:
  PUSH(Value::make_i64(POP().i32));
  NEXT();
L_I32ToI64U:
  PUSH(Value::make_i64(static_cast<uint32_t>(POP().i32)));
  NEXT();
L_I64ToI32:
  PUSH_I32(static_cast<int32_t>(POP().i64));
  NEXT();
L_I32ToF32S:
  PUSH_F32(static_cast<float>(POP().i32));
  NEXT();
L_F32ToI32S:
  PUSH_I32(static_cast<int32_t>(POP().f32));
  NEXT();
L_I32ToF64S:
  PUSH(Value::make_f64(POP().i32));
  NEXT();
L_F64ToI32S:
  PUSH_I32(static_cast<int32_t>(POP().f64));
  NEXT();
L_F32ToF64:
  PUSH(Value::make_f64(POP().f32));
  NEXT();
L_F64ToF32:
  PUSH_F32(static_cast<float>(POP().f64));
  NEXT();
L_I64ToF64S:
  PUSH(Value::make_f64(static_cast<double>(POP().i64)));
  NEXT();
L_F64ToI64S:
  PUSH(Value::make_i64(static_cast<int64_t>(POP().f64)));
  NEXT();

  // --- memory -----------------------------------------------------------
#define LOAD_ADDR(len)                                             \
  const uint64_t addr = static_cast<uint32_t>(POP().i32) +         \
                        static_cast<uint64_t>(ip->imm);            \
  if (!mem.in_bounds(addr, (len))) TRAP(OutOfBoundsMemory);        \
  const auto a32 = static_cast<uint32_t>(addr)

L_LoadI8U: {
  LOAD_ADDR(1);
  PUSH_I32(mem.load_u8(a32));
}
  NEXT();
L_LoadI8S: {
  LOAD_ADDR(1);
  PUSH_I32(static_cast<int8_t>(mem.load_u8(a32)));
}
  NEXT();
L_LoadI16U: {
  LOAD_ADDR(2);
  PUSH_I32(mem.load_u16(a32));
}
  NEXT();
L_LoadI16S: {
  LOAD_ADDR(2);
  PUSH_I32(static_cast<int16_t>(mem.load_u16(a32)));
}
  NEXT();
L_LoadI32: {
  LOAD_ADDR(4);
  PUSH_I32(static_cast<int32_t>(mem.load_u32(a32)));
}
  NEXT();
L_LoadI64: {
  LOAD_ADDR(8);
  PUSH(Value::make_i64(static_cast<int64_t>(mem.load_u64(a32))));
}
  NEXT();
L_LoadF32: {
  LOAD_ADDR(4);
  PUSH_F32(std::bit_cast<float>(mem.load_u32(a32)));
}
  NEXT();
L_LoadF64: {
  LOAD_ADDR(8);
  PUSH(Value::make_f64(std::bit_cast<double>(mem.load_u64(a32))));
}
  NEXT();
L_LoadV128: {
  LOAD_ADDR(16);
  PUSH(Value::make_v128(mem.load_v128(a32)));
}
  NEXT();
#undef LOAD_ADDR

#define STORE_ADDR(len)                                            \
  const Value v = POP();                                           \
  const uint64_t addr = static_cast<uint32_t>(POP().i32) +         \
                        static_cast<uint64_t>(ip->imm);            \
  if (!mem.in_bounds(addr, (len))) TRAP(OutOfBoundsMemory);        \
  const auto a32 = static_cast<uint32_t>(addr)

L_StoreI8: {
  STORE_ADDR(1);
  mem.store_u8(a32, static_cast<uint8_t>(v.i32));
}
  NEXT();
L_StoreI16: {
  STORE_ADDR(2);
  mem.store_u16(a32, static_cast<uint16_t>(v.i32));
}
  NEXT();
L_StoreI32: {
  STORE_ADDR(4);
  mem.store_u32(a32, static_cast<uint32_t>(v.i32));
}
  NEXT();
L_StoreI64: {
  STORE_ADDR(8);
  mem.store_u64(a32, static_cast<uint64_t>(v.i64));
}
  NEXT();
L_StoreF32: {
  STORE_ADDR(4);
  mem.store_u32(a32, std::bit_cast<uint32_t>(v.f32));
}
  NEXT();
L_StoreF64: {
  STORE_ADDR(8);
  mem.store_u64(a32, std::bit_cast<uint64_t>(v.f64));
}
  NEXT();
L_StoreV128: {
  STORE_ADDR(16);
  mem.store_v128(a32, v.v128);
}
  NEXT();
#undef STORE_ADDR

  // --- vector -----------------------------------------------------------
L_VZero:
  PUSH(Value::make_v128(V128{}));
  NEXT();
L_VSplatI8:
  PUSH(Value::make_v128(V128::splat_u8(static_cast<uint8_t>(POP().i32))));
  NEXT();
L_VSplatI16:
  PUSH(Value::make_v128(V128::splat_u16(static_cast<uint16_t>(POP().i32))));
  NEXT();
L_VSplatI32:
  PUSH(Value::make_v128(V128::splat_u32(static_cast<uint32_t>(POP().i32))));
  NEXT();
L_VSplatF32:
  PUSH(Value::make_v128(V128::splat_f32(POP().f32)));
  NEXT();

#define VBIN_U8(expr)                          \
  const V128 vb = POP().v128;                  \
  const V128 va = POP().v128;                  \
  V128 r;                                      \
  for (size_t i = 0; i < 16; ++i) {            \
    const uint8_t x = va.u8(i), y = vb.u8(i);  \
    r.set_u8(i, (expr));                       \
  }                                            \
  PUSH(Value::make_v128(r))

L_VAddI8: {
  VBIN_U8(static_cast<uint8_t>(x + y));
}
  NEXT();
L_VSubI8: {
  VBIN_U8(static_cast<uint8_t>(x - y));
}
  NEXT();
L_VMinU8: {
  VBIN_U8(x < y ? x : y);
}
  NEXT();
L_VMaxU8: {
  VBIN_U8(x > y ? x : y);
}
  NEXT();

#define VBIN_U16(expr)                           \
  const V128 vb = POP().v128;                    \
  const V128 va = POP().v128;                    \
  V128 r;                                        \
  for (size_t i = 0; i < 8; ++i) {               \
    const uint16_t x = va.u16(i), y = vb.u16(i); \
    r.set_u16(i, (expr));                        \
  }                                              \
  PUSH(Value::make_v128(r))

L_VAddI16: {
  VBIN_U16(static_cast<uint16_t>(x + y));
}
  NEXT();
L_VSubI16: {
  VBIN_U16(static_cast<uint16_t>(x - y));
}
  NEXT();
L_VMinU16: {
  VBIN_U16(x < y ? x : y);
}
  NEXT();
L_VMaxU16: {
  VBIN_U16(x > y ? x : y);
}
  NEXT();

#define VBIN_U32(expr)                               \
  const V128 vb = POP().v128;                        \
  const V128 va = POP().v128;                        \
  V128 r;                                            \
  for (size_t i = 0; i < 4; ++i) {                   \
    const uint32_t x = va.u32(i), y = vb.u32(i);     \
    const int32_t xs = static_cast<int32_t>(x);      \
    const int32_t ys = static_cast<int32_t>(y);      \
    (void)xs;                                        \
    (void)ys;                                        \
    r.set_u32(i, (expr));                            \
  }                                                  \
  PUSH(Value::make_v128(r))

L_VAddI32: {
  VBIN_U32(x + y);
}
  NEXT();
L_VSubI32: {
  VBIN_U32(x - y);
}
  NEXT();
L_VMulI32: {
  VBIN_U32(x * y);
}
  NEXT();
L_VMinSI32: {
  VBIN_U32(static_cast<uint32_t>(xs < ys ? xs : ys));
}
  NEXT();
L_VMaxSI32: {
  VBIN_U32(static_cast<uint32_t>(xs > ys ? xs : ys));
}
  NEXT();

#define VBIN_F32(expr)                           \
  const V128 vb = POP().v128;                    \
  const V128 va = POP().v128;                    \
  V128 r;                                        \
  for (size_t i = 0; i < 4; ++i) {               \
    const float x = va.f32(i), y = vb.f32(i);    \
    r.set_f32(i, (expr));                        \
  }                                              \
  PUSH(Value::make_v128(r))

L_VAddF32: {
  VBIN_F32(x + y);
}
  NEXT();
L_VSubF32: {
  VBIN_F32(x - y);
}
  NEXT();
L_VMulF32: {
  VBIN_F32(x * y);
}
  NEXT();
L_VDivF32: {
  VBIN_F32(x / y);
}
  NEXT();
L_VMinF32: {
  VBIN_F32(detail::fmin32(x, y));
}
  NEXT();
L_VMaxF32: {
  VBIN_F32(detail::fmax32(x, y));
}
  NEXT();
L_VAnd: {
  VBIN_U8(static_cast<uint8_t>(x & y));
}
  NEXT();
L_VOr: {
  VBIN_U8(static_cast<uint8_t>(x | y));
}
  NEXT();
L_VXor: {
  VBIN_U8(static_cast<uint8_t>(x ^ y));
}
  NEXT();
#undef VBIN_U8
#undef VBIN_U16
#undef VBIN_U32
#undef VBIN_F32

L_VRSumU8: {
  const V128 a = POP().v128;
  int32_t s = 0;
  for (size_t i = 0; i < 16; ++i) s += a.u8(i);
  PUSH_I32(s);
}
  NEXT();
L_VRSumU16: {
  const V128 a = POP().v128;
  int32_t s = 0;
  for (size_t i = 0; i < 8; ++i) s += a.u16(i);
  PUSH_I32(s);
}
  NEXT();
L_VRSumI32: {
  const V128 a = POP().v128;
  uint32_t s = 0;
  for (size_t i = 0; i < 4; ++i) s += a.u32(i);
  PUSH_I32(static_cast<int32_t>(s));
}
  NEXT();
L_VRSumF32: {
  const V128 a = POP().v128;
  // Pairwise reduction order, matching the oracle and SIMD targets.
  PUSH_F32((a.f32(0) + a.f32(1)) + (a.f32(2) + a.f32(3)));
}
  NEXT();
L_VRMaxU8: {
  const V128 a = POP().v128;
  uint8_t m = 0;
  for (size_t i = 0; i < 16; ++i) m = std::max(m, a.u8(i));
  PUSH_I32(m);
}
  NEXT();
L_VRMinU8: {
  const V128 a = POP().v128;
  uint8_t m = 0xff;
  for (size_t i = 0; i < 16; ++i) m = std::min(m, a.u8(i));
  PUSH_I32(m);
}
  NEXT();
L_VRMaxU16: {
  const V128 a = POP().v128;
  uint16_t m = 0;
  for (size_t i = 0; i < 8; ++i) m = std::max(m, a.u16(i));
  PUSH_I32(m);
}
  NEXT();
L_VRMaxSI32: {
  const V128 a = POP().v128;
  int32_t m = std::numeric_limits<int32_t>::min();
  for (size_t i = 0; i < 4; ++i) {
    m = std::max(m, static_cast<int32_t>(a.u32(i)));
  }
  PUSH_I32(m);
}
  NEXT();
L_VRMaxF32: {
  const V128 a = POP().v128;
  float m = a.f32(0);
  for (size_t i = 1; i < 4; ++i) m = detail::fmax32(m, a.f32(i));
  PUSH_F32(m);
}
  NEXT();
L_VRMinF32: {
  const V128 a = POP().v128;
  float m = a.f32(0);
  for (size_t i = 1; i < 4; ++i) m = detail::fmin32(m, a.f32(i));
  PUSH_F32(m);
}
  NEXT();

L_VExtractU8:
  PUSH_I32(POP().v128.u8(ip->a));
  NEXT();
L_VExtractU16:
  PUSH_I32(POP().v128.u16(ip->a));
  NEXT();
L_VExtractI32:
  PUSH_I32(static_cast<int32_t>(POP().v128.u32(ip->a)));
  NEXT();
L_VExtractF32:
  PUSH_F32(POP().v128.f32(ip->a));
  NEXT();
L_VInsertI8: {
  const int32_t v = POP().i32;
  V128 r = POP().v128;
  r.set_u8(ip->a, static_cast<uint8_t>(v));
  PUSH(Value::make_v128(r));
}
  NEXT();
L_VInsertI16: {
  const int32_t v = POP().i32;
  V128 r = POP().v128;
  r.set_u16(ip->a, static_cast<uint16_t>(v));
  PUSH(Value::make_v128(r));
}
  NEXT();
L_VInsertI32: {
  const int32_t v = POP().i32;
  V128 r = POP().v128;
  r.set_u32(ip->a, static_cast<uint32_t>(v));
  PUSH(Value::make_v128(r));
}
  NEXT();
L_VInsertF32: {
  const float v = POP().f32;
  V128 r = POP().v128;
  r.set_f32(ip->a, v);
  PUSH(Value::make_v128(r));
}
  NEXT();

  // --- control ----------------------------------------------------------
L_Jump:
  if constexpr (kProfile) transfer(cur_block, ip->b);
  ip = code + ip->a;
  DISPATCH();
L_BranchIf: {
  const int32_t cond = POP().i32;
  if constexpr (kProfile) {
    I.profile_->record_branch(fn_idx, cur_block, cond != 0);
    const auto blocks = static_cast<uint64_t>(ip->imm);
    transfer(cur_block, cond != 0 ? static_cast<uint32_t>(blocks)
                                  : static_cast<uint32_t>(blocks >> 32));
  }
  ip = code + (cond != 0 ? ip->a : ip->b);
}
  DISPATCH();
L_Ret: {
  I.steps_used_ = steps;
  flush_trips();
  if (ip->a) return {POP(), TrapKind::None};
  return {Value{}, TrapKind::None};
}
L_Trap:
  TRAP(ExplicitTrap);
L_Call: {
  sp -= ip->b;  // args: the top b stack slots, deepest-first
  if (++I.call_depth_ > I.max_call_depth_) TRAP(CallStackOverflow);
  I.steps_used_ = steps;
  const FrameRes res = exec<kProfile>(ip->a, sp, ip->b);
  steps = I.steps_used_;
  --I.call_depth_;
  if (res.trap != TrapKind::None) {
    trap = res.trap;
    goto trapped;
  }
  if (ip->imm) PUSH(res.ret);
}
  NEXT();
L_Drop:
  --sp;
  NEXT();
L_Nop:
  NEXT();

  // --- superinstructions (never present in profiling streams) -----------
L_FGetGetAddI32:
  PUSH_I32(static_cast<int32_t>(static_cast<uint32_t>(locals[ip->a].i32) +
                                static_cast<uint32_t>(locals[ip->b].i32)));
  NEXT();
L_FGetGetAddF32:
  PUSH_F32(locals[ip->a].f32 + locals[ip->b].f32);
  NEXT();
L_FGetGetMulF32:
  PUSH_F32(locals[ip->a].f32 * locals[ip->b].f32);
  NEXT();
L_FGetConstAddI32:
  PUSH_I32(static_cast<int32_t>(
      static_cast<uint32_t>(locals[ip->a].i32) +
      static_cast<uint32_t>(static_cast<int32_t>(ip->imm))));
  NEXT();
L_FIncLocalI32:
  locals[ip->b] = Value::make_i32(static_cast<int32_t>(
      static_cast<uint32_t>(locals[ip->a].i32) +
      static_cast<uint32_t>(static_cast<int32_t>(ip->imm))));
  NEXT();
L_FConstI32Set:
  locals[ip->a] = Value::make_i32(static_cast<int32_t>(ip->imm));
  NEXT();
L_FGetSet:
  locals[ip->b] = locals[ip->a];
  NEXT();
L_FGetGetLtSBr: {
  const auto offs = static_cast<uint64_t>(ip->imm);
  ip = code + (locals[ip->a].i32 < locals[ip->b].i32
                   ? static_cast<uint32_t>(offs)
                   : static_cast<uint32_t>(offs >> 32));
}
  DISPATCH();
L_FEqzI32Br:
  ip = code + (POP().i32 == 0 ? ip->a : ip->b);
  DISPATCH();
#define FCMP_BR(cmp)                           \
  {                                            \
    const int32_t b = POP().i32;               \
    const int32_t a = POP().i32;               \
    ip = code + ((cmp) ? ip->a : ip->b);       \
  }                                            \
  DISPATCH()
L_FEqI32Br:
  FCMP_BR(a == b);
L_FNeI32Br:
  FCMP_BR(a != b);
L_FLtSI32Br:
  FCMP_BR(a < b);
L_FLtUI32Br:
  FCMP_BR(static_cast<uint32_t>(a) < static_cast<uint32_t>(b));
L_FLeSI32Br:
  FCMP_BR(a <= b);
L_FGtSI32Br:
  FCMP_BR(a > b);
L_FGeSI32Br:
  FCMP_BR(a >= b);
#undef FCMP_BR

budget_trap:
  // The oracle charges instructions one at a time and traps at exactly
  // budget + 1; a fused group may overshoot by its length, so clamp.
  I.steps_used_ = budget + 1;
  flush_trips();
  return {{}, TrapKind::StepBudgetExceeded};

trapped:
  I.steps_used_ = steps;
  flush_trips();
  return {{}, trap};

#undef DISPATCH
#undef NEXT
#undef PUSH
#undef POP
#undef PUSH_I32
#undef PUSH_F32
#undef TRAP
}

ExecResult Interpreter::run_threaded(uint32_t func_idx,
                                     const std::vector<Value>& args) {
  steps_used_ = 0;
  call_depth_ = 0;
  ThreadedEngine engine{*this, pcache_ ? *pcache_ : own_cache_, fusion_};
  const ThreadedEngine::FrameRes res =
      profile_ ? engine.exec<true>(func_idx, args.data(), args.size())
               : engine.exec<false>(func_idx, args.data(), args.size());
  ExecResult out;
  out.steps = steps_used_;
  out.trap = res.trap;
  if (res.trap == TrapKind::None) out.value = res.ret;
  return out;
}

#endif  // SVC_HAS_THREADED_DISPATCH

}  // namespace svc
