#include "vm/predecode.h"

#include <optional>
#include <span>
#include <utility>

#include "support/diagnostics.h"

namespace svc {

namespace {

constexpr std::string_view kPOpMnemonics[] = {
#define SVC_OP(Name, mnemonic, pops, pushes, imm, category, lanes, membytes) \
  mnemonic,
#include "bytecode/opcodes.def"
#undef SVC_OP
#define SVC_FUSED_OP(Name, mnemonic, steps) mnemonic,
#include "vm/fused_ops.def"
#undef SVC_FUSED_OP
};
static_assert(std::size(kPOpMnemonics) == kNumPOps);

// The unfused prefix of POp mirrors Opcode 1:1 so the profiling engine
// can cast stream ops straight back to Opcode for record_op().
static_assert(static_cast<uint16_t>(POp::Nop) ==
              static_cast<uint16_t>(Opcode::Nop));
static_assert(static_cast<uint16_t>(POp::ConstI32) ==
              static_cast<uint16_t>(Opcode::ConstI32));
static_assert(static_cast<size_t>(POp::FGetGetAddI32) == kNumOpcodes);

/// (pops, pushes) of one instruction, resolving the polymorphic opcodes
/// the static OpInfo signatures leave empty.
std::pair<uint32_t, uint32_t> stack_effect(const Module& module,
                                           const Function& fn,
                                           const Instruction& inst) {
  switch (inst.op) {
    case Opcode::LocalGet: return {0, 1};
    case Opcode::LocalSet: return {1, 0};
    case Opcode::Jump:
    case Opcode::Trap:
    case Opcode::Nop: return {0, 0};
    case Opcode::BranchIf: return {1, 0};
    case Opcode::Ret: return {fn.sig().ret != Type::Void ? 1u : 0u, 0};
    case Opcode::Drop: return {1, 0};
    case Opcode::Call: {
      const Function& callee = module.function(inst.a);
      return {static_cast<uint32_t>(callee.num_params()),
              callee.sig().ret != Type::Void ? 1u : 0u};
    }
    default: {
      const OpInfo& info = op_info(inst.op);
      return {static_cast<uint32_t>(info.pops.size()),
              static_cast<uint32_t>(info.pushes.size())};
    }
  }
}

int64_t pack2(uint32_t lo, uint32_t hi) {
  return static_cast<int64_t>(static_cast<uint64_t>(lo) |
                              (static_cast<uint64_t>(hi) << 32));
}

/// Branch-target patch recorded during lowering: targets are emitted as
/// basic-block ids and rewritten to stream offsets once every block's
/// start offset is known.
struct Fixup {
  enum Kind : uint8_t {
    ABlock,     // a = block id -> offset (Jump)
    ABBlocks,   // a, b = block ids -> offsets (BranchIf, F*Br)
    ImmBlocks,  // imm packs (taken, not-taken) block ids -> offsets
  };
  size_t index;
  Kind kind;
};

PInst make_pinst(POp op, uint8_t steps, uint32_t a, uint32_t b, int64_t imm) {
  PInst p;
  p.op = op;
  p.steps = steps;
  p.a = a;
  p.b = b;
  p.imm = imm;
  return p;
}

struct Match {
  PInst inst;
  size_t len;
  std::optional<Fixup::Kind> fixup;
};

/// Fused compare-and-branch op for `cmp`, or nullopt when the pair is
/// not in the table.
std::optional<POp> fused_cmp_br(Opcode cmp) {
  switch (cmp) {
    case Opcode::EqzI32: return POp::FEqzI32Br;
    case Opcode::EqI32: return POp::FEqI32Br;
    case Opcode::NeI32: return POp::FNeI32Br;
    case Opcode::LtSI32: return POp::FLtSI32Br;
    case Opcode::LtUI32: return POp::FLtUI32Br;
    case Opcode::LeSI32: return POp::FLeSI32Br;
    case Opcode::GtSI32: return POp::FGtSI32Br;
    case Opcode::GeSI32: return POp::FGeSI32Br;
    default: return std::nullopt;
  }
}

/// The static fusion table: tries the patterns longest-first at position
/// `i` of a block's instruction list. Only frame-private, non-trapping
/// sequences fuse (see fused_ops.def for the selection rules).
std::optional<Match> try_fuse(std::span<const Instruction> insts, size_t i) {
  const auto op_at = [&](size_t j) { return insts[i + j].op; };
  const size_t left = insts.size() - i;

  if (left >= 4 && op_at(0) == Opcode::LocalGet &&
      op_at(1) == Opcode::ConstI32 && op_at(2) == Opcode::AddI32 &&
      op_at(3) == Opcode::LocalSet) {
    return Match{make_pinst(POp::FIncLocalI32, 4, insts[i].a, insts[i + 3].a,
                            insts[i + 1].imm),
                 4, std::nullopt};
  }
  if (left >= 4 && op_at(0) == Opcode::LocalGet &&
      op_at(1) == Opcode::LocalGet && op_at(2) == Opcode::LtSI32 &&
      op_at(3) == Opcode::BranchIf) {
    const Instruction& br = insts[i + 3];
    return Match{make_pinst(POp::FGetGetLtSBr, 4, insts[i].a, insts[i + 1].a,
                            pack2(br.a, br.b)),
                 4, Fixup::ImmBlocks};
  }
  if (left >= 3 && op_at(0) == Opcode::LocalGet &&
      op_at(1) == Opcode::LocalGet) {
    POp fused = POp::Count_;
    switch (op_at(2)) {
      case Opcode::AddI32: fused = POp::FGetGetAddI32; break;
      case Opcode::AddF32: fused = POp::FGetGetAddF32; break;
      case Opcode::MulF32: fused = POp::FGetGetMulF32; break;
      default: break;
    }
    if (fused != POp::Count_) {
      return Match{make_pinst(fused, 3, insts[i].a, insts[i + 1].a, 0), 3,
                   std::nullopt};
    }
  }
  if (left >= 3 && op_at(0) == Opcode::LocalGet &&
      op_at(1) == Opcode::ConstI32 && op_at(2) == Opcode::AddI32) {
    return Match{make_pinst(POp::FGetConstAddI32, 3, insts[i].a, 0,
                            insts[i + 1].imm),
                 3, std::nullopt};
  }
  if (left >= 2 && op_at(0) == Opcode::ConstI32 &&
      op_at(1) == Opcode::LocalSet) {
    return Match{
        make_pinst(POp::FConstI32Set, 2, insts[i + 1].a, 0, insts[i].imm), 2,
        std::nullopt};
  }
  if (left >= 2 && op_at(0) == Opcode::LocalGet &&
      op_at(1) == Opcode::LocalSet) {
    return Match{make_pinst(POp::FGetSet, 2, insts[i].a, insts[i + 1].a, 0),
                 2, std::nullopt};
  }
  if (left >= 2 && op_at(1) == Opcode::BranchIf) {
    if (const auto fused = fused_cmp_br(op_at(0))) {
      const Instruction& br = insts[i + 1];
      return Match{make_pinst(*fused, 2, br.a, br.b, 0), 2, Fixup::ABBlocks};
    }
  }
  return std::nullopt;
}

}  // namespace

std::string_view pop_mnemonic(POp op) {
  return kPOpMnemonics[static_cast<size_t>(op)];
}

PCode predecode(const Module& module, uint32_t fn_idx, bool fuse) {
  const Function& fn = module.function(fn_idx);
  PCode out;
  out.fn_idx = fn_idx;
  out.num_locals = static_cast<uint32_t>(fn.num_locals());
  out.fused = fuse;
  out.block_offsets.resize(fn.num_blocks());
  out.locals_init.reserve(fn.num_locals());
  for (uint32_t l = 0; l < fn.num_locals(); ++l) {
    out.locals_init.push_back(Value::zero_of(fn.local_type(l)));
  }

  std::vector<Fixup> fixups;
  const bool ret_value = fn.sig().ret != Type::Void;

  for (uint32_t bi = 0; bi < fn.num_blocks(); ++bi) {
    out.block_offsets[bi] = static_cast<uint32_t>(out.code.size());
    const std::span<const Instruction> insts = fn.block(bi).insts;

    // Exact operand-stack high-water mark: the stack is empty at every
    // block boundary, so a per-block walk of the original instructions
    // bounds the frame (fusion only ever uses fewer slots).
    uint32_t depth = 0;
    for (const Instruction& inst : insts) {
      const auto [pops, pushes] = stack_effect(module, fn, inst);
      depth = depth - pops + pushes;
      if (depth > out.max_stack) out.max_stack = depth;
    }

    size_t i = 0;
    while (i < insts.size()) {
      if (fuse) {
        if (const auto m = try_fuse(insts, i)) {
          if (m->fixup) {
            fixups.push_back({out.code.size(), *m->fixup});
          }
          out.code.push_back(m->inst);
          ++out.fused_count;
          i += m->len;
          continue;
        }
      }
      const Instruction& inst = insts[i];
      PInst p = make_pinst(static_cast<POp>(inst.op), 1, inst.a, inst.b,
                           inst.imm);
      switch (inst.op) {
        case Opcode::Ret:
          p.a = ret_value ? 1 : 0;
          break;
        case Opcode::Call: {
          const Function& callee = module.function(inst.a);
          p.b = static_cast<uint32_t>(callee.num_params());
          p.imm = callee.sig().ret != Type::Void ? 1 : 0;
          break;
        }
        case Opcode::Jump:
          // a: block id, patched to a stream offset below; b keeps the
          // block id for the profiling engine's loop bookkeeping.
          p.b = inst.a;
          fixups.push_back({out.code.size(), Fixup::ABlock});
          break;
        case Opcode::BranchIf:
          // a/b: block ids, patched below; imm keeps both block ids for
          // record_branch / record_transfer in the profiling engine.
          p.imm = pack2(inst.a, inst.b);
          fixups.push_back({out.code.size(), Fixup::ABBlocks});
          break;
        default: break;
      }
      out.code.push_back(p);
      ++i;
    }
  }

  for (const Fixup& fix : fixups) {
    PInst& p = out.code[fix.index];
    switch (fix.kind) {
      case Fixup::ABlock:
        p.a = out.block_offsets[p.a];
        break;
      case Fixup::ABBlocks:
        p.a = out.block_offsets[p.a];
        p.b = out.block_offsets[p.b];
        break;
      case Fixup::ImmBlocks: {
        const auto packed = static_cast<uint64_t>(p.imm);
        p.imm = pack2(out.block_offsets[static_cast<uint32_t>(packed)],
                      out.block_offsets[static_cast<uint32_t>(packed >> 32)]);
        break;
      }
    }
  }
  return out;
}

std::shared_ptr<const PCode> PredecodeCache::get(const Module& module,
                                                 uint32_t fn_idx, bool fused) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (module.id() != module_id_) {
    // A different module: drop the previous streams. In-flight frames
    // keep theirs alive through their shared_ptrs.
    module_id_ = module.id();
    slots_.assign(module.num_functions(), {});
  }
  std::shared_ptr<const PCode>& slot = slots_[fn_idx][fused ? 1 : 0];
  if (!slot) {
    slot = std::make_shared<const PCode>(predecode(module, fn_idx, fused));
  }
  return slot;
}

size_t PredecodeCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& pair : slots_) {
    n += (pair[0] ? 1 : 0) + (pair[1] ? 1 : 0);
  }
  return n;
}

}  // namespace svc
