// ModuleHandle: owned handle to a deployable SVIL module -- the unit the
// embeddable API (api/svc.h) passes between compile, serialize, deploy,
// and the profile feedback loop. It wraps std::shared_ptr<const Module>,
// so targets, Socs, Deployments, and the CodeCache share ownership: the
// module stays alive as long as anything references it, including past
// the destruction of the Engine that produced it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "bytecode/module.h"

namespace svc {

/// Owned, shared handle to an immutable module.
///
/// Thread-safety: the referenced Module is const and never mutated, so
/// any number of threads may read through any number of handles; copying
/// a handle is a shared_ptr copy (thread-safe refcount). One handle
/// *object* is a plain value: don't mutate (assign/reset) the same
/// handle from two threads.
/// Lifetime: the module lives until the last owner -- handle, target,
/// Soc, Deployment, or Server -- is gone; the CodeCache keys artifacts
/// by the stable Module::id(), never by address.
class ModuleHandle {
 public:
  /// Empty handle (boolean-false); produced only by default construction.
  ModuleHandle() = default;

  /// Shares ownership of an existing module.
  explicit ModuleHandle(std::shared_ptr<const Module> module)
      : module_(std::move(module)) {}

  /// Takes ownership of a freshly produced module (what Engine::compile
  /// and Deployment::export_profile do internally).
  [[nodiscard]] static ModuleHandle adopt(Module module) {
    return ModuleHandle(std::make_shared<const Module>(std::move(module)));
  }

  [[nodiscard]] explicit operator bool() const { return module_ != nullptr; }

  [[nodiscard]] const Module& operator*() const { return *module_; }
  [[nodiscard]] const Module* operator->() const { return module_.get(); }
  [[nodiscard]] const Module* get() const { return module_.get(); }

  /// The underlying shared ownership, for handing to load_module() and
  /// friends directly.
  [[nodiscard]] const std::shared_ptr<const Module>& shared() const {
    return module_;
  }

  /// The module's stable identity (Module::id()); 0 for an empty handle.
  [[nodiscard]] uint64_t id() const { return module_ ? module_->id() : 0; }

  [[nodiscard]] const std::string& name() const {
    static const std::string kEmpty;
    return module_ ? module_->name() : kEmpty;
  }

 private:
  std::shared_ptr<const Module> module_;
};

}  // namespace svc
