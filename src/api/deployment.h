// Deployment: one module running on one (possibly heterogeneous) set of
// cores -- the runtime half of the embeddable API (api/svc.h). Produced
// by Engine::deploy; wraps the Soc runtime (shared CodeCache, background
// JIT, tiered execution, profiling) behind a handle an embedder can hold
// without knowing any of those types exist.
//
// The deployment shares ownership of its module, so it stays valid after
// the Engine and every external ModuleHandle are gone. Move-only.
//
// Thread-safety: run, run_on, warm_up, wait_warmup and every counter
// accessor (tier_counters, cache_stats, export_profile) are safe to call
// concurrently from any number of threads. The one shared-state caveat
// is the deployment's linear memory: all cores execute against it, so
// concurrent runs must touch disjoint (or read-only) regions -- or go
// through svc::Server (serve/server.h), which serializes per core and
// routes each function to one core. Destruction blocks until in-flight
// warm_up jobs have finished; moving a Deployment does not invalidate
// anything (the Soc itself never moves).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "api/module_handle.h"
#include "runtime/soc.h"
#include "support/result.h"

namespace svc {

class Deployment {
 public:
  Deployment(Deployment&&) noexcept = default;
  Deployment& operator=(Deployment&& other) noexcept;

  /// Blocks until every warm_up() job still in flight has finished (so
  /// background jobs never outlive the Soc they warm).
  ~Deployment();

  /// Calls served per tier across all cores since load: tier 0
  /// (interpreter), tier 1 (fast JIT), tier 2 (profile-guided
  /// re-specialization; a subset of `jitted`). Eager deployments do no
  /// tier bookkeeping and report zeros.
  struct TierCounters {
    uint64_t interpreted = 0;
    uint64_t jitted = 0;
    uint64_t tier2 = 0;
    // Functions with an installed tier-2 artifact, summed over cores.
    uint64_t tier2_functions = 0;
  };

  /// Runs `name` on the core the annotation-driven mapper ranks best for
  /// it (runtime/mapper.h) -- the paper's "annotations drive mapping"
  /// story as the default call path. Fails on an unknown function name.
  [[nodiscard]] Result<SimResult> run(std::string_view name,
                                      const std::vector<Value>& args);

  /// Runs `name` on core `core`. Fails on an out-of-range core or an
  /// unknown function name. `step_budget` bounds the execution: past it
  /// the run returns a StepBudgetExceeded trap instead of looping
  /// forever (the differential fuzz harness leans on this to keep
  /// runaway reduction candidates cheap).
  [[nodiscard]] Result<SimResult> run_on(
      size_t core, std::string_view name, const std::vector<Value>& args,
      uint64_t step_budget = uint64_t{1} << 32);

  /// Asynchronously compiles every function on every core (through the
  /// shared cache, so same-ISA cores coalesce). The returned future
  /// completes when the deployment is fully warm: every subsequent run is
  /// served by JITed code. Ready immediately for eager deployments.
  ///
  /// With Engine::Builder::persistent_cache() configured, warm-up
  /// prefers disk: every function already persisted by a previous boot
  /// (or another process sharing the store) installs from its on-disk
  /// artifact without invoking the JIT, making a second boot's warm-up
  /// near-instant -- cache_stats() then reports cache.disk_hits and
  /// zero cache.compiles (bench/warm_start.cpp measures the win).
  ///
  /// Concurrency contract: safe to call from any thread, concurrently
  /// with run/run_on and with other warm_up calls. The deployment keeps
  /// its own handle on every job it launches and its destructor waits
  /// them out, so the returned future may be dropped -- or waited on
  /// even after the Deployment is gone (by then it is already ready).
  /// The future is satisfied by a deferred forwarder: get()/wait() work
  /// as usual, but wait_for/wait_until report future_status::deferred
  /// until first waited.
  [[nodiscard]] std::future<void> warm_up();

  /// Blocks until in-flight background compiles are done (cheap synonym
  /// for warm_up().wait() when no new compile requests are wanted).
  void wait_warmup();

  /// Summed over all cores; safe concurrently with run (each core's
  /// counters are snapshotted under its lock).
  [[nodiscard]] TierCounters tier_counters() const;

  /// The same counters for one core shard -- per-core visibility for the
  /// serving layer's stats. Fails on an out-of-range core.
  [[nodiscard]] Result<TierCounters> tier_counters_on(size_t core) const;

  /// Shared code-cache counters: cache.hits, cache.misses,
  /// cache.compiles, cache.coalesced, cache.evictions, cache.bytes.
  [[nodiscard]] Statistics cache_stats() const;

  [[nodiscard]] size_t num_cores() const;

  /// The deployment's linear memory (shared by all cores).
  [[nodiscard]] Memory& memory();

  /// The deployed module (shared ownership).
  [[nodiscard]] const ModuleHandle& module() const { return module_; }

  /// Copy of the deployed module carrying the runtime profile observed so
  /// far (merged across cores) as Profile annotations: feed it straight
  /// back into Engine::Builder::with_profile() -- or serialize it -- to
  /// close the compile -> deploy -> profile -> recompile loop. Meaningful
  /// when the engine was built with profiling(); otherwise the annotations
  /// are empty.
  ///
  /// Concurrency contract: safe to call while traffic is running (and
  /// while warm_up is in flight). Each core's profile is snapshotted
  /// under that core's lock, then merged; calls that are mid-execution
  /// when the snapshot is taken land in a later export. Every call
  /// returns a freshly annotated copy of the module.
  [[nodiscard]] ModuleHandle export_profile() const;

  /// Escape hatch to the underlying runtime for callers that need
  /// per-core control (request_compile, DMA model, ...). The Soc is owned
  /// by this Deployment; everything reachable from it follows the
  /// Deployment's lifetime.
  [[nodiscard]] Soc& soc() { return *soc_; }
  [[nodiscard]] const Soc& soc() const { return *soc_; }

 private:
  friend class Engine;
  Deployment(std::unique_ptr<Soc> soc, ModuleHandle module)
      : soc_(std::move(soc)), module_(std::move(module)) {}

  /// Handles on the warm_up jobs launched so far, so destruction (and
  /// move-assignment over a live deployment) can wait them out instead
  /// of leaving a background job with a dangling Soc*. Behind a
  /// unique_ptr so the Deployment stays movable; null only in a
  /// moved-from husk.
  struct WarmupJobs {
    std::mutex mu;
    std::vector<std::shared_future<void>> jobs;
  };
  void wait_pending_warmups();

  std::unique_ptr<Soc> soc_;
  ModuleHandle module_;
  std::unique_ptr<WarmupJobs> warmups_ = std::make_unique<WarmupJobs>();
};

}  // namespace svc
