// Deployment: one module running on one (possibly heterogeneous) set of
// cores -- the runtime half of the embeddable API (api/svc.h). Produced
// by Engine::deploy; wraps the Soc runtime (shared CodeCache, background
// JIT, tiered execution, profiling) behind a handle an embedder can hold
// without knowing any of those types exist.
//
// The deployment shares ownership of its module, so it stays valid after
// the Engine and every external ModuleHandle are gone. Move-only.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "api/module_handle.h"
#include "runtime/soc.h"
#include "support/result.h"

namespace svc {

class Deployment {
 public:
  Deployment(Deployment&&) noexcept = default;
  Deployment& operator=(Deployment&&) noexcept = default;

  /// Calls served per tier across all cores since load: tier 0
  /// (interpreter), tier 1 (fast JIT), tier 2 (profile-guided
  /// re-specialization; a subset of `jitted`). Eager deployments do no
  /// tier bookkeeping and report zeros.
  struct TierCounters {
    uint64_t interpreted = 0;
    uint64_t jitted = 0;
    uint64_t tier2 = 0;
    // Functions with an installed tier-2 artifact, summed over cores.
    uint64_t tier2_functions = 0;
  };

  /// Runs `name` on the core the annotation-driven mapper ranks best for
  /// it (runtime/mapper.h) -- the paper's "annotations drive mapping"
  /// story as the default call path. Fails on an unknown function name.
  [[nodiscard]] Result<SimResult> run(std::string_view name,
                                      const std::vector<Value>& args);

  /// Runs `name` on core `core`. Fails on an out-of-range core or an
  /// unknown function name.
  [[nodiscard]] Result<SimResult> run_on(size_t core, std::string_view name,
                                         const std::vector<Value>& args);

  /// Asynchronously compiles every function on every core (through the
  /// shared cache, so same-ISA cores coalesce). The returned future
  /// completes when the deployment is fully warm: every subsequent run is
  /// served by JITed code. Ready immediately for eager deployments. The
  /// future must not outlive this Deployment.
  [[nodiscard]] std::future<void> warm_up();

  /// Blocks until in-flight background compiles are done (cheap synonym
  /// for warm_up().wait() when no new compile requests are wanted).
  void wait_warmup();

  [[nodiscard]] TierCounters tier_counters() const;

  /// Shared code-cache counters: cache.hits, cache.misses,
  /// cache.compiles, cache.coalesced, cache.evictions, cache.bytes.
  [[nodiscard]] Statistics cache_stats() const;

  [[nodiscard]] size_t num_cores() const;

  /// The deployment's linear memory (shared by all cores).
  [[nodiscard]] Memory& memory();

  /// The deployed module (shared ownership).
  [[nodiscard]] const ModuleHandle& module() const { return module_; }

  /// Copy of the deployed module carrying the runtime profile observed so
  /// far (merged across cores) as Profile annotations: feed it straight
  /// back into Engine::Builder::with_profile() -- or serialize it -- to
  /// close the compile -> deploy -> profile -> recompile loop. Meaningful
  /// when the engine was built with profiling(); otherwise the annotations
  /// are empty.
  [[nodiscard]] ModuleHandle export_profile() const;

  /// Escape hatch to the underlying runtime for callers that need
  /// per-core control (request_compile, DMA model, ...). The Soc is owned
  /// by this Deployment; everything reachable from it follows the
  /// Deployment's lifetime.
  [[nodiscard]] Soc& soc() { return *soc_; }
  [[nodiscard]] const Soc& soc() const { return *soc_; }

 private:
  friend class Engine;
  Deployment(std::unique_ptr<Soc> soc, ModuleHandle module)
      : soc_(std::move(soc)), module_(std::move(module)) {}

  std::unique_ptr<Soc> soc_;
  ModuleHandle module_;
};

}  // namespace svc
