#include "api/engine.h"

#include <algorithm>
#include <utility>

#include "bytecode/serializer.h"
#include "bytecode/verifier.h"
#include "runtime/persistent_cache.h"
#include "ir/ir_pipeline.h"
#include "jit/jit_pipeline.h"

namespace svc {

// --- Builder setters -------------------------------------------------------

Engine::Builder& Engine::Builder::vectorize(bool on) {
  options_.offline.vectorize = on;
  return *this;
}

Engine::Builder& Engine::Builder::annotate_spill_priorities(bool on) {
  options_.offline.annotate_spill_priorities = on;
  return *this;
}

Engine::Builder& Engine::Builder::annotate_hardware_hints(bool on) {
  options_.offline.annotate_hardware_hints = on;
  return *this;
}

Engine::Builder& Engine::Builder::pass_options(const PassOptions& options) {
  options_.offline.passes = options;
  return *this;
}

Engine::Builder& Engine::Builder::offline_pipeline(std::string_view spec) {
  offline_pipeline_ = std::string(spec);
  offline_pipeline_set_ = true;
  return *this;
}

Engine::Builder& Engine::Builder::alloc_policy(AllocPolicy policy) {
  options_.jit.alloc_policy = policy;
  return *this;
}

Engine::Builder& Engine::Builder::use_annotations(bool on) {
  options_.jit.use_annotations = on;
  return *this;
}

Engine::Builder& Engine::Builder::jit_pipeline(std::string_view spec) {
  jit_pipeline_ = std::string(spec);
  jit_pipeline_set_ = true;
  return *this;
}

Engine::Builder& Engine::Builder::eager() {
  options_.mode = LoadMode::Eager;
  return *this;
}

Engine::Builder& Engine::Builder::tiered(uint32_t promote_threshold) {
  options_.mode = LoadMode::Tiered;
  options_.promote_threshold = promote_threshold;
  return *this;
}

Engine::Builder& Engine::Builder::prefetch(bool on) {
  options_.prefetch = on;
  return *this;
}

Engine::Builder& Engine::Builder::profiling(bool on) {
  options_.profile = on;
  return *this;
}

Engine::Builder& Engine::Builder::tier2(uint32_t threshold) {
  options_.tier2_threshold = threshold;
  return *this;
}

Engine::Builder& Engine::Builder::tier0_dispatch(DispatchKind kind,
                                                 bool fusion) {
  options_.tier0_dispatch = kind;
  options_.tier0_fusion = fusion;
  return *this;
}

Engine::Builder& Engine::Builder::pool_threads(size_t threads) {
  options_.pool_threads = threads;
  return *this;
}

Engine::Builder& Engine::Builder::cache_budget(size_t bytes) {
  options_.cache_budget_bytes = bytes;
  return *this;
}

Engine::Builder& Engine::Builder::persistent_cache(std::string_view path) {
  options_.persistent_cache_path = std::string(path);
  return *this;
}

Engine::Builder& Engine::Builder::memory_bytes(size_t bytes) {
  options_.memory_bytes = bytes;
  return *this;
}

Engine::Builder& Engine::Builder::serving(const ServerOptions& options) {
  options_.server = options;
  return *this;
}

Engine::Builder& Engine::Builder::cluster(const ClusterOptions& options) {
  options_.cluster = options;
  return *this;
}

Engine::Builder& Engine::Builder::with_profile(ModuleHandle profiled) {
  profile_ = std::move(profiled);
  return *this;
}

// --- Builder validation ----------------------------------------------------

Result<Engine> Engine::Builder::build() const {
  EngineOptions options = options_;
  std::vector<Diagnostic> problems;
  const auto problem = [&problems](std::string message) {
    problems.push_back({Severity::Error, {}, std::move(message)});
  };

  if (offline_pipeline_set_) {
    auto spec = PipelineSpec::parse(offline_pipeline_);
    if (!spec) {
      problem("offline pipeline '" + offline_pipeline_ +
              "' is not a valid pass list");
    } else {
      if (const auto unknown = ir_pass_manager().first_unknown(*spec)) {
        problem("unknown IR pass '" + *unknown + "' in offline pipeline '" +
                spec->str() + "'");
      }
      options.offline.pipeline = std::move(*spec);
    }
  }

  if (jit_pipeline_set_) {
    auto spec = PipelineSpec::parse(jit_pipeline_);
    if (!spec) {
      problem("JIT pipeline '" + jit_pipeline_ +
              "' is not a valid pass list");
    } else {
      if (const auto unknown = jit_pass_manager().first_unknown(*spec)) {
        problem("unknown JIT phase '" + *unknown + "' in pipeline '" +
                spec->str() + "'");
      }
      if (spec->empty() || spec->names().front() != "stack_to_reg") {
        problem("JIT pipeline '" + spec->str() +
                "' must start with 'stack_to_reg' (the translation that "
                "creates the machine function the later phases transform)");
      }
      options.jit.pipeline = std::move(*spec);
    }
  }

  if (options.mode == LoadMode::Eager) {
    if (options.prefetch) {
      problem("prefetch() requires a tiered() engine: eager deployments "
              "compile everything at deploy() already");
    }
    if (options.profile) {
      problem("profiling() requires a tiered() engine: the runtime profile "
              "is collected by the tier-0 interpreter");
    }
    if (options.tier2_threshold > 0) {
      problem("tier2() requires a tiered() engine: re-specialization "
              "promotes functions that are hot at tier 1");
    }
  } else if (options.promote_threshold == 0) {
    problem("tiered() promote_threshold must be at least 1 (a function is "
            "promoted after that many calls)");
  }

  if (options.memory_bytes == 0) {
    problem("memory_bytes() must be non-zero: deployments execute against "
            "this linear memory");
  }

  if (!options.persistent_cache_path.empty()) {
    // Opening validates the whole contract now (creatable, a directory,
    // writable) so a mis-pointed store is a build() error instead of a
    // silently memory-only deployment. The probe store is discarded;
    // each Soc opens its own against the validated path.
    if (Result<PersistentCache> store =
            PersistentCache::open(options.persistent_cache_path);
        !store.ok()) {
      problem("persistent_cache('" + options.persistent_cache_path +
              "') failed validation:\n" + store.error_text());
    }
  }

  validate_server_options(options.server, problems);
  validate_cluster_options(options.cluster, problems);

  if (!problems.empty()) return Result<Engine>::failure(std::move(problems));
  return Engine(std::move(options), profile_);
}

// --- Engine ----------------------------------------------------------------

Result<ModuleHandle> Engine::compile(std::string_view source,
                                     Statistics* stats) const {
  OfflineOptions offline = options_.offline;
  if (profile_) offline.profile = profile_.get();
  Result<Module> module = compile_module(source, offline, stats);
  if (!module.ok()) return Result<ModuleHandle>::failure(module.error());
  return ModuleHandle::adopt(std::move(module).value());
}

Result<ModuleHandle> Engine::load_bytecode(
    std::span<const uint8_t> bytes) const {
  DeserializeResult loaded = deserialize_module(bytes);
  if (!loaded.module) {
    return Result<ModuleHandle>::failure("deserialize failed: " +
                                         loaded.error);
  }
  DiagnosticEngine diags;
  if (!verify_module(*loaded.module, diags)) {
    diags.note({}, "while verifying deserialized module '" +
                       loaded.module->name() + "'");
    return Result<ModuleHandle>::failure(diags.all());
  }
  return ModuleHandle::adopt(std::move(*loaded.module));
}

std::vector<uint8_t> Engine::save_bytecode(const ModuleHandle& module) {
  if (!module) fatal("Engine::save_bytecode: empty module handle");
  return serialize_module(*module);
}

Result<Deployment> Engine::deploy(const ModuleHandle& module,
                                  std::vector<CoreSpec> cores) const {
  if (!module) {
    return Result<Deployment>::failure("Engine::deploy: empty module handle");
  }
  if (cores.empty()) {
    return Result<Deployment>::failure(
        "Engine::deploy: a deployment needs at least one core");
  }

  SocOptions soc_options;
  soc_options.jit = options_.jit;
  soc_options.mode = options_.mode;
  soc_options.prefetch = options_.prefetch;
  soc_options.promote_threshold = options_.promote_threshold;
  soc_options.profile = options_.profile;
  soc_options.tier2_threshold = options_.tier2_threshold;
  soc_options.tier0_dispatch = options_.tier0_dispatch;
  soc_options.tier0_fusion = options_.tier0_fusion;
  soc_options.pool_threads = options_.pool_threads;
  soc_options.cache_budget_bytes = options_.cache_budget_bytes;
  soc_options.persistent_cache_path = options_.persistent_cache_path;

  const size_t memory_bytes =
      std::max<size_t>(options_.memory_bytes, module->memory_hint());
  auto soc =
      std::make_unique<Soc>(std::move(cores), memory_bytes, soc_options);
  if (Result<void> r = soc->load_module(module.shared()); !r.ok()) {
    return Result<Deployment>::failure(r.error());
  }
  return Deployment(std::move(soc), module);
}

}  // namespace svc
