#include "api/deployment.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "runtime/mapper.h"

namespace svc {

Deployment& Deployment::operator=(Deployment&& other) noexcept {
  if (this != &other) {
    // The overwritten deployment's Soc is about to die: its in-flight
    // warm-up jobs must finish first, exactly as in the destructor.
    wait_pending_warmups();
    soc_ = std::move(other.soc_);
    module_ = std::move(other.module_);
    warmups_ = std::move(other.warmups_);
  }
  return *this;
}

Deployment::~Deployment() { wait_pending_warmups(); }

void Deployment::wait_pending_warmups() {
  if (!warmups_) return;  // moved-from husk
  std::vector<std::shared_future<void>> jobs;
  {
    std::lock_guard<std::mutex> lock(warmups_->mu);
    jobs.swap(warmups_->jobs);
  }
  for (const auto& job : jobs) job.wait();
}

Result<SimResult> Deployment::run(std::string_view name,
                                  const std::vector<Value>& args) {
  const auto idx = module_->find_function(name);
  if (!idx) {
    return Result<SimResult>::failure("Deployment::run: no function '" +
                                      std::string(name) + "' in module '" +
                                      module_.name() + "'");
  }
  const size_t best = choose_core(*soc_, module_->function(*idx));
  return soc_->run_on(best, name, args);
}

Result<SimResult> Deployment::run_on(size_t core, std::string_view name,
                                     const std::vector<Value>& args,
                                     uint64_t step_budget) {
  if (core >= soc_->num_cores()) {
    return Result<SimResult>::failure(
        "Deployment::run_on: core " + std::to_string(core) +
        " out of range (deployment has " +
        std::to_string(soc_->num_cores()) + ")");
  }
  if (!module_->find_function(name)) {
    return Result<SimResult>::failure("Deployment::run_on: no function '" +
                                      std::string(name) + "' in module '" +
                                      module_.name() + "'");
  }
  return soc_->run_on(core, name, args, step_budget);
}

std::future<void> Deployment::warm_up() {
  // The async job captures the Soc and the module by shared ownership /
  // raw pointer into soc_ -- both stable across moves of the Deployment
  // (the Soc object itself never moves). The job itself is retained in
  // warmups_ so ~Deployment can wait it out; the caller gets a deferred
  // forwarder onto it, which stays waitable even past the Deployment's
  // lifetime (the job is complete by then).
  Soc* soc = soc_.get();
  std::shared_ptr<const Module> module = module_.shared();
  std::shared_future<void> job =
      std::async(std::launch::async, [soc, module] {
        const auto n = static_cast<uint32_t>(module->num_functions());
        for (size_t c = 0; c < soc->num_cores(); ++c) {
          for (uint32_t f = 0; f < n; ++f) soc->core(c).request_compile(f);
        }
        soc->wait_warmup();
      }).share();
  {
    std::lock_guard<std::mutex> lock(warmups_->mu);
    // Prune finished jobs so repeated warm-ups over a long-lived
    // deployment keep the list bounded by what is actually in flight.
    std::erase_if(warmups_->jobs, [](const std::shared_future<void>& j) {
      return j.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    });
    warmups_->jobs.push_back(job);
  }
  return std::async(std::launch::deferred,
                    [job = std::move(job)] { job.wait(); });
}

void Deployment::wait_warmup() { soc_->wait_warmup(); }

Deployment::TierCounters Deployment::tier_counters() const {
  TierCounters counters;
  for (size_t c = 0; c < soc_->num_cores(); ++c) {
    const OnlineTarget& core = soc_->core(c);
    counters.interpreted += core.interpreted_calls();
    counters.jitted += core.jitted_calls();
    counters.tier2 += core.tier2_calls();
    counters.tier2_functions += core.tier2_functions();
  }
  return counters;
}

Result<Deployment::TierCounters> Deployment::tier_counters_on(
    size_t core) const {
  if (core >= soc_->num_cores()) {
    return Result<TierCounters>::failure(
        "Deployment::tier_counters_on: core " + std::to_string(core) +
        " out of range (deployment has " + std::to_string(soc_->num_cores()) +
        ")");
  }
  const Soc::CoreCounters counters = soc_->core_counters(core);
  return TierCounters{counters.interpreted, counters.jitted, counters.tier2,
                      counters.tier2_functions};
}

Statistics Deployment::cache_stats() const { return soc_->code_cache().stats(); }

size_t Deployment::num_cores() const { return soc_->num_cores(); }

Memory& Deployment::memory() { return soc_->memory(); }

ModuleHandle Deployment::export_profile() const {
  return ModuleHandle::adopt(soc_->export_profiled_module());
}

}  // namespace svc
