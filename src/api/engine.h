// svc::Engine -- the embeddable facade over the whole split pipeline.
// One object, built once from one Builder, answers every entry point the
// paper's "compile once, deploy the same bytecode everywhere" story
// needs:
//
//   Engine::Builder      unified offline + JIT + runtime configuration,
//                        validated at build() (misconfiguration is a
//                        Result error, not a surprise at run time)
//   engine.compile()     MiniC source -> Result<ModuleHandle>
//   engine.load_bytecode()  deployment image -> Result<ModuleHandle>
//   Engine::save_bytecode() ModuleHandle -> deployment image
//   engine.deploy()      ModuleHandle + cores -> Result<Deployment>
//
// and the feedback loop closes in ~10 lines:
//
//   auto engine = value_or_die(Engine::Builder().tiered().profiling()
//                                  .tier2(32).build());
//   auto module = value_or_die(engine.compile(source));
//   auto dep    = value_or_die(engine.deploy(module, cores));
//   dep.warm_up().get();
//   ... dep.run("kernel", args) ...
//   auto tuned  = value_or_die(Engine::Builder()
//                                  .with_profile(dep.export_profile())
//                                  .build());
//   auto better = value_or_die(tuned.compile(source));   // profile-seeded
//
// Errors travel as structured diagnostics inside Result<T>
// (support/result.h): no optional-plus-out-param, no fatal paths.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/deployment.h"
#include "api/module_handle.h"
#include "driver/offline_compiler.h"
#include "runtime/soc.h"
#include "serve/cluster_options.h"
#include "serve/server_options.h"
#include "support/result.h"

namespace svc {

/// The full, validated configuration behind an Engine: offline schedule,
/// per-target JIT options, and deployment-runtime knobs in one place
/// (replacing the OfflineOptions / JitOptions / OnlineTargetConfig /
/// SocOptions quartet an embedder previously stitched together by hand).
/// Assembled by Engine::Builder; read-only afterwards.
struct EngineOptions {
  // Offline (imported profiles are carried separately, as an owned
  // handle -- see Engine::Builder::with_profile).
  OfflineOptions offline;
  // Per-target JIT.
  JitOptions jit;
  // Deployment runtime (Soc/OnlineTarget wiring).
  LoadMode mode = LoadMode::Eager;
  bool prefetch = false;
  uint32_t promote_threshold = 1;
  bool profile = false;
  uint32_t tier2_threshold = 0;
  // Tier-0 engine for tiered deployments (vm/interpreter.h): the
  // production computed-goto engine by default; the portable switch
  // engine on request. Results are bit-identical across engines -- the
  // differential fuzz harness (src/fuzz) runs both as cells.
  DispatchKind tier0_dispatch = DispatchKind::Threaded;
  bool tier0_fusion = true;
  size_t pool_threads = 0;
  size_t cache_budget_bytes = SIZE_MAX;
  // Directory of the persistent on-disk code cache shared by every
  // deployment of this engine (and by other processes pointing at the
  // same directory); empty = in-memory caching only. Validated at
  // build(). See docs/PERSISTENCE.md.
  std::string persistent_cache_path;
  // Linear memory per deployment; raised to the module's own memory hint
  // at deploy() when that is larger.
  size_t memory_bytes = size_t{1} << 20;
  // Serving layer (svc::Server) knobs, consumed by serve() in
  // serve/server.h: worker count, per-core queue depth (the
  // admission-control watermark), and the per-drain batch bound.
  ServerOptions server;
  // Sharded serving (svc::Cluster) knobs, consumed by serve_cluster() in
  // serve/cluster.h: shard count, routing policy, profile-merge cadence.
  ClusterOptions cluster;
};

/// The embeddable facade: one immutable object holding the validated
/// configuration behind compile/deploy/serve.
///
/// Thread-safety: an Engine is immutable after build(); every method is
/// const and safe to call from any thread concurrently (compiles share
/// no mutable state, deploys produce independent Deployments).
/// Lifetime: an Engine may be destroyed while its ModuleHandles,
/// Deployments, and Servers live on -- they share or own everything
/// they need.
class Engine {
 public:
  class Builder;

  /// Compiles MiniC source offline (optimization, vectorization,
  /// annotations; seeded by the imported profile when the engine was
  /// built with_profile). All diagnostics of a failed compile come back
  /// inside the Result.
  [[nodiscard]] Result<ModuleHandle> compile(std::string_view source,
                                             Statistics* stats = nullptr) const;

  /// Loads and verifies a serialized deployment image
  /// (Engine::save_bytecode / serialize_module output).
  [[nodiscard]] Result<ModuleHandle> load_bytecode(
      std::span<const uint8_t> bytes) const;

  /// Serializes a module into the deployment image format (checksummed;
  /// the bytes every device of the fleet receives).
  [[nodiscard]] static std::vector<uint8_t> save_bytecode(
      const ModuleHandle& module);

  /// Deploys `module` onto `cores` with the engine's runtime
  /// configuration: one Soc sharing one CodeCache (and, with
  /// pool_threads, one background-compile pool) across all cores.
  [[nodiscard]] Result<Deployment> deploy(const ModuleHandle& module,
                                          std::vector<CoreSpec> cores) const;

  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// The profile module imported via Builder::with_profile (empty handle
  /// when none): kept alive by the engine for as long as compiles may
  /// read it.
  [[nodiscard]] const ModuleHandle& imported_profile() const {
    return profile_;
  }

 private:
  friend class Builder;
  Engine(EngineOptions options, ModuleHandle profile)
      : options_(std::move(options)), profile_(std::move(profile)) {}

  EngineOptions options_;
  ModuleHandle profile_;
};

/// Fluent, validated construction of an Engine. Setters only record; all
/// validation happens in build(), which reports every problem it finds
/// (unknown pass names, contradictory runtime knobs, ...) as one Result
/// failure.
///
/// Thread-safety: a Builder is a plain mutable value -- confine it to
/// one thread (or copy it); the Engines it builds are immutable and
/// freely shared.
class Engine::Builder {
 public:
  // --- offline schedule ---
  Builder& vectorize(bool on);
  Builder& annotate_spill_priorities(bool on);
  Builder& annotate_hardware_hints(bool on);
  Builder& pass_options(const PassOptions& options);
  /// Explicit IR pipeline ("fold,simplify,dce,vectorize,...": names from
  /// ir/ir_pipeline.h); replaces the knob-derived default schedule.
  Builder& offline_pipeline(std::string_view spec);

  // --- per-target JIT ---
  Builder& alloc_policy(AllocPolicy policy);
  Builder& use_annotations(bool on);
  /// Explicit JIT phase chain (names from jit/jit_pipeline.h; must start
  /// with "stack_to_reg").
  Builder& jit_pipeline(std::string_view spec);

  // --- deployment runtime ---
  /// Eager deployments JIT everything at deploy() (the default).
  Builder& eager();
  /// Tiered deployments interpret first and promote functions to JITed
  /// code after `promote_threshold` calls.
  Builder& tiered(uint32_t promote_threshold = 1);
  /// Tiered only: background-compile each function on its best-ranked
  /// core at deploy().
  Builder& prefetch(bool on = true);
  /// Tiered only: collect a runtime profile in the tier-0 interpreter
  /// (feeds tier2() and Deployment::export_profile()).
  Builder& profiling(bool on = true);
  /// Tiered only: re-specialize a function with profile-guided options
  /// after `threshold` JIT-served calls (0 disables tier 2).
  Builder& tier2(uint32_t threshold);
  /// Tier-0 engine selection for tiered deployments: Threaded (the
  /// default computed-goto engine, with optional superinstruction
  /// fusion) or Switch (the portable reference engine). Semantics are
  /// identical either way; this knob exists for benchmarking and for
  /// the differential fuzz harness, which runs both engines as cells.
  Builder& tier0_dispatch(DispatchKind kind, bool fusion = true);
  Builder& pool_threads(size_t threads);
  Builder& cache_budget(size_t bytes);
  /// Persistent on-disk code cache rooted at `path` (created if needed):
  /// JIT artifacts survive process restarts, so a second boot's
  /// Deployment::warm_up() loads code from disk instead of recompiling
  /// (near-instant; bench/warm_start.cpp measures it), and concurrent
  /// server processes on one host share one store. build() validates the
  /// path (creatable, a directory, writable); corrupt or stale entries
  /// at run time are silent misses that recompile. See
  /// docs/PERSISTENCE.md for the format and sharing contract.
  Builder& persistent_cache(std::string_view path);
  Builder& memory_bytes(size_t bytes);

  // --- serving layer ---
  /// Knobs for svc::Server when the engine's deployments are served via
  /// serve() (serve/server.h): workers (0 = one per core), per-core
  /// queue_depth (admission-control watermark), batch_max (requests
  /// coalesced per drain). Validated at build().
  Builder& serving(const ServerOptions& options);

  /// Knobs for svc::Cluster when the engine's deployments are served as
  /// a sharded fleet via serve_cluster() (serve/cluster.h): shard count,
  /// routing policy (consistent-hash or least-loaded), virtual-node
  /// count, load-EWMA smoothing, cross-shard profile-merge cadence, and
  /// the per-shard memory initializer. Validated at build().
  Builder& cluster(const ClusterOptions& options);

  // --- feedback loop ---
  /// Imports a profile-annotated module (Deployment::export_profile or a
  /// deserialized image of one): compiles seed their schedule from the
  /// observed behavior and carry the annotations forward. The engine
  /// shares ownership, so the handle may be dropped after build().
  Builder& with_profile(ModuleHandle profiled);

  /// Validates the assembled configuration. On failure the Result lists
  /// every problem found, not just the first.
  [[nodiscard]] Result<Engine> build() const;

 private:
  EngineOptions options_;
  ModuleHandle profile_;
  std::string offline_pipeline_;
  std::string jit_pipeline_;
  bool offline_pipeline_set_ = false;
  bool jit_pipeline_set_ = false;
};

}  // namespace svc
