// svc.h -- the umbrella header of the embeddable API. This is the one
// include an embedder (and every example and bench in this repo) needs
// for driver/runtime access:
//
//   - the facade: svc::Engine (+Builder), ModuleHandle, Deployment,
//     Result<T> -- see api/engine.h for the 10-line
//     compile -> deploy -> profile -> recompile loop
//   - the serving layer: svc::Server + serve() (serve/server.h),
//     concurrent request serving over a Deployment with per-core
//     queueing, admission control and latency/throughput stats; and
//     svc::Cluster + serve_cluster() (serve/cluster.h), the sharded
//     multi-Deployment front-end with load-aware routing, rolling
//     restarts and cross-shard profile merging
//   - the subsystems the facade is built from, re-exported for advanced
//     embedders: the offline/online drivers, the Soc runtime and its
//     shared CodeCache, the annotation-driven mapper, the iterative
//     (profile-guided) tuner, dataflow scheduling, and the deployment
//     image (de)serializer
//
// Entry points predating the facade (compile_source, compile_or_die, the
// raw-reference load()) are deprecated; see the migration table in
// README.md "Embedding API".
#pragma once

// The facade.
#include "api/deployment.h"
#include "api/engine.h"
#include "api/module_handle.h"
#include "support/result.h"

// The serving layer (svc::Server, ServerOptions, ServerStats, serve()),
// plus its sharded front-end (svc::Cluster, ClusterOptions, ClusterStats,
// serve_cluster()).
#include "serve/cluster.h"
#include "serve/server.h"

// Re-exported subsystems (the facade's vocabulary types live here:
// OfflineOptions, JitOptions, CoreSpec, SimResult, TuneConfig, ...).
#include "bytecode/serializer.h"
#include "driver/kernels.h"
#include "driver/offline_compiler.h"
#include "driver/online_compiler.h"
#include "ir/ir_pipeline.h"
#include "jit/jit_pipeline.h"
#include "runtime/code_cache.h"
#include "runtime/dataflow.h"
#include "runtime/iterative.h"
#include "runtime/mapper.h"
#include "runtime/profile_guided.h"
#include "runtime/soc.h"
