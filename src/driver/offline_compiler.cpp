#include "driver/offline_compiler.h"

#include <chrono>
#include <vector>

#include "bytecode/verifier.h"
#include "frontend/irgen.h"
#include "frontend/parser.h"
#include "ir/ir_pipeline.h"
#include "ir/lower_bytecode.h"
#include "ir/vectorizer.h"
#include "regalloc/split_alloc.h"
#include "runtime/profile_guided.h"
#include "support/diagnostics.h"

namespace svc {
namespace {

/// Static hardware-affinity estimate for the mapper (S3: "annotations may
/// also express the hardware requirements or characteristics of a code
/// module").
HardwareHintsInfo compute_hw_hints(const Function& fn) {
  // Blocks inside loops dominate dynamic behavior: weight them by an
  // estimated trip factor derived from back edges (same heuristic the
  // spill-priority analysis uses).
  std::vector<double> weight(fn.num_blocks(), 1.0);
  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    const Instruction& term = fn.block(b).terminator();
    auto mark = [&](uint32_t target) {
      if (target <= b) {
        for (uint32_t d = target; d <= b; ++d) weight[d] *= 16.0;
      }
    };
    if (term.op == Opcode::Jump) mark(term.a);
    if (term.op == Opcode::BranchIf) {
      mark(term.a);
      mark(term.b);
    }
  }

  double vector_ops = 0, float_ops = 0, branches = 0, total = 0;
  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    for (const Instruction& inst : fn.block(b).insts) {
      const double w = weight[b];
      total += w;
      if (is_vector_op(inst.op)) vector_ops += w;
      const OpCategory cat = op_info(inst.op).category;
      if (cat == OpCategory::FloatArith) float_ops += w;
      if (inst.op == Opcode::BranchIf) branches += w;
    }
  }
  HardwareHintsInfo info;
  if (vector_ops > 0) info.features |= kFeatureSimd;
  if (float_ops > 0) info.features |= kFeatureFloat;
  // Data-dependent branching beyond the loop back edges themselves.
  if (total > 0 && branches * 10.0 > total) {
    info.features |= kFeatureControlHeavy;
  }
  info.vector_intensity =
      total == 0 ? 0 : static_cast<uint32_t>(100.0 * vector_ops / total);
  return info;
}

}  // namespace

Result<Module> compile_module(std::string_view source,
                              const OfflineOptions& options,
                              Statistics* stats) {
  const auto t0 = std::chrono::steady_clock::now();

  DiagnosticEngine diags;
  auto program = parse_program(source, diags);
  if (!program) return Result<Module>::failure(diags.all());
  auto ir_fns = generate_ir(*program, diags);
  if (!ir_fns) return Result<Module>::failure(diags.all());

  // Schedule precedence: an explicit pipeline wins; otherwise an imported
  // profile seeds the vectorize / if-convert decisions with observed
  // behavior; otherwise the blind knob-derived default runs.
  const ProfileSeedDecision seed =
      options.profile ? profile_seed_decision(*options.profile)
                      : ProfileSeedDecision{};
  PipelineSpec spec;
  if (options.pipeline) {
    spec = *options.pipeline;
  } else if (seed.observed) {
    PassOptions seeded = options.passes;
    seeded.if_convert = seed.if_convert;
    spec = default_ir_pipeline(seeded, seed.vectorize);
  } else {
    spec = default_ir_pipeline(options.passes, options.vectorize);
  }
  if (const auto unknown = ir_pass_manager().first_unknown(spec)) {
    diags.error({}, "unknown IR pass '" + *unknown + "' in pipeline '" +
                        spec.str() + "'");
    return Result<Module>::failure(diags.all());
  }

  Module module;
  for (IRFunction& ir : *ir_fns) {
    IRPipelineContext ctx;
    ir_pass_manager().run(spec, ir, ctx, stats);

    Function fn = lower_to_bytecode(ir);
    for (const auto& [header, vf] : ctx.vec_stats.vectorized_headers) {
      fn.annotations().push_back(
          VectorizedLoopInfo{header, vf, true}.encode());
    }
    if (options.annotate_spill_priorities) annotate_spill_priorities(fn);
    if (options.annotate_hardware_hints) {
      fn.annotations().push_back(compute_hw_hints(fn).encode());
    }
    // Re-ingest the imported profile: the observed record rides along on
    // the recompiled function (matched by name -- indices shift across
    // compiles, names persist). Copied verbatim: block references inside
    // are advisory and may be stale for the new block layout, but the
    // aggregate counters the consumers read stay meaningful.
    if (options.profile) {
      if (const auto prev = options.profile->find_function(fn.name())) {
        const Annotation* ann = find_annotation(
            options.profile->function(*prev).annotations(),
            AnnotationKind::Profile);
        if (ann) fn.annotations().push_back(*ann);
      }
    }
    module.add_function(std::move(fn));
  }

  if (!verify_module(module, diags)) return Result<Module>::failure(diags.all());

  if (stats) {
    const auto t1 = std::chrono::steady_clock::now();
    stats->add("offline.compile_us",
               std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                   .count());
  }
  return module;
}

// The deprecated shims below are implemented strictly in terms of
// compile_module so old and new entry points cannot drift apart
// (tests/api_test.cpp asserts bit-identical output).

std::optional<Module> compile_source(std::string_view source,
                                     const OfflineOptions& options,
                                     DiagnosticEngine& diags,
                                     Statistics* stats) {
  Result<Module> result = compile_module(source, options, stats);
  if (!result.ok()) {
    for (const Diagnostic& d : result.error()) diags.report(d);
    return std::nullopt;
  }
  return std::move(result).value();
}

Module compile_or_die(std::string_view source,
                      const OfflineOptions& options) {
  Result<Module> result = compile_module(source, options);
  if (!result.ok()) {
    fatal("compile_or_die failed:\n" + result.error_text());
  }
  return std::move(result).value();
}

}  // namespace svc
