#include "driver/online_compiler.h"

#include <cassert>
#include <chrono>

#include "bytecode/verifier.h"
#include "runtime/profile_guided.h"
#include "support/diagnostics.h"
#include "vm/interpreter.h"

namespace svc {

namespace {

/// Direct-callee adjacency per function (callee indices are in range by
/// verification). Scanned once so per-root closures below walk the graph,
/// not the instruction stream.
std::vector<std::vector<uint32_t>> callee_graph(const Module& module) {
  std::vector<std::vector<uint32_t>> callees(module.num_functions());
  for (uint32_t f = 0; f < module.num_functions(); ++f) {
    for (const BasicBlock& block : module.function(f).blocks()) {
      for (const Instruction& inst : block.insts) {
        if (inst.op == Opcode::Call) callees[f].push_back(inst.a);
      }
    }
  }
  return callees;
}

/// `root` plus every function transitively callable from it, i.e. every
/// function the simulator may execute when `root` runs.
std::vector<uint32_t> reachable_functions(
    const std::vector<std::vector<uint32_t>>& callees, uint32_t root) {
  std::vector<bool> seen(callees.size(), false);
  std::vector<uint32_t> stack{root};
  std::vector<uint32_t> out;
  seen[root] = true;
  while (!stack.empty()) {
    const uint32_t f = stack.back();
    stack.pop_back();
    out.push_back(f);
    for (const uint32_t callee : callees[f]) {
      if (!seen[callee]) {
        seen[callee] = true;
        stack.push_back(callee);
      }
    }
  }
  return out;
}

}  // namespace

OnlineTarget::~OnlineTarget() { drain_pending(); }

void OnlineTarget::drain_pending() {
  // In-flight background jobs capture `this` (and read module_ without the
  // state mutex), so both destruction and re-load must wait them out. The
  // futures are collected under the lock but waited on outside it: pool
  // workers never take our mutex, but holding it while blocked would stall
  // concurrent run() callers needlessly.
  std::vector<std::shared_future<CodeCache::Artifact>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (FuncState& st : states_) {
      if (st.pending.valid()) pending.push_back(st.pending);
      if (st.tier2_pending.valid()) pending.push_back(st.tier2_pending);
    }
  }
  for (const auto& future : pending) future.wait();
}

Result<void> OnlineTarget::load_module(std::shared_ptr<const Module> module) {
  if (!module) {
    return Result<void>::failure("OnlineTarget::load_module: null module");
  }
  assert(module->id() != 0 && "loading a moved-from module");
  DiagnosticEngine diags;
  if (!verify_module(*module, diags)) {
    diags.note({}, "while loading module '" + module->name() + "'");
    return Result<void>::failure(diags.all());
  }

  // Re-loading while compiles of the previous module are in flight would
  // hand them a dangling module pointer; finish them first.
  drain_pending();

  // Registration computes the restart-stable content hashes the shared
  // cache's on-disk tier keys by (no-op without a persistent store).
  if (config_.cache) config_.cache->register_module(*module);

  std::lock_guard<std::mutex> lock(mutex_);
  module_ = std::move(module);
  const Module& mod = *module_;
  jit_stats_.clear();
  jit_seconds_ = 0.0;
  interpreted_calls_ = 0;
  jitted_calls_ = 0;
  tier2_calls_ = 0;
  code_.clear();
  states_.clear();
  image_.reset();
  profile_.reset(config_.profile ? mod.num_functions() : 0);

  const uint32_t n = static_cast<uint32_t>(mod.num_functions());
  if (config_.mode == LoadMode::Tiered) {
    // No compilation now: empty slots are filled as artifacts install.
    code_.resize(n);
    states_.resize(n);
    image_ = std::make_shared<std::vector<MFunction>>(code_);
    const auto callees = callee_graph(mod);
    for (uint32_t i = 0; i < n; ++i) {
      states_[i].reachable = reachable_functions(callees, i);
    }
    return {};
  }

  const auto t0 = std::chrono::steady_clock::now();
  code_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const CodeCache::Artifact artifact = compile_artifact(i);
    jit_stats_.merge(artifact->stats);
    code_.push_back(artifact->code);
  }
  const auto t1 = std::chrono::steady_clock::now();
  jit_seconds_ = std::chrono::duration<double>(t1 - t0).count();
  return {};
}

void OnlineTarget::load(const Module& module) {
  // Deprecated shim: borrowed lifetime (caller keeps `module` alive),
  // fatal on error -- the pre-Result contract, implemented on the new
  // path so the two cannot diverge.
  const Result<void> result = load_module(borrow_module(module));
  if (!result.ok()) {
    fatal("OnlineTarget::load: invalid module '" + module.name() + "':\n" +
          result.error_text());
  }
}

SimResult OnlineTarget::run(std::string_view name,
                            const std::vector<Value>& args, Memory& memory,
                            uint64_t step_budget) {
  if (!module_) fatal("OnlineTarget::run before load");
  const auto idx = module_->find_function(name);
  if (!idx) fatal("OnlineTarget::run: unknown function");
  return run(*idx, args, memory, step_budget);
}

SimResult OnlineTarget::run(uint32_t func_idx, const std::vector<Value>& args,
                            Memory& memory, uint64_t step_budget) {
  if (!module_) fatal("OnlineTarget::run before load");
  assert(func_idx < module_->num_functions());

  if (config_.mode == LoadMode::Tiered) {
    bool use_jit = true;
    uint8_t tier = 1;
    std::shared_ptr<const std::vector<MFunction>> image;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      FuncState& st = states_[func_idx];
      ++st.calls;
      if (!st.requested && st.calls >= config_.promote_threshold) {
        request_compile_locked(func_idx);
      }
      for (const uint32_t r : st.reachable) {
        poll_install_locked(r);
        use_jit = use_jit && states_[r].installed;
      }
      if (use_jit) {
        ++jitted_calls_;
        ++st.jit_calls;
        if (config_.tier2_threshold > 0 && !st.tier2_requested &&
            st.jit_calls >= config_.tier2_threshold) {
          request_tier2_locked(func_idx);
        }
        poll_tier2_locked(func_idx);
        if (st.tier2_installed) {
          tier = 2;
          ++tier2_calls_;
        }
        image = image_;
      } else {
        ++interpreted_calls_;
      }
    }
    // Execution happens outside the lock on the snapshot taken inside it:
    // tier-1 installs only fill slots this run cannot reach yet, and a
    // tier-2 install swaps in a *new* image rather than mutating ours.
    if (!use_jit) return interpret(func_idx, args, memory, step_budget);
    Simulator sim(desc_, *image, memory);
    sim.set_step_budget(step_budget);
    SimResult result = sim.run(func_idx, args);
    result.tier = tier;
    return result;
  }

  Simulator sim(desc_, code_, memory);
  sim.set_step_budget(step_budget);
  return sim.run(func_idx, args);
}

void OnlineTarget::request_compile(uint32_t func_idx) {
  if (config_.mode != LoadMode::Tiered || !module_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (func_idx >= states_.size()) return;
  request_compile_locked(func_idx);
}

bool OnlineTarget::jit_ready(uint32_t func_idx) {
  if (config_.mode != LoadMode::Tiered) return module_ != nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (func_idx >= states_.size()) return false;
  bool ready = true;
  for (const uint32_t r : states_[func_idx].reachable) {
    poll_install_locked(r);
    ready = ready && states_[r].installed;
  }
  return ready;
}

uint64_t OnlineTarget::interpreted_calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return interpreted_calls_;
}

uint64_t OnlineTarget::jitted_calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jitted_calls_;
}

uint64_t OnlineTarget::tier2_calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tier2_calls_;
}

size_t OnlineTarget::tier2_functions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const FuncState& st : states_) n += st.tier2_installed ? 1 : 0;
  return n;
}

ProfileData OnlineTarget::profile() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return profile_;
}

void OnlineTarget::seed_profile(const ProfileData& seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_profile_ = seed;
}

Module OnlineTarget::export_profiled_module() const {
  if (!module_) fatal("OnlineTarget::export_profiled_module before load");
  std::lock_guard<std::mutex> lock(mutex_);
  return attach_profile(*module_, profile_);
}

size_t OnlineTarget::code_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const MFunction& fn : code_) total += fn.code_bytes();
  return total;
}

CodeCache::Artifact OnlineTarget::compile_artifact(uint32_t func_idx) const {
  if (config_.cache) {
    const CodeCacheKey key{module_->id(), func_idx, desc_.kind,
                           jit_.options().cache_key()};
    return config_.cache->get_or_compile(
        key, [this, func_idx] { return jit_.compile(*module_, func_idx); });
  }
  return std::make_shared<const JitArtifact>(jit_.compile(*module_, func_idx));
}

void OnlineTarget::request_compile_locked(uint32_t func_idx) {
  // Requesting a function requests its whole reachable set: tier-up needs
  // every callee installed before the simulator may run the caller.
  for (const uint32_t r : states_[func_idx].reachable) {
    FuncState& st = states_[r];
    if (st.requested) continue;
    st.requested = true;
    if (config_.pool) {
      st.pending =
          config_.pool->submit([this, r] { return compile_artifact(r); })
              .share();
    } else {
      install_locked(r, *compile_artifact(r));
    }
  }
}

void OnlineTarget::request_tier2_locked(uint32_t func_idx) {
  FuncState& st = states_[func_idx];
  st.tier2_requested = true;
  // Freeze the profile the re-specialization is derived from: the hash
  // keys the cache entry, so later observations produce a *different*
  // tier-2 artifact instead of silently aliasing this one. Own
  // observations plus the externally seeded baseline (seed_profile), so
  // a cluster-seeded target specializes for fleet traffic.
  ProfileInfo profile = func_idx < profile_.num_functions()
                            ? profile_.function(func_idx)
                            : ProfileInfo{};
  if (func_idx < seed_profile_.num_functions()) {
    profile.merge(seed_profile_.function(func_idx));
  }
  const JitOptions tier2 = derive_tier2_options(
      jit_.options(), desc_, module_->function(func_idx), profile);
  const uint64_t profile_hash = profile.hash();
  const auto compile_job = [this, func_idx, tier2,
                            profile_hash]() -> CodeCache::Artifact {
    const JitCompiler tier2_jit(desc_, tier2);
    if (config_.cache) {
      const CodeCacheKey key{module_->id(),     func_idx, desc_.kind,
                             tier2.cache_key(), 2,        profile_hash};
      return config_.cache->get_or_compile(key, [&] {
        return tier2_jit.compile(*module_, func_idx);
      });
    }
    return std::make_shared<const JitArtifact>(
        tier2_jit.compile(*module_, func_idx));
  };
  if (config_.pool) {
    st.tier2_pending = config_.pool->submit(compile_job).share();
  } else {
    install_tier2_locked(func_idx, *compile_job());
  }
}

void OnlineTarget::poll_install_locked(uint32_t func_idx) {
  FuncState& st = states_[func_idx];
  if (st.installed || !st.requested || !st.pending.valid()) return;
  if (st.pending.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return;
  }
  install_locked(func_idx, *st.pending.get());
  st.pending = {};
}

void OnlineTarget::poll_tier2_locked(uint32_t func_idx) {
  FuncState& st = states_[func_idx];
  if (st.tier2_installed || !st.tier2_requested || !st.tier2_pending.valid()) {
    return;
  }
  if (st.tier2_pending.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return;
  }
  install_tier2_locked(func_idx, *st.tier2_pending.get());
  st.tier2_pending = {};
}

void OnlineTarget::install_locked(uint32_t func_idx,
                                  const JitArtifact& artifact) {
  code_[func_idx] = artifact.code;
  // In-place image write: this slot is empty and unreachable by any run
  // in flight (tier-up requires the whole reachable set installed), so no
  // snapshot holder can be reading it.
  (*image_)[func_idx] = artifact.code;
  jit_stats_.merge(artifact.stats);
  jit_seconds_ += artifact.compile_seconds;
  states_[func_idx].installed = true;
}

void OnlineTarget::install_tier2_locked(uint32_t func_idx,
                                        const JitArtifact& artifact) {
  code_[func_idx] = artifact.code;
  // Copy-on-write: the replaced slot may be executing right now in a run
  // that snapshotted the current image, so swap in a fresh vector instead
  // of mutating the shared one. Tier-2 installs are rare (once per hot
  // function), so the full copy amortizes to nothing.
  image_ = std::make_shared<std::vector<MFunction>>(code_);
  jit_stats_.merge(artifact.stats);
  jit_stats_.add("jit.tier2_installs", 1);
  jit_seconds_ += artifact.compile_seconds;
  states_[func_idx].tier2_installed = true;
}

SimResult OnlineTarget::interpret(uint32_t func_idx,
                                  const std::vector<Value>& args,
                                  Memory& memory, uint64_t step_budget) {
  Interpreter interp(*module_, memory);
  interp.set_step_budget(step_budget);
  interp.set_dispatch(config_.tier0_dispatch);
  interp.set_fusion(config_.tier0_fusion);
  // Tier-0 pre-decoded streams persist across the per-call Interpreter:
  // lowering happens once per (module, function), not once per request.
  interp.set_predecode_cache(config_.predecode ? config_.predecode
                                               : &predecode_);
  // Concurrent tier-0 calls collect into a per-call local and merge under
  // the lock afterwards; the collector itself is not thread-safe.
  ProfileData local;
  if (config_.profile) {
    local.reset(module_->num_functions());
    interp.set_profile(&local);
  }
  const ExecResult r = interp.run(func_idx, args);
  if (config_.profile) {
    std::lock_guard<std::mutex> lock(mutex_);
    profile_.merge(local);
  }
  SimResult out;
  out.interpreted = true;
  out.tier = 0;
  out.trap = r.trap;
  if (r.value) out.value = *r.value;
  out.stats.instructions = r.steps;
  out.stats.cycles = r.steps * kInterpreterCyclesPerStep;
  return out;
}

}  // namespace svc
