#include "driver/online_compiler.h"

#include <chrono>

#include "support/diagnostics.h"

namespace svc {

void OnlineTarget::load(const Module& module) {
  module_ = &module;
  jit_stats_.clear();
  const auto t0 = std::chrono::steady_clock::now();
  code_.clear();
  code_.reserve(module.num_functions());
  for (uint32_t i = 0; i < module.num_functions(); ++i) {
    JitArtifact artifact = jit_.compile(module, i);
    jit_stats_.merge(artifact.stats);
    code_.push_back(std::move(artifact.code));
  }
  const auto t1 = std::chrono::steady_clock::now();
  jit_seconds_ = std::chrono::duration<double>(t1 - t0).count();
}

SimResult OnlineTarget::run(std::string_view name,
                            const std::vector<Value>& args, Memory& memory,
                            uint64_t step_budget) {
  if (!module_) fatal("OnlineTarget::run before load");
  const auto idx = module_->find_function(name);
  if (!idx) fatal("OnlineTarget::run: unknown function");
  Simulator sim(desc_, code_, memory);
  sim.set_step_budget(step_budget);
  return sim.run(*idx, args);
}

size_t OnlineTarget::code_bytes() const {
  size_t total = 0;
  for (const MFunction& fn : code_) total += fn.code_bytes();
  return total;
}

}  // namespace svc
