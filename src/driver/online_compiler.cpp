#include "driver/online_compiler.h"

#include <chrono>

#include "bytecode/verifier.h"
#include "support/diagnostics.h"
#include "vm/interpreter.h"

namespace svc {

namespace {

/// Direct-callee adjacency per function (callee indices are in range by
/// verification). Scanned once so per-root closures below walk the graph,
/// not the instruction stream.
std::vector<std::vector<uint32_t>> callee_graph(const Module& module) {
  std::vector<std::vector<uint32_t>> callees(module.num_functions());
  for (uint32_t f = 0; f < module.num_functions(); ++f) {
    for (const BasicBlock& block : module.function(f).blocks()) {
      for (const Instruction& inst : block.insts) {
        if (inst.op == Opcode::Call) callees[f].push_back(inst.a);
      }
    }
  }
  return callees;
}

/// `root` plus every function transitively callable from it, i.e. every
/// function the simulator may execute when `root` runs.
std::vector<uint32_t> reachable_functions(
    const std::vector<std::vector<uint32_t>>& callees, uint32_t root) {
  std::vector<bool> seen(callees.size(), false);
  std::vector<uint32_t> stack{root};
  std::vector<uint32_t> out;
  seen[root] = true;
  while (!stack.empty()) {
    const uint32_t f = stack.back();
    stack.pop_back();
    out.push_back(f);
    for (const uint32_t callee : callees[f]) {
      if (!seen[callee]) {
        seen[callee] = true;
        stack.push_back(callee);
      }
    }
  }
  return out;
}

}  // namespace

OnlineTarget::~OnlineTarget() { drain_pending(); }

void OnlineTarget::drain_pending() {
  // In-flight background jobs capture `this` (and read module_ without the
  // state mutex), so both destruction and re-load must wait them out. The
  // futures are collected under the lock but waited on outside it: pool
  // workers never take our mutex, but holding it while blocked would stall
  // concurrent run() callers needlessly.
  std::vector<std::shared_future<CodeCache::Artifact>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (FuncState& st : states_) {
      if (st.pending.valid()) pending.push_back(st.pending);
    }
  }
  for (const auto& future : pending) future.wait();
}

void OnlineTarget::load(const Module& module) {
  DiagnosticEngine diags;
  if (!verify_module(module, diags)) {
    fatal("OnlineTarget::load: invalid module '" + module.name() + "':\n" +
          diags.dump());
  }

  // Re-loading while compiles of the previous module are in flight would
  // hand them a dangling module pointer; finish them first.
  drain_pending();

  std::lock_guard<std::mutex> lock(mutex_);
  module_ = &module;
  jit_stats_.clear();
  jit_seconds_ = 0.0;
  interpreted_calls_ = 0;
  jitted_calls_ = 0;
  code_.clear();
  states_.clear();

  const uint32_t n = static_cast<uint32_t>(module.num_functions());
  if (config_.mode == LoadMode::Tiered) {
    // No compilation now: empty slots are filled as artifacts install.
    code_.resize(n);
    states_.resize(n);
    const auto callees = callee_graph(module);
    for (uint32_t i = 0; i < n; ++i) {
      states_[i].reachable = reachable_functions(callees, i);
    }
    return;
  }

  const auto t0 = std::chrono::steady_clock::now();
  code_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const CodeCache::Artifact artifact = compile_artifact(i);
    jit_stats_.merge(artifact->stats);
    code_.push_back(artifact->code);
  }
  const auto t1 = std::chrono::steady_clock::now();
  jit_seconds_ = std::chrono::duration<double>(t1 - t0).count();
}

SimResult OnlineTarget::run(std::string_view name,
                            const std::vector<Value>& args, Memory& memory,
                            uint64_t step_budget) {
  if (!module_) fatal("OnlineTarget::run before load");
  const auto idx = module_->find_function(name);
  if (!idx) fatal("OnlineTarget::run: unknown function");

  if (config_.mode == LoadMode::Tiered) {
    bool use_jit = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      FuncState& st = states_[*idx];
      ++st.calls;
      if (!st.requested && st.calls >= config_.promote_threshold) {
        request_compile_locked(*idx);
      }
      for (const uint32_t r : st.reachable) {
        poll_install_locked(r);
        use_jit = use_jit && states_[r].installed;
      }
      if (use_jit) {
        ++jitted_calls_;
      } else {
        ++interpreted_calls_;
      }
    }
    // Execution happens outside the lock: installed code_ entries are
    // immutable once their installed flag has been observed, and
    // concurrent installs only touch *other* (pre-sized) vector slots.
    if (!use_jit) return interpret(*idx, args, memory, step_budget);
  }

  Simulator sim(desc_, code_, memory);
  sim.set_step_budget(step_budget);
  return sim.run(*idx, args);
}

void OnlineTarget::request_compile(uint32_t func_idx) {
  if (config_.mode != LoadMode::Tiered || !module_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (func_idx >= states_.size()) return;
  request_compile_locked(func_idx);
}

bool OnlineTarget::jit_ready(uint32_t func_idx) {
  if (config_.mode != LoadMode::Tiered) return module_ != nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (func_idx >= states_.size()) return false;
  bool ready = true;
  for (const uint32_t r : states_[func_idx].reachable) {
    poll_install_locked(r);
    ready = ready && states_[r].installed;
  }
  return ready;
}

uint64_t OnlineTarget::interpreted_calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return interpreted_calls_;
}

uint64_t OnlineTarget::jitted_calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jitted_calls_;
}

size_t OnlineTarget::code_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const MFunction& fn : code_) total += fn.code_bytes();
  return total;
}

CodeCache::Artifact OnlineTarget::compile_artifact(uint32_t func_idx) const {
  if (config_.cache) {
    const CodeCacheKey key{module_, func_idx, desc_.kind,
                           jit_.options().cache_key()};
    return config_.cache->get_or_compile(
        key, [this, func_idx] { return jit_.compile(*module_, func_idx); });
  }
  return std::make_shared<const JitArtifact>(jit_.compile(*module_, func_idx));
}

void OnlineTarget::request_compile_locked(uint32_t func_idx) {
  // Requesting a function requests its whole reachable set: tier-up needs
  // every callee installed before the simulator may run the caller.
  for (const uint32_t r : states_[func_idx].reachable) {
    FuncState& st = states_[r];
    if (st.requested) continue;
    st.requested = true;
    if (config_.pool) {
      st.pending =
          config_.pool->submit([this, r] { return compile_artifact(r); })
              .share();
    } else {
      install_locked(r, *compile_artifact(r));
    }
  }
}

void OnlineTarget::poll_install_locked(uint32_t func_idx) {
  FuncState& st = states_[func_idx];
  if (st.installed || !st.requested || !st.pending.valid()) return;
  if (st.pending.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return;
  }
  install_locked(func_idx, *st.pending.get());
  st.pending = {};
}

void OnlineTarget::install_locked(uint32_t func_idx,
                                  const JitArtifact& artifact) {
  code_[func_idx] = artifact.code;
  jit_stats_.merge(artifact.stats);
  jit_seconds_ += artifact.compile_seconds;
  states_[func_idx].installed = true;
}

SimResult OnlineTarget::interpret(uint32_t func_idx,
                                  const std::vector<Value>& args,
                                  Memory& memory, uint64_t step_budget) {
  Interpreter interp(*module_, memory);
  interp.set_step_budget(step_budget);
  const ExecResult r = interp.run(func_idx, args);
  SimResult out;
  out.interpreted = true;
  out.trap = r.trap;
  if (r.value) out.value = *r.value;
  out.stats.instructions = r.steps;
  out.stats.cycles = r.steps * kInterpreterCyclesPerStep;
  return out;
}

}  // namespace svc
