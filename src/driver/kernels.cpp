#include "driver/kernels.h"

#include <array>

namespace svc {
namespace {

// --- Table 1 kernels (paper S4, [42]) -----------------------------------

constexpr std::string_view kVecAdd = R"(
// vecadd fp: c[i] = a[i] + b[i]
fn vecadd(c: *f32, a: *f32, b: *f32, n: i32) {
  var i: i32 = 0;
  while (i < n) {
    c[i] = a[i] + b[i];
    i = i + 1;
  }
}
)";

constexpr std::string_view kSaxpy = R"(
// saxpy fp: y[i] = a * x[i] + y[i]
fn saxpy(a: f32, x: *f32, y: *f32, n: i32) {
  var i: i32 = 0;
  while (i < n) {
    y[i] = a * x[i] + y[i];
    i = i + 1;
  }
}
)";

constexpr std::string_view kDscal = R"(
// dscal fp: x[i] = a * x[i]   (f32 lanes; the paper's fp scaling kernel)
fn dscal(a: f32, x: *f32, n: i32) {
  var i: i32 = 0;
  while (i < n) {
    x[i] = a * x[i];
    i = i + 1;
  }
}
)";

constexpr std::string_view kMaxU8 = R"(
// max u8: running maximum over bytes
fn max_u8(p: *u8, n: i32) -> i32 {
  var m: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    m = max_u(m, p[i]);
    i = i + 1;
  }
  return m;
}
)";

constexpr std::string_view kSumU8 = R"(
// sum u8: widening byte sum
fn sum_u8(p: *u8, n: i32) -> i32 {
  var s: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    s = s + p[i];
    i = i + 1;
  }
  return s;
}
)";

constexpr std::string_view kSumU16 = R"(
// sum u16: widening 16-bit sum
fn sum_u16(p: *u16, n: i32) -> i32 {
  var s: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    s = s + p[i];
    i = i + 1;
  }
  return s;
}
)";

constexpr std::array<KernelInfo, 6> kTable1 = {{
    {"vecadd fp", "vecadd", kVecAdd, KernelShape::MapF32},
    {"saxpy fp", "saxpy", kSaxpy, KernelShape::MapF32},
    {"dscal fp", "dscal", kDscal, KernelShape::ScaleF32},
    {"max u8", "max_u8", kMaxU8, KernelShape::ReduceU8},
    {"sum u8", "sum_u8", kSumU8, KernelShape::ReduceU8},
    {"sum u16", "sum_u16", kSumU16, KernelShape::ReduceU16},
}};

// --- auxiliary kernels -----------------------------------------------------

constexpr std::string_view kBranchyMax = R"(
// Branchy scalar max: the data-dependent-branch formulation.
fn max_u8_branchy(p: *u8, n: i32) -> i32 {
  var m: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    var t: i32 = p[i];
    if (t > m) {
      m = t;
    }
    i = i + 1;
  }
  return m;
}
)";

constexpr KernelInfo kBranchyMaxInfo = {
    "max u8 (branchy)", "max_u8_branchy", kBranchyMax, KernelShape::ReduceU8};

constexpr std::string_view kControl = R"(
// Control-heavy token scanner: counts runs of bytes above a threshold.
// Dominated by unpredictable branches; the mapper should keep it on the
// host core rather than a deep-pipeline accelerator.
fn count_runs(p: *u8, n: i32, thresh: i32) -> i32 {
  var runs: i32 = 0;
  var inside: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    var v: i32 = p[i];
    if (v > thresh) {
      if (inside == 0) {
        runs = runs + 1;
        inside = 1;
      }
    } else {
      inside = 0;
    }
    i = i + 1;
  }
  return runs;
}
)";

constexpr KernelInfo kControlInfo = {"count_runs", "count_runs", kControl,
                                     KernelShape::ReduceU8};

constexpr std::string_view kFir = R"(
// 4-tap FIR filter over f32 samples: out[i] = sum_k h[k] * in[i+k].
// The taps are scalar parameters so the inner computation stays a
// vectorizable map over the input window.
fn fir4(out: *f32, in: *f32, n: i32, h0: f32, h1: f32) {
  var i: i32 = 0;
  while (i < n) {
    out[i] = h0 * in[i] + h1 * in[i + 1];
    i = i + 1;
  }
}

fn gain(x: *f32, n: i32, g: f32) {
  var i: i32 = 0;
  while (i < n) {
    x[i] = g * x[i];
    i = i + 1;
  }
}

fn energy(x: *f32, n: i32) -> f32 {
  var acc: f32 = 0.0;
  var i: i32 = 0;
  while (i < n) {
    acc = acc + x[i] * x[i];
    i = i + 1;
  }
  return acc;
}
)";

}  // namespace

std::span<const KernelInfo> table1_kernels() { return kTable1; }

const KernelInfo& branchy_max_kernel() { return kBranchyMaxInfo; }

const KernelInfo& control_kernel() { return kControlInfo; }

std::string_view fir_source() { return kFir; }

}  // namespace svc
