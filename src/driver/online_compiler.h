// A deployed target: the device-side pairing of a JIT compiler and its
// simulated core. Loading a module JIT-compiles every function; `run`
// executes on the cycle-approximate simulator. This is what "shipping the
// same bytecode to three machines" looks like in the reproduction.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "bytecode/module.h"
#include "jit/jit_compiler.h"
#include "targets/simulator.h"
#include "targets/target_registry.h"

namespace svc {

class OnlineTarget {
 public:
  explicit OnlineTarget(TargetKind kind, JitOptions options = {})
      : desc_(target_desc(kind)), jit_(desc_, options) {}

  [[nodiscard]] const MachineDesc& desc() const { return desc_; }
  [[nodiscard]] const Statistics& jit_stats() const { return jit_stats_; }
  [[nodiscard]] double jit_seconds() const { return jit_seconds_; }
  [[nodiscard]] const std::vector<MFunction>& code() const { return code_; }

  /// JIT-compiles every function of `module` for this target.
  void load(const Module& module);

  /// Runs a loaded function by name on `memory`.
  [[nodiscard]] SimResult run(std::string_view name,
                              const std::vector<Value>& args, Memory& memory,
                              uint64_t step_budget = uint64_t{1} << 32);

  /// Total emitted code size (deployment footprint per target).
  [[nodiscard]] size_t code_bytes() const;

 private:
  const MachineDesc& desc_;
  JitCompiler jit_;
  const Module* module_ = nullptr;
  std::vector<MFunction> code_;
  Statistics jit_stats_;
  double jit_seconds_ = 0.0;
};

}  // namespace svc
