// A deployed target: the device-side pairing of a JIT compiler and its
// simulated core, run as a *tiered* runtime. Eager mode keeps the original
// install-time behavior (load JIT-compiles every function before the first
// instruction runs); tiered mode starts executing immediately in the
// reference interpreter (tier 0) and promotes a function to its JITed
// artifact (tier 1) once a background compile -- shared through an
// optional CodeCache and ThreadPool -- has finished. This is what
// "shipping the same bytecode to three machines" looks like when the
// machines also have to start up fast.
//
// The runtime also observes itself: with config.profile the tier-0
// interpreter collects ProfileData (calls, branch bias, trip counts,
// vector widths), and with config.tier2_threshold > 0 functions hot at
// tier 1 are *re*-specialized -- the JIT re-runs with profile-derived
// options (runtime/profile_guided.h) and the tier-2 artifact replaces the
// tier-1 code under a copy-on-write code image, so in-flight executions
// keep their snapshot. export_profiled_module() hands the observations
// back to the offline side. Results are bit-identical across all tiers.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "bytecode/module.h"
#include "jit/jit_compiler.h"
#include "runtime/code_cache.h"
#include "support/result.h"
#include "support/thread_pool.h"
#include "targets/simulator.h"
#include "targets/target_registry.h"
#include "vm/interpreter.h"
#include "vm/predecode.h"
#include "vm/profile.h"

namespace svc {

/// How a target materializes machine code for a loaded module.
enum class LoadMode : uint8_t {
  Eager,   // JIT every function during load() (the classic behavior)
  Tiered,  // interpret first, promote to JITed code once compiled
};

/// Deterministic tier-0 cost model: one interpreted bytecode step costs
/// this many "cycles", so cold-start numbers are comparable to simulated
/// machine cycles and stable across hosts (bench/warmup_throughput.cpp).
inline constexpr uint64_t kInterpreterCyclesPerStep = 8;

/// Tiered-runtime wiring for one OnlineTarget. `cache` and `pool` are
/// optional and shared (typically owned by a Soc): without a pool, tier-up
/// compiles run synchronously at the promotion threshold; without a cache,
/// artifacts are private to the target.
struct OnlineTargetConfig {
  LoadMode mode = LoadMode::Eager;
  // Calls of a function before its JIT compile is requested.
  uint32_t promote_threshold = 1;
  // Tier-0 runtime profiling (tiered mode only): the interpreter records
  // per-function ProfileData, merged under the target's lock. Feeds
  // tier-2 re-specialization and export_profiled_module().
  bool profile = false;
  // Calls served by JITed code before the profile-guided optimizing
  // recompile (tier 2) of that function is requested; 0 disables tier 2.
  uint32_t tier2_threshold = 0;
  CodeCache* cache = nullptr;
  ThreadPool* pool = nullptr;
  // Pre-decoded tier-0 stream cache shared across targets (pre-decoding
  // is target-independent, so a Soc shares one across all its cores the
  // way it shares the CodeCache). Without one the target keeps a private
  // cache, so streams are still lowered once per deployment rather than
  // once per call.
  PredecodeCache* predecode = nullptr;
  // Tier-0 engine selection, forwarded to every interpreter this target
  // creates. The defaults are the production engine; benches and
  // differential tests flip these to compare engines (results are
  // bit-identical either way -- see vm/interpreter.h).
  DispatchKind tier0_dispatch = DispatchKind::Threaded;
  bool tier0_fusion = true;
};

class OnlineTarget {
 public:
  using Config = OnlineTargetConfig;

  explicit OnlineTarget(TargetKind kind, JitOptions options = {},
                        Config config = {})
      : desc_(target_desc(kind)), jit_(desc_, options), config_(config) {}

  /// Blocks until every background compile this target enqueued has
  /// finished: in-flight jobs capture `this`, so they must not outlive it.
  /// (The shared pool itself is the caller's to destroy.)
  ~OnlineTarget();

  [[nodiscard]] const MachineDesc& desc() const { return desc_; }
  [[nodiscard]] const JitOptions& options() const { return jit_.options(); }
  [[nodiscard]] LoadMode mode() const { return config_.mode; }
  [[nodiscard]] const Statistics& jit_stats() const { return jit_stats_; }
  [[nodiscard]] double jit_seconds() const { return jit_seconds_; }
  [[nodiscard]] const std::vector<MFunction>& code() const { return code_; }

  /// Verifies `module` and prepares it for execution: eager mode
  /// JIT-compiles every function now, tiered mode defers to
  /// run()/request_compile(). An invalid module is reported through the
  /// Result (never executed, never fatal); the target keeps its previous
  /// module in that case.
  ///
  /// Ownership: the target shares ownership of the module, so it stays
  /// alive as long as any target, Soc, Deployment, or ModuleHandle
  /// references it; the shared CodeCache keys artifacts by the module's
  /// stable id. Callers that manage the lifetime themselves can pass
  /// borrow_module(m) and keep the old outlives-the-target contract. The
  /// module must not be mutated after loading.
  [[nodiscard]] Result<void> load_module(std::shared_ptr<const Module> module);

  /// Deprecated raw-reference spelling of load_module(): retains only a
  /// borrowed pointer (caller keeps the module alive) and fatals on an
  /// invalid module.
  [[deprecated("use load_module(borrow_module(m)) or deploy through "
               "svc::Engine (api/svc.h)")]] void
  load(const Module& module);

  /// Runs a loaded function by name on `memory`. In tiered mode the call
  /// is served by the interpreter until the function and everything it
  /// can call have installed JITed code (result.interpreted tells which
  /// tier ran); results are bit-identical across tiers. Thread-safe in
  /// tiered mode for concurrent callers on disjoint memory.
  [[nodiscard]] SimResult run(std::string_view name,
                              const std::vector<Value>& args, Memory& memory,
                              uint64_t step_budget = uint64_t{1} << 32);

  /// Index-taking spelling of run() for callers that already resolved
  /// (and bounds-checked) the function -- the serving layer's hot path,
  /// which would otherwise pay a by-name lookup per request. `func_idx`
  /// must be < the module's function count.
  [[nodiscard]] SimResult run(uint32_t func_idx,
                              const std::vector<Value>& args, Memory& memory,
                              uint64_t step_budget = uint64_t{1} << 32);

  /// Requests the background (or, without a pool, immediate) compile of
  /// `func_idx` and every function it can reach, without running anything.
  /// Used by Soc warm-up prefetch; no-op in eager mode.
  void request_compile(uint32_t func_idx);

  /// True when the next run() of `func_idx` executes JITed code. Polls
  /// pending compiles, so a false result may turn true moments later.
  [[nodiscard]] bool jit_ready(uint32_t func_idx);

  /// Calls served per tier since load. Tiered mode only: eager mode does
  /// no tier bookkeeping and reports zero for both. jitted_calls() counts
  /// every call answered by JITed code; tier2_calls() is the subset
  /// served after the function's tier-2 artifact installed.
  [[nodiscard]] uint64_t interpreted_calls() const;
  [[nodiscard]] uint64_t jitted_calls() const;
  [[nodiscard]] uint64_t tier2_calls() const;

  /// Functions whose tier-2 (re-specialized) artifact is installed.
  [[nodiscard]] size_t tier2_functions() const;

  /// Snapshot of the runtime profile collected so far (empty unless the
  /// target runs tiered with config.profile). Own observations only: an
  /// externally seeded baseline (seed_profile) is never included, so
  /// merging targets' profiles across cores, Socs, or cluster shards
  /// never double-counts.
  [[nodiscard]] ProfileData profile() const;

  /// Installs an external baseline profile -- typically the fleet-wide
  /// merge a svc::Cluster computed over its *other* shards
  /// (merge_profiles in vm/profile.h). Tier-2 re-specialization derives
  /// its options from own + seed, so a function promoted here is
  /// specialized for aggregate fleet traffic rather than this target's
  /// slice; profile() and export_profiled_module() keep reporting own
  /// observations only. Replaces any previous seed. Thread-safe.
  void seed_profile(const ProfileData& seed);

  /// Copy of the loaded module with the collected profile attached as
  /// Profile annotations -- the export half of the feedback loop; feed it
  /// to serialize_module() and, offline, to tune_with_profile() or
  /// OfflineOptions::profile.
  [[nodiscard]] Module export_profiled_module() const;

  /// Total emitted code size (deployment footprint per target). In tiered
  /// mode: installed artifacts only.
  [[nodiscard]] size_t code_bytes() const;

 private:
  struct FuncState {
    uint32_t calls = 0;
    bool requested = false;
    bool installed = false;
    std::shared_future<CodeCache::Artifact> pending;
    // Calls answered by JITed code; drives the tier-2 promotion.
    uint32_t jit_calls = 0;
    bool tier2_requested = false;
    bool tier2_installed = false;
    std::shared_future<CodeCache::Artifact> tier2_pending;
    // This function plus its transitive callees: everything the simulator
    // may execute when the function runs, so everything that must be
    // installed before tier-up.
    std::vector<uint32_t> reachable;
  };

  [[nodiscard]] CodeCache::Artifact compile_artifact(uint32_t func_idx) const;
  void drain_pending();
  void request_compile_locked(uint32_t func_idx);
  void request_tier2_locked(uint32_t func_idx);
  void poll_install_locked(uint32_t func_idx);
  void poll_tier2_locked(uint32_t func_idx);
  void install_locked(uint32_t func_idx, const JitArtifact& artifact);
  void install_tier2_locked(uint32_t func_idx, const JitArtifact& artifact);
  [[nodiscard]] SimResult interpret(uint32_t func_idx,
                                    const std::vector<Value>& args,
                                    Memory& memory, uint64_t step_budget);

  const MachineDesc& desc_;
  JitCompiler jit_;
  Config config_;
  std::shared_ptr<const Module> module_;
  std::vector<MFunction> code_;
  Statistics jit_stats_;
  double jit_seconds_ = 0.0;
  // Tiered-mode state; guarded by mutex_ (eager mode is immutable after
  // load and needs no locking on the run path).
  mutable std::mutex mutex_;
  std::vector<FuncState> states_;
  // The code image handed to the simulator in tiered mode; run() grabs
  // the shared_ptr under the lock and executes outside it. Tier-1
  // installs write its slots in place -- safe, because they only fill
  // entries no in-flight run can reach yet (promotion requires the whole
  // reachable set installed). Tier-2 installs *replace* already-observed
  // entries, so they copy-on-write: a fresh vector is swapped in and runs
  // in flight keep executing the image they started with.
  std::shared_ptr<std::vector<MFunction>> image_;
  // Fallback tier-0 stream cache when config_.predecode is not set.
  PredecodeCache predecode_;
  ProfileData profile_;
  // External baseline merged into tier-2 derivation only (seed_profile);
  // excluded from profile() so cross-collector merges stay exact.
  ProfileData seed_profile_;
  uint64_t interpreted_calls_ = 0;
  uint64_t jitted_calls_ = 0;
  uint64_t tier2_calls_ = 0;
};

}  // namespace svc
