// A deployed target: the device-side pairing of a JIT compiler and its
// simulated core, run as a *tiered* runtime. Eager mode keeps the original
// install-time behavior (load JIT-compiles every function before the first
// instruction runs); tiered mode starts executing immediately in the
// reference interpreter (tier 0) and promotes a function to its JITed
// artifact (tier 1) once a background compile -- shared through an
// optional CodeCache and ThreadPool -- has finished. This is what
// "shipping the same bytecode to three machines" looks like when the
// machines also have to start up fast.
#pragma once

#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "bytecode/module.h"
#include "jit/jit_compiler.h"
#include "runtime/code_cache.h"
#include "support/thread_pool.h"
#include "targets/simulator.h"
#include "targets/target_registry.h"

namespace svc {

/// How a target materializes machine code for a loaded module.
enum class LoadMode : uint8_t {
  Eager,   // JIT every function during load() (the classic behavior)
  Tiered,  // interpret first, promote to JITed code once compiled
};

/// Deterministic tier-0 cost model: one interpreted bytecode step costs
/// this many "cycles", so cold-start numbers are comparable to simulated
/// machine cycles and stable across hosts (bench/warmup_throughput.cpp).
inline constexpr uint64_t kInterpreterCyclesPerStep = 8;

/// Tiered-runtime wiring for one OnlineTarget. `cache` and `pool` are
/// optional and shared (typically owned by a Soc): without a pool, tier-up
/// compiles run synchronously at the promotion threshold; without a cache,
/// artifacts are private to the target.
struct OnlineTargetConfig {
  LoadMode mode = LoadMode::Eager;
  // Calls of a function before its JIT compile is requested.
  uint32_t promote_threshold = 1;
  CodeCache* cache = nullptr;
  ThreadPool* pool = nullptr;
};

class OnlineTarget {
 public:
  using Config = OnlineTargetConfig;

  explicit OnlineTarget(TargetKind kind, JitOptions options = {},
                        Config config = {})
      : desc_(target_desc(kind)), jit_(desc_, options), config_(config) {}

  /// Blocks until every background compile this target enqueued has
  /// finished: in-flight jobs capture `this`, so they must not outlive it.
  /// (The shared pool itself is the caller's to destroy.)
  ~OnlineTarget();

  [[nodiscard]] const MachineDesc& desc() const { return desc_; }
  [[nodiscard]] const JitOptions& options() const { return jit_.options(); }
  [[nodiscard]] LoadMode mode() const { return config_.mode; }
  [[nodiscard]] const Statistics& jit_stats() const { return jit_stats_; }
  [[nodiscard]] double jit_seconds() const { return jit_seconds_; }
  [[nodiscard]] const std::vector<MFunction>& code() const { return code_; }

  /// Verifies `module` (fatal with diagnostics on an invalid module --
  /// fail fast, never JIT or interpret unverified code) and prepares it
  /// for execution: eager mode JIT-compiles every function now, tiered
  /// mode defers to run()/request_compile().
  ///
  /// Lifetime invariant: only a pointer to `module` is retained, and any
  /// shared CodeCache keys artifacts by its address. The module must
  /// outlive this target *and* the cache, and must not be mutated after
  /// loading.
  void load(const Module& module);

  /// Runs a loaded function by name on `memory`. In tiered mode the call
  /// is served by the interpreter until the function and everything it
  /// can call have installed JITed code (result.interpreted tells which
  /// tier ran); results are bit-identical across tiers. Thread-safe in
  /// tiered mode for concurrent callers on disjoint memory.
  [[nodiscard]] SimResult run(std::string_view name,
                              const std::vector<Value>& args, Memory& memory,
                              uint64_t step_budget = uint64_t{1} << 32);

  /// Requests the background (or, without a pool, immediate) compile of
  /// `func_idx` and every function it can reach, without running anything.
  /// Used by Soc warm-up prefetch; no-op in eager mode.
  void request_compile(uint32_t func_idx);

  /// True when the next run() of `func_idx` executes JITed code. Polls
  /// pending compiles, so a false result may turn true moments later.
  [[nodiscard]] bool jit_ready(uint32_t func_idx);

  /// Calls served per tier since load. Tiered mode only: eager mode does
  /// no tier bookkeeping and reports zero for both.
  [[nodiscard]] uint64_t interpreted_calls() const;
  [[nodiscard]] uint64_t jitted_calls() const;

  /// Total emitted code size (deployment footprint per target). In tiered
  /// mode: installed artifacts only.
  [[nodiscard]] size_t code_bytes() const;

 private:
  struct FuncState {
    uint32_t calls = 0;
    bool requested = false;
    bool installed = false;
    std::shared_future<CodeCache::Artifact> pending;
    // This function plus its transitive callees: everything the simulator
    // may execute when the function runs, so everything that must be
    // installed before tier-up.
    std::vector<uint32_t> reachable;
  };

  [[nodiscard]] CodeCache::Artifact compile_artifact(uint32_t func_idx) const;
  void drain_pending();
  void request_compile_locked(uint32_t func_idx);
  void poll_install_locked(uint32_t func_idx);
  void install_locked(uint32_t func_idx, const JitArtifact& artifact);
  [[nodiscard]] SimResult interpret(uint32_t func_idx,
                                    const std::vector<Value>& args,
                                    Memory& memory, uint64_t step_budget);

  const MachineDesc& desc_;
  JitCompiler jit_;
  Config config_;
  const Module* module_ = nullptr;
  std::vector<MFunction> code_;
  Statistics jit_stats_;
  double jit_seconds_ = 0.0;
  // Tiered-mode state; guarded by mutex_ (eager mode is immutable after
  // load and needs no locking on the run path).
  mutable std::mutex mutex_;
  std::vector<FuncState> states_;
  uint64_t interpreted_calls_ = 0;
  uint64_t jitted_calls_ = 0;
};

}  // namespace svc
