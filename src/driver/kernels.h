// The kernel suite: MiniC sources for the six Table 1 kernels plus the
// extra workloads used by the examples, the heterogeneous-offload bench
// and the iterative-compilation driver.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "bytecode/type.h"

namespace svc {

/// What a kernel's runner needs to know to drive and check it.
enum class KernelShape : uint8_t {
  MapF32,       // fn(c, a, b, n) or fn(a, x, y, n): f32 arrays, void
  ScaleF32,     // fn(a, x, n): x[i] *= a, void
  ReduceU8,     // fn(p, n) -> i32 over u8 data
  ReduceU16,    // fn(p, n) -> i32 over u16 data
};

struct KernelInfo {
  std::string_view name;      // table row label, e.g. "vecadd fp"
  std::string_view fn_name;   // MiniC function name
  std::string_view source;    // standalone MiniC module
  KernelShape shape;
};

/// The six kernels of Table 1, in the paper's row order.
[[nodiscard]] std::span<const KernelInfo> table1_kernels();

/// Branchy scalar max over u8 (the if-based variant; ablation for
/// if-conversion and the branch-predictor cost model).
[[nodiscard]] const KernelInfo& branchy_max_kernel();

/// A control-heavy kernel (state machine over bytes) used by the
/// heterogeneous mapper: it should stay on the host core.
[[nodiscard]] const KernelInfo& control_kernel();

/// FIR filter (f32) used by the dataflow/offload example and bench.
[[nodiscard]] std::string_view fir_source();

}  // namespace svc
