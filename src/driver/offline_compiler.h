// The offline half of the split pipeline (Figure 1, left): MiniC source ->
// typed AST -> IR -> scalar optimizations -> automatic vectorization ->
// SVIL bytecode + annotations (vectorized loops, spill priorities,
// hardware hints) -> verified Module ready for serialization.
//
// Everything expensive lives here, on the "developer's powerful
// workstation"; the per-target JIT consumes the result.
#pragma once

#include <optional>
#include <string_view>

#include "bytecode/module.h"
#include "ir/passes.h"
#include "support/diagnostics.h"
#include "support/pass_manager.h"
#include "support/result.h"
#include "support/statistics.h"

namespace svc {

struct OfflineOptions {
  PassOptions passes;
  bool vectorize = true;
  bool annotate_spill_priorities = true;
  bool annotate_hardware_hints = true;
  // Explicit IR pipeline (names from ir/ir_pipeline.h). When set it
  // replaces the schedule derived from `passes` + `vectorize`; unknown
  // pass names are reported through the DiagnosticEngine.
  std::optional<PipelineSpec> pipeline;
  // Runtime profile imported from a previous deployment cycle: a module
  // whose functions carry Profile annotations (Soc::export_profiled_module
  // round-tripped through the serializer). Two effects: when no explicit
  // `pipeline` is given the offline schedule is seeded from the observed
  // behavior instead of the blind defaults, and the profile annotations
  // are carried over to the recompiled functions (matched by name) so the
  // next cycle's consumers -- tuner, mapper, tier-2 -- still see them.
  // Not owned; must outlive the compile_source call.
  const Module* profile = nullptr;
};

/// Compiles MiniC `source` into a deployable module. The single offline
/// entry point: a failed compile (parse/sema errors, unknown pipeline
/// passes, verifier failures) returns every diagnostic structured inside
/// the Result -- nothing fatals, nothing needs an out-param. Embedders
/// normally reach this through svc::Engine::compile (api/svc.h).
[[nodiscard]] Result<Module> compile_module(std::string_view source,
                                            const OfflineOptions& options = {},
                                            Statistics* stats = nullptr);

/// Deprecated optional-plus-out-param spelling of compile_module(); the
/// diagnostics are replayed into `diags`. Bit-identical to the facade
/// path (asserted by tests/api_test.cpp).
[[deprecated("use compile_module() (or svc::Engine::compile); see README "
             "'Embedding API'")]] [[nodiscard]] std::optional<Module>
compile_source(std::string_view source, const OfflineOptions& options,
               DiagnosticEngine& diags, Statistics* stats = nullptr);

/// Deprecated fatal-on-error wrapper (pre-Result test/bench convenience).
[[deprecated("use value_or_die(compile_module(...)) -- tests/test_util.h "
             "or bench/bench_util.h")]] [[nodiscard]] Module
compile_or_die(std::string_view source, const OfflineOptions& options = {});

}  // namespace svc
