#include "runtime/soc.h"

#include <cstdio>

#include "runtime/mapper.h"

namespace svc {

Soc::Soc(std::vector<CoreSpec> cores, size_t memory_bytes, SocOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_budget_bytes),
      specs_(std::move(cores)),
      memory_(memory_bytes) {
  if (!options_.persistent_cache_path.empty()) {
    Result<PersistentCache> store =
        PersistentCache::open(options_.persistent_cache_path);
    if (store.ok()) {
      persistent_ =
          std::make_unique<PersistentCache>(std::move(store).value());
      cache_.attach_persistent(persistent_.get());
    } else {
      // Disk problems never break a deployment: run memory-only. Engine
      // users get this reported at build() instead (deploy validation).
      std::fprintf(stderr, "Soc: persistent cache disabled:\n%s\n",
                   store.error_text().c_str());
    }
  }
  if (options_.pool_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.pool_threads);
  }
  OnlineTarget::Config core_config{
      options_.mode,    options_.promote_threshold, options_.profile,
      options_.tier2_threshold, &cache_,            pool_.get(),
      &predecode_};
  core_config.tier0_dispatch = options_.tier0_dispatch;
  core_config.tier0_fusion = options_.tier0_fusion;
  cores_.reserve(specs_.size());
  for (const CoreSpec& spec : specs_) {
    cores_.push_back(
        std::make_unique<OnlineTarget>(spec.kind, options_.jit, core_config));
  }
}

Result<void> Soc::load_module(std::shared_ptr<const Module> module) {
  if (!module) {
    return Result<void>::failure("Soc::load_module: null module");
  }
  // The first core's load verifies the module; an invalid one loads
  // nowhere (no partially-loaded SoC). Eager cores compile through the
  // shared cache, so same-kind cores after the first are all hits.
  for (auto& core : cores_) {
    if (Result<void> r = core->load_module(module); !r.ok()) return r;
  }
  module_ = std::move(module);

  if (options_.mode == LoadMode::Tiered && options_.prefetch) {
    // Annotation-driven warm-up: each function is background-compiled only
    // on its top-ranked core -- the mapper's HardwareHints scoring applied
    // to install time. Same-kind cores share the resulting artifact via
    // the cache when they promote later.
    for (uint32_t f = 0; f < module_->num_functions(); ++f) {
      const size_t best = rank_cores(*this, module_->function(f)).front().core;
      cores_[best]->request_compile(f);
    }
  }
  return {};
}

void Soc::load(const Module& module) {
  // Deprecated shim: borrowed lifetime, fatal on error (the pre-Result
  // contract), implemented on the new path so the two cannot diverge.
  const Result<void> result = load_module(borrow_module(module));
  if (!result.ok()) {
    fatal("Soc::load: invalid module '" + module.name() + "':\n" +
          result.error_text());
  }
}

void Soc::wait_warmup() {
  if (pool_) pool_->wait_idle();
}

Soc::CoreCounters Soc::core_counters(size_t c) const {
  const OnlineTarget& core = *cores_[c];
  return {core.interpreted_calls(), core.jitted_calls(), core.tier2_calls(),
          core.tier2_functions()};
}

ProfileData Soc::profile() const {
  // Snapshot each core under its own lock, then merge the snapshots with
  // the same n-way merge the cluster uses across Socs (vm/profile.h).
  std::vector<ProfileData> snapshots;
  snapshots.reserve(cores_.size());
  for (const auto& core : cores_) snapshots.push_back(core->profile());
  std::vector<const ProfileData*> parts;
  parts.reserve(snapshots.size());
  for (const ProfileData& snap : snapshots) parts.push_back(&snap);
  return merge_profiles(parts);
}

void Soc::seed_profile(const ProfileData& seed) {
  for (const auto& core : cores_) core->seed_profile(seed);
}

Module Soc::export_profiled_module() const {
  if (!module_) fatal("Soc::export_profiled_module before load");
  return attach_profile(*module_, profile());
}

SimResult Soc::run_on(size_t c, std::string_view name,
                      const std::vector<Value>& args, uint64_t step_budget) {
  return cores_[c]->run(name, args, memory_, step_budget);
}

SimResult Soc::run_on(size_t c, uint32_t func_idx,
                      const std::vector<Value>& args, uint64_t step_budget) {
  return cores_[c]->run(func_idx, args, memory_, step_budget);
}

}  // namespace svc
