#include "runtime/soc.h"

namespace svc {

Soc::Soc(std::vector<CoreSpec> cores, size_t memory_bytes)
    : specs_(std::move(cores)), memory_(memory_bytes) {
  cores_.reserve(specs_.size());
  for (const CoreSpec& spec : specs_) {
    cores_.push_back(std::make_unique<OnlineTarget>(spec.kind));
  }
}

void Soc::load(const Module& module) {
  module_ = &module;
  for (auto& core : cores_) core->load(module);
}

SimResult Soc::run_on(size_t c, std::string_view name,
                      const std::vector<Value>& args) {
  return cores_[c]->run(name, args, memory_);
}

}  // namespace svc
