#include "runtime/mapper.h"

#include <algorithm>

namespace svc {

double core_affinity(const Soc& soc, size_t c, const Function& fn) {
  const MachineDesc& desc = soc.core(c).desc();
  HardwareHintsInfo hints;  // zero hints when the annotation is absent
  if (const Annotation* ann =
          find_annotation(fn.annotations(), AnnotationKind::HardwareHints)) {
    if (auto decoded = HardwareHintsInfo::decode(ann->payload)) {
      hints = *decoded;
    }
  }

  double score = 1.0;
  // Stack bytecode dilutes the static vector-op share (each vector op
  // carries local.get/set traffic), so even a fully vectorized loop sits
  // around 5-15%; saturate the affinity accordingly.
  const double intensity =
      std::min(1.0, hints.vector_intensity / 10.0);
  if (hints.features & kFeatureSimd) {
    // Vector work loves SIMD cores; scalarizing on a narrow core is fine
    // but never preferable.
    score += desc.has_simd ? 2.0 * intensity : -0.3 * intensity;
  }
  if (hints.features & kFeatureControlHeavy) {
    // Deep-misprediction cores (spusim) are poor hosts for branchy code.
    score -= 0.15 * static_cast<double>(desc.mispredict_penalty);
  }
  if (hints.features & kFeatureFloat) {
    score += desc.has_fma ? 0.5 : 0.0;
  }
  // Accelerators pay DMA; bias gently toward the host when nothing else
  // differentiates the cores.
  if (soc.core_spec(c).is_accelerator) score -= 0.25;
  return score;
}

std::vector<MappingScore> rank_cores(const Soc& soc, const Function& fn) {
  std::vector<MappingScore> scores;
  scores.reserve(soc.num_cores());
  for (size_t c = 0; c < soc.num_cores(); ++c) {
    scores.push_back({c, core_affinity(soc, c, fn)});
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const MappingScore& a, const MappingScore& b) {
                     return a.score > b.score;
                   });
  return scores;
}

size_t choose_core(const Soc& soc, const Function& fn) {
  return rank_cores(soc, fn).front().core;
}

}  // namespace svc
