// Annotation-driven kernel-to-core mapping (paper S3: "mapping and
// scheduling of computations can be performed across all available
// processing nodes"; annotations "express the hardware requirements or
// characteristics of a code module").
//
// The mapper reads each function's HardwareHints annotation -- produced
// offline, target-independent -- and scores it against each core's
// MachineDesc. No source access, no re-analysis: exactly the split the
// paper advocates.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/soc.h"

namespace svc {

struct MappingScore {
  size_t core = 0;
  double score = 0.0;
};

/// Affinity score of `fn` on core `c` of `soc` (higher is better).
[[nodiscard]] double core_affinity(const Soc& soc, size_t c,
                                   const Function& fn);

/// Ranks all cores for `fn`, best first.
[[nodiscard]] std::vector<MappingScore> rank_cores(const Soc& soc,
                                                   const Function& fn);

/// Best core for `fn`.
[[nodiscard]] size_t choose_core(const Soc& soc, const Function& fn);

}  // namespace svc
