#include "runtime/code_cache.h"

#include <cassert>

namespace svc {

CodeCache::Artifact CodeCache::get_or_compile(const CodeCacheKey& key,
                                              const CompileFn& compile) {
  // Id 0 means a moved-from Module husk (or an unregistered module):
  // caching under it would alias unrelated modules' artifacts.
  assert(key.module_id != 0 && "CodeCacheKey with dead module id");
  std::promise<Artifact> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (auto it = entries_.find(key); it != entries_.end()) {
      stats_.add("cache.hits", 1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.artifact;
    }
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      // Another thread is compiling this key right now: count it as a hit
      // (no compile happens on our behalf) and join its result.
      stats_.add("cache.hits", 1);
      stats_.add("cache.coalesced", 1);
      std::shared_future<Artifact> future = it->second;
      lock.unlock();
      return future.get();
    }
    stats_.add("cache.misses", 1);
    inflight_.emplace(key, promise.get_future().share());
  }

  // Compile outside the lock so independent keys compile in parallel.
  Artifact artifact;
  try {
    artifact = std::make_shared<const JitArtifact>(compile());
  } catch (...) {
    // Compile errors are fatal() today, but a throwing compile (bad_alloc)
    // must not leave a poisoned in-flight slot: clear it, fail the
    // coalesced waiters, and let a later request try again.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.add("cache.compiles", 1);
    insert_locked(key, artifact);
    inflight_.erase(key);
  }
  // Fulfilled after the entry is visible; waiters got their future copy
  // under the lock, so erasing the in-flight slot first is safe.
  promise.set_value(artifact);
  return artifact;
}

CodeCache::Artifact CodeCache::peek(const CodeCacheKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.artifact;
}

void CodeCache::set_code_budget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_ = bytes;
  evict_to_budget_locked();
}

size_t CodeCache::code_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

size_t CodeCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

Statistics CodeCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CodeCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  stats_.set("cache.bytes", 0);
}

void CodeCache::insert_locked(const CodeCacheKey& key, Artifact artifact) {
  lru_.push_front(key);
  Entry entry;
  entry.bytes = artifact->code.code_bytes();
  entry.artifact = std::move(artifact);
  entry.lru_it = lru_.begin();
  bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
  evict_to_budget_locked();
  stats_.set("cache.bytes", static_cast<int64_t>(bytes_));
}

void CodeCache::evict_to_budget_locked() {
  // The budget is soft for a single artifact: the most recent entry stays
  // resident even when it alone exceeds the budget (there is nothing
  // cheaper to run instead).
  while (bytes_ > budget_ && entries_.size() > 1) {
    const CodeCacheKey victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    stats_.add("cache.evictions", 1);
  }
  stats_.set("cache.bytes", static_cast<int64_t>(bytes_));
}

}  // namespace svc
