#include "runtime/code_cache.h"

#include <cassert>

#include "bytecode/module.h"

namespace svc {

CodeCache::Artifact CodeCache::get_or_compile(const CodeCacheKey& key,
                                              const CompileFn& compile) {
  // Id 0 means a moved-from Module husk (or an unregistered module):
  // caching under it would alias unrelated modules' artifacts.
  assert(key.module_id != 0 && "CodeCacheKey with dead module id");
  std::promise<Artifact> promise;
  std::optional<PersistentCacheKey> disk_key;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (auto it = entries_.find(key); it != entries_.end()) {
      stats_.add("cache.hits", 1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.artifact;
    }
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      // Another thread is compiling this key right now: count it as a hit
      // (no compile happens on our behalf) and join its result.
      stats_.add("cache.hits", 1);
      stats_.add("cache.coalesced", 1);
      std::shared_future<Artifact> future = it->second;
      lock.unlock();
      return future.get();
    }
    stats_.add("cache.misses", 1);
    disk_key = disk_key_locked(key);
    inflight_.emplace(key, promise.get_future().share());
  }

  // Second level: consult the on-disk store before compiling. The probe
  // (file I/O + decode) runs outside the lock like the compile itself;
  // coalescing above guarantees one prober per key. Any invalid entry
  // degrades to a miss and is overwritten by this compile's write-back.
  if (disk_key) {
    const PersistentCache::LoadResult loaded = persistent_->load(*disk_key);
    switch (loaded.status) {
      case PersistentCache::LoadStatus::Hit: {
        Artifact artifact = loaded.artifact;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          stats_.add("cache.disk_hits", 1);
          insert_locked(key, artifact);
          inflight_.erase(key);
        }
        promise.set_value(artifact);
        return artifact;
      }
      case PersistentCache::LoadStatus::Reject:
        // Corrupt, truncated, or stale entry: a clean miss by contract
        // (never a crash); counted, then recompiled and overwritten.
        {
          std::lock_guard<std::mutex> lock(mutex_);
          stats_.add("cache.disk_rejects", 1);
          stats_.add("cache.disk_misses", 1);
        }
        break;
      case PersistentCache::LoadStatus::Miss: {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.add("cache.disk_misses", 1);
        break;
      }
    }
  }

  // Compile outside the lock so independent keys compile in parallel.
  Artifact artifact;
  try {
    artifact = std::make_shared<const JitArtifact>(compile());
  } catch (...) {
    // Compile errors are fatal() today, but a throwing compile (bad_alloc)
    // must not leave a poisoned in-flight slot: clear it, fail the
    // coalesced waiters, and let a later request try again.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  // Write-back before publishing in memory: the waiters' wall time is
  // dominated by the compile anyway, and a crash after publish would
  // otherwise lose the artifact for every future process.
  bool wrote = false;
  if (disk_key) wrote = persistent_->store(*disk_key, *artifact);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.add("cache.compiles", 1);
    if (wrote) stats_.add("cache.disk_writes", 1);
    insert_locked(key, artifact);
    inflight_.erase(key);
  }
  // Fulfilled after the entry is visible; waiters got their future copy
  // under the lock, so erasing the in-flight slot first is safe.
  promise.set_value(artifact);
  return artifact;
}

void CodeCache::attach_persistent(PersistentCache* store) {
  std::lock_guard<std::mutex> lock(mutex_);
  persistent_ = store;
}

bool CodeCache::has_persistent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return persistent_ != nullptr;
}

void CodeCache::register_module(const Module& module) {
  assert(module.id() != 0 && "registering a moved-from module");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!persistent_ || content_hashes_.count(module.id())) return;
  }
  // Hashing serializes every function; keep it off the lock and tolerate
  // the benign race of two loaders hashing the same (immutable) module.
  std::vector<uint64_t> hashes = PersistentCache::content_hashes(module);
  std::lock_guard<std::mutex> lock(mutex_);
  content_hashes_.emplace(module.id(), std::move(hashes));
}

std::optional<PersistentCacheKey> CodeCache::disk_key_locked(
    const CodeCacheKey& key) const {
  if (!persistent_) return std::nullopt;
  const auto it = content_hashes_.find(key.module_id);
  if (it == content_hashes_.end() || key.func_idx >= it->second.size()) {
    return std::nullopt;
  }
  return PersistentCacheKey{it->second[key.func_idx], key.func_idx, key.kind,
                            key.options_key,          key.tier,
                            key.profile_hash};
}

CodeCache::Artifact CodeCache::peek(const CodeCacheKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.artifact;
}

void CodeCache::set_code_budget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_ = bytes;
  evict_to_budget_locked();
}

size_t CodeCache::code_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

size_t CodeCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

Statistics CodeCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CodeCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  stats_.set("cache.bytes", 0);
}

void CodeCache::insert_locked(const CodeCacheKey& key, Artifact artifact) {
  lru_.push_front(key);
  Entry entry;
  entry.bytes = artifact->code.code_bytes();
  entry.artifact = std::move(artifact);
  entry.lru_it = lru_.begin();
  bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
  evict_to_budget_locked();
  stats_.set("cache.bytes", static_cast<int64_t>(bytes_));
}

void CodeCache::evict_to_budget_locked() {
  // The budget is soft for a single artifact: the most recent entry stays
  // resident even when it alone exceeds the budget (there is nothing
  // cheaper to run instead).
  while (bytes_ > budget_ && entries_.size() > 1) {
    const CodeCacheKey victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    stats_.add("cache.evictions", 1);
  }
  stats_.set("cache.bytes", static_cast<int64_t>(bytes_));
}

}  // namespace svc
