#include "runtime/profile_guided.h"

namespace svc {
namespace {

struct StaticFacts {
  bool has_float = false;
  bool has_vector = false;
};

StaticFacts scan_function(const Function& fn) {
  StaticFacts facts;
  for (const BasicBlock& block : fn.blocks()) {
    for (const Instruction& inst : block.insts) {
      if (is_vector_op(inst.op)) facts.has_vector = true;
      const OpCategory cat = op_info(inst.op).category;
      if (cat == OpCategory::FloatArith) facts.has_float = true;
    }
  }
  return facts;
}

}  // namespace

std::array<size_t, kNumRegClasses> estimate_register_demand(
    const Function& fn, const MachineDesc& desc, const ProfileInfo& profile) {
  const uint32_t widest =
      profile.widest_lanes() > 0 ? profile.widest_lanes() : 4;
  std::array<size_t, kNumRegClasses> demand{};
  for (const Type t : fn.locals()) {
    if (t == Type::V128 && !desc.has_simd) {
      // Scalarized lanes land in the scalar class of their element type:
      // 16 x u8 / 8 x u16 are integer lanes, 4-lane interpretations are
      // dominated by f32 in vectorized kernels.
      const RegClass cls = widest >= 8 ? RegClass::Int : RegClass::Flt;
      demand[static_cast<size_t>(cls)] += widest;
    } else {
      demand[static_cast<size_t>(reg_class_for(t))] += 1;
    }
  }
  return demand;
}

JitOptions derive_tier2_options(const JitOptions& base,
                                const MachineDesc& desc, const Function& fn,
                                const ProfileInfo& profile) {
  const StaticFacts facts = scan_function(fn);

  JitOptions t2 = base;
  PipelineSpec spec;
  spec.append("stack_to_reg");
  spec.append("peephole");
  // FMA formation only where there is float work to fuse. The profile can
  // confirm but never veto: an unexecuted float path still deserves the
  // pass, so the gate is the *static* fact.
  if (desc.has_fma && facts.has_float) spec.append("fma");
  // Scalarization is a correctness gate, not a profile choice: any vector
  // instruction the target cannot execute must be expanded, observed or
  // not. The profile only shapes the register-demand estimate below.
  if (!desc.has_simd && facts.has_vector) {
    spec.append("devectorize");
    spec.append("peephole");
  }
  // Hot code earns a second cleanup round before allocation; this also
  // guarantees the tier-2 spec differs from every tier-1 default, keeping
  // the two tiers on distinct CodeCache keys.
  spec.append("peephole");
  spec.append("regalloc");
  t2.pipeline = spec;

  // Where the (width-aware) demand overcommits any register class, spend
  // the compile time tier 1 could not afford: Chaitin-Briggs coloring,
  // the offline quality bound, minimizes spill code on the hot path.
  const auto demand = estimate_register_demand(fn, desc, profile);
  for (size_t cls = 0; cls < kNumRegClasses; ++cls) {
    if (demand[cls] > desc.regs[cls]) {
      t2.alloc_policy = AllocPolicy::OfflineChaitin;
    }
  }
  return t2;
}

ProfileSeedDecision profile_seed_decision(const Module& profiled) {
  const ProfileData profile = extract_profile(profiled);

  ProfileSeedDecision decision;
  uint64_t hot_loop_runs = 0;
  bool any_vector = false;
  for (uint32_t f = 0; f < profile.num_functions(); ++f) {
    const ProfileInfo& info = profile.function(f);
    if (!info.empty()) decision.observed = true;
    for (const auto& [header, histogram] : info.loops) {
      for (size_t b = trip_bucket(8); b < kProfileTripBuckets; ++b) {
        hot_loop_runs += histogram[b];
      }
    }
    for (const auto& [block, counts] : info.branches) {
      if (counts.is_mixed()) decision.if_convert = true;
    }
    any_vector = any_vector || info.vector_ops() > 0;
  }
  if (decision.observed) {
    // Vectorize when vector work already ran, or when hot loops give the
    // vectorizer something to win on the next cycle.
    decision.vectorize = any_vector || hot_loop_runs > 0;
  }
  return decision;
}

}  // namespace svc
