// Profile-guided specialization policies: how observed runtime behavior
// (Profile annotations / ProfileData) turns into compilation decisions.
// Two consumers share this logic, closing the split-compilation loop in
// both directions:
//
//   online  -- derive_tier2_options(): the tiered runtime re-runs the JIT
//              for a hot function with a pipeline and register-allocation
//              policy shaped by its profile (tier 2). Every derived option
//              is semantics-preserving, so tiers stay bit-identical.
//   offline -- profile_seed_decision(): an exported, profile-annotated
//              module distilled into the vectorize / if-convert choices
//              that seed the iterative tuner and the next offline cycle.
#pragma once

#include <array>

#include "bytecode/module.h"
#include "jit/jit_compiler.h"
#include "targets/machine.h"
#include "vm/profile.h"

namespace svc {

/// Estimated physical-register demand of `fn` on `desc`, per register
/// class: one register per scalar local, and -- on targets that must
/// scalarize -- one per lane of each V128 local, using the widest lane
/// interpretation the profile observed (defaults to 4 when the function
/// never ran vectorized; width >= 8 lanes land in the integer class,
/// width-4 lanes in the float class, matching the lane scalar types).
[[nodiscard]] std::array<size_t, kNumRegClasses> estimate_register_demand(
    const Function& fn, const MachineDesc& desc, const ProfileInfo& profile);

/// Tier-2 JitOptions for one hot function: `base` (the tier-1 options)
/// with a profile-derived pipeline -- FMA formation only where float work
/// was observed or present, scalarization only where the function holds
/// vector code the target cannot execute, an extra peephole round (hot
/// code earns the cleanup), and the offline-quality Chaitin allocator
/// when the estimated demand exceeds the target's register budget.
/// The result always differs from the tier-1 default pipeline, so tier-1
/// and tier-2 artifacts never collide in the CodeCache.
[[nodiscard]] JitOptions derive_tier2_options(const JitOptions& base,
                                              const MachineDesc& desc,
                                              const Function& fn,
                                              const ProfileInfo& profile);

/// Offline distillation of a profile-annotated module (the import half of
/// the loop; see Soc::export_profiled_module for the export half).
struct ProfileSeedDecision {
  // False when the module carries no decodable profile: the consumer
  // should fall back to its unprofiled default instead of trusting the
  // remaining fields.
  bool observed = false;
  // Any vector work, or at least one completed loop execution with trip
  // count >= 8: the offline vectorizer has something to pay off on.
  bool vectorize = true;
  // At least one branch with a >= 25% minority outcome: if-conversion
  // has unpredictable branches to remove.
  bool if_convert = false;
};

[[nodiscard]] ProfileSeedDecision profile_seed_decision(
    const Module& profiled);

}  // namespace svc
