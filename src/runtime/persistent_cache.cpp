#include "runtime/persistent_cache.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "bytecode/serializer.h"
#include "support/crc32.h"
#include "support/varint.h"
#include "targets/target_registry.h"

#ifdef _WIN32
#include <process.h>
#define SVC_GETPID _getpid
#else
#include <unistd.h>
#define SVC_GETPID getpid
#endif

namespace svc {
namespace {

// Bumped whenever the entry layout below changes shape; old entries then
// reject cleanly instead of mis-decoding.
constexpr uint32_t kPersistSchemaVersion = 1;

// Identity of the code generator itself. Any change to JIT codegen that
// can alter emitted MInst streams must bump this, or stale artifacts
// would load as if freshly compiled. Kept here (not in a header) so the
// bump is a one-line diff next to the format it guards.
constexpr const char* kCompilerStamp = "svc-jit-7";

constexpr char kEntryMagic[4] = {'S', 'V', 'C', 'A'};

// --- hashing ---------------------------------------------------------------

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t fnv1a(std::span<const uint8_t> bytes, uint64_t h = kFnvOffset) {
  for (const uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv1a_str(const std::string& s, uint64_t h = kFnvOffset) {
  return fnv1a({reinterpret_cast<const uint8_t*>(s.data()), s.size()}, h);
}

// --- low-level entry encoding ----------------------------------------------

void write_string(std::vector<uint8_t>& out, const std::string& s) {
  write_uleb(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::optional<std::string> read_string(ByteReader& r) {
  const auto n = r.read_uleb();
  if (!n || *n > r.remaining()) return std::nullopt;
  const auto bytes = r.read_bytes(static_cast<size_t>(*n));
  if (!bytes) return std::nullopt;
  return std::string(bytes->begin(), bytes->end());
}

void write_reg(std::vector<uint8_t>& out, const Reg& reg) {
  out.push_back(static_cast<uint8_t>(reg.cls) |
                (reg.valid ? uint8_t{0x80} : uint8_t{0}));
  write_uleb(out, reg.idx);
}

std::optional<Reg> read_reg(ByteReader& r) {
  const auto flags = r.read_byte();
  const auto idx = r.read_uleb();
  if (!flags || !idx || *idx > UINT32_MAX) return std::nullopt;
  const uint8_t cls = *flags & 0x7f;
  if (cls >= kNumRegClasses) return std::nullopt;
  Reg reg;
  reg.cls = static_cast<RegClass>(cls);
  reg.idx = static_cast<uint32_t>(*idx);
  reg.valid = (*flags & 0x80) != 0;
  return reg;
}

void write_minst(std::vector<uint8_t>& out, const MInst& inst) {
  write_uleb(out, static_cast<uint16_t>(inst.op));
  write_reg(out, inst.dst);
  write_reg(out, inst.s0);
  write_reg(out, inst.s1);
  write_reg(out, inst.s2);
  write_sleb(out, inst.imm);
  write_uleb(out, inst.a);
  write_uleb(out, inst.b);
}

std::optional<MInst> read_minst(ByteReader& r) {
  const auto op = r.read_uleb();
  if (!op) return std::nullopt;
  // Valid machine ops are either wrapped bytecode opcodes or the
  // machine-only range [kMachineOnlyBase, MNop]; anything else is rot.
  if (*op >= kNumOpcodes &&
      (*op < kMachineOnlyBase ||
       *op > static_cast<uint16_t>(MOp::MNop))) {
    return std::nullopt;
  }
  MInst inst;
  inst.op = static_cast<MOp>(*op);
  const auto dst = read_reg(r);
  const auto s0 = read_reg(r);
  const auto s1 = read_reg(r);
  const auto s2 = read_reg(r);
  const auto imm = r.read_sleb();
  const auto a = r.read_uleb();
  const auto b = r.read_uleb();
  if (!dst || !s0 || !s1 || !s2 || !imm || !a || a > UINT32_MAX || !b ||
      *b > UINT32_MAX) {
    return std::nullopt;
  }
  inst.dst = *dst;
  inst.s0 = *s0;
  inst.s1 = *s1;
  inst.s2 = *s2;
  inst.imm = *imm;
  inst.a = static_cast<uint32_t>(*a);
  inst.b = static_cast<uint32_t>(*b);
  return inst;
}

void write_reg_vector(std::vector<uint8_t>& out, const std::vector<Reg>& regs) {
  write_uleb(out, regs.size());
  for (const Reg& reg : regs) write_reg(out, reg);
}

std::optional<std::vector<Reg>> read_reg_vector(ByteReader& r) {
  const auto n = r.read_uleb();
  if (!n || *n > (1u << 20)) return std::nullopt;
  std::vector<Reg> regs;
  regs.reserve(static_cast<size_t>(*n));
  for (uint64_t i = 0; i < *n; ++i) {
    const auto reg = read_reg(r);
    if (!reg) return std::nullopt;
    regs.push_back(*reg);
  }
  return regs;
}

void write_mfunction(std::vector<uint8_t>& out, const MFunction& fn) {
  write_string(out, fn.name);
  out.push_back(static_cast<uint8_t>(fn.ret_type));
  out.push_back(fn.allocated ? 1 : 0);
  for (size_t c = 0; c < kNumRegClasses; ++c) write_uleb(out, fn.num_vregs[c]);
  for (size_t c = 0; c < kNumRegClasses; ++c) write_uleb(out, fn.num_slots[c]);
  write_reg_vector(out, fn.param_regs);
  write_uleb(out, fn.call_sites.size());
  for (const auto& site : fn.call_sites) write_reg_vector(out, site);
  write_uleb(out, fn.local_regs.size());
  for (const auto& regs : fn.local_regs) write_reg_vector(out, regs);
  write_uleb(out, fn.blocks.size());
  for (const MBlock& block : fn.blocks) {
    write_uleb(out, block.insts.size());
    for (const MInst& inst : block.insts) write_minst(out, inst);
  }
}

std::optional<MFunction> read_mfunction(ByteReader& r) {
  MFunction fn;
  const auto name = read_string(r);
  const auto ret = r.read_byte();
  const auto allocated = r.read_byte();
  if (!name || !ret || *ret > static_cast<uint8_t>(Type::V128) || !allocated ||
      *allocated > 1) {
    return std::nullopt;
  }
  fn.name = *name;
  fn.ret_type = static_cast<Type>(*ret);
  fn.allocated = *allocated == 1;
  for (size_t c = 0; c < kNumRegClasses; ++c) {
    const auto v = r.read_uleb();
    if (!v || *v > UINT32_MAX) return std::nullopt;
    fn.num_vregs[c] = static_cast<uint32_t>(*v);
  }
  for (size_t c = 0; c < kNumRegClasses; ++c) {
    const auto v = r.read_uleb();
    if (!v || *v > UINT32_MAX) return std::nullopt;
    fn.num_slots[c] = static_cast<uint32_t>(*v);
  }
  auto params = read_reg_vector(r);
  if (!params) return std::nullopt;
  fn.param_regs = std::move(*params);
  const auto nsites = r.read_uleb();
  if (!nsites || *nsites > (1u << 20)) return std::nullopt;
  for (uint64_t i = 0; i < *nsites; ++i) {
    auto site = read_reg_vector(r);
    if (!site) return std::nullopt;
    fn.call_sites.push_back(std::move(*site));
  }
  const auto nlocals = r.read_uleb();
  if (!nlocals || *nlocals > (1u << 20)) return std::nullopt;
  for (uint64_t i = 0; i < *nlocals; ++i) {
    auto regs = read_reg_vector(r);
    if (!regs) return std::nullopt;
    fn.local_regs.push_back(std::move(*regs));
  }
  const auto nblocks = r.read_uleb();
  if (!nblocks || *nblocks > (1u << 20)) return std::nullopt;
  for (uint64_t b = 0; b < *nblocks; ++b) {
    const auto ninsts = r.read_uleb();
    if (!ninsts || *ninsts > (1u << 24)) return std::nullopt;
    MBlock block;
    block.insts.reserve(static_cast<size_t>(*ninsts));
    for (uint64_t i = 0; i < *ninsts; ++i) {
      const auto inst = read_minst(r);
      if (!inst) return std::nullopt;
      block.insts.push_back(*inst);
    }
    fn.blocks.push_back(std::move(block));
  }
  return fn;
}

void write_statistics(std::vector<uint8_t>& out, const Statistics& stats) {
  write_uleb(out, stats.all().size());
  for (const auto& [key, value] : stats.all()) {
    write_string(out, key);
    write_sleb(out, value);
  }
}

std::optional<Statistics> read_statistics(ByteReader& r) {
  const auto n = r.read_uleb();
  if (!n || *n > (1u << 16)) return std::nullopt;
  Statistics stats;
  for (uint64_t i = 0; i < *n; ++i) {
    const auto key = read_string(r);
    const auto value = r.read_sleb();
    if (!key || !value) return std::nullopt;
    stats.set(*key, *value);
  }
  return stats;
}

void write_key(std::vector<uint8_t>& out, const PersistentCacheKey& key) {
  write_uleb(out, key.content_hash);
  write_uleb(out, key.func_idx);
  out.push_back(static_cast<uint8_t>(key.kind));
  write_string(out, key.options_key);
  write_uleb(out, key.tier);
  write_uleb(out, key.profile_hash);
}

bool key_matches(ByteReader& r, const PersistentCacheKey& key) {
  const auto content_hash = r.read_uleb();
  const auto func_idx = r.read_uleb();
  const auto kind = r.read_byte();
  const auto options_key = read_string(r);
  const auto tier = r.read_uleb();
  const auto profile_hash = r.read_uleb();
  return content_hash && *content_hash == key.content_hash && func_idx &&
         *func_idx == key.func_idx && kind &&
         *kind == static_cast<uint8_t>(key.kind) && options_key &&
         *options_key == key.options_key && tier && *tier == key.tier &&
         profile_hash && *profile_hash == key.profile_hash;
}

/// Digest of the target description the artifact was compiled against:
/// register budgets, capabilities, penalties, and cost overrides all
/// shape emitted code, so any of them changing must invalidate entries.
std::string machine_fingerprint(const MachineDesc& desc) {
  std::string fp = desc.name;
  fp += ":k" + std::to_string(static_cast<int>(desc.kind));
  fp += desc.has_simd ? ":simd" : ":nosimd";
  fp += desc.has_fma ? ":fma" : ":nofma";
  for (size_t c = 0; c < kNumRegClasses; ++c) {
    fp += ":r" + std::to_string(desc.regs[c]);
  }
  fp += ":p" + std::to_string(desc.load_use_penalty) + "," +
        std::to_string(desc.taken_branch_penalty) + "," +
        std::to_string(desc.mispredict_penalty);
  for (const auto& [op, cycles] : desc.cost_overrides) {
    fp += ":c" + std::to_string(op) + "=" + std::to_string(cycles);
  }
  return fp;
}

/// Entry filename: a 64-bit digest over the full key (and nothing else --
/// the fingerprint is validated from the file body, so a rebuilt binary
/// overwrites stale entries in place instead of accumulating orphans).
std::string entry_name(const PersistentCacheKey& key) {
  std::vector<uint8_t> bytes;
  write_key(bytes, key);
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.svcc",
                static_cast<unsigned long long>(fnv1a(bytes)));
  return name;
}

std::optional<std::vector<uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return std::nullopt;
  return bytes;
}

}  // namespace

// --- PersistentCache -------------------------------------------------------

Result<PersistentCache> PersistentCache::open(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Result<PersistentCache>::failure(
        "persistent cache: cannot create directory '" + dir +
        "': " + ec.message());
  }
  if (!fs::is_directory(dir, ec)) {
    return Result<PersistentCache>::failure("persistent cache: '" + dir +
                                            "' is not a directory");
  }
  // Write probe: a store that cannot be written would degrade every
  // compile to a failed write-back; surface that at configuration time.
  const std::string probe =
      (fs::path(dir) / (".probe." + std::to_string(SVC_GETPID()))).string();
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (!f) {
    return Result<PersistentCache>::failure("persistent cache: '" + dir +
                                            "' is not writable");
  }
  std::fclose(f);
  fs::remove(probe, ec);
  return PersistentCache(dir);
}

std::string PersistentCache::build_fingerprint(
    TargetKind kind, const std::string& options_key) {
  return "schema=" + std::to_string(kPersistSchemaVersion) +
         ";target=" + machine_fingerprint(target_desc(kind)) +
         ";jit=" + options_key + ";compiler=" + kCompilerStamp;
}

std::vector<uint64_t> PersistentCache::content_hashes(const Module& module) {
  // Interface digest: every function's name and signature. Call lowering
  // reads callee signatures (argument registers, return class), so a
  // function's machine code depends on the whole module interface even
  // when its own body is unchanged.
  uint64_t interface_digest = kFnvOffset;
  for (const Function& fn : module.functions()) {
    interface_digest = fnv1a_str(fn.name(), interface_digest);
    for (const Type t : fn.sig().params) {
      const uint8_t b = static_cast<uint8_t>(t);
      interface_digest = fnv1a({&b, 1}, interface_digest);
    }
    const uint8_t ret = static_cast<uint8_t>(fn.sig().ret);
    interface_digest = fnv1a({&ret, 1}, interface_digest);
  }

  std::vector<uint64_t> hashes;
  hashes.reserve(module.num_functions());
  for (const Function& fn : module.functions()) {
    const std::vector<uint8_t> image = serialize_function(fn);
    hashes.push_back(fnv1a(image, interface_digest));
  }
  return hashes;
}

std::string PersistentCache::entry_path(const PersistentCacheKey& key) const {
  return (std::filesystem::path(dir_) / entry_name(key)).string();
}

PersistentCache::LoadResult PersistentCache::load(
    const PersistentCacheKey& key) const {
  const auto bytes = read_file(entry_path(key));
  if (!bytes) return {LoadStatus::Miss, nullptr};
  // Validation order: CRC over the whole body first (rejects truncation
  // and bit rot in one check), then magic/version/fingerprint/key, then
  // the payload decode -- every failure is a Reject, never a crash.
  const auto reject = LoadResult{LoadStatus::Reject, nullptr};
  if (bytes->size() < sizeof(kEntryMagic) + 4) return reject;
  const auto body = std::span<const uint8_t>(*bytes).first(bytes->size() - 4);
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>((*bytes)[bytes->size() - 4 + i])
                  << (8 * i);
  }
  if (crc32(body) != stored_crc) return reject;

  ByteReader r(body);
  const auto magic = r.read_bytes(sizeof(kEntryMagic));
  if (!magic ||
      !std::equal(magic->begin(), magic->end(), std::begin(kEntryMagic))) {
    return reject;
  }
  const auto version = r.read_uleb();
  if (!version || *version != kPersistSchemaVersion) return reject;
  const auto fingerprint = read_string(r);
  if (!fingerprint ||
      *fingerprint != build_fingerprint(key.kind, key.options_key)) {
    return reject;
  }
  // Filename hashes can collide across keys; the embedded key disambiguates.
  if (!key_matches(r, key)) return reject;

  auto artifact = std::make_shared<JitArtifact>();
  auto code = read_mfunction(r);
  if (!code) return reject;
  artifact->code = std::move(*code);
  auto stats = read_statistics(r);
  if (!stats) return reject;
  artifact->stats = std::move(*stats);
  const auto seconds_bits = r.read_bytes(8);
  if (!seconds_bits || !r.at_end()) return reject;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>((*seconds_bits)[i]) << (8 * i);
  }
  // The *original* compile cost: what this disk hit saved.
  artifact->compile_seconds = std::bit_cast<double>(bits);
  return {LoadStatus::Hit,
          std::shared_ptr<const JitArtifact>(std::move(artifact))};
}

bool PersistentCache::store(const PersistentCacheKey& key,
                            const JitArtifact& artifact,
                            const std::string* fingerprint_override) const {
  std::vector<uint8_t> out;
  out.insert(out.end(), std::begin(kEntryMagic), std::end(kEntryMagic));
  write_uleb(out, kPersistSchemaVersion);
  write_string(out, fingerprint_override
                        ? *fingerprint_override
                        : build_fingerprint(key.kind, key.options_key));
  write_key(out, key);
  write_mfunction(out, artifact.code);
  write_statistics(out, artifact.stats);
  const uint64_t bits = std::bit_cast<uint64_t>(artifact.compile_seconds);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>((bits >> (8 * i)) & 0xff));
  }
  const uint32_t crc = crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }

  // Atomic publish: write a process-unique temp file in the store
  // directory, then rename over the final name. Readers in any process
  // observe either no entry or a complete one; same-key racers settle on
  // a single winner (identical bytes either way).
  static std::atomic<uint64_t> temp_counter{0};
  namespace fs = std::filesystem;
  const std::string final_path = entry_path(key);
  const std::string temp_path =
      final_path + ".tmp." + std::to_string(SVC_GETPID()) + "." +
      std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(temp_path.c_str(), "wb");
  if (!f) return false;
  const bool wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  const bool closed = std::fclose(f) == 0;
  std::error_code ec;
  if (!wrote || !closed) {
    fs::remove(temp_path, ec);
    return false;
  }
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    return false;
  }
  return true;
}

}  // namespace svc
