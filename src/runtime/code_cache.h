// Shared, thread-safe cache of JIT artifacts: the code-management
// subsystem under the tiered deployment runtime. Cores (OnlineTarget) and
// background compile jobs key artifacts by (module identity, function
// index, target kind, JitOptions cache key), so cores of the same kind on
// one SoC reuse code instead of recompiling -- the O(cores x functions) ->
// O(kinds x functions) reduction measured by tests/code_cache_test.cpp.
//
// Concurrency contract: every public method is safe from any thread.
// Concurrent get_or_compile calls for the same key coalesce onto a single
// in-flight compile (the losers wait on a shared_future), so a key is
// compiled exactly once no matter how many cores race for it.
//
// Capacity: a configurable code-bytes budget with LRU eviction. Artifacts
// are handed out as shared_ptr, so eviction never invalidates code a core
// already holds; an evicted-then-requested key simply recompiles.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "jit/jit_compiler.h"

namespace svc {

/// Identity of one compiled artifact. `module_id` is the deployed
/// module's stable identity (Module::id()): a process-monotonic id
/// assigned at construction and never reused, so -- unlike the address
/// keying this replaced -- a module freed and another allocated at the
/// same address can never alias a stale artifact. get_or_compile asserts
/// in debug builds that the id is live (non-zero, i.e. not a moved-from
/// husk).
///
/// `tier` and `profile_hash` separate the fast first JIT (tier 1) from
/// profile-guided re-specializations (tier 2): artifacts of different
/// tiers -- or of the same tier shaped by different observed profiles --
/// coexist as independent entries and evict independently.
struct CodeCacheKey {
  uint64_t module_id = 0;  // Module::id() of the deployed module
  uint32_t func_idx = 0;
  TargetKind kind = TargetKind::X86Sim;
  std::string options_key;  // JitOptions::cache_key()
  uint32_t tier = 1;        // 1 = first JIT, 2 = optimizing recompile
  uint64_t profile_hash = 0;  // ProfileInfo::hash() behind a tier-2 compile

  friend bool operator==(const CodeCacheKey&, const CodeCacheKey&) = default;
};

struct CodeCacheKeyHash {
  size_t operator()(const CodeCacheKey& key) const {
    size_t h = std::hash<uint64_t>{}(key.module_id);
    const auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(key.func_idx);
    mix(static_cast<size_t>(key.kind));
    mix(std::hash<std::string>{}(key.options_key));
    mix(key.tier);
    mix(static_cast<size_t>(key.profile_hash));
    return h;
  }
};

class CodeCache {
 public:
  using Artifact = std::shared_ptr<const JitArtifact>;
  using CompileFn = std::function<JitArtifact()>;

  explicit CodeCache(size_t code_budget_bytes = SIZE_MAX)
      : budget_(code_budget_bytes) {}

  /// Returns the artifact for `key`, running `compile` on a miss. Counts
  /// "cache.hits" / "cache.misses"; concurrent same-key callers coalesce
  /// ("cache.coalesced") and only one runs `compile` ("cache.compiles").
  Artifact get_or_compile(const CodeCacheKey& key, const CompileFn& compile);

  /// Non-compiling, non-counting probe; does not touch LRU order.
  [[nodiscard]] Artifact peek(const CodeCacheKey& key) const;

  /// Shrinks (or grows) the resident-code budget; evicts immediately when
  /// the new budget is already exceeded.
  void set_code_budget(size_t bytes);

  /// Resident emitted-code bytes across all cached artifacts.
  [[nodiscard]] size_t code_bytes() const;

  [[nodiscard]] size_t num_entries() const;

  /// Snapshot of the cache counters: cache.hits, cache.misses,
  /// cache.compiles, cache.coalesced, cache.evictions, cache.bytes.
  [[nodiscard]] Statistics stats() const;

  /// Drops every cached artifact (in-flight compiles finish normally).
  void clear();

 private:
  struct Entry {
    Artifact artifact;
    size_t bytes = 0;
    std::list<CodeCacheKey>::iterator lru_it;
  };

  void insert_locked(const CodeCacheKey& key, Artifact artifact);
  void evict_to_budget_locked();

  mutable std::mutex mutex_;
  size_t budget_;
  size_t bytes_ = 0;
  std::unordered_map<CodeCacheKey, Entry, CodeCacheKeyHash> entries_;
  std::list<CodeCacheKey> lru_;  // front = most recently used
  std::unordered_map<CodeCacheKey, std::shared_future<Artifact>,
                     CodeCacheKeyHash>
      inflight_;
  Statistics stats_;
};

}  // namespace svc
