// Shared, thread-safe cache of JIT artifacts: the code-management
// subsystem under the tiered deployment runtime. Cores (OnlineTarget) and
// background compile jobs key artifacts by (module identity, function
// index, target kind, JitOptions cache key), so cores of the same kind on
// one SoC reuse code instead of recompiling -- the O(cores x functions) ->
// O(kinds x functions) reduction measured by tests/code_cache_test.cpp.
//
// Concurrency contract: every public method is safe from any thread.
// Concurrent get_or_compile calls for the same key coalesce onto a single
// in-flight compile (the losers wait on a shared_future), so a key is
// compiled exactly once no matter how many cores race for it.
//
// Capacity: a configurable code-bytes budget with LRU eviction. Artifacts
// are handed out as shared_ptr, so eviction never invalidates code a core
// already holds; an evicted-then-requested key simply recompiles.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "jit/jit_compiler.h"
#include "runtime/persistent_cache.h"

namespace svc {

/// Identity of one compiled artifact. `module_id` is the deployed
/// module's stable identity (Module::id()): a process-monotonic id
/// assigned at construction and never reused, so -- unlike the address
/// keying this replaced -- a module freed and another allocated at the
/// same address can never alias a stale artifact. get_or_compile asserts
/// in debug builds that the id is live (non-zero, i.e. not a moved-from
/// husk).
///
/// `tier` and `profile_hash` separate the fast first JIT (tier 1) from
/// profile-guided re-specializations (tier 2): artifacts of different
/// tiers -- or of the same tier shaped by different observed profiles --
/// coexist as independent entries and evict independently.
///
/// The mixed hash is precomputed at construction (the dominant cost is
/// hashing options_key, a string that never changes after construction),
/// so every probe on the hot request path is a field read instead of a
/// re-hash. Keys are immutable: mutate-by-rebuild if you need a variant.
class CodeCacheKey {
 public:
  CodeCacheKey() { rehash(); }
  CodeCacheKey(uint64_t module_id, uint32_t func_idx, TargetKind kind,
               std::string options_key, uint32_t tier = 1,
               uint64_t profile_hash = 0)
      : module_id(module_id),
        func_idx(func_idx),
        kind(kind),
        options_key(std::move(options_key)),
        tier(tier),
        profile_hash(profile_hash) {
    rehash();
  }

  const uint64_t module_id = 0;  // Module::id() of the deployed module
  const uint32_t func_idx = 0;
  const TargetKind kind = TargetKind::X86Sim;
  const std::string options_key;  // JitOptions::cache_key()
  const uint32_t tier = 1;        // 1 = first JIT, 2 = optimizing recompile
  const uint64_t profile_hash = 0;  // ProfileInfo::hash() of a tier-2 compile

  /// The precomputed mixed hash; equal keys always carry equal hashes
  /// (asserted by tests/persistent_cache_test.cpp).
  [[nodiscard]] size_t hash() const { return hash_; }

  friend bool operator==(const CodeCacheKey& a, const CodeCacheKey& b) {
    return a.hash_ == b.hash_ && a.module_id == b.module_id &&
           a.func_idx == b.func_idx && a.kind == b.kind && a.tier == b.tier &&
           a.profile_hash == b.profile_hash && a.options_key == b.options_key;
  }

 private:
  void rehash() {
    size_t h = std::hash<uint64_t>{}(module_id);
    const auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(func_idx);
    mix(static_cast<size_t>(kind));
    mix(std::hash<std::string>{}(options_key));
    mix(tier);
    mix(static_cast<size_t>(profile_hash));
    hash_ = h;
  }

  size_t hash_ = 0;
};

struct CodeCacheKeyHash {
  size_t operator()(const CodeCacheKey& key) const { return key.hash(); }
};

class CodeCache {
 public:
  using Artifact = std::shared_ptr<const JitArtifact>;
  using CompileFn = std::function<JitArtifact()>;

  explicit CodeCache(size_t code_budget_bytes = SIZE_MAX)
      : budget_(code_budget_bytes) {}

  /// Returns the artifact for `key`, running `compile` on a miss. Counts
  /// "cache.hits" / "cache.misses"; concurrent same-key callers coalesce
  /// ("cache.coalesced") and only one runs `compile` ("cache.compiles").
  ///
  /// With an attached persistent store (and the key's module registered),
  /// a memory miss consults disk before compiling: a valid entry installs
  /// without invoking `compile` ("cache.disk_hits"), an absent one counts
  /// "cache.disk_misses", a corrupt/stale one additionally
  /// "cache.disk_rejects", and a fresh compile writes back atomically
  /// ("cache.disk_writes") so concurrent processes sharing the store
  /// directory reuse each other's work.
  Artifact get_or_compile(const CodeCacheKey& key, const CompileFn& compile);

  /// Attaches (or detaches, with nullptr) the on-disk second-level store.
  /// The store is borrowed: it must outlive the cache (a Soc owns both in
  /// the right order). Attach before the first get_or_compile; modules
  /// already registered keep their content hashes.
  void attach_persistent(PersistentCache* store);

  /// True when an on-disk store is attached.
  [[nodiscard]] bool has_persistent() const;

  /// Computes and records the restart-stable per-function content hashes
  /// of `module` (PersistentCache::content_hashes), enabling disk
  /// consultation for keys carrying this module's id. Idempotent; cheap
  /// no-op without an attached store. Loaders call this once per module.
  void register_module(const Module& module);

  /// Non-compiling, non-counting probe; does not touch LRU order.
  [[nodiscard]] Artifact peek(const CodeCacheKey& key) const;

  /// Shrinks (or grows) the resident-code budget; evicts immediately when
  /// the new budget is already exceeded.
  void set_code_budget(size_t bytes);

  /// Resident emitted-code bytes across all cached artifacts.
  [[nodiscard]] size_t code_bytes() const;

  [[nodiscard]] size_t num_entries() const;

  /// Snapshot of the cache counters: cache.hits, cache.misses,
  /// cache.compiles, cache.coalesced, cache.evictions, cache.bytes, and
  /// -- with a persistent store attached -- cache.disk_hits,
  /// cache.disk_misses, cache.disk_writes, cache.disk_rejects.
  [[nodiscard]] Statistics stats() const;

  /// Drops every cached artifact (in-flight compiles finish normally).
  void clear();

 private:
  struct Entry {
    Artifact artifact;
    size_t bytes = 0;
    std::list<CodeCacheKey>::iterator lru_it;
  };

  void insert_locked(const CodeCacheKey& key, Artifact artifact);
  void evict_to_budget_locked();
  /// The disk spelling of `key` when an on-disk probe is possible (store
  /// attached, module registered, function index in range).
  [[nodiscard]] std::optional<PersistentCacheKey> disk_key_locked(
      const CodeCacheKey& key) const;

  mutable std::mutex mutex_;
  size_t budget_;
  size_t bytes_ = 0;
  PersistentCache* persistent_ = nullptr;
  // Module id -> restart-stable per-function content hashes, registered
  // by loaders; consulted to translate in-memory keys to disk keys.
  std::unordered_map<uint64_t, std::vector<uint64_t>> content_hashes_;
  std::unordered_map<CodeCacheKey, Entry, CodeCacheKeyHash> entries_;
  std::list<CodeCacheKey> lru_;  // front = most recently used
  std::unordered_map<CodeCacheKey, std::shared_future<Artifact>,
                     CodeCacheKeyHash>
      inflight_;
  Statistics stats_;
};

}  // namespace svc
