// Iterative compilation driver (paper S4: "virtual machine monitors may be
// the ideal engines to drive adaptive tuning"). Searches the offline
// optimization knob space per target, evaluating candidate binaries on the
// target's simulator, and reports the per-target winner -- demonstrating
// that the best configuration differs across heterogeneous cores, which
// is exactly why the decision belongs after deployment.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "driver/offline_compiler.h"
#include "driver/online_compiler.h"

namespace svc {

struct TuneConfig {
  bool vectorize = true;
  bool if_convert = false;
  bool simplify = true;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] OfflineOptions to_offline_options() const;
};

/// Measures one candidate: the harness runs its workload on the loaded
/// target and returns total simulated cycles.
using WorkloadFn = std::function<uint64_t(OnlineTarget&)>;

struct TuneCandidate {
  TuneConfig config;
  uint64_t cycles = 0;
};

struct TuneResult {
  TuneCandidate best;
  std::vector<TuneCandidate> all;  // full search space, evaluation order
};

/// Exhaustively evaluates the 8-point knob space of `source` on `kind`.
[[nodiscard]] TuneResult tune(std::string_view source, TargetKind kind,
                              const WorkloadFn& workload);

}  // namespace svc
