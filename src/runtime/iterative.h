// Iterative compilation driver (paper S4: "virtual machine monitors may be
// the ideal engines to drive adaptive tuning"). Searches a space of
// offline pipeline specs per target, evaluating candidate binaries on the
// target's simulator, and reports the per-target winner -- demonstrating
// that the best configuration differs across heterogeneous cores, which
// is exactly why the decision belongs after deployment.
//
// Since the pipeline became data (support/pass_manager.h), a candidate is
// a named PipelineSpec rather than three booleans. The old 8-point knob
// space (vectorize x if-convert x simplify) survives as the "classic8"
// preset, in the old evaluation order, so per-target winners stay
// comparable across the refactor.
//
// With the profile feedback loop closed, the tuner no longer has to
// search blind: tune_with_profile() accepts a profile-annotated module
// exported by a deployed SoC (Soc::export_profiled_module), evaluates the
// profile-derived seed configuration *first*, and prunes arms the
// observed behavior rules out.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "driver/offline_compiler.h"
#include "driver/online_compiler.h"
#include "support/pass_manager.h"

namespace svc {

/// One point of the tuning space: a display name plus the offline IR
/// pipeline that produces the candidate module.
struct TuneConfig {
  std::string name;       // table label, e.g. "vec+ifcvt+simp"
  PipelineSpec pipeline;  // offline schedule (names from ir/ir_pipeline.h)

  /// Display form: the name when set, otherwise the spec string.
  [[nodiscard]] std::string str() const;
  [[nodiscard]] OfflineOptions to_offline_options() const;
  /// True when the schedule includes `pass` (e.g. "vectorize").
  [[nodiscard]] bool uses(std::string_view pass) const {
    return pipeline.contains(pass);
  }

  /// One point of the classic knob space, named in the legacy
  /// "vec[+ifcvt][+simp|+nosimp]" form with the exact pre-refactor
  /// schedule for that knob setting.
  static TuneConfig classic(bool vectorize, bool if_convert, bool simplify);
};

/// The classic 8-point space (vectorize x if-convert x simplify) in the
/// legacy evaluation order: vectorize outermost, simplify innermost, all
/// "off" first.
[[nodiscard]] std::vector<TuneConfig> classic8_preset();

/// Named search-space lookup ("classic8", "vectorize4"); empty vector for
/// unknown names.
[[nodiscard]] std::vector<TuneConfig> tune_preset(std::string_view name);

/// Measures one candidate: the harness runs its workload on the loaded
/// target and returns total simulated cycles.
using WorkloadFn = std::function<uint64_t(OnlineTarget&)>;

struct TuneCandidate {
  TuneConfig config;
  uint64_t cycles = 0;
};

struct TuneResult {
  TuneCandidate best;
  std::vector<TuneCandidate> all;  // full search space, evaluation order
};

/// Evaluates every config of `space` for `source` on `kind`; ties go to
/// the earlier candidate.
[[nodiscard]] TuneResult tune(std::string_view source, TargetKind kind,
                              const WorkloadFn& workload,
                              const std::vector<TuneConfig>& space);

/// Classic8 convenience overload (the pre-refactor search space).
[[nodiscard]] TuneResult tune(std::string_view source, TargetKind kind,
                              const WorkloadFn& workload);

// --- Profile-guided tuning ------------------------------------------------

/// Distills the Profile annotations of `profiled` (an exported deployment
/// module) into the configuration the search should evaluate first. With
/// no decodable profile this degrades to the full classic default
/// (vec+ifcvt+simp); the name is prefixed "pgo:" either way.
[[nodiscard]] TuneConfig profile_seed_config(const Module& profiled);

/// Seeds `space` with the profile-derived config (first, deduplicated)
/// and prunes arms the profile rules out: vectorize candidates when no
/// vector work or hot loop was observed, if-convert candidates when every
/// observed branch was heavily biased. An unprofiled module leaves
/// `space` untouched.
[[nodiscard]] std::vector<TuneConfig> profile_guided_space(
    const Module& profiled, const std::vector<TuneConfig>& space);

/// tune() seeded and pruned by an imported profile: the first evaluated
/// candidate is profile_seed_config(profiled) whenever the module carries
/// a profile. `space` defaults to classic8.
[[nodiscard]] TuneResult tune_with_profile(std::string_view source,
                                           TargetKind kind,
                                           const WorkloadFn& workload,
                                           const Module& profiled,
                                           const std::vector<TuneConfig>&
                                               space = classic8_preset());

}  // namespace svc
