// Static-dataflow pipeline runtime over the SoC -- the deterministic,
// composable concurrency substrate the paper points to (S4: Kahn process
// networks as the semantic basis for parallel bytecode). We implement the
// statically-schedulable subset (single-rate SDF pipelines): each stage
// fires once per block of samples, stages on different cores overlap in
// steady state, and accelerator stages pay DMA per block.
//
// Timing model for B blocks through stages s_1..s_k (pipelined):
//   latency  = sum_i cost(s_i)
//   total    = latency + (B - 1) * max_i cost(s_i)
// where cost = simulated firing cycles (+ DMA in/out for accelerators).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/soc.h"

namespace svc {

struct StageReport {
  std::string name;
  size_t core = 0;
  uint64_t fire_cycles = 0;  // one firing, compute only
  uint64_t dma_cycles = 0;   // per firing
  [[nodiscard]] uint64_t total_cycles() const {
    return fire_cycles + dma_cycles;
  }
};

struct PipelineReport {
  std::vector<StageReport> stages;
  uint64_t blocks = 0;
  uint64_t latency_cycles = 0;     // first block through all stages
  uint64_t steady_total_cycles = 0;  // all blocks, pipelined
  [[nodiscard]] uint64_t bottleneck_cycles() const;
};

class Pipeline {
 public:
  /// `fire` runs one firing of the stage on its core and returns the sim
  /// result (the harness binds function name, buffers and block size).
  struct Stage {
    std::string name;
    size_t core;
    uint64_t dma_bytes_per_block;  // 0 for host-resident stages
    std::function<SimResult()> fire;
  };

  explicit Pipeline(Soc& soc) : soc_(soc) {}

  void add_stage(Stage stage) { stages_.push_back(std::move(stage)); }

  /// Fires every stage once (validating functionally), then extrapolates
  /// the pipelined schedule for `blocks` blocks.
  [[nodiscard]] PipelineReport run(uint64_t blocks);

 private:
  Soc& soc_;
  std::vector<Stage> stages_;
};

}  // namespace svc
