// Persistent on-disk artifact store: the second-level (disk) tier under
// the in-memory CodeCache. The paper's split-compilation premise is that
// expensive work is done once and reused; this store extends that to the
// runtime half -- JIT artifacts survive process restarts, so a second
// boot of a deployment warms up from disk instead of re-paying the
// tier-1/tier-2 compile bill (bench/warm_start.cpp measures the win).
//
// Keying: a module's process-monotonic id() is meaningless across
// restarts, so on disk it is replaced by a *content hash* of the
// function -- the serialized per-function record (serialize_function)
// mixed with a digest of every function signature in the module (calls
// lower against callee signatures, so a function's code depends on the
// module's interface, not just its own body). The rest of the in-memory
// CodeCacheKey (function index, target kind, JitOptions::cache_key(),
// tier, profile hash) carries over verbatim. Every entry additionally
// embeds a build fingerprint (schema version, MachineDesc identity,
// compiler stamp): any mismatch -- like any CRC failure, truncation, or
// key collision -- loads as a clean miss, never a crash.
//
// Multi-process sharing: one store directory may be shared by any number
// of concurrent processes on a host. Writers are atomic (temp file +
// rename into place), so readers only ever observe absent or complete
// entries; racing writers of the same key settle on one winner with
// identical bytes. There is no in-store eviction -- entries are small
// and immutable; prune the directory externally (docs/PERSISTENCE.md).
//
// Thread-safety: the store is stateless apart from its directory path;
// load/store/entry_path are safe from any thread and any process.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "jit/jit_compiler.h"
#include "support/result.h"

namespace svc {

class Module;

/// Restart-stable identity of one persisted artifact: the in-memory
/// CodeCacheKey with the process-local module id replaced by the
/// function's content hash.
struct PersistentCacheKey {
  uint64_t content_hash = 0;
  uint32_t func_idx = 0;
  TargetKind kind = TargetKind::X86Sim;
  std::string options_key;  // JitOptions::cache_key()
  uint32_t tier = 1;
  uint64_t profile_hash = 0;
};

class PersistentCache {
 public:
  /// Outcome of a disk probe. Reject = an entry file existed but failed
  /// validation (CRC, truncation, fingerprint skew, key collision): the
  /// caller treats it exactly like a miss and its write-back overwrites
  /// the bad entry.
  enum class LoadStatus : uint8_t { Hit, Miss, Reject };

  struct LoadResult {
    LoadStatus status = LoadStatus::Miss;
    std::shared_ptr<const JitArtifact> artifact;  // set only on Hit
  };

  /// Opens (creating if needed) a store rooted at `dir`. Fails -- with a
  /// diagnostic, not a crash -- when the path exists but is not a
  /// directory or when a write probe shows the directory is not
  /// writable. This is the validation Engine::Builder::build() runs.
  [[nodiscard]] static Result<PersistentCache> open(const std::string& dir);

  /// Probes the store for `key`. Never throws and never crashes on a
  /// corrupt, truncated, stale, or colliding entry: every failure mode
  /// degrades to Miss/Reject and the caller recompiles.
  [[nodiscard]] LoadResult load(const PersistentCacheKey& key) const;

  /// Persists `artifact` under `key` atomically (temp file + rename), so
  /// concurrent readers and same-key writers in other processes are
  /// safe. Returns false (and leaves no partial file) on I/O failure.
  /// `fingerprint_override` is a testing hook: it stamps the entry with
  /// a different build fingerprint so staleness handling can be
  /// exercised without forging whole files.
  [[nodiscard]] bool store(const PersistentCacheKey& key,
                           const JitArtifact& artifact,
                           const std::string* fingerprint_override =
                               nullptr) const;

  /// The file a given key maps to (exists only once stored). Exposed for
  /// tests and external pruning tools.
  [[nodiscard]] std::string entry_path(const PersistentCacheKey& key) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The build fingerprint stamped into (and demanded of) every entry
  /// for this (target, options) pair: persistence schema version, the
  /// target's MachineDesc identity digest, JitOptions::cache_key(), and
  /// the compiler version stamp. Any component changing invalidates the
  /// store's entries wholesale -- by rejection at load, not by deletion.
  [[nodiscard]] static std::string build_fingerprint(
      TargetKind kind, const std::string& options_key);

  /// Restart-stable per-function content hashes for `module`: hash of
  /// serialize_function(fn) mixed with the module-wide interface digest
  /// (every function's name and signature). Computed once per loaded
  /// module by CodeCache::register_module.
  [[nodiscard]] static std::vector<uint64_t> content_hashes(
      const Module& module);

 private:
  explicit PersistentCache(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
};

}  // namespace svc
