#include "runtime/iterative.h"

namespace svc {

std::string TuneConfig::str() const {
  std::string s;
  s += vectorize ? "vec" : "novec";
  s += if_convert ? "+ifcvt" : "";
  s += simplify ? "+simp" : "+nosimp";
  return s;
}

OfflineOptions TuneConfig::to_offline_options() const {
  OfflineOptions opts;
  opts.vectorize = vectorize;
  opts.passes.if_convert = if_convert;
  opts.passes.simplify = simplify;
  return opts;
}

TuneResult tune(std::string_view source, TargetKind kind,
                const WorkloadFn& workload) {
  TuneResult result;
  result.best.cycles = UINT64_MAX;
  for (int v = 0; v < 2; ++v) {
    for (int ic = 0; ic < 2; ++ic) {
      for (int s = 0; s < 2; ++s) {
        TuneConfig config;
        config.vectorize = v != 0;
        config.if_convert = ic != 0;
        config.simplify = s != 0;
        const Module module =
            compile_or_die(source, config.to_offline_options());
        OnlineTarget target(kind);
        target.load(module);
        TuneCandidate candidate;
        candidate.config = config;
        candidate.cycles = workload(target);
        result.all.push_back(candidate);
        if (candidate.cycles < result.best.cycles) result.best = candidate;
      }
    }
  }
  return result;
}

}  // namespace svc
