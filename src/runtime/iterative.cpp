#include "runtime/iterative.h"

#include "ir/ir_pipeline.h"
#include "runtime/profile_guided.h"

namespace svc {

std::string TuneConfig::str() const {
  return name.empty() ? pipeline.str() : name;
}

OfflineOptions TuneConfig::to_offline_options() const {
  OfflineOptions opts;
  opts.pipeline = pipeline;
  return opts;
}

TuneConfig TuneConfig::classic(bool vectorize, bool if_convert,
                               bool simplify) {
  PassOptions passes;
  passes.if_convert = if_convert;
  passes.simplify = simplify;

  TuneConfig config;
  config.pipeline = default_ir_pipeline(passes, vectorize);
  config.name = vectorize ? "vec" : "novec";
  config.name += if_convert ? "+ifcvt" : "";
  config.name += simplify ? "+simp" : "+nosimp";
  return config;
}

std::vector<TuneConfig> classic8_preset() {
  std::vector<TuneConfig> space;
  space.reserve(8);
  for (int v = 0; v < 2; ++v) {
    for (int ic = 0; ic < 2; ++ic) {
      for (int s = 0; s < 2; ++s) {
        space.push_back(TuneConfig::classic(v != 0, ic != 0, s != 0));
      }
    }
  }
  return space;
}

std::vector<TuneConfig> tune_preset(std::string_view name) {
  if (name == "classic8") return classic8_preset();
  if (name == "vectorize4") {
    // The vectorization decision alone, with and without if-conversion:
    // the smallest space that still shows per-target winner divergence.
    return {TuneConfig::classic(false, false, true),
            TuneConfig::classic(false, true, true),
            TuneConfig::classic(true, false, true),
            TuneConfig::classic(true, true, true)};
  }
  return {};
}

TuneResult tune(std::string_view source, TargetKind kind,
                const WorkloadFn& workload,
                const std::vector<TuneConfig>& space) {
  TuneResult result;
  result.best.cycles = UINT64_MAX;
  for (const TuneConfig& config : space) {
    // Candidate sources/specs are caller-vetted (the source compiled for
    // the space to make sense); a failing candidate is an internal
    // invariant break, not user input.
    Result<Module> compiled =
        compile_module(source, config.to_offline_options());
    if (!compiled.ok()) {
      fatal("tune: candidate '" + config.str() + "' failed to compile:\n" +
            compiled.error_text());
    }
    const Module module = std::move(compiled).value();
    OnlineTarget target(kind);
    if (Result<void> r = target.load_module(borrow_module(module)); !r.ok()) {
      fatal("tune: candidate '" + config.str() + "' failed to load:\n" +
            r.error_text());
    }
    TuneCandidate candidate;
    candidate.config = config;
    candidate.cycles = workload(target);
    result.all.push_back(candidate);
    if (candidate.cycles < result.best.cycles) result.best = candidate;
  }
  return result;
}

TuneResult tune(std::string_view source, TargetKind kind,
                const WorkloadFn& workload) {
  return tune(source, kind, workload, classic8_preset());
}

TuneConfig profile_seed_config(const Module& profiled) {
  const ProfileSeedDecision decision = profile_seed_decision(profiled);
  TuneConfig seed = decision.observed
                        ? TuneConfig::classic(decision.vectorize,
                                              decision.if_convert, true)
                        : TuneConfig::classic(true, true, true);
  seed.name = "pgo:" + seed.name;
  return seed;
}

std::vector<TuneConfig> profile_guided_space(
    const Module& profiled, const std::vector<TuneConfig>& space) {
  const ProfileSeedDecision decision = profile_seed_decision(profiled);
  if (!decision.observed) return space;

  const TuneConfig seed = profile_seed_config(profiled);
  std::vector<TuneConfig> out{seed};
  for (const TuneConfig& config : space) {
    if (config.pipeline == seed.pipeline) continue;
    // The profile rules an arm out only when the behavior it exploits was
    // never observed -- pruning is a search-cost heuristic, and the seed
    // always stays in.
    if (!decision.vectorize && config.uses("vectorize")) continue;
    if (!decision.if_convert && config.uses("if_convert")) continue;
    out.push_back(config);
  }
  return out;
}

TuneResult tune_with_profile(std::string_view source, TargetKind kind,
                             const WorkloadFn& workload,
                             const Module& profiled,
                             const std::vector<TuneConfig>& space) {
  return tune(source, kind, workload, profile_guided_space(profiled, space));
}

}  // namespace svc
