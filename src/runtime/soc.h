// Simulated heterogeneous SoC (the paper's S3 scenario): a set of cores of
// different target kinds sharing one linear memory, each running its own
// per-ISA JIT over the *same* deployed bytecode module. Accelerator cores
// (spusim) reach memory through a DMA model whose cost the scheduler
// charges explicitly -- the stand-in for the Cell local-store transfers.
//
// Code management is shared: one thread-safe CodeCache (and, optionally,
// one background-compile ThreadPool) spans all cores, so cores of the same
// TargetKind + JitOptions reuse JIT artifacts instead of recompiling --
// load()'s compile count drops from O(cores x functions) to
// O(kinds x functions). Tiered mode starts interpreting immediately and
// warms up in the background; prefetch applies the paper's
// annotations-drive-mapping story to warm-up, background-compiling each
// function only on its top-ranked core (mapper.h rank_cores).
#pragma once

#include <memory>
#include <vector>

#include "driver/online_compiler.h"
#include "runtime/code_cache.h"
#include "support/thread_pool.h"

namespace svc {

struct CoreSpec {
  TargetKind kind;
  bool is_accelerator = false;  // memory reached via DMA
};

struct SocOptions {
  JitOptions jit;
  LoadMode mode = LoadMode::Eager;
  // Tiered warm-up prefetch: at load, background-compile each function on
  // its top-ranked core per the HardwareHints annotations (no-op in eager
  // mode, where everything compiles anyway).
  bool prefetch = false;
  // Calls of a function on a core before its JIT compile is requested.
  uint32_t promote_threshold = 1;
  // Tier-0 runtime profiling on every core (tiered mode): feeds tier-2
  // re-specialization and export_profiled_module().
  bool profile = false;
  // Calls of a function served by JITed code on a core before its
  // profile-guided tier-2 recompile is requested; 0 disables tier 2.
  uint32_t tier2_threshold = 0;
  // Tier-0 engine selection, forwarded to every core's interpreter
  // (results are bit-identical across engines -- the fuzz harness in
  // src/fuzz runs both as differential cells; see vm/interpreter.h).
  DispatchKind tier0_dispatch = DispatchKind::Threaded;
  bool tier0_fusion = true;
  // Background compile workers; 0 = no pool, tier-up compiles run
  // synchronously at the promotion threshold.
  size_t pool_threads = 0;
  // Shared-cache resident-code budget (LRU eviction above it).
  size_t cache_budget_bytes = SIZE_MAX;
  // Directory of the persistent on-disk artifact store (second level
  // under the shared CodeCache); empty = in-memory only. One directory
  // may be shared by concurrent processes on a host -- see
  // runtime/persistent_cache.h and docs/PERSISTENCE.md. A directory that
  // cannot be opened disables the disk tier with a warning (every disk
  // problem degrades to recompilation, never a crash); configure through
  // Engine::Builder::persistent_cache() to get build()-time validation.
  std::string persistent_cache_path;
};

class Soc {
 public:
  Soc(std::vector<CoreSpec> cores, size_t memory_bytes,
      SocOptions options = {});

  /// Loads `module` on every core through the shared cache. An invalid
  /// module is reported through the Result (no core executes it); eager
  /// mode compiles every function per *kind* now, tiered mode defers to
  /// run_on and -- with options.prefetch -- enqueues one background
  /// compile per function on its best core.
  ///
  /// Ownership: the Soc and its cores share ownership of the module (the
  /// shared cache keys artifacts by the module's stable id), so dropping
  /// every external handle is safe while the Soc lives. Pass
  /// borrow_module(m) to keep managing the lifetime yourself. The module
  /// must not be mutated after loading.
  [[nodiscard]] Result<void> load_module(std::shared_ptr<const Module> module);

  /// Deprecated raw-reference spelling of load_module(): retains only a
  /// borrowed pointer (caller keeps the module alive) and fatals on an
  /// invalid module.
  [[deprecated("use load_module(borrow_module(m)) or deploy through "
               "svc::Engine (api/svc.h)")]] void
  load(const Module& module);

  [[nodiscard]] size_t num_cores() const { return cores_.size(); }
  [[nodiscard]] const CoreSpec& core_spec(size_t c) const { return specs_[c]; }
  [[nodiscard]] OnlineTarget& core(size_t c) { return *cores_[c]; }
  [[nodiscard]] const OnlineTarget& core(size_t c) const { return *cores_[c]; }
  [[nodiscard]] Memory& memory() { return memory_; }
  [[nodiscard]] const Module* module() const { return module_.get(); }
  [[nodiscard]] const SocOptions& options() const { return options_; }

  /// The cache shared by every core's JIT.
  [[nodiscard]] CodeCache& code_cache() { return cache_; }
  [[nodiscard]] const CodeCache& code_cache() const { return cache_; }

  /// Background compile pool, or nullptr when options.pool_threads == 0.
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

  /// The tier-0 pre-decoded-stream cache shared by every core's
  /// interpreter (pre-decoding is target-independent, so one lowering
  /// serves all ISAs).
  [[nodiscard]] PredecodeCache& predecode_cache() { return predecode_; }

  /// Blocks until every in-flight background compile has finished.
  void wait_warmup();

  /// Per-shard tier counters of one core: calls served by the
  /// interpreter (tier 0), by JITed code (tier 1+), and by a tier-2
  /// re-specialized artifact (a subset of `jitted`), plus the number of
  /// functions with a tier-2 artifact installed on that core. Eager
  /// cores do no tier bookkeeping and report zeros. Safe to call
  /// concurrently with run_on (snapshots under the core's lock).
  struct CoreCounters {
    uint64_t interpreted = 0;
    uint64_t jitted = 0;
    uint64_t tier2 = 0;
    size_t tier2_functions = 0;
  };
  [[nodiscard]] CoreCounters core_counters(size_t c) const;

  /// Runtime profile merged across every core (empty unless
  /// options.profile). One SoC-wide view: the cores execute the same
  /// module, so per-function records simply accumulate. Safe to call
  /// concurrently with run_on: each core's contribution is snapshotted
  /// under that core's lock, so the merge sees a consistent per-core
  /// state (concurrent calls still being served land in a later
  /// snapshot).
  [[nodiscard]] ProfileData profile() const;

  /// Installs an external baseline profile on every core
  /// (OnlineTarget::seed_profile): tier-2 re-specialization then derives
  /// from own + seed, while profile() keeps reporting own observations
  /// only. This is how a svc::Cluster makes each shard specialize for
  /// aggregate fleet traffic. Replaces any previous seed; thread-safe.
  void seed_profile(const ProfileData& seed);

  /// Copy of the loaded module carrying the merged profile as Profile
  /// annotations -- what a deployed SoC ships back to the offline tuner
  /// (serialize it like any deployment image). Same concurrency contract
  /// as profile(); must not race with load_module.
  [[nodiscard]] Module export_profiled_module() const;

  /// Runs `name` synchronously on core `c`. Concurrent calls are safe --
  /// each core serializes its own tiered bookkeeping under its lock --
  /// but all cores execute against the one shared linear memory:
  /// concurrent requests must touch disjoint (or read-only) regions, or
  /// the caller must serialize them (the serving layer in serve/server.h
  /// serializes per core and routes each function to one core).
  /// `step_budget` bounds a single execution (interpreter steps or
  /// simulated instructions, whichever serves the call); exceeding it
  /// returns a StepBudgetExceeded trap instead of running forever. The
  /// default matches OnlineTarget::run's.
  [[nodiscard]] SimResult run_on(size_t c, std::string_view name,
                                 const std::vector<Value>& args,
                                 uint64_t step_budget = uint64_t{1} << 32);

  /// Index-taking spelling for callers that already resolved the
  /// function (the serving layer's per-request path); same concurrency
  /// contract. `func_idx` must be < the module's function count.
  [[nodiscard]] SimResult run_on(size_t c, uint32_t func_idx,
                                 const std::vector<Value>& args,
                                 uint64_t step_budget = uint64_t{1} << 32);

  /// DMA cost (cycles) for moving `bytes` to or from an accelerator.
  [[nodiscard]] uint64_t dma_cycles(uint64_t bytes) const {
    return dma_setup_cycles_ + bytes / dma_bytes_per_cycle_;
  }

  void set_dma_model(uint64_t setup_cycles, uint64_t bytes_per_cycle) {
    dma_setup_cycles_ = setup_cycles;
    dma_bytes_per_cycle_ = bytes_per_cycle;
  }

  /// The on-disk artifact store behind the shared cache, or nullptr when
  /// options.persistent_cache_path is empty (or failed to open).
  [[nodiscard]] const PersistentCache* persistent_cache() const {
    return persistent_.get();
  }

 private:
  SocOptions options_;
  // Destruction order matters: cores_ is declared after cache_/pool_ so it
  // is destroyed first -- each ~OnlineTarget drains its in-flight compile
  // jobs while the pool workers and the cache are still alive. The
  // persistent store precedes cache_ for the same reason: the cache
  // borrows it.
  std::unique_ptr<PersistentCache> persistent_;
  CodeCache cache_;
  // Shared across cores like cache_ (declared before cores_ for the same
  // destruction-order reason).
  PredecodeCache predecode_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<CoreSpec> specs_;
  std::vector<std::unique_ptr<OnlineTarget>> cores_;
  Memory memory_;
  std::shared_ptr<const Module> module_;
  uint64_t dma_setup_cycles_ = 200;
  uint64_t dma_bytes_per_cycle_ = 8;
};

}  // namespace svc
