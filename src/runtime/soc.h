// Simulated heterogeneous SoC (the paper's S3 scenario): a set of cores of
// different target kinds sharing one linear memory, each running its own
// per-ISA JIT over the *same* deployed bytecode module. Accelerator cores
// (spusim) reach memory through a DMA model whose cost the scheduler
// charges explicitly -- the stand-in for the Cell local-store transfers.
#pragma once

#include <memory>
#include <vector>

#include "driver/online_compiler.h"

namespace svc {

struct CoreSpec {
  TargetKind kind;
  bool is_accelerator = false;  // memory reached via DMA
};

class Soc {
 public:
  Soc(std::vector<CoreSpec> cores, size_t memory_bytes);

  /// JIT-compiles `module` on every core (each for its own ISA).
  void load(const Module& module);

  [[nodiscard]] size_t num_cores() const { return cores_.size(); }
  [[nodiscard]] const CoreSpec& core_spec(size_t c) const { return specs_[c]; }
  [[nodiscard]] OnlineTarget& core(size_t c) { return *cores_[c]; }
  [[nodiscard]] const OnlineTarget& core(size_t c) const { return *cores_[c]; }
  [[nodiscard]] Memory& memory() { return memory_; }
  [[nodiscard]] const Module* module() const { return module_; }

  /// Runs `name` synchronously on core `c`.
  [[nodiscard]] SimResult run_on(size_t c, std::string_view name,
                                 const std::vector<Value>& args);

  /// DMA cost (cycles) for moving `bytes` to or from an accelerator.
  [[nodiscard]] uint64_t dma_cycles(uint64_t bytes) const {
    return dma_setup_cycles_ + bytes / dma_bytes_per_cycle_;
  }

  void set_dma_model(uint64_t setup_cycles, uint64_t bytes_per_cycle) {
    dma_setup_cycles_ = setup_cycles;
    dma_bytes_per_cycle_ = bytes_per_cycle;
  }

 private:
  std::vector<CoreSpec> specs_;
  std::vector<std::unique_ptr<OnlineTarget>> cores_;
  Memory memory_;
  const Module* module_ = nullptr;
  uint64_t dma_setup_cycles_ = 200;
  uint64_t dma_bytes_per_cycle_ = 8;
};

}  // namespace svc
