#include "runtime/dataflow.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace svc {

uint64_t PipelineReport::bottleneck_cycles() const {
  uint64_t worst = 0;
  for (const StageReport& s : stages) {
    worst = std::max(worst, s.total_cycles());
  }
  return worst;
}

PipelineReport Pipeline::run(uint64_t blocks) {
  PipelineReport report;
  report.blocks = blocks;
  for (Stage& stage : stages_) {
    const SimResult result = stage.fire();
    if (!result.ok()) {
      fatal("pipeline stage '" + stage.name + "' trapped");
    }
    StageReport sr;
    sr.name = stage.name;
    sr.core = stage.core;
    sr.fire_cycles = result.stats.cycles;
    const bool accel = soc_.core_spec(stage.core).is_accelerator;
    sr.dma_cycles =
        accel ? 2 * soc_.dma_cycles(stage.dma_bytes_per_block) : 0;
    report.stages.push_back(sr);
  }
  for (const StageReport& s : report.stages) {
    report.latency_cycles += s.total_cycles();
  }
  report.steady_total_cycles =
      report.latency_cycles +
      (blocks > 0 ? (blocks - 1) * report.bottleneck_cycles() : 0);
  return report;
}

}  // namespace svc
