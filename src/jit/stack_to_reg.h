// Stack-to-register translation: the front half of the online compiler.
// One forward walk per block (possible because SVIL guarantees an empty
// evaluation stack at block boundaries) simulates the operand stack
// symbolically over virtual registers and emits three-address machine
// instructions 1:1.
//
// Locals map to dedicated virtual registers. local.get pushes the local's
// register directly (no copy); local.set emits one move, and protects any
// still-on-stack reads of the old value with a temporary copy first.
// The peephole pass (isel.h) then removes almost all remaining moves.
#pragma once

#include "bytecode/function.h"
#include "bytecode/module.h"
#include "targets/machine.h"

namespace svc {

/// Translates `fn` to virtual-register machine code. The result is
/// target-neutral except that vector ops are kept 1:1 (de-vectorization
/// for SIMD-less targets happens afterwards, see jit/devectorize.h).
[[nodiscard]] MFunction stack_to_reg(const Module& module, const Function& fn);

}  // namespace svc
