// The online (JIT) compiler: SVIL bytecode -> allocated machine code for
// one target. Mirrors the paper's deployment-side step (Figure 1, right):
// it is fast, linear-time, and leans on offline annotations instead of
// re-running expensive analyses.
//
// Pipeline: stack-to-register translation -> peephole cleanup ->
// [FMA formation if has_fma] -> [de-vectorization if !has_simd, plus a
// second cleanup] -> register allocation (policy-selectable; SplitGuided
// consumes the SpillPriority annotation).
#pragma once

#include <chrono>
#include <vector>

#include "bytecode/module.h"
#include "regalloc/linear_scan.h"
#include "support/statistics.h"
#include "targets/machine.h"

namespace svc {

struct JitOptions {
  AllocPolicy alloc_policy = AllocPolicy::LinearScan;
  // When false the JIT ignores all annotations (the ablation arm of the
  // split-compilation experiments); SplitGuided degrades to NaiveOnline
  // ranking as required by the annotations-are-advisory rule.
  bool use_annotations = true;
};

struct JitArtifact {
  MFunction code;
  Statistics stats;  // per-phase counters (moves_removed, spills, ...)
  double compile_seconds = 0.0;
};

class JitCompiler {
 public:
  explicit JitCompiler(const MachineDesc& desc, JitOptions options = {})
      : desc_(desc), options_(options) {}

  [[nodiscard]] const MachineDesc& desc() const { return desc_; }

  /// Compiles one function of `module`.
  [[nodiscard]] JitArtifact compile(const Module& module, uint32_t func_idx);

  /// Compiles every function; `aggregate` (optional) accumulates stats.
  [[nodiscard]] std::vector<MFunction> compile_module(
      const Module& module, Statistics* aggregate = nullptr);

 private:
  const MachineDesc& desc_;
  JitOptions options_;
};

}  // namespace svc
