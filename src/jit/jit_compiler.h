// The online (JIT) compiler: SVIL bytecode -> allocated machine code for
// one target. Mirrors the paper's deployment-side step (Figure 1, right):
// it is fast, linear-time, and leans on offline annotations instead of
// re-running expensive analyses.
//
// Pipeline: stack-to-register translation -> peephole cleanup ->
// [FMA formation if has_fma] -> [de-vectorization if !has_simd, plus a
// second cleanup] -> register allocation (policy-selectable; SplitGuided
// consumes the SpillPriority annotation).
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "bytecode/module.h"
#include "regalloc/linear_scan.h"
#include "support/pass_manager.h"
#include "support/statistics.h"
#include "targets/machine.h"

namespace svc {

struct JitOptions {
  JitOptions() = default;
  JitOptions(AllocPolicy policy, bool annotations)
      : alloc_policy(policy), use_annotations(annotations) {}

  AllocPolicy alloc_policy = AllocPolicy::LinearScan;
  // When false the JIT ignores all annotations (the ablation arm of the
  // split-compilation experiments); SplitGuided degrades to NaiveOnline
  // ranking as required by the annotations-are-advisory rule.
  bool use_annotations = true;
  // Custom online phase chain (names from jit/jit_pipeline.h). When unset
  // the JIT runs default_jit_pipeline(desc) -- the classic chain gated on
  // the target's capabilities. Must start with "stack_to_reg" (the
  // translation that creates the machine function the rest transforms).
  std::optional<PipelineSpec> pipeline;

  /// Canonical stringification for code-cache keying: two JitOptions with
  /// equal keys produce identical code on the same target. An unset
  /// pipeline renders as "default" -- sound to cache because the default
  /// schedule is a pure function of the MachineDesc, and the cache key
  /// also carries the target kind.
  [[nodiscard]] std::string cache_key() const;
};

struct JitArtifact {
  MFunction code;
  Statistics stats;  // per-phase counters (moves_removed, spills, ...)
  double compile_seconds = 0.0;
};

class JitCompiler {
 public:
  explicit JitCompiler(const MachineDesc& desc, JitOptions options = {})
      : desc_(desc), options_(options) {}

  [[nodiscard]] const MachineDesc& desc() const { return desc_; }
  [[nodiscard]] const JitOptions& options() const { return options_; }

  /// Compiles one function of `module`. Const and thread-safe: touches
  /// only the immutable target description / options and the process-wide
  /// pass registry (built once), so background compile jobs may share one
  /// JitCompiler across threads.
  [[nodiscard]] JitArtifact compile(const Module& module,
                                    uint32_t func_idx) const;

  /// Compiles every function; `aggregate` (optional) accumulates stats.
  [[nodiscard]] std::vector<MFunction> compile_module(
      const Module& module, Statistics* aggregate = nullptr) const;

 private:
  const MachineDesc& desc_;
  const JitOptions options_;
};

}  // namespace svc
