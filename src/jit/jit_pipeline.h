// Online half of the unified pass pipeline: the JIT's phase chain
// (translation, peephole cleanup, FMA formation, de-vectorization,
// register allocation) as named passes in a process-wide PassManager --
// the same abstraction the offline compiler uses (ir/ir_pipeline.h), so
// both halves of Figure 1 are driven by PipelineSpec data.
//
// Registered passes:
//   stack_to_reg  SVIL stack bytecode -> virtual-register MFunction
//                 (replaces the unit wholesale; must come first)
//   peephole      copy forwarding + dead-move elimination
//   fma           fused multiply-add formation; no-op unless the target
//                 has_fma (the paper's annotations-are-advisory rule:
//                 a spec never forces an op the core cannot execute)
//   devectorize   lane expansion to scalar code; runs wherever named, so
//                 a spec can force scalarization even on a SIMD target
//                 (the ablation the default chain only does when
//                 !has_simd)
//   regalloc      policy-selectable register allocation; SplitGuided
//                 consumes the SpillPriority annotation when enabled
#pragma once

#include "bytecode/module.h"
#include "jit/jit_compiler.h"
#include "support/pass_manager.h"
#include "targets/machine.h"

namespace svc {

/// Immutable surroundings of one online compilation.
struct JitPipelineContext {
  const Module& module;
  const Function& fn;
  const MachineDesc& desc;
  const JitOptions& options;
};

using JitPassManager = PassManager<MFunction, JitPipelineContext>;

/// The process-wide online pass registry (built once, immutable after).
[[nodiscard]] const JitPassManager& jit_pass_manager();

/// The classic per-target chain JitCompiler::compile ran before the
/// refactor: stack_to_reg, peephole, [fma], [devectorize + second
/// peephole], regalloc -- gates resolved against `desc` capabilities.
[[nodiscard]] PipelineSpec default_jit_pipeline(const MachineDesc& desc);

}  // namespace svc
