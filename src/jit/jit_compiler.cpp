#include "jit/jit_compiler.h"

#include "jit/devectorize.h"
#include "jit/isel.h"
#include "jit/stack_to_reg.h"

namespace svc {

JitArtifact JitCompiler::compile(const Module& module, uint32_t func_idx) {
  const auto t0 = std::chrono::steady_clock::now();
  const Function& fn = module.function(func_idx);

  JitArtifact artifact;
  artifact.code = stack_to_reg(module, fn);

  const PeepholeStats peep = peephole_cleanup(artifact.code);
  artifact.stats.add("jit.moves_removed", peep.moves_removed);

  if (desc_.has_fma) {
    artifact.stats.add("jit.fma_formed", form_fma(artifact.code));
  }

  if (!desc_.has_simd) {
    const DevectorizeStats dv = devectorize(artifact.code);
    artifact.stats.add("jit.vector_insts_expanded", dv.vector_insts_expanded);
    artifact.stats.add("jit.scalar_insts_emitted", dv.scalar_insts_emitted);
    // Lane expansion leaves copy chains worth one more cleanup round.
    const PeepholeStats peep2 = peephole_cleanup(artifact.code);
    artifact.stats.add("jit.moves_removed", peep2.moves_removed);
  }

  // Register allocation. The SplitGuided policy consumes the offline
  // SpillPriority annotation when present and enabled.
  SpillPriorityInfo hints;
  const SpillPriorityInfo* hints_ptr = nullptr;
  if (options_.use_annotations &&
      options_.alloc_policy == AllocPolicy::SplitGuided) {
    if (const Annotation* ann =
            find_annotation(fn.annotations(), AnnotationKind::SpillPriority)) {
      if (auto decoded = SpillPriorityInfo::decode(ann->payload)) {
        hints = std::move(*decoded);
        hints_ptr = &hints;
      }
    }
  }
  const AllocResult alloc =
      allocate_registers(artifact.code, desc_, options_.alloc_policy,
                         hints_ptr);
  artifact.stats.add("jit.spilled_vregs", alloc.spilled_vregs);
  artifact.stats.add("jit.static_spill_loads", alloc.static_spill_loads);
  artifact.stats.add("jit.static_spill_stores", alloc.static_spill_stores);
  artifact.stats.add("jit.alloc_work_units",
                     static_cast<int64_t>(alloc.work_units));
  artifact.stats.add("jit.code_bytes",
                     static_cast<int64_t>(artifact.code.code_bytes()));

  const auto t1 = std::chrono::steady_clock::now();
  artifact.compile_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  return artifact;
}

std::vector<MFunction> JitCompiler::compile_module(const Module& module,
                                                   Statistics* aggregate) {
  std::vector<MFunction> out;
  out.reserve(module.num_functions());
  for (uint32_t i = 0; i < module.num_functions(); ++i) {
    JitArtifact artifact = compile(module, i);
    if (aggregate) aggregate->merge(artifact.stats);
    out.push_back(std::move(artifact.code));
  }
  return out;
}

}  // namespace svc
