#include "jit/jit_compiler.h"

#include "jit/jit_pipeline.h"

namespace svc {

std::string JitOptions::cache_key() const {
  std::string key = alloc_policy_name(alloc_policy);
  key += use_annotations ? "/ann" : "/noann";
  key += '/';
  key += pipeline ? pipeline->str() : "default";
  return key;
}

JitArtifact JitCompiler::compile(const Module& module,
                                 uint32_t func_idx) const {
  const auto t0 = std::chrono::steady_clock::now();
  const Function& fn = module.function(func_idx);

  const PipelineSpec spec =
      options_.pipeline ? *options_.pipeline : default_jit_pipeline(desc_);
  if (const auto unknown = jit_pass_manager().first_unknown(spec)) {
    fatal("JitCompiler: unknown pass '" + *unknown + "' in pipeline '" +
          spec.str() + "'");
  }
  // Every later pass transforms the MFunction that translation creates;
  // without this check a bad spec would "compile" the default-constructed
  // empty function and only fail much later, at run time.
  if (spec.empty() || spec.names().front() != "stack_to_reg") {
    fatal("JitCompiler: pipeline '" + spec.str() +
          "' must start with stack_to_reg");
  }

  JitArtifact artifact;
  JitPipelineContext ctx{module, fn, desc_, options_};
  jit_pass_manager().run(spec, artifact.code, ctx, &artifact.stats);
  artifact.stats.add("jit.code_bytes",
                     static_cast<int64_t>(artifact.code.code_bytes()));

  const auto t1 = std::chrono::steady_clock::now();
  artifact.compile_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  return artifact;
}

std::vector<MFunction> JitCompiler::compile_module(
    const Module& module, Statistics* aggregate) const {
  std::vector<MFunction> out;
  out.reserve(module.num_functions());
  for (uint32_t i = 0; i < module.num_functions(); ++i) {
    JitArtifact artifact = compile(module, i);
    if (aggregate) aggregate->merge(artifact.stats);
    out.push_back(std::move(artifact.code));
  }
  return out;
}

}  // namespace svc
