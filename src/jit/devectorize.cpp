#include "jit/devectorize.h"

#include <map>
#include <set>
#include <vector>

#include "support/diagnostics.h"

namespace svc {
namespace {

/// Ops whose lane interpretation is structural, not semantic: they adopt
/// whatever interpretation their connected registers use.
bool lane_polymorphic(MOp op) {
  if (op == MOp::MovRR) return true;
  if (is_machine_only(op)) return false;
  switch (base_opcode(op)) {
    case Opcode::VZero:
    case Opcode::VAnd:
    case Opcode::VOr:
    case Opcode::VXor:
    case Opcode::LoadV128:
    case Opcode::StoreV128:
      return true;
    default:
      return false;
  }
}

struct LaneMap {
  LaneKind kind = LaneKind::None;
  std::vector<Reg> lanes;  // one scalar vreg per lane
};

class Devectorizer {
 public:
  explicit Devectorizer(MFunction& fn) : fn_(fn) {}

  DevectorizeStats run() {
    for (const Reg& p : fn_.param_regs) {
      if (p.cls == RegClass::Vec) fatal("devectorize: v128 parameter");
    }
    for (const auto& site : fn_.call_sites) {
      for (const Reg& r : site) {
        if (r.cls == RegClass::Vec) fatal("devectorize: v128 call argument");
      }
    }
    infer_lane_kinds();
    compute_aliasable();
    rewrite();
    fn_.num_vregs[static_cast<size_t>(RegClass::Vec)] = 0;
    return stats_;
  }

 private:
  Reg fresh(RegClass cls) {
    return Reg::make(cls, fn_.num_vregs[static_cast<size_t>(cls)]++);
  }

  LaneKind op_lanes(const MInst& inst) const {
    if (is_machine_only(inst.op)) return LaneKind::None;
    return op_info(base_opcode(inst.op)).lanes;
  }

  /// Assigns a LaneKind to every Vec vreg by propagating from the typed
  /// vector ops through the polymorphic ones to a fixpoint.
  void infer_lane_kinds() {
    bool changed = true;
    auto meet = [&](Reg r, LaneKind k) {
      if (!r.valid || r.cls != RegClass::Vec || k == LaneKind::None) return;
      auto& slot = kinds_[r.idx];
      if (slot == LaneKind::None) {
        slot = k;
        changed = true;
      }
    };
    while (changed) {
      changed = false;
      for (const MBlock& block : fn_.blocks) {
        for (const MInst& inst : block.insts) {
          const LaneKind fixed = op_lanes(inst);
          if (!lane_polymorphic(inst.op) && fixed != LaneKind::None) {
            meet(inst.dst, fixed);
            meet(inst.s0, fixed);
            meet(inst.s1, fixed);
            meet(inst.s2, fixed);
          } else if (lane_polymorphic(inst.op)) {
            // Unify across the instruction.
            LaneKind known = LaneKind::None;
            for (const Reg* r : {&inst.dst, &inst.s0, &inst.s1, &inst.s2}) {
              if (r->valid && r->cls == RegClass::Vec) {
                const auto it = kinds_.find(r->idx);
                if (it != kinds_.end() && it->second != LaneKind::None) {
                  known = it->second;
                  break;
                }
              }
            }
            if (known != LaneKind::None) {
              meet(inst.dst, known);
              meet(inst.s0, known);
              meet(inst.s1, known);
              meet(inst.s2, known);
            }
          }
        }
      }
    }
  }

  /// A vec vreg may share one scalar register across all lanes only when
  /// every definition is a whole-vector broadcast (VZero / VSplat*): any
  /// lane-granular write (vector arithmetic, inserts, copies, loads)
  /// requires independent lane registers, or later writes would clobber
  /// reads through the shared name across blocks.
  void compute_aliasable() {
    for (const MBlock& block : fn_.blocks) {
      for (const MInst& inst : block.insts) {
        if (!inst.dst.valid || inst.dst.cls != RegClass::Vec) continue;
        bool broadcast = false;
        if (!is_machine_only(inst.op)) {
          switch (base_opcode(inst.op)) {
            case Opcode::VZero:
            case Opcode::VSplatI8:
            case Opcode::VSplatI16:
            case Opcode::VSplatI32:
            case Opcode::VSplatF32:
              broadcast = true;
              break;
            default:
              break;
          }
        }
        if (!broadcast) not_aliasable_.insert(inst.dst.idx);
      }
    }
  }

  [[nodiscard]] bool aliasable(uint32_t vec_idx) const {
    return not_aliasable_.count(vec_idx) == 0;
  }

  LaneMap& lanes_of(Reg v) {
    auto [it, inserted] = lane_maps_.try_emplace(v.idx);
    if (inserted) {
      LaneKind k = LaneKind::None;
      const auto kit = kinds_.find(v.idx);
      if (kit != kinds_.end()) k = kit->second;
      if (k == LaneKind::None) k = LaneKind::I32x4;  // unconstrained
      it->second.kind = k;
      const RegClass cls =
          k == LaneKind::F32x4 ? RegClass::Flt : RegClass::Int;
      it->second.lanes.resize(lane_count(k));
      if (aliasable(v.idx)) {
        const Reg shared = fresh(cls);
        for (auto& lane : it->second.lanes) lane = shared;
      } else {
        for (auto& lane : it->second.lanes) lane = fresh(cls);
      }
    }
    return it->second;
  }

  void emit(MInst inst) {
    out_.push_back(inst);
    stats_.scalar_insts_emitted += 1;
  }
  void emit3(MOp op, Reg dst, Reg s0, Reg s1) {
    MInst m;
    m.op = op;
    m.dst = dst;
    m.s0 = s0;
    m.s1 = s1;
    emit(m);
  }

  /// Scalar opcode implementing one lane of a vector op, plus whether the
  /// result must be masked back to the lane width (wraparound semantics).
  struct LaneOp {
    Opcode op;
    bool mask;  // re-truncate to lane width after the op
  };
  LaneOp lane_op(Opcode vop) const {
    switch (vop) {
      case Opcode::VAddI8: return {Opcode::AddI32, true};
      case Opcode::VSubI8: return {Opcode::SubI32, true};
      case Opcode::VAddI16: return {Opcode::AddI32, true};
      case Opcode::VSubI16: return {Opcode::SubI32, true};
      case Opcode::VAddI32: return {Opcode::AddI32, false};
      case Opcode::VSubI32: return {Opcode::SubI32, false};
      case Opcode::VMulI32: return {Opcode::MulI32, false};
      case Opcode::VAddF32: return {Opcode::AddF32, false};
      case Opcode::VSubF32: return {Opcode::SubF32, false};
      case Opcode::VMulF32: return {Opcode::MulF32, false};
      case Opcode::VDivF32: return {Opcode::DivF32, false};
      case Opcode::VMinU8: return {Opcode::MinUI32, false};
      case Opcode::VMaxU8: return {Opcode::MaxUI32, false};
      case Opcode::VMinU16: return {Opcode::MinUI32, false};
      case Opcode::VMaxU16: return {Opcode::MaxUI32, false};
      case Opcode::VMinSI32: return {Opcode::MinSI32, false};
      case Opcode::VMaxSI32: return {Opcode::MaxSI32, false};
      case Opcode::VMinF32: return {Opcode::MinF32, false};
      case Opcode::VMaxF32: return {Opcode::MaxF32, false};
      case Opcode::VAnd: return {Opcode::AndI32, false};
      case Opcode::VOr: return {Opcode::OrI32, false};
      case Opcode::VXor: return {Opcode::XorI32, false};
      default:
        fatal("devectorize: no lane op for vector opcode");
    }
  }

  Opcode lane_load_op(LaneKind k) const {
    switch (k) {
      case LaneKind::U8x16: return Opcode::LoadI8U;
      case LaneKind::U16x8: return Opcode::LoadI16U;
      case LaneKind::I32x4: return Opcode::LoadI32;
      case LaneKind::F32x4: return Opcode::LoadF32;
      default: fatal("devectorize: bad lane kind");
    }
  }
  Opcode lane_store_op(LaneKind k) const {
    switch (k) {
      case LaneKind::U8x16: return Opcode::StoreI8;
      case LaneKind::U16x8: return Opcode::StoreI16;
      case LaneKind::I32x4: return Opcode::StoreI32;
      case LaneKind::F32x4: return Opcode::StoreF32;
      default: fatal("devectorize: bad lane kind");
    }
  }

  void mask_lane(Reg lane, LaneKind k) {
    const uint32_t bits = lane_bytes(k) * 8;
    if (bits >= 32) return;
    const Reg mask = fresh(RegClass::Int);
    MInst mi;
    mi.op = MOp::MovImm;
    mi.dst = mask;
    mi.imm = (int64_t{1} << bits) - 1;
    emit(mi);
    emit3(mop(Opcode::AndI32), lane, lane, mask);
  }

  void expand(const MInst& inst) {
    stats_.vector_insts_expanded += 1;
    const Opcode op = base_opcode(inst.op);
    const OpInfo& info = op_info(op);

    switch (op) {
      case Opcode::LoadV128: {
        LaneMap& d = lanes_of(inst.dst);
        const Opcode lop = lane_load_op(d.kind);
        for (uint32_t i = 0; i < d.lanes.size(); ++i) {
          MInst m;
          m.op = mop(lop);
          m.dst = d.lanes[i];
          m.s0 = inst.s0;
          m.imm = inst.imm + static_cast<int64_t>(i * lane_bytes(d.kind));
          emit(m);
        }
        return;
      }
      case Opcode::StoreV128: {
        LaneMap& v = lanes_of(inst.s1);
        const Opcode sop = lane_store_op(v.kind);
        for (uint32_t i = 0; i < v.lanes.size(); ++i) {
          MInst m;
          m.op = mop(sop);
          m.s0 = inst.s0;
          m.s1 = v.lanes[i];
          m.imm = inst.imm + static_cast<int64_t>(i * lane_bytes(v.kind));
          emit(m);
        }
        return;
      }
      case Opcode::VZero: {
        LaneMap& d = lanes_of(inst.dst);
        const RegClass cls =
            d.kind == LaneKind::F32x4 ? RegClass::Flt : RegClass::Int;
        const MOp zop = cls == RegClass::Flt ? MOp::FMovImm32 : MOp::MovImm;
        if (aliasable(inst.dst.idx)) {
          MInst m;
          m.op = zop;
          m.dst = d.lanes[0];
          m.imm = 0;
          emit(m);
        } else {
          for (const Reg& lane : d.lanes) {
            MInst m;
            m.op = zop;
            m.dst = lane;
            m.imm = 0;
            emit(m);
          }
        }
        return;
      }
      case Opcode::VSplatI8:
      case Opcode::VSplatI16:
      case Opcode::VSplatI32:
      case Opcode::VSplatF32: {
        LaneMap& d = lanes_of(inst.dst);
        const RegClass cls =
            d.kind == LaneKind::F32x4 ? RegClass::Flt : RegClass::Int;
        // One masked copy of the scalar; broadcast to lanes (a single
        // shared register when the value is read-only).
        const Reg v = d.lanes[0];
        MInst m;
        m.op = MOp::MovRR;
        m.dst = v;
        m.s0 = inst.s0;
        emit(m);
        if (cls == RegClass::Int) mask_lane(v, d.kind);
        if (!aliasable(inst.dst.idx)) {
          for (size_t i = 1; i < d.lanes.size(); ++i) {
            MInst c;
            c.op = MOp::MovRR;
            c.dst = d.lanes[i];
            c.s0 = v;
            emit(c);
          }
        }
        return;
      }
      case Opcode::VAddI8:
      case Opcode::VSubI8:
      case Opcode::VAddI16:
      case Opcode::VSubI16:
      case Opcode::VAddI32:
      case Opcode::VSubI32:
      case Opcode::VMulI32:
      case Opcode::VAddF32:
      case Opcode::VSubF32:
      case Opcode::VMulF32:
      case Opcode::VDivF32:
      case Opcode::VMinU8:
      case Opcode::VMaxU8:
      case Opcode::VMinU16:
      case Opcode::VMaxU16:
      case Opcode::VMinSI32:
      case Opcode::VMaxSI32:
      case Opcode::VMinF32:
      case Opcode::VMaxF32:
      case Opcode::VAnd:
      case Opcode::VOr:
      case Opcode::VXor: {
        // Copy source lane names first: dst may equal a source vreg
        // (in-place accumulator updates), and dst lanes are independent
        // registers by construction (compute_aliasable).
        const std::vector<Reg> asrc = lanes_of(inst.s0).lanes;
        const std::vector<Reg> bsrc = lanes_of(inst.s1).lanes;
        LaneMap& d = lanes_of(inst.dst);
        const LaneOp lop = lane_op(op);
        for (uint32_t i = 0; i < d.lanes.size(); ++i) {
          emit3(mop(lop.op), d.lanes[i], asrc[i], bsrc[i]);
          if (lop.mask) mask_lane(d.lanes[i], d.kind);
        }
        return;
      }
      case Opcode::VRSumU8:
      case Opcode::VRSumU16:
      case Opcode::VRSumI32: {
        LaneMap& a = lanes_of(inst.s0);
        Reg acc = fresh(RegClass::Int);
        emit3(mop(Opcode::AddI32), acc, a.lanes[0], a.lanes[1]);
        for (size_t i = 2; i < a.lanes.size(); ++i) {
          emit3(mop(Opcode::AddI32), acc, acc, a.lanes[i]);
        }
        MInst m;
        m.op = MOp::MovRR;
        m.dst = inst.dst;
        m.s0 = acc;
        emit(m);
        return;
      }
      case Opcode::VRSumF32: {
        LaneMap& a = lanes_of(inst.s0);
        // Pairwise order matches the interpreter's defined reduction tree.
        const Reg t0 = fresh(RegClass::Flt);
        const Reg t1 = fresh(RegClass::Flt);
        emit3(mop(Opcode::AddF32), t0, a.lanes[0], a.lanes[1]);
        emit3(mop(Opcode::AddF32), t1, a.lanes[2], a.lanes[3]);
        emit3(mop(Opcode::AddF32), inst.dst, t0, t1);
        return;
      }
      case Opcode::VRMaxU8:
      case Opcode::VRMaxU16: {
        LaneMap& a = lanes_of(inst.s0);
        Reg acc = fresh(RegClass::Int);
        emit3(mop(Opcode::MaxUI32), acc, a.lanes[0], a.lanes[1]);
        for (size_t i = 2; i < a.lanes.size(); ++i) {
          emit3(mop(Opcode::MaxUI32), acc, acc, a.lanes[i]);
        }
        MInst m;
        m.op = MOp::MovRR;
        m.dst = inst.dst;
        m.s0 = acc;
        emit(m);
        return;
      }
      case Opcode::VRMinU8: {
        LaneMap& a = lanes_of(inst.s0);
        Reg acc = fresh(RegClass::Int);
        emit3(mop(Opcode::MinUI32), acc, a.lanes[0], a.lanes[1]);
        for (size_t i = 2; i < a.lanes.size(); ++i) {
          emit3(mop(Opcode::MinUI32), acc, acc, a.lanes[i]);
        }
        MInst m;
        m.op = MOp::MovRR;
        m.dst = inst.dst;
        m.s0 = acc;
        emit(m);
        return;
      }
      case Opcode::VRMaxSI32: {
        LaneMap& a = lanes_of(inst.s0);
        Reg acc = fresh(RegClass::Int);
        emit3(mop(Opcode::MaxSI32), acc, a.lanes[0], a.lanes[1]);
        emit3(mop(Opcode::MaxSI32), acc, acc, a.lanes[2]);
        emit3(mop(Opcode::MaxSI32), inst.dst, acc, a.lanes[3]);
        return;
      }
      case Opcode::VRMaxF32:
      case Opcode::VRMinF32: {
        LaneMap& a = lanes_of(inst.s0);
        const Opcode sop =
            op == Opcode::VRMaxF32 ? Opcode::MaxF32 : Opcode::MinF32;
        Reg acc = fresh(RegClass::Flt);
        emit3(mop(sop), acc, a.lanes[0], a.lanes[1]);
        emit3(mop(sop), acc, acc, a.lanes[2]);
        emit3(mop(sop), inst.dst, acc, a.lanes[3]);
        return;
      }
      case Opcode::VExtractU8:
      case Opcode::VExtractU16:
      case Opcode::VExtractI32:
      case Opcode::VExtractF32: {
        LaneMap& a = lanes_of(inst.s0);
        MInst m;
        m.op = MOp::MovRR;
        m.dst = inst.dst;
        m.s0 = a.lanes[inst.a];
        emit(m);
        return;
      }
      case Opcode::VInsertI8:
      case Opcode::VInsertI16:
      case Opcode::VInsertI32:
      case Opcode::VInsertF32: {
        const std::vector<Reg> src = lanes_of(inst.s0).lanes;
        LaneMap& d = lanes_of(inst.dst);
        // Copy all lanes, then overwrite the inserted one.
        for (uint32_t i = 0; i < d.lanes.size(); ++i) {
          if (i == inst.a) continue;
          MInst m;
          m.op = MOp::MovRR;
          m.dst = d.lanes[i];
          m.s0 = src[i];
          emit(m);
        }
        MInst m;
        m.op = MOp::MovRR;
        m.dst = d.lanes[inst.a];
        m.s0 = inst.s1;
        emit(m);
        if (d.lanes[inst.a].cls == RegClass::Int) {
          mask_lane(d.lanes[inst.a], d.kind);
        }
        return;
      }
      default:
        fatal("devectorize: unhandled vector op " +
              std::string(info.mnemonic));
    }
  }

  void rewrite() {
    for (MBlock& block : fn_.blocks) {
      out_.clear();
      out_.reserve(block.insts.size());
      for (const MInst& inst : block.insts) {
        const bool has_vec =
            (inst.dst.valid && inst.dst.cls == RegClass::Vec) ||
            (inst.s0.valid && inst.s0.cls == RegClass::Vec) ||
            (inst.s1.valid && inst.s1.cls == RegClass::Vec) ||
            (inst.s2.valid && inst.s2.cls == RegClass::Vec);
        if (!has_vec) {
          out_.push_back(inst);
          continue;
        }
        if (inst.op == MOp::MovRR) {
          // v128 register copy (e.g. a vector local update): per lane.
          stats_.vector_insts_expanded += 1;
          const std::vector<Reg> src = lanes_of(inst.s0).lanes;
          LaneMap& d = lanes_of(inst.dst);
          if (d.lanes.size() != src.size()) {
            fatal("devectorize: lane-kind mismatch in v128 copy");
          }
          for (uint32_t i = 0; i < d.lanes.size(); ++i) {
            MInst m;
            m.op = MOp::MovRR;
            m.dst = d.lanes[i];
            m.s0 = src[i];
            emit(m);
          }
          continue;
        }
        expand(inst);
      }
      block.insts = std::move(out_);
    }

    // Vector locals now map to their lane registers.
    for (auto& lane_regs : fn_.local_regs) {
      if (lane_regs.size() == 1 && lane_regs[0].cls == RegClass::Vec) {
        lane_regs = lanes_of(lane_regs[0]).lanes;
      }
    }
  }

  MFunction& fn_;
  std::set<uint32_t> not_aliasable_;       // vec vregs with lane-granular defs
  std::map<uint32_t, LaneKind> kinds_;     // vec vreg -> lane kind
  std::map<uint32_t, LaneMap> lane_maps_;  // vec vreg -> scalar lanes
  std::vector<MInst> out_;
  DevectorizeStats stats_;
};

}  // namespace

DevectorizeStats devectorize(MFunction& fn) { return Devectorizer(fn).run(); }

}  // namespace svc
