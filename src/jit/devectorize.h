// De-vectorization (lane expansion) for SIMD-less targets.
//
// This is how the paper's portable vectorized bytecode runs "unmodified on
// many machines, with no or little penalty in the absence of SIMD
// instructions" (S4, [42]): the JIT for a scalar target rewrites each v128
// virtual register into one scalar virtual register per lane and each
// vector builtin into per-lane scalar ops. The vector loop effectively
// becomes a scalar loop unrolled by the vectorization factor, with lanes
// kept in registers -- so the residual cost is lane bookkeeping plus
// *register pressure*, which is exactly what makes the 16-lane byte
// kernels dip below 1.0x on the register-starved sparcsim.
#pragma once

#include "targets/machine.h"

namespace svc {

struct DevectorizeStats {
  uint32_t vector_insts_expanded = 0;
  uint32_t scalar_insts_emitted = 0;
};

/// Rewrites `fn` in place so it uses no Vec-class registers and no vector
/// opcodes. Requires virtual registers (pre-allocation). Functions with
/// v128 parameters or v128 call arguments are rejected (fatal): the
/// offline compiler never produces them.
DevectorizeStats devectorize(MFunction& fn);

}  // namespace svc
