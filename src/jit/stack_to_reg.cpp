#include "jit/stack_to_reg.h"

#include <vector>

#include "support/diagnostics.h"

namespace svc {
namespace {

class Translator {
 public:
  Translator(const Module& module, const Function& fn)
      : module_(module), fn_(fn) {}

  MFunction run() {
    out_.name = fn_.name();
    out_.ret_type = fn_.sig().ret;
    out_.blocks.resize(fn_.num_blocks());

    // Locals (including parameters) get dedicated vregs.
    out_.local_regs.resize(fn_.num_locals());
    for (uint32_t l = 0; l < fn_.num_locals(); ++l) {
      const Reg r = fresh(reg_class_for(fn_.local_type(l)));
      out_.local_regs[l] = {r};
      if (l < fn_.num_params()) out_.param_regs.push_back(r);
    }

    for (uint32_t b = 0; b < fn_.num_blocks(); ++b) {
      translate_block(b);
    }
    return std::move(out_);
  }

 private:
  Reg fresh(RegClass cls) {
    return Reg::make(cls, out_.num_vregs[static_cast<size_t>(cls)]++);
  }

  void emit(uint32_t block, MInst inst) {
    out_.blocks[block].insts.push_back(inst);
  }

  Reg pop() {
    Reg r = stack_.back();
    stack_.pop_back();
    return r;
  }

  void translate_block(uint32_t b) {
    stack_.clear();
    for (const Instruction& inst : fn_.block(b).insts) {
      translate_inst(b, inst);
    }
  }

  void translate_inst(uint32_t b, const Instruction& inst) {
    const OpInfo& info = op_info(inst.op);
    switch (inst.op) {
      case Opcode::ConstI32:
      case Opcode::ConstI64: {
        const Reg dst = fresh(RegClass::Int);
        MInst m;
        m.op = MOp::MovImm;
        m.dst = dst;
        m.imm = inst.imm;
        emit(b, m);
        stack_.push_back(dst);
        return;
      }
      case Opcode::ConstF32:
      case Opcode::ConstF64: {
        const Reg dst = fresh(RegClass::Flt);
        MInst m;
        m.op = inst.op == Opcode::ConstF32 ? MOp::FMovImm32 : MOp::FMovImm64;
        m.dst = dst;
        m.imm = inst.imm;
        emit(b, m);
        stack_.push_back(dst);
        return;
      }
      case Opcode::LocalGet:
        stack_.push_back(out_.local_regs[inst.a][0]);
        return;
      case Opcode::LocalSet: {
        const Reg value = pop();
        const Reg local = out_.local_regs[inst.a][0];
        // Any still-pending stack reads of the local's old value must be
        // preserved before the overwrite.
        for (Reg& s : stack_) {
          if (s == local) {
            const Reg save = fresh(local.cls);
            MInst m;
            m.op = MOp::MovRR;
            m.dst = save;
            m.s0 = local;
            emit(b, m);
            for (Reg& t : stack_) {
              if (t == local) t = save;
            }
            break;
          }
        }
        MInst m;
        m.op = MOp::MovRR;
        m.dst = local;
        m.s0 = value;
        emit(b, m);
        return;
      }
      case Opcode::Jump: {
        MInst m;
        m.op = mop(inst.op);
        m.a = inst.a;
        emit(b, m);
        return;
      }
      case Opcode::BranchIf: {
        MInst m;
        m.op = mop(inst.op);
        m.s0 = pop();
        m.a = inst.a;
        m.b = inst.b;
        emit(b, m);
        return;
      }
      case Opcode::Ret: {
        MInst m;
        m.op = mop(inst.op);
        if (fn_.sig().ret != Type::Void) m.s0 = pop();
        emit(b, m);
        return;
      }
      case Opcode::Trap: {
        MInst m;
        m.op = mop(inst.op);
        emit(b, m);
        return;
      }
      case Opcode::Call: {
        const Function& callee = module_.function(inst.a);
        std::vector<Reg> args(callee.num_params());
        for (size_t i = callee.num_params(); i-- > 0;) args[i] = pop();
        MInst m;
        m.op = mop(inst.op);
        m.a = inst.a;
        m.imm = static_cast<int64_t>(out_.call_sites.size());
        out_.call_sites.push_back(std::move(args));
        if (callee.sig().ret != Type::Void) {
          m.dst = fresh(reg_class_for(callee.sig().ret));
          stack_.push_back(m.dst);
        }
        emit(b, m);
        return;
      }
      case Opcode::Drop:
        pop();
        return;
      case Opcode::Nop:
        return;
      default:
        break;
    }

    // Generic typed ops: pop per signature, push per signature.
    MInst m;
    m.op = mop(inst.op);
    m.imm = inst.imm;
    m.a = inst.a;
    m.b = inst.b;
    const std::string_view pops = info.pops;
    // Operands are popped back-to-front (pops lists them in push order).
    Reg ops[3];
    const size_t n = pops.size();
    if (n > 3) fatal("stack_to_reg: op pops more than 3 operands");
    for (size_t i = n; i-- > 0;) ops[i] = pop();
    m.s0 = n > 0 ? ops[0] : Reg{};
    m.s1 = n > 1 ? ops[1] : Reg{};
    m.s2 = n > 2 ? ops[2] : Reg{};
    if (!info.pushes.empty()) {
      m.dst = fresh(reg_class_for(info.push_type()));
      stack_.push_back(m.dst);
    }
    emit(b, m);
  }

  const Module& module_;
  const Function& fn_;
  MFunction out_;
  std::vector<Reg> stack_;
};

}  // namespace

MFunction stack_to_reg(const Module& module, const Function& fn) {
  return Translator(module, fn).run();
}

}  // namespace svc
