#include "jit/isel.h"

#include <map>
#include <set>

#include "regalloc/liveness.h"

namespace svc {
namespace {

std::map<uint32_t, uint32_t> count_uses(const MFunction& fn) {
  std::map<uint32_t, uint32_t> uses;
  for (const MBlock& block : fn.blocks) {
    for (const MInst& inst : block.insts) {
      for_each_use(fn, inst, [&](Reg r) { uses[vreg_key(r)] += 1; });
    }
  }
  return uses;
}

std::set<uint32_t> local_keys(const MFunction& fn) {
  std::set<uint32_t> keys;
  for (const auto& lanes : fn.local_regs) {
    for (const Reg& r : lanes) keys.insert(vreg_key(r));
  }
  for (const Reg& r : fn.param_regs) keys.insert(vreg_key(r));
  return keys;
}

bool defines(const MInst& inst, Reg r) {
  return inst.dst.valid && inst.dst == r;
}

bool uses_reg(const MFunction& fn, const MInst& inst, Reg r) {
  bool found = false;
  for_each_use(fn, inst, [&](Reg u) { found |= (u == r); });
  return found;
}

void replace_use(MFunction& fn, MInst& inst, Reg from, Reg to) {
  if (inst.s0 == from) inst.s0 = to;
  if (inst.s1 == from) inst.s1 = to;
  if (inst.s2 == from) inst.s2 = to;
  if (!is_machine_only(inst.op) && base_opcode(inst.op) == Opcode::Call) {
    for (Reg& r : fn.call_sites[static_cast<size_t>(inst.imm)]) {
      if (r == from) r = to;
    }
  }
}

/// One cleanup sweep; applies at most one transform (so use counts stay
/// fresh) and returns the number of moves removed (0 or 1).
uint32_t sweep(MFunction& fn) {
  const auto uses = count_uses(fn);
  const auto locals = local_keys(fn);
  uint32_t removed = 0;

  auto use_count = [&](Reg r) {
    const auto it = uses.find(vreg_key(r));
    return it == uses.end() ? 0u : it->second;
  };
  auto is_local = [&](Reg r) { return locals.count(vreg_key(r)) != 0; };

  for (MBlock& block : fn.blocks) {
    std::vector<MInst>& insts = block.insts;
    for (size_t i = 0; i < insts.size(); ++i) {
      MInst& mv = insts[i];
      if (mv.op != MOp::MovRR) continue;

      // Dead move: temp destination never read.
      if (!is_local(mv.dst) && use_count(mv.dst) == 0) {
        insts.erase(insts.begin() + static_cast<long>(i));
        return 1;
      }

      // Rename-adjacent: previous instruction's sole purpose is to feed
      // this move -- fold the destination into it.
      if (i > 0) {
        MInst& prev = insts[i - 1];
        if (prev.dst.valid && prev.dst == mv.s0 && !is_local(mv.s0) &&
            use_count(mv.s0) == 1) {
          prev.dst = mv.dst;
          insts.erase(insts.begin() + static_cast<long>(i));
          return 1;
        }
      }

      // Forward into the single later use within the block.
      if (!is_local(mv.dst) && use_count(mv.dst) == 1) {
        for (size_t j = i + 1; j < insts.size(); ++j) {
          MInst& later = insts[j];
          if (uses_reg(fn, later, mv.dst)) {
            replace_use(fn, later, mv.dst, mv.s0);
            insts.erase(insts.begin() + static_cast<long>(i));
            return 1;
          }
          if (defines(later, mv.s0) || defines(later, mv.dst)) break;
        }
      }
    }
  }
  return removed;
}

}  // namespace

PeepholeStats peephole_cleanup(MFunction& fn) {
  PeepholeStats stats;
  // One transform per sweep keeps use counts exact; bound the rounds to
  // stay linear-ish in practice (each round removes an instruction).
  const size_t max_rounds = 4 * fn.size() + 16;
  for (size_t round = 0; round < max_rounds; ++round) {
    const uint32_t removed = sweep(fn);
    stats.moves_removed += removed;
    if (removed == 0) break;
  }
  return stats;
}

uint32_t form_fma(MFunction& fn) {
  uint32_t formed = 0;
  const auto uses = count_uses(fn);
  auto use_count = [&](Reg r) {
    const auto it = uses.find(vreg_key(r));
    return it == uses.end() ? 0u : it->second;
  };

  for (MBlock& block : fn.blocks) {
    std::vector<MInst>& insts = block.insts;
    for (size_t i = 0; i < insts.size(); ++i) {
      MInst& mul = insts[i];
      if (is_machine_only(mul.op) || base_opcode(mul.op) != Opcode::MulF32) {
        continue;
      }
      if (use_count(mul.dst) != 1) continue;
      for (size_t j = i + 1; j < insts.size(); ++j) {
        MInst& add = insts[j];
        const bool is_add = !is_machine_only(add.op) &&
                            base_opcode(add.op) == Opcode::AddF32;
        if (is_add && (add.s0 == mul.dst || add.s1 == mul.dst)) {
          const Reg addend = add.s0 == mul.dst ? add.s1 : add.s0;
          // The multiply's reads move down to the add's position, so its
          // operands must survive unmodified until there. The addend is
          // read at the add's position either way.
          bool safe = true;
          for (size_t k = i + 1; k < j; ++k) {
            if (defines(insts[k], mul.s0) || defines(insts[k], mul.s1)) {
              safe = false;
              break;
            }
          }
          if (!safe) break;
          MInst fma;
          fma.op = MOp::FMA32;
          fma.dst = add.dst;
          fma.s0 = mul.s0;
          fma.s1 = mul.s1;
          fma.s2 = addend;
          insts[j] = fma;
          insts.erase(insts.begin() + static_cast<long>(i));
          --i;
          ++formed;
          break;
        }
        // Stop if anything clobbers the product or its inputs.
        if (defines(insts[j], mul.dst) || defines(insts[j], mul.s0) ||
            defines(insts[j], mul.s1)) {
          break;
        }
      }
    }
  }
  return formed;
}

}  // namespace svc
