#include "jit/jit_pipeline.h"

#include "jit/devectorize.h"
#include "jit/isel.h"
#include "jit/stack_to_reg.h"
#include "regalloc/split_alloc.h"

namespace svc {
namespace {

JitPassManager build_jit_pass_manager() {
  JitPassManager pm("jit.pass_us.");

  pm.register_pass("stack_to_reg",
                   "stack bytecode -> virtual-register translation",
                   [](MFunction& fn, JitPipelineContext& ctx, Statistics&) {
                     fn = stack_to_reg(ctx.module, ctx.fn);
                   });

  pm.register_pass("peephole",
                   "copy forwarding + dead-move elimination",
                   [](MFunction& fn, JitPipelineContext&, Statistics& stats) {
                     const PeepholeStats peep = peephole_cleanup(fn);
                     stats.add("jit.moves_removed", peep.moves_removed);
                   });

  pm.register_pass("fma", "fused multiply-add formation (has_fma targets)",
                   [](MFunction& fn, JitPipelineContext& ctx,
                      Statistics& stats) {
                     if (!ctx.desc.has_fma) return;
                     stats.add("jit.fma_formed", form_fma(fn));
                   });

  pm.register_pass("devectorize", "lane expansion to scalar code",
                   [](MFunction& fn, JitPipelineContext&, Statistics& stats) {
                     const DevectorizeStats dv = devectorize(fn);
                     stats.add("jit.vector_insts_expanded",
                               dv.vector_insts_expanded);
                     stats.add("jit.scalar_insts_emitted",
                               dv.scalar_insts_emitted);
                   });

  pm.register_pass(
      "regalloc", "register allocation (policy from JitOptions)",
      [](MFunction& fn, JitPipelineContext& ctx, Statistics& stats) {
        // The SplitGuided policy consumes the offline SpillPriority
        // annotation when present and enabled.
        SpillPriorityInfo hints;
        const SpillPriorityInfo* hints_ptr = nullptr;
        if (ctx.options.use_annotations &&
            ctx.options.alloc_policy == AllocPolicy::SplitGuided) {
          if (const Annotation* ann = find_annotation(
                  ctx.fn.annotations(), AnnotationKind::SpillPriority)) {
            if (auto decoded = SpillPriorityInfo::decode(ann->payload)) {
              hints = std::move(*decoded);
              hints_ptr = &hints;
            }
          }
        }
        const AllocResult alloc = allocate_registers(
            fn, ctx.desc, ctx.options.alloc_policy, hints_ptr);
        stats.add("jit.spilled_vregs", alloc.spilled_vregs);
        stats.add("jit.static_spill_loads", alloc.static_spill_loads);
        stats.add("jit.static_spill_stores", alloc.static_spill_stores);
        stats.add("jit.alloc_work_units",
                  static_cast<int64_t>(alloc.work_units));
      });

  return pm;
}

}  // namespace

const JitPassManager& jit_pass_manager() {
  static const JitPassManager pm = build_jit_pass_manager();
  return pm;
}

PipelineSpec default_jit_pipeline(const MachineDesc& desc) {
  PipelineSpec spec;
  spec.append("stack_to_reg");
  spec.append("peephole");
  if (desc.has_fma) spec.append("fma");
  if (!desc.has_simd) {
    spec.append("devectorize");
    // Lane expansion leaves copy chains worth one more cleanup round.
    spec.append("peephole");
  }
  spec.append("regalloc");
  return spec;
}

}  // namespace svc
