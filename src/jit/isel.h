// Machine-code cleanup run by the online compiler between translation and
// register allocation:
//   - copy forwarding / dead-move elimination (removes the operand-stack
//     traffic left by stack-to-register translation);
//   - fused multiply-add formation for targets with has_fma (ppcsim,
//     spusim) -- the saxpy inner loop becomes one fmadds.
// Both are linear-time per block, respecting the JIT budget constraints
// the paper works under (S5).
#pragma once

#include "targets/machine.h"

namespace svc {

struct PeepholeStats {
  uint32_t moves_removed = 0;
  uint32_t fma_formed = 0;
};

/// Runs copy forwarding + dead-move elimination to fixpoint (bounded).
PeepholeStats peephole_cleanup(MFunction& fn);

/// Forms FMA32 from MulF32 + AddF32 pairs. Call only for has_fma targets.
uint32_t form_fma(MFunction& fn);

}  // namespace svc
