#include "ir/ir_pipeline.h"

namespace svc {
namespace {

IRPassManager build_ir_pass_manager() {
  IRPassManager pm("offline.pass_us.");

  pm.register_pass("coalesce", "copy coalescing",
                   [](IRFunction& fn, IRPipelineContext&, Statistics& stats) {
                     stats.add("offline.coalesced", run_coalesce_pass(fn));
                   });
  pm.register_pass("fold", "constant folding",
                   [](IRFunction& fn, IRPipelineContext&, Statistics& stats) {
                     stats.add("offline.folded", run_fold_pass(fn));
                   });
  pm.register_pass("simplify",
                   "algebraic simplification / strength reduction",
                   [](IRFunction& fn, IRPipelineContext&, Statistics& stats) {
                     stats.add("offline.simplified", run_simplify_pass(fn));
                   });
  pm.register_pass("dce", "dead code elimination",
                   [](IRFunction& fn, IRPipelineContext&, Statistics& stats) {
                     stats.add("offline.dce_removed", run_dce_pass(fn));
                   });
  pm.register_pass("licm", "loop-invariant constant hoisting",
                   [](IRFunction& fn, IRPipelineContext&, Statistics& stats) {
                     stats.add("offline.licm_hoisted",
                               run_licm_consts_pass(fn));
                   });
  pm.register_pass("if_convert", "if-conversion of branchy triangles",
                   [](IRFunction& fn, IRPipelineContext&, Statistics& stats) {
                     stats.add("offline.if_converted",
                               run_if_convert_pass(fn));
                   });

  auto fixpoint = [](bool simplify) {
    return [simplify](IRFunction& fn, IRPipelineContext&, Statistics& stats) {
      PassOptions options;
      options.simplify = simplify;
      const PassStats ps = run_cleanup_fixpoint(fn, options);
      stats.add("offline.folded", ps.folded);
      stats.add("offline.simplified", ps.simplified);
      stats.add("offline.dce_removed", ps.dce_removed);
    };
  };
  pm.register_pass("cleanup",
                   "fixpoint of coalesce+fold+simplify+dce (<= 3 rounds)",
                   fixpoint(/*simplify=*/true));
  pm.register_pass("cleanup_nosimp",
                   "cleanup fixpoint without algebraic simplification",
                   fixpoint(/*simplify=*/false));

  pm.register_pass(
      "vectorize", "split automatic vectorization",
      [](IRFunction& fn, IRPipelineContext& ctx, Statistics& stats) {
        const VectorizeStats vs = vectorize(fn);
        stats.add("offline.loops_vectorized", vs.loops_vectorized);
        stats.add("offline.widening_reductions", vs.widening_reductions);
        stats.add("offline.accumulator_reductions",
                  vs.accumulator_reductions);
        ctx.vec_stats.loops_considered += vs.loops_considered;
        ctx.vec_stats.loops_vectorized += vs.loops_vectorized;
        ctx.vec_stats.widening_reductions += vs.widening_reductions;
        ctx.vec_stats.accumulator_reductions += vs.accumulator_reductions;
        ctx.vec_stats.map_stores += vs.map_stores;
        ctx.vec_stats.vectorized_headers.insert(
            ctx.vec_stats.vectorized_headers.end(),
            vs.vectorized_headers.begin(), vs.vectorized_headers.end());
      });

  return pm;
}

}  // namespace

const IRPassManager& ir_pass_manager() {
  static const IRPassManager pm = build_ir_pass_manager();
  return pm;
}

PipelineSpec ir_cleanup_spec(const PassOptions& options) {
  PipelineSpec spec;
  if (options.fold_constants && options.dce) {
    spec.append(options.simplify ? "cleanup" : "cleanup_nosimp");
  } else {
    // Uncommon knob settings have no composite pass; unroll the fixpoint.
    // Rounds past the old early exit rewrite nothing, so the result is
    // identical to run_cleanup_fixpoint.
    for (int round = 0; round < 3; ++round) {
      spec.append("coalesce");
      if (options.fold_constants) spec.append("fold");
      if (options.simplify) spec.append("simplify");
      if (options.dce) spec.append("dce");
    }
  }
  if (options.simplify) spec.append("licm");
  if (options.if_convert) {
    spec.append("if_convert");
    if (options.dce) spec.append("dce");
  }
  return spec;
}

PipelineSpec default_ir_pipeline(const PassOptions& options, bool vectorize) {
  PipelineSpec spec = ir_cleanup_spec(options);
  if (vectorize) {
    spec.append("vectorize");
    // Vectorization introduces new values; clean up again.
    spec.append(ir_cleanup_spec(options));
  }
  return spec;
}

}  // namespace svc
