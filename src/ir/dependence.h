// Dependence test for the vectorizer. The offline compiler can afford a
// whole-function view; here we implement the classic stride-based test on
// canonical subscripts (base + i*size), with the documented assumption
// that *distinct pointer parameters do not alias* (the restrict-style
// contract the paper's GCC-based vectorizer established with language-
// level analysis; DESIGN.md S2 records the substitution).
#pragma once

#include <optional>

#include "ir/induction.h"

namespace svc {

/// A memory access inside a candidate loop, decomposed against the
/// induction variable: address = base + iv*scale (+ static offset).
struct AccessPattern {
  ValueId base = kNoValue;  // loop-invariant base value
  int64_t scale = 0;        // bytes per induction step
  int64_t offset = 0;       // static byte offset (from load/store imm)
  uint32_t width = 0;       // access width in bytes
  bool is_store = false;
};

/// Decomposes the address value `addr` (+`imm` offset) of a `width`-byte
/// access against induction variable `iv`. Returns nullopt for addresses
/// that are not of the canonical base + iv*scale shape.
[[nodiscard]] std::optional<AccessPattern> decompose_access(
    const IRFunction& fn, const Loop& loop, ValueId addr, int64_t imm,
    uint32_t width, bool is_store, ValueId iv);

/// True when vectorizing the loop with factor `vf` preserves all
/// dependences among `accesses`: unit-stride contiguity per access and no
/// cross-iteration store conflicts (same-base same-offset read-then-write
/// is allowed; distinct bases are assumed not to alias).
[[nodiscard]] bool vectorization_safe(const std::vector<AccessPattern>& accesses,
                                      uint32_t vf);

}  // namespace svc
