#include "ir/dominators.h"

#include <algorithm>

namespace svc {

std::vector<std::vector<uint32_t>> predecessors(const IRFunction& fn) {
  std::vector<std::vector<uint32_t>> preds(fn.num_blocks());
  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    for (uint32_t s : fn.successors(b)) preds[s].push_back(b);
  }
  return preds;
}

Dominators::Dominators(const IRFunction& fn) {
  const size_t n = fn.num_blocks();
  idom_.assign(n, UINT32_MAX);
  reachable_.assign(n, false);

  // Reverse postorder over the reachable subgraph.
  std::vector<uint32_t> order;
  std::vector<uint8_t> state(n, 0);
  std::vector<uint32_t> stack = {0};
  // Iterative DFS computing postorder.
  std::vector<std::pair<uint32_t, size_t>> dfs;
  dfs.emplace_back(0, 0);
  state[0] = 1;
  while (!dfs.empty()) {
    auto& [b, i] = dfs.back();
    const auto succs = fn.successors(b);
    if (i < succs.size()) {
      const uint32_t s = succs[i++];
      if (!state[s]) {
        state[s] = 1;
        dfs.emplace_back(s, 0);
      }
    } else {
      order.push_back(b);
      dfs.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());  // now RPO
  std::vector<uint32_t> rpo_index(n, UINT32_MAX);
  for (uint32_t i = 0; i < order.size(); ++i) rpo_index[order[i]] = i;
  for (uint32_t b : order) reachable_[b] = true;

  const auto preds = predecessors(fn);
  idom_[0] = 0;
  bool changed = true;
  auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = idom_[b];
    }
    return a;
  };
  while (changed) {
    changed = false;
    for (uint32_t b : order) {
      if (b == 0) continue;
      uint32_t new_idom = UINT32_MAX;
      for (uint32_t p : preds[b]) {
        if (!reachable_[p] || idom_[p] == UINT32_MAX) continue;
        new_idom = new_idom == UINT32_MAX ? p : intersect(new_idom, p);
      }
      if (new_idom != UINT32_MAX && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }
}

bool Dominators::dominates(uint32_t a, uint32_t b) const {
  if (!reachable_[b]) return false;
  uint32_t cur = b;
  for (;;) {
    if (cur == a) return true;
    if (cur == 0) return a == 0;
    const uint32_t next = idom_[cur];
    if (next == cur) return a == cur;
    cur = next;
  }
}

}  // namespace svc
