#include "ir/vectorizer.h"

#include <map>
#include <optional>
#include <set>

#include "ir/dependence.h"
#include "ir/induction.h"
#include "ir/loop_info.h"

namespace svc {
namespace {

LaneKind lane_kind_of_load(const IRInst& load) {
  switch (load.op) {
    case Opcode::LoadI8U: return LaneKind::U8x16;
    case Opcode::LoadI16U: return LaneKind::U16x8;
    case Opcode::LoadI32: return LaneKind::I32x4;
    case Opcode::LoadF32: return LaneKind::F32x4;
    default: return LaneKind::None;
  }
}

LaneKind lane_kind_of_store(const IRInst& store) {
  switch (store.op) {
    case Opcode::StoreI8: return LaneKind::U8x16;
    case Opcode::StoreI16: return LaneKind::U16x8;
    case Opcode::StoreI32: return LaneKind::I32x4;
    case Opcode::StoreF32: return LaneKind::F32x4;
    default: return LaneKind::None;
  }
}

/// Vector opcode implementing elementwise `op` on `lk` lanes, or Nop.
Opcode vector_op_for(Opcode op, LaneKind lk) {
  switch (lk) {
    case LaneKind::F32x4:
      switch (op) {
        case Opcode::AddF32: return Opcode::VAddF32;
        case Opcode::SubF32: return Opcode::VSubF32;
        case Opcode::MulF32: return Opcode::VMulF32;
        case Opcode::DivF32: return Opcode::VDivF32;
        case Opcode::MinF32: return Opcode::VMinF32;
        case Opcode::MaxF32: return Opcode::VMaxF32;
        default: return Opcode::Nop;
      }
    case LaneKind::I32x4:
      switch (op) {
        case Opcode::AddI32: return Opcode::VAddI32;
        case Opcode::SubI32: return Opcode::VSubI32;
        case Opcode::MulI32: return Opcode::VMulI32;
        case Opcode::MaxSI32: return Opcode::VMaxSI32;
        case Opcode::MinSI32: return Opcode::VMinSI32;
        default: return Opcode::Nop;
      }
    case LaneKind::U8x16:
      // Lanes are zero-extended bytes; min/max are range-exact, so both
      // signed and unsigned scalar forms map to the unsigned lane op.
      switch (op) {
        case Opcode::MaxUI32:
        case Opcode::MaxSI32: return Opcode::VMaxU8;
        case Opcode::MinUI32:
        case Opcode::MinSI32: return Opcode::VMinU8;
        default: return Opcode::Nop;
      }
    case LaneKind::U16x8:
      switch (op) {
        case Opcode::MaxUI32:
        case Opcode::MaxSI32: return Opcode::VMaxU16;
        case Opcode::MinUI32:
        case Opcode::MinSI32: return Opcode::VMinU16;
        default: return Opcode::Nop;
      }
    default:
      return Opcode::Nop;
  }
}

Opcode splat_op_for(LaneKind lk) {
  switch (lk) {
    case LaneKind::U8x16: return Opcode::VSplatI8;
    case LaneKind::U16x8: return Opcode::VSplatI16;
    case LaneKind::I32x4: return Opcode::VSplatI32;
    case LaneKind::F32x4: return Opcode::VSplatF32;
    default: return Opcode::Nop;
  }
}

struct Reduction {
  ValueId var = kNoValue;   // the scalar reduction variable
  Opcode scalar_op = Opcode::Nop;
  ValueId elem = kNoValue;  // elementwise operand
  size_t update_index = 0;  // index of `var = op(var, elem)` in body
  bool widening = false;    // u8/u16 add: in-loop rsum into scalar acc
  ValueId vacc = kNoValue;  // vector accumulator (when !widening)
};

enum class InstClass : uint8_t {
  Address,    // copied verbatim into the vector body
  ElemLoad,   // -> load.v128
  ElemArith,  // -> vector op
  Store,      // -> store.v128
  IvUpdate,   // -> i += VF
  RedUpdate,  // reduction update
  Terminator,
};

class LoopVectorizer {
 public:
  LoopVectorizer(IRFunction& fn, const Loop& loop, VectorizeStats& stats)
      : fn_(fn), loop_(loop), stats_(stats) {}

  bool run() {
    if (!analyze()) return false;
    transform();
    return true;
  }

 private:
  // ------------------------------------------------------------------ //
  bool analyze() {
    // Shape: single body block, header with [cmp; br_if].
    if (loop_.blocks.size() != 2 || loop_.latches.size() != 1) return false;
    header_ = loop_.header;
    body_ = loop_.latches[0];
    if (!loop_.contains(body_) || body_ == header_) return false;

    const IRBlock& H = fn_.block(header_);
    if (H.insts.size() != 2) return false;
    const IRInst& cmp = H.insts[0];
    const IRInst& term = H.insts[1];
    if (term.op != Opcode::BranchIf || cmp.op != Opcode::LtSI32) return false;
    if (term.s0 != cmp.dst) return false;
    if (term.a != body_) return false;
    exit_ = term.b;
    if (loop_.contains(exit_)) return false;

    const IRBlock& B = fn_.block(body_);
    if (B.insts.empty() || B.terminator().op != Opcode::Jump ||
        B.terminator().a != header_) {
      return false;
    }

    // Induction variable with step 1, driving the comparison.
    const auto iv = find_induction(fn_, loop_);
    if (!iv || iv->step != 1 || iv->update_block != body_) return false;
    iv_ = *iv;
    if (cmp.s0 != iv_.var) return false;
    bound_ = cmp.s1;
    if (defined_in(loop_, bound_)) return false;

    // Exactly two predecessors of the header: one preheader, one latch.
    preheader_ = UINT32_MAX;
    for (uint32_t b = 0; b < fn_.num_blocks(); ++b) {
      for (uint32_t s : fn_.successors(b)) {
        if (s != header_ || b == body_) continue;
        if (preheader_ != UINT32_MAX) return false;
        preheader_ = b;
      }
    }
    if (preheader_ == UINT32_MAX) return false;

    return classify_body();
  }

  bool defined_in(const Loop& loop, ValueId v) const {
    if (v == kNoValue) return false;
    for (uint32_t b : loop.blocks) {
      for (const IRInst& inst : fn_.block(b).insts) {
        if (inst.dst == v) return true;
      }
    }
    return false;
  }

  bool used_outside_loop(ValueId v) const {
    for (uint32_t b = 0; b < fn_.num_blocks(); ++b) {
      if (loop_.contains(b)) continue;
      for (const IRInst& inst : fn_.block(b).insts) {
        if (inst.s0 == v || inst.s1 == v || inst.s2 == v) return true;
      }
    }
    return false;
  }

  bool classify_body() {
    const IRBlock& B = fn_.block(body_);
    const size_t n = B.insts.size();
    classes_.assign(n, InstClass::Address);

    // 1. Address set: values reaching load/store address operands.
    std::set<ValueId> addr_values;
    for (const IRInst& inst : B.insts) {
      const OpCategory cat = op_info(inst.op).category;
      if (cat == OpCategory::Load || cat == OpCategory::Store) {
        addr_values.insert(inst.s0);
      }
    }
    // Transitive closure through in-body defs.
    bool grew = true;
    while (grew) {
      grew = false;
      for (const IRInst& inst : B.insts) {
        if (inst.dst == kNoValue || !addr_values.count(inst.dst)) continue;
        for (ValueId s : {inst.s0, inst.s1, inst.s2}) {
          if (s != kNoValue && s != iv_.var && defined_in(loop_, s)) {
            grew |= addr_values.insert(s).second;
          }
        }
      }
    }

    // 2. Reductions (post-coalescing shape): `r = redop(r, e)`.
    std::set<size_t> red_indices;
    for (size_t i = 0; i < n; ++i) {
      const IRInst& inst = B.insts[i];
      if (inst.dst == kNoValue || inst.dst == iv_.var) continue;
      ValueId elem = kNoValue;
      if (inst.s0 == inst.dst) elem = inst.s1;
      if (inst.s1 == inst.dst) elem = inst.s0;
      if (elem == kNoValue) continue;
      switch (inst.op) {
        case Opcode::AddI32:
        case Opcode::AddF32:
        case Opcode::MaxUI32:
        case Opcode::MaxSI32:
        case Opcode::MinUI32:
        case Opcode::MinSI32:
        case Opcode::MaxF32:
        case Opcode::MinF32:
          break;
        default:
          continue;
      }
      Reduction red;
      red.var = inst.dst;
      red.scalar_op = inst.op;
      red.elem = elem;
      red.update_index = i;
      reductions_.push_back(red);
      red_indices.insert(i);
    }
    // Each reduction var: exactly one in-loop def and one in-loop use
    // (both in the update itself).
    for (const Reduction& red : reductions_) {
      uint32_t defs = 0, uses_r = 0;
      for (size_t i = 0; i < n; ++i) {
        const IRInst& inst = B.insts[i];
        if (inst.dst == red.var) ++defs;
        for (ValueId s : {inst.s0, inst.s1, inst.s2}) {
          if (s == red.var) ++uses_r;
        }
      }
      if (defs != 1 || uses_r != 1) return false;
    }

    // 3. Memory accesses: decompose and collect lane kinds.
    LaneKind lk = LaneKind::None;
    bool saw_load = false;
    for (size_t i = 0; i < n; ++i) {
      const IRInst& inst = B.insts[i];
      const OpCategory cat = op_info(inst.op).category;
      if (cat == OpCategory::Load) {
        saw_load = true;
        const LaneKind this_lk = lane_kind_of_load(inst);
        if (this_lk == LaneKind::None) return false;
        if (lk != LaneKind::None && lk != this_lk) return false;
        lk = this_lk;
        const auto acc = decompose_access(fn_, loop_, inst.s0, inst.imm,
                                          op_info(inst.op).mem_bytes, false,
                                          iv_.var);
        if (!acc) return false;
        accesses_.push_back(*acc);
        classes_[i] = InstClass::ElemLoad;
        elem_values_.insert(inst.dst);
      } else if (cat == OpCategory::Store) {
        // Stores constrain the lane kind exactly like loads: a loop
        // mixing element types (e.g. an f32 load next to an i32 store)
        // has no single vector shape, and letting the store through
        // would splat its value with the wrong-typed splat opcode.
        const LaneKind this_lk = lane_kind_of_store(inst);
        if (this_lk == LaneKind::None) return false;
        if (lk != LaneKind::None && lk != this_lk) return false;
        lk = this_lk;
        const auto acc = decompose_access(fn_, loop_, inst.s0, inst.imm,
                                          op_info(inst.op).mem_bytes, true,
                                          iv_.var);
        if (!acc) return false;
        accesses_.push_back(*acc);
        classes_[i] = InstClass::Store;
      }
    }
    if (!saw_load || lk == LaneKind::None) return false;  // no data loads
    lane_kind_ = lk;
    vf_ = lane_count(lk);

    // 4. Classify the rest.
    for (size_t i = 0; i < n; ++i) {
      if (classes_[i] == InstClass::ElemLoad ||
          classes_[i] == InstClass::Store) {
        continue;
      }
      const IRInst& inst = B.insts[i];
      if (i + 1 == n) {
        classes_[i] = InstClass::Terminator;
        continue;
      }
      if (body_ == iv_.update_block && i == iv_.update_index) {
        classes_[i] = InstClass::IvUpdate;
        continue;
      }
      if (red_indices.count(i)) {
        classes_[i] = InstClass::RedUpdate;
        continue;
      }
      if (inst.dst != kNoValue && addr_values.count(inst.dst)) {
        // Pure integer address arithmetic only.
        switch (inst.op) {
          case Opcode::AddI32:
          case Opcode::SubI32:
          case Opcode::MulI32:
          case Opcode::ShlI32:
          case Opcode::ConstI32:
            classes_[i] = InstClass::Address;
            continue;
          default:
            return false;
        }
      }
      // In-body constants (loop-step constants, splat sources) are
      // copied verbatim; splat collection handles the ones feeding
      // elementwise ops.
      if (inst.op == Opcode::ConstI32 || inst.op == Opcode::ConstF32) {
        classes_[i] = InstClass::Address;
        continue;
      }
      // Elementwise arithmetic.
      if (inst.dst == kNoValue) return false;
      const Opcode vop = vector_op_for(inst.op, lane_kind_);
      if (vop == Opcode::Nop) return false;
      // Operands: elementwise, invariant, or in-body const; never iv.
      for (ValueId s : {inst.s0, inst.s1}) {
        if (s == kNoValue) continue;
        if (s == iv_.var) return false;
        if (elem_values_.count(s)) continue;
        if (!defined_in(loop_, s)) continue;          // invariant
        if (in_body_const(s)) continue;               // splattable const
        return false;
      }
      classes_[i] = InstClass::ElemArith;
      elem_values_.insert(inst.dst);
    }

    // 5. Reduction operands must be elementwise; pick strategies.
    for (Reduction& red : reductions_) {
      if (!elem_values_.count(red.elem)) return false;
      const bool is_add =
          red.scalar_op == Opcode::AddI32 || red.scalar_op == Opcode::AddF32;
      const bool narrow =
          lane_kind_ == LaneKind::U8x16 || lane_kind_ == LaneKind::U16x8;
      if (is_add && narrow) {
        // Widening sum: elem must be a raw load (no narrow arithmetic).
        red.widening = true;
        bool is_load = false;
        const IRBlock& B2 = fn_.block(body_);
        for (size_t i = 0; i < B2.insts.size(); ++i) {
          if (B2.insts[i].dst == red.elem &&
              classes_[i] == InstClass::ElemLoad) {
            is_load = true;
          }
        }
        if (!is_load) return false;
        if (red.scalar_op != Opcode::AddI32) return false;
      } else if (is_add) {
        red.widening = false;  // vector accumulator seeded with zero
      } else {
        // min/max accumulator: for narrow lanes the incoming value must
        // provably fit the lane range (all out-of-loop defs are in-range
        // constants).
        red.widening = false;
        if (narrow && !narrow_safe_init(red.var)) return false;
      }
    }

    // 6. Narrow lanes restrict elementwise arithmetic to min/max.
    if (lane_kind_ == LaneKind::U8x16 || lane_kind_ == LaneKind::U16x8) {
      const IRBlock& B2 = fn_.block(body_);
      for (size_t i = 0; i < B2.insts.size(); ++i) {
        if (classes_[i] != InstClass::ElemArith) continue;
        switch (B2.insts[i].op) {
          case Opcode::MaxUI32:
          case Opcode::MaxSI32:
          case Opcode::MinUI32:
          case Opcode::MinSI32:
            break;
          default:
            return false;
        }
      }
    }

    // 7. Unit-stride + no cross-iteration conflicts.
    if (!vectorization_safe(accesses_, vf_)) return false;

    // 8. No memory access after the induction update.
    {
      const IRBlock& B2 = fn_.block(body_);
      for (size_t i = iv_.update_index + 1; i < B2.insts.size(); ++i) {
        if (classes_[i] == InstClass::ElemLoad ||
            classes_[i] == InstClass::Store ||
            classes_[i] == InstClass::Address) {
          return false;
        }
      }
    }

    // 9. Body temporaries must not escape the loop (the scalar epilogue
    // recomputes them; reductions and the iv are preserved by design).
    {
      const IRBlock& B2 = fn_.block(body_);
      for (size_t i = 0; i < B2.insts.size(); ++i) {
        const ValueId d = B2.insts[i].dst;
        if (d == kNoValue || d == iv_.var) continue;
        bool is_red_var = false;
        for (const Reduction& red : reductions_) {
          is_red_var |= (red.var == d);
        }
        if (is_red_var) continue;
        if (used_outside_loop(d)) return false;
      }
    }
    return true;
  }

  bool in_body_const(ValueId v) const {
    for (const IRInst& inst : fn_.block(body_).insts) {
      if (inst.dst == v) {
        return inst.op == Opcode::ConstI32 || inst.op == Opcode::ConstF32;
      }
    }
    return false;
  }

  bool narrow_safe_init(ValueId r) const {
    const int64_t max_lane =
        lane_kind_ == LaneKind::U8x16 ? 255 : 65535;
    bool any_def = false;
    for (uint32_t b = 0; b < fn_.num_blocks(); ++b) {
      if (loop_.contains(b)) continue;
      for (const IRInst& inst : fn_.block(b).insts) {
        if (inst.dst != r) continue;
        any_def = true;
        if (inst.op == Opcode::ConstI32 && inst.imm >= 0 &&
            inst.imm <= max_lane) {
          continue;
        }
        // Copies of in-range constants: resolve one hop.
        if (is_ir_copy(inst)) {
          bool ok = false;
          for (uint32_t b2 = 0; b2 < fn_.num_blocks(); ++b2) {
            for (const IRInst& src : fn_.block(b2).insts) {
              if (src.dst == inst.s0 && src.op == Opcode::ConstI32 &&
                  src.imm >= 0 && src.imm <= max_lane) {
                ok = true;
              }
            }
          }
          if (ok) continue;
        }
        return false;
      }
    }
    return any_def;
  }

  // ------------------------------------------------------------------ //
  void transform() {
    const uint32_t vpre = fn_.add_block();
    const uint32_t vhead = fn_.add_block();
    const uint32_t vbody = fn_.add_block();
    const uint32_t vepi = fn_.add_block();

    // Redirect the preheader to the vector preheader.
    {
      IRInst& term = fn_.block(preheader_).insts.back();
      if (term.op == Opcode::Jump && term.a == header_) term.a = vpre;
      if (term.op == Opcode::BranchIf) {
        if (term.a == header_) term.a = vpre;
        if (term.b == header_) term.b = vpre;
      }
    }

    // --- vector preheader: limit = n - max(n - i, 0) % VF; splats. -----
    IRBuilder pre{fn_, vpre};
    const ValueId range =
        pre.binop(Opcode::SubI32, Type::I32, bound_, iv_.var);
    const ValueId zero = pre.const_i32(0);
    const ValueId clamped =
        pre.binop(Opcode::MaxSI32, Type::I32, range, zero);
    const ValueId vfc = pre.const_i32(static_cast<int32_t>(vf_));
    const ValueId rem =
        pre.binop(Opcode::RemUI32, Type::I32, clamped, vfc);
    limit_ = pre.binop(Opcode::SubI32, Type::I32, bound_, rem);

    // Splats for invariant / in-body-const elementwise operands.
    const IRBlock body_copy = fn_.block(body_);  // snapshot
    for (size_t i = 0; i < body_copy.insts.size(); ++i) {
      const IRInst& inst = body_copy.insts[i];
      std::vector<ValueId> needs_vector;
      if (classes_[i] == InstClass::ElemArith) {
        needs_vector = {inst.s0, inst.s1};
      } else if (classes_[i] == InstClass::Store) {
        needs_vector = {inst.s1};  // stored value (s0 is the address)
      } else {
        continue;
      }
      for (ValueId s : needs_vector) {
        if (s == kNoValue || elem_values_.count(s) || splats_.count(s)) {
          continue;
        }
        ValueId scalar = s;
        if (in_body_const(s)) {
          // Re-materialize the constant outside the loop.
          for (const IRInst& c : body_copy.insts) {
            if (c.dst == s) {
              const ValueId cc = fn_.new_value(fn_.value_type(s));
              IRInst copy = c;
              copy.dst = cc;
              pre.emit(copy);
              scalar = cc;
              break;
            }
          }
        }
        const ValueId splat = fn_.new_value(Type::V128);
        pre.emit({splat_op_for(lane_kind_), splat, scalar, kNoValue, kNoValue,
                  0, 0, 0});
        splats_[s] = splat;
      }
    }

    // Vector accumulators.
    for (Reduction& red : reductions_) {
      if (red.widening) continue;
      red.vacc = fn_.new_value(Type::V128);
      const bool is_add =
          red.scalar_op == Opcode::AddI32 || red.scalar_op == Opcode::AddF32;
      if (is_add) {
        pre.emit({Opcode::VZero, red.vacc, kNoValue, kNoValue, kNoValue, 0, 0,
                  0});
      } else {
        pre.emit({splat_op_for(lane_kind_), red.vacc, red.var, kNoValue,
                  kNoValue, 0, 0, 0});
      }
    }
    pre.jump(vhead);

    // --- vector header ---------------------------------------------------
    IRBuilder vh{fn_, vhead};
    const ValueId cond =
        vh.binop(Opcode::LtSI32, Type::I32, iv_.var, limit_);
    vh.br_if(cond, vbody, vepi);

    // --- vector body -----------------------------------------------------
    IRBuilder vb{fn_, vbody};
    std::map<ValueId, ValueId> vec_of;  // scalar elementwise -> vector value
    auto vec_operand = [&](ValueId s) -> ValueId {
      const auto it = vec_of.find(s);
      if (it != vec_of.end()) return it->second;
      return splats_.at(s);
    };
    for (size_t i = 0; i < body_copy.insts.size(); ++i) {
      const IRInst& inst = body_copy.insts[i];
      switch (classes_[i]) {
        case InstClass::Address:
          vb.emit(inst);  // same dst ids; recomputed per vector step
          break;
        case InstClass::ElemLoad: {
          const ValueId v = fn_.new_value(Type::V128);
          vb.emit({Opcode::LoadV128, v, inst.s0, kNoValue, kNoValue, inst.imm,
                   0, 0});
          vec_of[inst.dst] = v;
          break;
        }
        case InstClass::ElemArith: {
          const ValueId v = fn_.new_value(Type::V128);
          vb.emit({vector_op_for(inst.op, lane_kind_), v,
                   vec_operand(inst.s0), vec_operand(inst.s1), kNoValue, 0, 0,
                   0});
          vec_of[inst.dst] = v;
          break;
        }
        case InstClass::Store:
          vb.emit({Opcode::StoreV128, kNoValue, inst.s0, vec_operand(inst.s1),
                   kNoValue, inst.imm, 0, 0});
          stats_.map_stores += 1;
          break;
        case InstClass::IvUpdate: {
          const ValueId step = vb.const_i32(static_cast<int32_t>(vf_));
          vb.assign_binop(Opcode::AddI32, iv_.var, iv_.var, step);
          break;
        }
        case InstClass::RedUpdate: {
          for (const Reduction& red : reductions_) {
            if (red.update_index != i) continue;
            if (red.widening) {
              // acc += v.rsum(elem_vec)
              const Opcode rsum = lane_kind_ == LaneKind::U8x16
                                      ? Opcode::VRSumU8
                                      : Opcode::VRSumU16;
              const ValueId partial = fn_.new_value(Type::I32);
              vb.emit({rsum, partial, vec_operand(red.elem), kNoValue,
                       kNoValue, 0, 0, 0});
              vb.assign_binop(Opcode::AddI32, red.var, red.var, partial);
              stats_.widening_reductions += 1;
            } else {
              const Opcode vop = red.scalar_op == Opcode::AddI32
                                     ? Opcode::VAddI32
                                 : red.scalar_op == Opcode::AddF32
                                     ? Opcode::VAddF32
                                     : vector_op_for(red.scalar_op,
                                                     lane_kind_);
              vb.emit({vop, red.vacc, red.vacc, vec_operand(red.elem),
                       kNoValue, 0, 0, 0});
              stats_.accumulator_reductions += 1;
            }
          }
          break;
        }
        case InstClass::Terminator:
          break;
      }
    }
    vb.jump(vhead);

    // --- vector epilogue: merge accumulators, fall into scalar loop. ----
    IRBuilder ve{fn_, vepi};
    for (const Reduction& red : reductions_) {
      if (red.widening || red.vacc == kNoValue) continue;
      switch (red.scalar_op) {
        case Opcode::AddI32: {
          const ValueId h = fn_.new_value(Type::I32);
          ve.emit({Opcode::VRSumI32, h, red.vacc, kNoValue, kNoValue, 0, 0,
                   0});
          ve.assign_binop(Opcode::AddI32, red.var, red.var, h);
          break;
        }
        case Opcode::AddF32: {
          const ValueId h = fn_.new_value(Type::F32);
          ve.emit({Opcode::VRSumF32, h, red.vacc, kNoValue, kNoValue, 0, 0,
                   0});
          ve.assign_binop(Opcode::AddF32, red.var, red.var, h);
          break;
        }
        default: {
          // min/max: the accumulator was seeded with the incoming value,
          // so a horizontal reduce replaces it entirely.
          Opcode hop = Opcode::Nop;
          switch (lane_kind_) {
            case LaneKind::U8x16:
              hop = (red.scalar_op == Opcode::MinUI32 ||
                     red.scalar_op == Opcode::MinSI32)
                        ? Opcode::VRMinU8
                        : Opcode::VRMaxU8;
              break;
            case LaneKind::U16x8:
              hop = Opcode::VRMaxU16;
              break;
            case LaneKind::I32x4:
              hop = Opcode::VRMaxSI32;
              break;
            case LaneKind::F32x4:
              hop = (red.scalar_op == Opcode::MinF32) ? Opcode::VRMinF32
                                                      : Opcode::VRMaxF32;
              break;
            default:
              break;
          }
          ve.emit({hop, red.var, red.vacc, kNoValue, kNoValue, 0, 0, 0});
          break;
        }
      }
    }
    ve.jump(header_);  // scalar remainder loop

    stats_.vectorized_headers.emplace_back(vhead, vf_);
  }

  IRFunction& fn_;
  const Loop& loop_;
  VectorizeStats& stats_;

  uint32_t header_ = 0, body_ = 0, exit_ = 0, preheader_ = 0;
  InductionVar iv_;
  ValueId bound_ = kNoValue;
  ValueId limit_ = kNoValue;
  LaneKind lane_kind_ = LaneKind::None;
  uint32_t vf_ = 0;
  std::vector<InstClass> classes_;
  std::vector<Reduction> reductions_;
  std::vector<AccessPattern> accesses_;
  std::set<ValueId> elem_values_;
  std::map<ValueId, ValueId> splats_;
};

}  // namespace

VectorizeStats vectorize(IRFunction& fn) {
  VectorizeStats stats;
  const std::vector<Loop> loops = find_loops(fn);
  for (const Loop& loop : loops) {
    stats.loops_considered += 1;
    LoopVectorizer lv(fn, loop, stats);
    if (lv.run()) stats.loops_vectorized += 1;
  }
  return stats;
}

}  // namespace svc
