// The offline compiler's mid-level IR: a register-based, three-address CFG
// (not SSA -- values may be redefined, e.g. induction variables), typed by
// a per-value table. Opcodes reuse the SVIL enumeration for all shared
// semantics, so lowering to stack bytecode is mechanical.
//
// This is where the expensive offline work of split compilation happens:
// simplification, if-conversion and, centrally, automatic vectorization.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/opcode.h"
#include "bytecode/type.h"

namespace svc {

/// IR value id. Values [0, num_params) are the function parameters.
using ValueId = uint32_t;
inline constexpr ValueId kNoValue = 0xffffffffu;

struct IRInst {
  Opcode op = Opcode::Nop;
  ValueId dst = kNoValue;
  ValueId s0 = kNoValue, s1 = kNoValue, s2 = kNoValue;
  int64_t imm = 0;  // constant bits / memory offset
  uint32_t a = 0;   // block target 0 / callee / lane
  uint32_t b = 0;   // block target 1

  [[nodiscard]] bool is_terminator() const { return svc::is_terminator(op); }
};

struct IRBlock {
  std::vector<IRInst> insts;
  [[nodiscard]] const IRInst& terminator() const { return insts.back(); }
};

class IRFunction {
 public:
  IRFunction(std::string name, std::vector<Type> param_types, Type ret);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Type ret_type() const { return ret_; }
  [[nodiscard]] uint32_t num_params() const { return num_params_; }

  ValueId new_value(Type t) {
    value_types_.push_back(t);
    return static_cast<ValueId>(value_types_.size() - 1);
  }
  [[nodiscard]] Type value_type(ValueId v) const { return value_types_[v]; }
  [[nodiscard]] size_t num_values() const { return value_types_.size(); }

  uint32_t add_block() {
    blocks_.emplace_back();
    return static_cast<uint32_t>(blocks_.size() - 1);
  }
  [[nodiscard]] IRBlock& block(uint32_t b) { return blocks_[b]; }
  [[nodiscard]] const IRBlock& block(uint32_t b) const { return blocks_[b]; }
  [[nodiscard]] size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] std::vector<IRBlock>& blocks() { return blocks_; }
  [[nodiscard]] const std::vector<IRBlock>& blocks() const { return blocks_; }

  /// Successor block ids of `b`'s terminator.
  [[nodiscard]] std::vector<uint32_t> successors(uint32_t b) const;

  /// Number of defining instructions per value (parameters count as one
  /// implicit def). Recomputed on demand by passes.
  [[nodiscard]] std::vector<uint32_t> def_counts() const;

  [[nodiscard]] std::string str() const;

 private:
  std::string name_;
  Type ret_;
  uint32_t num_params_;
  std::vector<Type> value_types_;
  std::vector<IRBlock> blocks_;
};

/// IR-only register copy: Opcode::Nop with a destination means `dst <- s0`.
/// The stack bytecode needs no copy opcode (lowering expands copies to
/// local.get / local.set), so Nop is reused rather than widening the ISA.
[[nodiscard]] inline IRInst ir_copy(ValueId dst, ValueId src) {
  return {Opcode::Nop, dst, src, kNoValue, kNoValue, 0, 0, 0};
}
[[nodiscard]] inline bool is_ir_copy(const IRInst& inst) {
  return inst.op == Opcode::Nop && inst.dst != kNoValue;
}

/// Convenience emitters used by irgen and the vectorizer.
struct IRBuilder {
  IRFunction& fn;
  uint32_t block;

  void emit(IRInst inst) { fn.block(block).insts.push_back(inst); }

  ValueId const_i32(int32_t v) {
    const ValueId dst = fn.new_value(Type::I32);
    emit({Opcode::ConstI32, dst, kNoValue, kNoValue, kNoValue, v, 0, 0});
    return dst;
  }
  ValueId const_f32(float v) {
    const ValueId dst = fn.new_value(Type::F32);
    emit({Opcode::ConstF32, dst, kNoValue, kNoValue, kNoValue,
          static_cast<int64_t>(std::bit_cast<uint32_t>(v)), 0, 0});
    return dst;
  }
  ValueId unop(Opcode op, Type t, ValueId a) {
    const ValueId dst = fn.new_value(t);
    emit({op, dst, a, kNoValue, kNoValue, 0, 0, 0});
    return dst;
  }
  ValueId binop(Opcode op, Type t, ValueId a, ValueId b) {
    const ValueId dst = fn.new_value(t);
    emit({op, dst, a, b, kNoValue, 0, 0, 0});
    return dst;
  }
  /// Re-defines an existing value (non-SSA assignment).
  void assign_binop(Opcode op, ValueId dst, ValueId a, ValueId b) {
    emit({op, dst, a, b, kNoValue, 0, 0, 0});
  }
  ValueId load(Opcode op, ValueId addr, int64_t offset, Type t) {
    const ValueId dst = fn.new_value(t);
    emit({op, dst, addr, kNoValue, kNoValue, offset, 0, 0});
    return dst;
  }
  void store(Opcode op, ValueId addr, ValueId value, int64_t offset) {
    emit({op, kNoValue, addr, value, kNoValue, offset, 0, 0});
  }
  void jump(uint32_t target) {
    emit({Opcode::Jump, kNoValue, kNoValue, kNoValue, kNoValue, 0, target, 0});
  }
  void br_if(ValueId cond, uint32_t taken, uint32_t fallthrough) {
    emit({Opcode::BranchIf, kNoValue, cond, kNoValue, kNoValue, 0, taken,
          fallthrough});
  }
  void ret(ValueId v = kNoValue) {
    emit({Opcode::Ret, kNoValue, v, kNoValue, kNoValue, 0, 0, 0});
  }
};

}  // namespace svc
