// Classic offline scalar optimizations: constant folding, algebraic
// simplification / strength reduction, dead-code elimination, and
// if-conversion (branchy diamonds/triangles to selects). These run before
// the vectorizer and double as the knob space of the iterative-compilation
// driver (paper S4).
#pragma once

#include "ir/ir.h"

namespace svc {

struct PassOptions {
  bool fold_constants = true;
  bool simplify = true;       // algebraic identities + mul->shift
  bool dce = true;
  bool if_convert = false;    // triangles to selects (ablation knob)
};

struct PassStats {
  uint32_t folded = 0;
  uint32_t simplified = 0;
  uint32_t dce_removed = 0;
  uint32_t if_converted = 0;
};

/// Legacy knob-struct runner: cleanup fixpoint (up to 3 rounds of
/// coalesce+fold+simplify+dce), then constant LICM, then optional
/// if-conversion. Kept as the reference schedule; the offline compiler now
/// drives the same passes through the unified PassManager
/// (ir/ir_pipeline.h), which reproduces this behavior for every
/// PassOptions setting.
PassStats run_passes(IRFunction& fn, const PassOptions& options);

/// Individual rewrites, exposed as registrable passes for the unified
/// PassManager. Each returns its number of rewrites.
uint32_t run_coalesce_pass(IRFunction& fn);
uint32_t run_fold_pass(IRFunction& fn);
uint32_t run_simplify_pass(IRFunction& fn);
uint32_t run_dce_pass(IRFunction& fn);
uint32_t run_if_convert_pass(IRFunction& fn);
uint32_t run_licm_consts_pass(IRFunction& fn);

/// The cleanup fixpoint of run_passes alone: up to 3 rounds of
/// coalesce + [fold] + [simplify] + [dce] with early exit when a round
/// rewrites nothing. No LICM, no if-conversion.
PassStats run_cleanup_fixpoint(IRFunction& fn, const PassOptions& options);

}  // namespace svc
