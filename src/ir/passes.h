// Classic offline scalar optimizations: constant folding, algebraic
// simplification / strength reduction, dead-code elimination, and
// if-conversion (branchy diamonds/triangles to selects). These run before
// the vectorizer and double as the knob space of the iterative-compilation
// driver (paper S4).
#pragma once

#include "ir/ir.h"

namespace svc {

struct PassOptions {
  bool fold_constants = true;
  bool simplify = true;       // algebraic identities + mul->shift
  bool dce = true;
  bool if_convert = false;    // triangles to selects (ablation knob)
};

struct PassStats {
  uint32_t folded = 0;
  uint32_t simplified = 0;
  uint32_t dce_removed = 0;
  uint32_t if_converted = 0;
};

PassStats run_passes(IRFunction& fn, const PassOptions& options);

}  // namespace svc
