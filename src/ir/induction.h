// Basic induction-variable recognition for canonical loops: a value with
// exactly one in-loop definition of the form i = i + <const>.
#pragma once

#include <optional>

#include "ir/loop_info.h"

namespace svc {

struct InductionVar {
  ValueId var = kNoValue;
  int64_t step = 0;
  uint32_t update_block = 0;  // block holding the increment
  size_t update_index = 0;    // instruction index within that block
};

/// Finds the basic induction variable of `loop` in `fn`: the value with a
/// single in-loop def `var = AddI32(var, c)` / `AddI32(c, var)` with c a
/// single-def constant. Returns nullopt when there is no unique candidate
/// driving the header's exit comparison.
[[nodiscard]] std::optional<InductionVar> find_induction(const IRFunction& fn,
                                                         const Loop& loop);

}  // namespace svc
