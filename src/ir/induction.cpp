#include "ir/induction.h"

#include <map>

namespace svc {
namespace {

/// Constant value of `v` if it has exactly one def and that def is a
/// ConstI32 anywhere in the function.
std::optional<int64_t> const_value(const IRFunction& fn, ValueId v,
                                   const std::vector<uint32_t>& defs) {
  if (v == kNoValue || defs[v] != 1) return std::nullopt;
  for (const IRBlock& block : fn.blocks()) {
    for (const IRInst& inst : block.insts) {
      if (inst.dst == v) {
        if (inst.op == Opcode::ConstI32) return inst.imm;
        return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<InductionVar> find_induction(const IRFunction& fn,
                                           const Loop& loop) {
  const std::vector<uint32_t> defs = fn.def_counts();

  // Count in-loop defs per value and remember add-shaped updates.
  std::map<ValueId, uint32_t> in_loop_defs;
  std::map<ValueId, InductionVar> candidates;
  for (uint32_t b : loop.blocks) {
    const IRBlock& block = fn.block(b);
    for (size_t i = 0; i < block.insts.size(); ++i) {
      const IRInst& inst = block.insts[i];
      if (inst.dst == kNoValue) continue;
      in_loop_defs[inst.dst] += 1;
      if (inst.op != Opcode::AddI32) continue;
      ValueId other = kNoValue;
      if (inst.s0 == inst.dst) other = inst.s1;
      if (inst.s1 == inst.dst) other = inst.s0;
      if (other == kNoValue) continue;
      const auto step = const_value(fn, other, defs);
      if (!step) continue;
      InductionVar iv;
      iv.var = inst.dst;
      iv.step = *step;
      iv.update_block = b;
      iv.update_index = i;
      candidates[inst.dst] = iv;
    }
  }

  // The induction variable must be updated exactly once in the loop and
  // drive the header's exit comparison.
  const IRBlock& header = fn.block(loop.header);
  if (header.insts.empty()) return std::nullopt;
  const IRInst& term = header.terminator();
  if (term.op != Opcode::BranchIf) return std::nullopt;

  for (auto& [var, iv] : candidates) {
    if (in_loop_defs[var] != 1) continue;
    // Find the comparison feeding the branch and check it reads `var`.
    for (const IRInst& inst : header.insts) {
      if (inst.dst == term.s0 &&
          (inst.s0 == var || inst.s1 == var)) {
        return iv;
      }
    }
  }
  return std::nullopt;
}

}  // namespace svc
