#include "ir/lower_bytecode.h"

#include "support/diagnostics.h"

namespace svc {

Function lower_to_bytecode(const IRFunction& ir) {
  FunctionSig sig;
  for (uint32_t p = 0; p < ir.num_params(); ++p) {
    sig.params.push_back(ir.value_type(p));
  }
  sig.ret = ir.ret_type();
  Function fn(ir.name(), sig);

  // Locals mirror IR values 1:1 (parameters first, by construction).
  for (uint32_t v = ir.num_params(); v < ir.num_values(); ++v) {
    fn.add_local(ir.value_type(v));
  }

  for (uint32_t b = 0; b < ir.num_blocks(); ++b) {
    const uint32_t bb = fn.add_block();
    for (const IRInst& inst : ir.block(b).insts) {
      // IR-only copy.
      if (is_ir_copy(inst)) {
        fn.append(bb, Instruction::with_a(Opcode::LocalGet, inst.s0));
        fn.append(bb, Instruction::with_a(Opcode::LocalSet, inst.dst));
        continue;
      }
      switch (inst.op) {
        case Opcode::Jump:
          fn.append(bb, Instruction::with_a(Opcode::Jump, inst.a));
          continue;
        case Opcode::BranchIf:
          fn.append(bb, Instruction::with_a(Opcode::LocalGet, inst.s0));
          fn.append(bb, {Opcode::BranchIf, inst.a, inst.b, 0});
          continue;
        case Opcode::Ret:
          if (inst.s0 != kNoValue) {
            fn.append(bb, Instruction::with_a(Opcode::LocalGet, inst.s0));
          }
          fn.append(bb, Instruction::make(Opcode::Ret));
          continue;
        case Opcode::Trap:
          fn.append(bb, Instruction::make(Opcode::Trap));
          continue;
        case Opcode::Nop:
          continue;
        default:
          break;
      }
      // Generic: push sources in order, emit the op, pop the result.
      for (ValueId s : {inst.s0, inst.s1, inst.s2}) {
        if (s != kNoValue) {
          fn.append(bb, Instruction::with_a(Opcode::LocalGet, s));
        }
      }
      Instruction out;
      out.op = inst.op;
      out.a = inst.a;
      out.b = inst.b;
      out.imm = inst.imm;
      fn.append(bb, out);
      if (inst.dst != kNoValue) {
        fn.append(bb, Instruction::with_a(Opcode::LocalSet, inst.dst));
      }
    }
  }
  return fn;
}

}  // namespace svc
