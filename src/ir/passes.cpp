#include "ir/passes.h"

#include "ir/loop_info.h"

#include <map>
#include <optional>
#include <vector>

namespace svc {
namespace {

/// Map of single-def i32 constants.
std::map<ValueId, int64_t> const_map(const IRFunction& fn) {
  const auto defs = fn.def_counts();
  std::map<ValueId, int64_t> consts;
  for (const IRBlock& block : fn.blocks()) {
    for (const IRInst& inst : block.insts) {
      if (inst.dst != kNoValue && defs[inst.dst] == 1 &&
          inst.op == Opcode::ConstI32) {
        consts[inst.dst] = inst.imm;
      }
    }
  }
  return consts;
}

bool has_side_effects(const IRInst& inst) {
  const OpInfo& info = op_info(inst.op);
  switch (info.category) {
    case OpCategory::Store:
    case OpCategory::Control:
    case OpCategory::Call:
      return true;
    case OpCategory::Load:
      return true;  // loads can trap out-of-bounds; keep them
    case OpCategory::IntArith:
      // Division can trap.
      switch (inst.op) {
        case Opcode::DivSI32:
        case Opcode::DivUI32:
        case Opcode::RemSI32:
        case Opcode::RemUI32:
        case Opcode::DivSI64:
          return true;
        default:
          return false;
      }
    default:
      return false;
  }
}

}  // namespace

uint32_t run_fold_pass(IRFunction& fn) {
  const auto consts = const_map(fn);
  uint32_t folded = 0;
  auto cval = [&](ValueId v) -> std::optional<int64_t> {
    const auto it = consts.find(v);
    if (it == consts.end()) return std::nullopt;
    return it->second;
  };
  for (IRBlock& block : fn.blocks()) {
    for (IRInst& inst : block.insts) {
      if (inst.dst == kNoValue) continue;
      const auto a = cval(inst.s0);
      const auto b = cval(inst.s1);
      if (!a || !b) continue;
      const auto ua = static_cast<uint32_t>(*a);
      const auto ub = static_cast<uint32_t>(*b);
      std::optional<int32_t> result;
      switch (inst.op) {
        case Opcode::AddI32: result = static_cast<int32_t>(ua + ub); break;
        case Opcode::SubI32: result = static_cast<int32_t>(ua - ub); break;
        case Opcode::MulI32: result = static_cast<int32_t>(ua * ub); break;
        case Opcode::AndI32: result = static_cast<int32_t>(ua & ub); break;
        case Opcode::OrI32: result = static_cast<int32_t>(ua | ub); break;
        case Opcode::XorI32: result = static_cast<int32_t>(ua ^ ub); break;
        case Opcode::ShlI32:
          result = static_cast<int32_t>(ua << (ub & 31));
          break;
        case Opcode::LtSI32:
          result = static_cast<int32_t>(*a) < static_cast<int32_t>(*b);
          break;
        case Opcode::GtSI32:
          result = static_cast<int32_t>(*a) > static_cast<int32_t>(*b);
          break;
        case Opcode::EqI32: result = (*a == *b); break;
        case Opcode::NeI32: result = (*a != *b); break;
        default: break;
      }
      if (result) {
        inst = {Opcode::ConstI32, inst.dst, kNoValue, kNoValue, kNoValue,
                *result, 0, 0};
        ++folded;
      }
    }
  }
  return folded;
}

uint32_t run_simplify_pass(IRFunction& fn) {
  const auto consts = const_map(fn);
  uint32_t simplified = 0;
  auto cval = [&](ValueId v) -> std::optional<int64_t> {
    const auto it = consts.find(v);
    if (it == consts.end()) return std::nullopt;
    return it->second;
  };
  auto log2_exact = [](int64_t v) -> std::optional<int64_t> {
    if (v <= 0 || (v & (v - 1)) != 0) return std::nullopt;
    int64_t k = 0;
    while ((int64_t{1} << k) != v) ++k;
    return k;
  };
  for (IRBlock& block : fn.blocks()) {
    for (size_t i = 0; i < block.insts.size(); ++i) {
      IRInst& inst = block.insts[i];
      switch (inst.op) {
        case Opcode::MulI32: {
          // x * 2^k  ->  x << k (strength reduction for addressing math).
          for (int flip = 0; flip < 2; ++flip) {
            const ValueId x = flip ? inst.s1 : inst.s0;
            const ValueId c = flip ? inst.s0 : inst.s1;
            const auto v = cval(c);
            if (!v) continue;
            if (*v == 1) {
              inst = ir_copy(inst.dst, x);
              ++simplified;
              break;
            }
            const auto k = log2_exact(*v);
            if (k) {
              // Reuses the constant value as the shift amount via a new
              // constant instruction inserted before.
              const ValueId kval = fn.new_value(Type::I32);
              IRInst kinst{Opcode::ConstI32, kval, kNoValue, kNoValue,
                           kNoValue, *k, 0, 0};
              inst = {Opcode::ShlI32, inst.dst, x, kval, kNoValue, 0, 0, 0};
              block.insts.insert(block.insts.begin() + static_cast<long>(i),
                                 kinst);
              ++i;
              ++simplified;
              break;
            }
          }
          break;
        }
        case Opcode::AddI32:
        case Opcode::SubI32: {
          // x + 0 / x - 0 -> copy.
          const auto b = cval(inst.s1);
          if (b && *b == 0) {
            inst = ir_copy(inst.dst, inst.s0);
            ++simplified;
          } else if (inst.op == Opcode::AddI32) {
            const auto a = cval(inst.s0);
            if (a && *a == 0) {
              inst = ir_copy(inst.dst, inst.s1);
              ++simplified;
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return simplified;
}


/// Copy coalescing: `tmp = <op>(...); ...; x <- tmp` with tmp defined and
/// used exactly once collapses to `x = <op>(...)`. Canonicalizes the
/// frontend's assignment pattern so induction updates become
/// `i = add(i, 1)` and reductions `r = op(r, e)` -- the shapes the
/// vectorizer and induction analysis match on.
uint32_t run_coalesce_pass(IRFunction& fn) {
  uint32_t coalesced = 0;
  const auto defs = fn.def_counts();
  // Global use counts.
  std::vector<uint32_t> uses(fn.num_values(), 0);
  for (const IRBlock& block : fn.blocks()) {
    for (const IRInst& inst : block.insts) {
      for (ValueId s : {inst.s0, inst.s1, inst.s2}) {
        if (s != kNoValue) ++uses[s];
      }
    }
  }
  for (IRBlock& block : fn.blocks()) {
    for (size_t k = 0; k < block.insts.size(); ++k) {
      const IRInst copy = block.insts[k];
      if (!is_ir_copy(copy)) continue;
      const ValueId tmp = copy.s0;
      const ValueId x = copy.dst;
      if (tmp == x || defs[tmp] != 1 || uses[tmp] != 1) continue;
      // Find tmp's def earlier in this block; x must stay untouched in
      // between (reads of x would observe the old value).
      for (size_t j = 0; j < k; ++j) {
        if (block.insts[j].dst != tmp) continue;
        bool safe = true;
        for (size_t m = j + 1; m < k; ++m) {
          const IRInst& mid = block.insts[m];
          if (mid.dst == x || mid.s0 == x || mid.s1 == x || mid.s2 == x) {
            safe = false;
            break;
          }
        }
        if (safe) {
          block.insts[j].dst = x;
          block.insts.erase(block.insts.begin() + static_cast<long>(k));
          --k;
          ++coalesced;
        }
        break;
      }
    }
  }
  return coalesced;
}

uint32_t run_dce_pass(IRFunction& fn) {
  // A value is live if any instruction reads it; defs of dead values with
  // no side effects are removed. Iterates to a fixpoint.
  uint32_t removed_total = 0;
  for (;;) {
    std::vector<bool> used(fn.num_values(), false);
    for (const IRBlock& block : fn.blocks()) {
      for (const IRInst& inst : block.insts) {
        for (ValueId s : {inst.s0, inst.s1, inst.s2}) {
          if (s != kNoValue) used[s] = true;
        }
      }
    }
    uint32_t removed = 0;
    for (IRBlock& block : fn.blocks()) {
      std::vector<IRInst> kept;
      kept.reserve(block.insts.size());
      for (const IRInst& inst : block.insts) {
        const bool dead = inst.dst != kNoValue && !used[inst.dst] &&
                          !has_side_effects(inst);
        if (dead) {
          ++removed;
        } else {
          kept.push_back(inst);
        }
      }
      block.insts = std::move(kept);
    }
    removed_total += removed;
    if (removed == 0) break;
  }
  return removed_total;
}

/// If-conversion of triangles:
///   A: ... br_if c -> T, J      T: x = v; jump J
/// becomes
///   A: ... x = select(v, x, c); jump J
/// Only fires when T contains exactly one assignment (copy or pure op
/// producing a redefinition of x) and J is T's unique successor.
uint32_t run_if_convert_pass(IRFunction& fn) {
  uint32_t converted = 0;
  for (uint32_t a = 0; a < fn.num_blocks(); ++a) {
    IRBlock& A = fn.block(a);
    if (A.insts.empty()) continue;
    IRInst& term = A.insts.back();
    if (term.op != Opcode::BranchIf) continue;
    const uint32_t t = term.a, j = term.b;
    if (t == j || t >= fn.num_blocks()) continue;
    IRBlock& T = fn.block(t);
    if (T.insts.size() != 2) continue;
    const IRInst& body = T.insts[0];
    const IRInst& tj = T.insts[1];
    if (tj.op != Opcode::Jump || tj.a != j) continue;
    // The single instruction must be a pure redefinition x = f(...).
    if (body.dst == kNoValue || has_side_effects(body)) continue;
    const ValueId x = body.dst;
    const Type xt = fn.value_type(x);
    Opcode select_op;
    switch (xt) {
      case Type::I32: select_op = Opcode::SelectI32; break;
      case Type::I64: select_op = Opcode::SelectI64; break;
      case Type::F32: select_op = Opcode::SelectF32; break;
      case Type::F64: select_op = Opcode::SelectF64; break;
      default: continue;
    }
    // Compute the candidate value into a temp, then select.
    const ValueId cond = term.s0;
    const ValueId tmp = fn.new_value(xt);
    IRInst compute = body;
    compute.dst = tmp;
    // select(tmp, x, cond): picks tmp when cond != 0.
    IRInst select{select_op, x, tmp, x, cond, 0, 0, 0};
    IRInst jump{Opcode::Jump, kNoValue, kNoValue, kNoValue, kNoValue, 0, j, 0};
    A.insts.pop_back();
    A.insts.push_back(compute);
    A.insts.push_back(select);
    A.insts.push_back(jump);
    // T becomes unreachable; leave it (DCE of blocks is unnecessary --
    // lowering emits it but nothing jumps there).
    ++converted;
  }
  return converted;
}


/// Constant LICM: hoists loop-invariant constant materializations (and
/// nothing else -- constants are always safe to speculate) to the loop
/// preheader. Real offline compilers do this; without it every simulated
/// target pays 2-3 rematerialization cycles per iteration, inflating the
/// apparent benefit of de-vectorized unrolling.
uint32_t run_licm_consts_pass(IRFunction& fn) {
  uint32_t hoisted = 0;
  const auto defs = fn.def_counts();
  const std::vector<Loop> loops = find_loops(fn);
  for (const Loop& loop : loops) {
    // Unique preheader: the single out-of-loop predecessor of the header.
    uint32_t preheader = UINT32_MAX;
    bool unique = true;
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
      if (loop.contains(b)) continue;
      for (uint32_t s : fn.successors(b)) {
        if (s != loop.header) continue;
        if (preheader != UINT32_MAX && preheader != b) unique = false;
        preheader = b;
      }
    }
    if (preheader == UINT32_MAX || !unique) continue;
    IRBlock& pre = fn.block(preheader);
    for (uint32_t b : loop.blocks) {
      IRBlock& blk = fn.block(b);
      for (size_t i = 0; i < blk.insts.size(); ++i) {
        const IRInst& inst = blk.insts[i];
        const bool is_const = inst.op == Opcode::ConstI32 ||
                              inst.op == Opcode::ConstI64 ||
                              inst.op == Opcode::ConstF32 ||
                              inst.op == Opcode::ConstF64;
        if (!is_const || inst.dst == kNoValue || defs[inst.dst] != 1) {
          continue;
        }
        // Insert before the preheader's terminator.
        pre.insts.insert(pre.insts.end() - 1, inst);
        blk.insts.erase(blk.insts.begin() + static_cast<long>(i));
        --i;
        ++hoisted;
      }
    }
  }
  return hoisted;
}

PassStats run_cleanup_fixpoint(IRFunction& fn, const PassOptions& options) {
  PassStats stats;
  for (int round = 0; round < 3; ++round) {
    uint32_t work = 0;
    work += run_coalesce_pass(fn);
    if (options.fold_constants) {
      const uint32_t f = run_fold_pass(fn);
      stats.folded += f;
      work += f;
    }
    if (options.simplify) {
      const uint32_t s = run_simplify_pass(fn);
      stats.simplified += s;
      work += s;
    }
    if (options.dce) {
      const uint32_t d = run_dce_pass(fn);
      stats.dce_removed += d;
      work += d;
    }
    if (work == 0) break;
  }
  return stats;
}

PassStats run_passes(IRFunction& fn, const PassOptions& options) {
  PassStats stats = run_cleanup_fixpoint(fn, options);
  if (options.simplify) {
    stats.simplified += run_licm_consts_pass(fn);
  }
  if (options.if_convert) {
    stats.if_converted = run_if_convert_pass(fn);
    if (options.dce) stats.dce_removed += run_dce_pass(fn);
  }
  return stats;
}

}  // namespace svc
