#include "ir/ir.h"

#include <sstream>

namespace svc {

IRFunction::IRFunction(std::string name, std::vector<Type> param_types,
                       Type ret)
    : name_(std::move(name)),
      ret_(ret),
      num_params_(static_cast<uint32_t>(param_types.size())) {
  value_types_ = std::move(param_types);
}

std::vector<uint32_t> IRFunction::successors(uint32_t b) const {
  const IRInst& term = blocks_[b].terminator();
  switch (term.op) {
    case Opcode::Jump:
      return {term.a};
    case Opcode::BranchIf:
      if (term.a == term.b) return {term.a};
      return {term.a, term.b};
    default:
      return {};
  }
}

std::vector<uint32_t> IRFunction::def_counts() const {
  std::vector<uint32_t> counts(value_types_.size(), 0);
  for (uint32_t p = 0; p < num_params_; ++p) counts[p] = 1;
  for (const IRBlock& block : blocks_) {
    for (const IRInst& inst : block.insts) {
      if (inst.dst != kNoValue) counts[inst.dst] += 1;
    }
  }
  return counts;
}

std::string IRFunction::str() const {
  std::ostringstream os;
  os << "irfn " << name_ << " (params " << num_params_ << ", values "
     << value_types_.size() << ")\n";
  auto val = [&](ValueId v) {
    return v == kNoValue ? std::string("_") : "%" + std::to_string(v);
  };
  for (size_t b = 0; b < blocks_.size(); ++b) {
    os << "bb" << b << ":\n";
    for (const IRInst& inst : blocks_[b].insts) {
      os << "  ";
      if (inst.dst != kNoValue) os << val(inst.dst) << " = ";
      os << op_mnemonic(inst.op);
      for (ValueId s : {inst.s0, inst.s1, inst.s2}) {
        if (s != kNoValue) os << ' ' << val(s);
      }
      const OpInfo& info = op_info(inst.op);
      if (info.imm == ImmKind::I64 || info.imm == ImmKind::F32 ||
          info.imm == ImmKind::F64 || info.imm == ImmKind::MemOff) {
        os << " #" << inst.imm;
      }
      if (info.imm == ImmKind::Block) os << " ->bb" << inst.a;
      if (info.imm == ImmKind::Block2) {
        os << " ->bb" << inst.a << "/bb" << inst.b;
      }
      if (info.imm == ImmKind::FuncIdx) os << " @" << inst.a;
      if (info.imm == ImmKind::Lane) os << " [" << inst.a << "]";
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace svc
