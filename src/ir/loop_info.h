// Natural-loop detection from back edges (target dominates source).
// The vectorizer only transforms the canonical single-body-block loops the
// MiniC frontend emits, but the analysis is general.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "ir/dominators.h"

namespace svc {

struct Loop {
  uint32_t header = 0;
  std::set<uint32_t> blocks;  // includes header
  std::vector<uint32_t> latches;  // sources of back edges

  [[nodiscard]] bool contains(uint32_t b) const { return blocks.count(b); }
};

/// All natural loops, innermost-first (by block count ascending).
[[nodiscard]] std::vector<Loop> find_loops(const IRFunction& fn);

}  // namespace svc
