// IR -> SVIL lowering: each IR value becomes a bytecode local; each IR
// instruction becomes push-operands / op / pop-result. The result always
// satisfies the SVIL structural rule (empty stack at block boundaries).
// This is the final offline step before annotations are attached and the
// module is serialized for deployment.
#pragma once

#include "bytecode/function.h"
#include "ir/ir.h"

namespace svc {

[[nodiscard]] Function lower_to_bytecode(const IRFunction& fn);

}  // namespace svc
