#include "ir/dependence.h"

namespace svc {
namespace {

/// Single def of `v` within the function if it has exactly one.
const IRInst* single_def(const IRFunction& fn, ValueId v) {
  const IRInst* found = nullptr;
  for (const IRBlock& block : fn.blocks()) {
    for (const IRInst& inst : block.insts) {
      if (inst.dst == v) {
        if (found) return nullptr;
        found = &inst;
      }
    }
  }
  return found;
}

bool defined_in_loop(const IRFunction& fn, const Loop& loop, ValueId v) {
  for (uint32_t b : loop.blocks) {
    for (const IRInst& inst : fn.block(b).insts) {
      if (inst.dst == v) return true;
    }
  }
  return false;
}

}  // namespace

std::optional<AccessPattern> decompose_access(const IRFunction& fn,
                                              const Loop& loop, ValueId addr,
                                              int64_t imm, uint32_t width,
                                              bool is_store, ValueId iv) {
  AccessPattern p;
  p.offset = imm;
  p.width = width;
  p.is_store = is_store;

  // addr must be AddI32(base, scaled) or AddI32(scaled, base).
  const IRInst* add = single_def(fn, addr);
  if (!add || add->op != Opcode::AddI32) return std::nullopt;

  // An index expression: iv + displacement (in iterations).
  struct Index {
    int64_t disp;
  };
  // Matches `side` = iv or iv + c / c + iv (single-def constant c).
  auto classify_index = [&](ValueId side) -> std::optional<Index> {
    if (side == iv) return Index{0};
    const IRInst* def = single_def(fn, side);
    if (!def || def->op != Opcode::AddI32) return std::nullopt;
    ValueId other = kNoValue;
    if (def->s0 == iv) other = def->s1;
    if (def->s1 == iv) other = def->s0;
    if (other == kNoValue) return std::nullopt;
    const IRInst* c = single_def(fn, other);
    if (c && c->op == Opcode::ConstI32) return Index{c->imm};
    return std::nullopt;
  };
  struct Scaled {
    int64_t scale;
    int64_t offset;  // bytes
  };
  // Matches `side` = index*k, index<<k or index itself.
  auto classify = [&](ValueId side) -> std::optional<Scaled> {
    if (const auto idx = classify_index(side)) {
      return Scaled{1, idx->disp};
    }
    const IRInst* def = single_def(fn, side);
    if (!def) return std::nullopt;
    if (def->op == Opcode::MulI32) {
      for (int flip = 0; flip < 2; ++flip) {
        const ValueId x = flip ? def->s1 : def->s0;
        const ValueId kv = flip ? def->s0 : def->s1;
        const auto idx = classify_index(x);
        if (!idx) continue;
        const IRInst* k = single_def(fn, kv);
        if (k && k->op == Opcode::ConstI32) {
          return Scaled{k->imm, idx->disp * k->imm};
        }
      }
      return std::nullopt;
    }
    if (def->op == Opcode::ShlI32) {
      const auto idx = classify_index(def->s0);
      if (!idx) return std::nullopt;
      const IRInst* k = single_def(fn, def->s1);
      if (k && k->op == Opcode::ConstI32 && k->imm >= 0 && k->imm < 31) {
        const int64_t scale = int64_t{1} << k->imm;
        return Scaled{scale, idx->disp * scale};
      }
    }
    return std::nullopt;
  };

  // Try (base=s0, scaled=s1) then the mirror.
  for (int flip = 0; flip < 2; ++flip) {
    const ValueId base = flip ? add->s1 : add->s0;
    const ValueId scaled = flip ? add->s0 : add->s1;
    const auto sc = classify(scaled);
    if (!sc) continue;
    // Base must be loop-invariant.
    if (defined_in_loop(fn, loop, base)) continue;
    p.base = base;
    p.scale = sc->scale;
    p.offset += sc->offset;
    return p;
  }
  return std::nullopt;
}

bool vectorization_safe(const std::vector<AccessPattern>& accesses,
                        uint32_t vf) {
  for (const AccessPattern& a : accesses) {
    // Unit stride: consecutive iterations touch consecutive elements.
    if (a.scale != a.width) return false;
    (void)vf;
  }
  // Store/store and store/load conflicts: only identical (base, offset,
  // width) pairs are permitted -- that is the read-modify-write of the
  // same element (y[i] = ... y[i] ...), which vectorizes safely.
  for (const AccessPattern& s : accesses) {
    if (!s.is_store) continue;
    for (const AccessPattern& o : accesses) {
      if (&s == &o) continue;
      if (o.base != s.base) continue;  // distinct bases assumed no-alias
      if (o.offset != s.offset || o.width != s.width) return false;
    }
  }
  return true;
}

}  // namespace svc
