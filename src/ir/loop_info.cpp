#include "ir/loop_info.h"

#include <algorithm>

namespace svc {

std::vector<Loop> find_loops(const IRFunction& fn) {
  const Dominators dom(fn);
  const auto preds = predecessors(fn);
  std::vector<Loop> loops;

  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    if (!dom.reachable(b)) continue;
    for (uint32_t s : fn.successors(b)) {
      if (!dom.dominates(s, b)) continue;  // not a back edge
      // Natural loop of back edge b -> s: s plus all blocks reaching b
      // without passing through s.
      Loop* loop = nullptr;
      for (Loop& l : loops) {
        if (l.header == s) {
          loop = &l;
          break;
        }
      }
      if (!loop) {
        loops.emplace_back();
        loop = &loops.back();
        loop->header = s;
        loop->blocks.insert(s);
      }
      loop->latches.push_back(b);
      std::vector<uint32_t> work = {b};
      while (!work.empty()) {
        const uint32_t x = work.back();
        work.pop_back();
        if (loop->blocks.insert(x).second) {
          for (uint32_t p : preds[x]) work.push_back(p);
        }
      }
    }
  }
  std::sort(loops.begin(), loops.end(), [](const Loop& a, const Loop& b) {
    return a.blocks.size() < b.blocks.size();
  });
  return loops;
}

}  // namespace svc
