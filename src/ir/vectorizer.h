// Split automatic vectorization, offline half (paper S4, [42]).
//
// The expensive analysis -- loop canonicalization, induction recognition,
// dependence testing, reduction classification -- runs here, in the
// offline compiler. The transformation result is expressed **in the
// bytecode itself** through the portable vector builtins (v128 ops), plus
// VectorizedLoop annotations, so the online step needs no loop analysis at
// all: a SIMD target selects the builtins 1:1 and a scalar target
// de-vectorizes them (jit/devectorize.h). That split is exactly Figure 1.
//
// Recognized shape (what the MiniC frontend emits for counted loops):
//   header:  t = lt_s(i, n); br_if t -> body, exit
//   body:    straight-line; loads/stores with addresses base + i*elem;
//            elementwise arithmetic; reduction updates r = op(r, e);
//            single induction update i = i + 1 after all memory accesses
//
// Strategies:
//   - map kernels: loads -> load.v128, elementwise ops -> vector ops,
//     stores -> store.v128 (vecadd, saxpy, dscal);
//   - widening add reductions over u8/u16: scalar accumulator updated
//     in-loop via v.rsum.u8/u16 (sum u8, sum u16);
//   - min/max (and f32/i32 add) reductions: vector accumulator seeded by
//     a splat of the incoming value, merged by a horizontal reduce in the
//     vector epilogue (max u8);
//   - the original scalar loop remains as the remainder epilogue.
//
// Alias assumption: distinct pointer-typed bases do not alias (DESIGN.md
// S2 records this substitution for the paper's language-level analysis).
#pragma once

#include "ir/ir.h"

namespace svc {

struct VectorizeStats {
  uint32_t loops_considered = 0;
  uint32_t loops_vectorized = 0;
  uint32_t widening_reductions = 0;
  uint32_t accumulator_reductions = 0;
  uint32_t map_stores = 0;
  // Per vectorized loop: (vector header block, VF) for annotations.
  std::vector<std::pair<uint32_t, uint32_t>> vectorized_headers;
};

/// Vectorizes every eligible innermost loop of `fn` in place.
VectorizeStats vectorize(IRFunction& fn);

}  // namespace svc
