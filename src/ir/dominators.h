// Iterative dominator analysis (Cooper-Harvey-Kennedy style simplified)
// over the IR CFG. Consumed by natural-loop detection.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.h"

namespace svc {

class Dominators {
 public:
  explicit Dominators(const IRFunction& fn);

  /// Immediate dominator of `b` (entry's idom is itself).
  [[nodiscard]] uint32_t idom(uint32_t b) const { return idom_[b]; }
  /// True when `a` dominates `b` (reflexive).
  [[nodiscard]] bool dominates(uint32_t a, uint32_t b) const;
  [[nodiscard]] bool reachable(uint32_t b) const { return reachable_[b]; }

 private:
  std::vector<uint32_t> idom_;
  std::vector<bool> reachable_;
};

/// Predecessor lists for every block.
[[nodiscard]] std::vector<std::vector<uint32_t>> predecessors(
    const IRFunction& fn);

}  // namespace svc
