// Offline half of the unified pass pipeline: the scalar optimizations of
// ir/passes.h plus the split vectorizer, registered as named passes in a
// process-wide PassManager. The offline compiler (driver/) and the
// iterative-compilation tuner (runtime/iterative.h) drive everything
// through specs built here, so the optimization schedule is data.
//
// Registered passes:
//   coalesce       copy coalescing (canonicalizes frontend assignments)
//   fold           constant folding
//   simplify       algebraic identities + mul->shift strength reduction
//   dce            dead code elimination (internal fixpoint)
//   licm           loop-invariant constant hoisting
//   if_convert     branchy triangles -> selects
//   cleanup        fixpoint of coalesce+fold+simplify+dce (<= 3 rounds)
//   cleanup_nosimp same fixpoint without simplify (ablation arm)
//   vectorize      split automatic vectorization (records loop headers in
//                  the context for VectorizedLoop annotations)
#pragma once

#include "ir/ir.h"
#include "ir/passes.h"
#include "ir/vectorizer.h"
#include "support/pass_manager.h"

namespace svc {

/// Cross-pass outputs of one offline pipeline run over one function.
struct IRPipelineContext {
  /// Accumulated by the "vectorize" pass; the offline compiler turns
  /// vectorized_headers into VectorizedLoop annotations after lowering.
  VectorizeStats vec_stats;
};

using IRPassManager = PassManager<IRFunction, IRPipelineContext>;

/// The process-wide offline pass registry (built once, immutable after).
[[nodiscard]] const IRPassManager& ir_pass_manager();

/// Spec equivalent of run_passes(options): cleanup fixpoint, LICM when
/// simplify is on, then optional if-conversion (+ final DCE).
[[nodiscard]] PipelineSpec ir_cleanup_spec(const PassOptions& options);

/// Spec equivalent of the full offline schedule: cleanup, then -- when
/// `vectorize` -- the vectorizer followed by a second cleanup round.
/// compile_source() runs this when no explicit pipeline is given, so
/// running it through the manager reproduces the pre-pipeline compiler
/// bit for bit.
[[nodiscard]] PipelineSpec default_ir_pipeline(const PassOptions& options,
                                               bool vectorize);

}  // namespace svc
