#include "support/rng.h"

// Header-only implementation; this TU exists so the target has a stable
// object for the library and a place for future non-inline additions.
