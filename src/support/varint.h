// LEB128 variable-length integer codec used by the bytecode serializer and
// the annotation records. Unsigned and zig-zag signed variants.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace svc {

/// Appends `value` to `out` as unsigned LEB128.
void write_uleb(std::vector<uint8_t>& out, uint64_t value);

/// Appends `value` to `out` as zig-zag-encoded signed LEB128.
void write_sleb(std::vector<uint8_t>& out, int64_t value);

/// Cursor over a byte buffer with bounds-checked LEB reads. All reads
/// return std::nullopt on truncation/overlong input instead of trapping,
/// so the deserializer can reject corrupt modules gracefully.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<uint64_t> read_uleb();
  [[nodiscard]] std::optional<int64_t> read_sleb();
  [[nodiscard]] std::optional<uint8_t> read_byte();
  /// Reads exactly `n` raw bytes; nullopt if fewer remain.
  [[nodiscard]] std::optional<std::span<const uint8_t>> read_bytes(size_t n);

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace svc
