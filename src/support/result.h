// Result<T>: the error channel of the embeddable API (api/svc.h). A
// Result either holds a value or a non-empty list of structured
// Diagnostics -- it replaces the optional-plus-DiagnosticEngine-out-param
// and the fatal-on-error conventions of the early drivers, so library
// code never aborts on user input and an embedder gets machine-readable
// diagnostics (severity, source location, message) from every entry
// point.
//
// Reading a value out of a failed Result (or diagnostics out of a
// successful one's error accessors) is an internal invariant break and
// fatals; check ok() first. Tests and benches that only ever feed
// known-good input use the one-line value_or_die() helpers in
// tests/test_util.h / bench/bench_util.h.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/diagnostics.h"

namespace svc {

namespace detail {

/// Failure payloads are normalized so error() never returns an empty
/// list: a failure constructed without any diagnostic still explains
/// itself.
[[nodiscard]] inline std::vector<Diagnostic> normalize_failure(
    std::vector<Diagnostic> diags) {
  if (diags.empty()) {
    diags.push_back({Severity::Error, {}, "unspecified error"});
  }
  return diags;
}

}  // namespace detail

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success. Implicit, so `return module;` reads naturally.
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  /// Failure carrying every diagnostic of the failed operation (errors
  /// plus any accompanying warnings/notes, in emission order).
  static Result failure(std::vector<Diagnostic> diags) {
    return Result(detail::normalize_failure(std::move(diags)));
  }

  /// Single-message failure (location optional).
  static Result failure(std::string message, SourceLoc loc = {}) {
    std::vector<Diagnostic> diags;
    diags.push_back({Severity::Error, loc, std::move(message)});
    return Result(std::move(diags));
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return ok(); }

  /// The held value; aborts with the failure's diagnostics when called on
  /// a failed Result (check ok() first when failure is a real
  /// possibility).
  [[nodiscard]] T& value() & {
    require_value();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::move(*value_);
  }

  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }

  /// The structured diagnostics behind a failure (never empty).
  [[nodiscard]] const std::vector<Diagnostic>& error() const {
    if (ok()) fatal("Result::error() on success");
    return diags_;
  }

  /// Failure diagnostics rendered one per line (for messages and logs).
  [[nodiscard]] std::string error_text() const {
    return render_diagnostics(error());
  }

 private:
  explicit Result(std::vector<Diagnostic> diags) : diags_(std::move(diags)) {}

  void require_value() const {
    if (!ok()) {
      fatal("Result::value() on failure:\n" +
            render_diagnostics(diags_));
    }
  }

  std::optional<T> value_;
  std::vector<Diagnostic> diags_;
};

/// Operations with no payload (loads, validations) report through
/// Result<void>: same contract, no value accessors.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;  // success

  static Result failure(std::vector<Diagnostic> diags) {
    return Result(detail::normalize_failure(std::move(diags)));
  }
  static Result failure(std::string message, SourceLoc loc = {}) {
    std::vector<Diagnostic> diags;
    diags.push_back({Severity::Error, loc, std::move(message)});
    return Result(std::move(diags));
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] explicit operator bool() const { return ok_; }

  [[nodiscard]] const std::vector<Diagnostic>& error() const {
    if (ok_) fatal("Result::error() on success");
    return diags_;
  }
  [[nodiscard]] std::string error_text() const {
    return render_diagnostics(error());
  }

 private:
  explicit Result(std::vector<Diagnostic> diags)
      : diags_(std::move(diags)), ok_(false) {}

  std::vector<Diagnostic> diags_;
  bool ok_ = true;
};

}  // namespace svc
