// Lightweight named counters/timers shared by the compiler passes, the JIT
// and the simulators. Collected per-pipeline-run and dumped into bench
// tables (e.g. "spills", "jit_cycles", "annotation_bytes").
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace svc {

class Statistics {
 public:
  void add(const std::string& key, int64_t delta) { counters_[key] += delta; }
  void set(const std::string& key, int64_t value) { counters_[key] = value; }

  [[nodiscard]] int64_t get(const std::string& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return counters_.count(key) != 0;
  }

  [[nodiscard]] const std::map<std::string, int64_t>& all() const {
    return counters_;
  }

  /// "key=value" lines, sorted by key.
  [[nodiscard]] std::string dump() const;

  void merge(const Statistics& other);
  void clear() { counters_.clear(); }

 private:
  std::map<std::string, int64_t> counters_;
};

/// Scoped wall-clock timer: adds the elapsed microseconds to the counter
/// `key` on destruction, so timer keys read as plain counters. Used by the
/// PassManager for per-pass wall time.
class StatTimer {
 public:
  StatTimer(Statistics& stats, std::string key)
      : stats_(stats),
        key_(std::move(key)),
        start_(std::chrono::steady_clock::now()) {}
  ~StatTimer() {
    const auto end = std::chrono::steady_clock::now();
    stats_.add(key_, std::chrono::duration_cast<std::chrono::microseconds>(
                         end - start_)
                         .count());
  }
  StatTimer(const StatTimer&) = delete;
  StatTimer& operator=(const StatTimer&) = delete;

 private:
  Statistics& stats_;
  std::string key_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace svc
