// Fixed-size worker pool executing background jobs with futures. The
// deployment runtime uses it for tier-up JIT compiles (code_cache.h /
// online_compiler.h): enqueue a compile, keep interpreting, poll the
// future. Deliberately minimal -- a FIFO queue, no priorities, no work
// stealing -- because compile jobs are coarse and rare.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/diagnostics.h"

namespace svc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Finishes every queued job, then joins the workers. No job future is
  /// ever broken by shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for execution on a worker; the returned future resolves
  /// with its result. Safe to call from any thread, including workers.
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) fatal("ThreadPool::submit after shutdown");
      queue_.push([task] { (*task)(); });
      ++outstanding_;
    }
    ready_.notify_one();
    return future;
  }

  /// Blocks until every submitted job has finished (queue drained and no
  /// worker mid-job). Jobs may be submitted again afterwards. Must not be
  /// called from a worker (it would wait on itself).
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t outstanding_ = 0;  // queued + running
  bool stopped_ = false;
};

}  // namespace svc
