#include "support/statistics.h"

namespace svc {

std::string Statistics::dump() const {
  std::string out;
  for (const auto& [key, value] : counters_) {
    out += key;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

void Statistics::merge(const Statistics& other) {
  for (const auto& [key, value] : other.counters_) {
    counters_[key] += value;
  }
}

}  // namespace svc
