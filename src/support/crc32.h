// CRC-32 (IEEE 802.3 polynomial) used to checksum serialized modules so
// the loader can reject bit-rotted or truncated deployment images.
#pragma once

#include <cstdint>
#include <span>

namespace svc {

[[nodiscard]] uint32_t crc32(std::span<const uint8_t> data);

}  // namespace svc
