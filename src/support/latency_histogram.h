// Concurrent latency histogram: power-of-two buckets (the same shape the
// runtime profile uses for loop trip counts) over lock-free atomic
// counters, so the serving layer's workers can record every completed
// request without serializing on a stats mutex.
//
// record() files a sample under bucket bit_width(value): bucket 0 holds
// the value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1]. Percentiles are
// therefore bucket-resolution approximations (reported as the geometric
// midpoint of the winning bucket) -- exactly what a p50/p99 line in a
// bench table needs, at a cost the hot path never notices.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace svc {

/// Thread-safety: record() is safe from any thread (relaxed atomics, no
/// locks). snapshot() is also safe at any time, but a snapshot taken
/// while writers are active may tear across counters (count vs. sum);
/// all counters are monotone, and a snapshot taken after the writers
/// quiesce (e.g. Server::drain) is exact.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  /// Immutable copy of the histogram state, with derived statistics.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  // 0 when count == 0
    uint64_t max = 0;
    std::array<uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Value at quantile `q` in [0, 1], to bucket resolution: the
    /// geometric midpoint of the bucket holding the q-th sample, clamped
    /// to the observed [min, max]. 0 when empty.
    [[nodiscard]] uint64_t percentile(double q) const;

    /// Accumulates `other` into this snapshot: buckets, count and sum
    /// add, min/max widen. Because the buckets are position-aligned
    /// (bucket b always holds [2^(b-1), 2^b - 1]), the merged snapshot
    /// is exactly the histogram of the combined sample stream --
    /// percentiles over a merge are as accurate as over a single
    /// recorder (bucket resolution), which is what lets a cluster fold
    /// per-shard latency into one fleet-wide p50/p99.
    void merge(const Snapshot& other);
  };

  /// Files one sample. Wait-free; safe from any thread.
  void record(uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  static size_t bucket_of(uint64_t value) {
    // bit_width is 64 for values with the top bit set; clamp so the last
    // bucket absorbs them instead of indexing past the array.
    return std::min(static_cast<size_t>(std::bit_width(value)), kBuckets - 1);
  }

  void update_min(uint64_t value) {
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  void update_max(uint64_t value) {
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace svc
