// Deterministic splitmix64-based RNG. Used by workload generators, the
// property-based tests and the iterative-compilation driver, where run-to-
// run reproducibility matters more than statistical perfection.
#pragma once

#include <cstdint>

namespace svc {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits (splitmix64).
  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(
                    static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform float in [0, 1).
  float next_f32() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  double next_f64() {
    return static_cast<double>(next_u64() >> 11) *
           (1.0 / 9007199254740992.0);
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  /// Independent deterministic substream `stream` of this RNG's seed
  /// state: fork(k) depends only on (current state, k), never advances
  /// this RNG, and distinct k give uncorrelated streams. The fuzz
  /// harness derives per-program / per-purpose streams this way so
  /// adding a draw in one place cannot shift every later program.
  [[nodiscard]] Rng fork(uint64_t stream) const {
    return Rng(mix(state_ ^ mix(stream + 0x632be59bd9b4e019ull)));
  }

  /// splitmix64 finalizer as a pure function -- the repo's canonical way
  /// to turn an arbitrary 64-bit label into a seed.
  [[nodiscard]] static uint64_t mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

}  // namespace svc
