#include "support/varint.h"

namespace svc {

void write_uleb(std::vector<uint8_t>& out, uint64_t value) {
  do {
    uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    out.push_back(byte);
  } while (value != 0);
}

void write_sleb(std::vector<uint8_t>& out, int64_t value) {
  // Zig-zag: maps small-magnitude negatives to small unsigned values.
  const uint64_t zz =
      (static_cast<uint64_t>(value) << 1) ^
      static_cast<uint64_t>(value >> 63);
  write_uleb(out, zz);
}

std::optional<uint64_t> ByteReader::read_uleb() {
  uint64_t result = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= data_.size()) return std::nullopt;
    if (shift >= 64) return std::nullopt;  // overlong encoding
    const uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return result;
}

std::optional<int64_t> ByteReader::read_sleb() {
  const auto zz = read_uleb();
  if (!zz) return std::nullopt;
  return static_cast<int64_t>((*zz >> 1) ^ (~(*zz & 1) + 1));
}

std::optional<uint8_t> ByteReader::read_byte() {
  if (pos_ >= data_.size()) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::span<const uint8_t>> ByteReader::read_bytes(size_t n) {
  if (remaining() < n) return std::nullopt;
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace svc
