#include "support/diagnostics.h"

#include <cstdio>
#include <cstdlib>

namespace svc {

std::string SourceLoc::str() const {
  if (!valid()) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(column);
}

std::string Diagnostic::str() const {
  const char* sev = "error";
  switch (severity) {
    case Severity::Note: sev = "note"; break;
    case Severity::Warning: sev = "warning"; break;
    case Severity::Error: sev = "error"; break;
  }
  std::string out;
  if (loc.valid()) {
    out += loc.str();
    out += ": ";
  }
  out += sev;
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  diags_.push_back({Severity::Error, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  diags_.push_back({Severity::Warning, loc, std::move(message)});
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  diags_.push_back({Severity::Note, loc, std::move(message)});
}

void DiagnosticEngine::report(Diagnostic diag) {
  if (diag.severity == Severity::Error) ++error_count_;
  diags_.push_back(std::move(diag));
}

std::string render_diagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += d.str();
    out += '\n';
  }
  return out;
}

std::string DiagnosticEngine::dump() const {
  return render_diagnostics(diags_);
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

void fatal(std::string_view message) {
  std::fprintf(stderr, "svc fatal: %.*s\n", static_cast<int>(message.size()),
               message.data());
  std::abort();
}

}  // namespace svc
