#include "support/latency_histogram.h"

#include <algorithm>

namespace svc {

uint64_t LatencyHistogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample, 1-based; q = 0 asks for the minimum.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Bucket 0 holds the value 0; bucket b holds [2^(b-1), 2^b - 1].
      if (b == 0) return min;  // only 0s land here, so min is 0
      const uint64_t lo = uint64_t{1} << (b - 1);
      // The last bucket absorbs everything with the top bits set.
      const uint64_t hi =
          (b == kBuckets - 1) ? max : (uint64_t{1} << b) - 1;
      const uint64_t mid = lo + (hi - lo) / 2;
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

void LatencyHistogram::Snapshot::merge(const Snapshot& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (snap.count == 0 || min == UINT64_MAX) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace svc
