// Bounded multi-producer/multi-consumer queue: the request channel of the
// serving layer (serve/server.h). One instance backs each core's request
// queue; any number of client threads push, any number of worker threads
// pop. Deliberately mutex-based -- request granularity is a whole
// simulated kernel execution, so queue overhead is noise and the simple
// implementation stays ThreadSanitizer-clean.
//
// The bound is the admission-control watermark: try_push never blocks and
// never grows the queue past `capacity`, it reports "full" and lets the
// caller turn that into a Result error instead of unbounded growth.
// close() flips the queue into shutdown mode: pushes fail, draining pops
// still succeed, so every accepted item can be completed before teardown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace svc {

/// Thread-safety: every member is safe from any thread. Items are moved
/// in on (successful) push and moved out on pop; an item refused by a
/// full or closed queue is handed back to the caller, untouched.
template <typename T>
class BoundedMpmcQueue {
 public:
  /// A zero capacity would refuse every push; callers validate, this
  /// clamps defensively.
  explicit BoundedMpmcQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Enqueues `item`, or -- when the queue is full or closed -- refuses
  /// and returns the item to the caller (an engaged optional is the
  /// rejection). Never blocks.
  [[nodiscard]] std::optional<T> try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return std::optional<T>(std::move(item));
      }
      items_.push_back(std::move(item));
      if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    }
    ready_.notify_one();
    return std::nullopt;
  }

  /// Blocks until an item is available (moved into `out`, returns true)
  /// or the queue is closed and drained (returns false).
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Moves up to `max_items` queued items into `out` (appended) without
  /// blocking; returns how many were taken. This is the batching pop: one
  /// call hands a worker everything it will coalesce into one drain.
  size_t try_pop_batch(std::vector<T>& out, size_t max_items) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t taken = 0;
    while (taken < max_items && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  /// Shuts the intake: every later try_push fails, pending items remain
  /// poppable, blocked pop() calls wake. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] size_t capacity() const { return capacity_; }

  /// High-water mark of the queue depth since construction -- how close
  /// traffic came to the admission-control bound.
  [[nodiscard]] uint64_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_depth_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  uint64_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace svc
