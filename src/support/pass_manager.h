// The unified pass-pipeline subsystem: both halves of the split pipeline
// (offline IR passes and online JIT phases) are named, registrable passes
// run by a PassManager from a PipelineSpec -- the pipeline is *data*, not
// hard-wired code. This is what lets the iterative-compilation driver
// search pipeline specs, benches report per-pass wall time, and later work
// cache or parallelize per-configuration compilation.
//
// A PipelineSpec is an ordered list of pass names and round-trips through
// its string form ("fold,simplify,dce,if_convert,vectorize"). A
// PassManager<Unit, Context> owns the registry for one pipeline family
// (Unit = IRFunction offline, MFunction online) and runs a spec over one
// unit, timing every pass and collecting its Statistics delta.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.h"
#include "support/statistics.h"

namespace svc {

/// An ordered pipeline of pass names. Parsed from / rendered to a
/// comma-separated string; `parse(s.str()) == s` for every valid spec.
class PipelineSpec {
 public:
  PipelineSpec() = default;
  explicit PipelineSpec(std::vector<std::string> names)
      : names_(std::move(names)) {}

  /// Parses "a,b,c" (whitespace around names is trimmed). Returns nullopt
  /// on empty segments ("a,,b") or names with characters outside
  /// [A-Za-z0-9_.-]. The empty string parses to the empty spec.
  static std::optional<PipelineSpec> parse(std::string_view text);

  /// Comma-joined names; inverse of parse().
  [[nodiscard]] std::string str() const;

  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  [[nodiscard]] bool empty() const { return names_.empty(); }
  [[nodiscard]] size_t size() const { return names_.size(); }
  [[nodiscard]] bool contains(std::string_view name) const;

  void append(std::string name) { names_.push_back(std::move(name)); }
  void append(const PipelineSpec& tail);

  friend bool operator==(const PipelineSpec& a, const PipelineSpec& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
};

/// One executed pass: what ran, how long it took, what it reported.
struct PassRunInfo {
  std::string name;
  double seconds = 0.0;
  Statistics delta;
};

/// Result of PassManager::run over one unit.
struct PipelineRunReport {
  std::vector<PassRunInfo> passes;
  double total_seconds = 0.0;
};

/// Registry + runner for one pipeline family. `Unit` is the object being
/// transformed (IRFunction, MFunction); `Context` carries the immutable
/// surroundings (target description, source function, options) plus any
/// cross-pass outputs (e.g. the vectorizer's loop annotations).
template <typename Unit, typename Context>
class PassManager {
 public:
  /// A pass mutates `unit` and reports named counters into `stats`.
  using PassFn = std::function<void(Unit& unit, Context& ctx,
                                    Statistics& stats)>;

  /// `timer_prefix` namespaces the per-pass wall-time counters the runner
  /// adds to the aggregate Statistics ("<prefix><pass>", microseconds).
  explicit PassManager(std::string timer_prefix = "pass_us.")
      : timer_prefix_(std::move(timer_prefix)) {}

  void register_pass(std::string name, std::string description, PassFn fn) {
    if (index_.count(name) != 0) {
      fatal("PassManager: duplicate pass '" + name + "'");
    }
    index_[name] = passes_.size();
    passes_.push_back({std::move(name), std::move(description),
                       std::move(fn)});
  }

  [[nodiscard]] bool has_pass(std::string_view name) const {
    return index_.count(std::string(name)) != 0;
  }

  /// Registered pass names, in registration order.
  [[nodiscard]] std::vector<std::string> pass_names() const {
    std::vector<std::string> out;
    out.reserve(passes_.size());
    for (const auto& p : passes_) out.push_back(p.name);
    return out;
  }

  [[nodiscard]] std::string_view pass_description(
      std::string_view name) const {
    const auto it = index_.find(std::string(name));
    if (it == index_.end()) fatal("PassManager: unknown pass");
    return passes_[it->second].description;
  }

  /// First name in `spec` with no registered pass, if any. Callers turn
  /// this into a DiagnosticEngine error; run() treats unknown names as an
  /// internal invariant break.
  [[nodiscard]] std::optional<std::string> first_unknown(
      const PipelineSpec& spec) const {
    for (const std::string& name : spec.names()) {
      if (!has_pass(name)) return name;
    }
    return std::nullopt;
  }

  /// Runs `spec` over `unit` in order. Every pass is wall-clock timed; its
  /// Statistics delta and its "<timer_prefix><name>" time land in
  /// `aggregate` (when given) and in the returned report. A name may
  /// appear any number of times; unknown names are fatal -- validate with
  /// first_unknown() on untrusted specs.
  PipelineRunReport run(const PipelineSpec& spec, Unit& unit, Context& ctx,
                        Statistics* aggregate = nullptr) const {
    PipelineRunReport report;
    for (const std::string& name : spec.names()) {
      const auto it = index_.find(name);
      if (it == index_.end()) {
        fatal("PassManager: unknown pass '" + name + "' in pipeline");
      }
      PassRunInfo info;
      info.name = name;
      {
        StatTimer timer(info.delta, timer_prefix_ + name);
        passes_[it->second].fn(unit, ctx, info.delta);
      }
      info.seconds =
          static_cast<double>(info.delta.get(timer_prefix_ + name)) * 1e-6;
      report.total_seconds += info.seconds;
      if (aggregate) aggregate->merge(info.delta);
      report.passes.push_back(std::move(info));
    }
    return report;
  }

 private:
  struct Entry {
    std::string name;
    std::string description;
    PassFn fn;
  };

  std::vector<Entry> passes_;
  std::map<std::string, size_t> index_;
  std::string timer_prefix_;
};

}  // namespace svc
