// Diagnostic engine: collects errors/warnings with source locations.
// Used by the frontend, the verifier and the loaders. Never throws on
// user-input errors; fatal() is reserved for internal invariant breaks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace svc {

/// A position in a MiniC source buffer (1-based line/column; 0 = unknown).
struct SourceLoc {
  uint32_t line = 0;
  uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const;
};

enum class Severity : uint8_t { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Diagnostics rendered one per line -- the single formatter behind
/// DiagnosticEngine::dump() and Result<T>::error_text().
[[nodiscard]] std::string render_diagnostics(
    const std::vector<Diagnostic>& diags);

/// Accumulates diagnostics for one compilation. Cheap to move around by
/// reference; owned by the driver.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  /// Appends an already-built diagnostic (error counting included) --
  /// how Result<T> failures (support/result.h) are replayed into an
  /// engine by the deprecated out-param shims.
  void report(Diagnostic diag);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics rendered one per line (for tests and CLI output).
  [[nodiscard]] std::string dump() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  size_t error_count_ = 0;
};

/// Aborts with a message. Only for internal invariant violations --
/// malformed *user* input must go through DiagnosticEngine instead.
[[noreturn]] void fatal(std::string_view message);

}  // namespace svc
