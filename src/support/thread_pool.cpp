#include "support/thread_pool.h"

namespace svc {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopped and fully drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
      if (outstanding_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace svc
