#include "support/pass_manager.h"

namespace svc {
namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<PipelineSpec> PipelineSpec::parse(std::string_view text) {
  std::vector<std::string> names;
  if (trim(text).empty()) return PipelineSpec{};
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string_view raw =
        text.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    const std::string_view name = trim(raw);
    if (name.empty()) return std::nullopt;
    for (char c : name) {
      if (!valid_name_char(c)) return std::nullopt;
    }
    names.emplace_back(name);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return PipelineSpec{std::move(names)};
}

std::string PipelineSpec::str() const {
  std::string out;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i != 0) out += ',';
    out += names_[i];
  }
  return out;
}

bool PipelineSpec::contains(std::string_view name) const {
  for (const std::string& n : names_) {
    if (n == name) return true;
  }
  return false;
}

void PipelineSpec::append(const PipelineSpec& tail) {
  names_.insert(names_.end(), tail.names_.begin(), tail.names_.end());
}

}  // namespace svc
