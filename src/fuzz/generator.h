// Deterministic generator of random well-typed MiniC programs -- the
// workload half of the differential fuzz harness (docs/FUZZING.md). Every
// program is produced from one 64-bit seed via forked Rng substreams
// (support/rng.h), so `generate_program(seed)` is bit-stable across runs,
// machines and unrelated generator call sites.
//
// Generated programs are constructed to terminate trap-free under every
// correct implementation:
//   * all loops are counted (`while (i < TRIP)` with TRIP <= 64, nesting
//     bounded) and a static cost model keeps the whole program under a
//     dynamic-step budget;
//   * all pointer accesses index fixed 64-element regions with provably
//     in-bounds index expressions;
//   * integer division/modulo only by positive literal constants (no
//     DivideByZero / IntegerOverflow traps); i64 avoids the operators
//     MiniC does not define for it (%, <=, >=); float->int casts are
//     never emitted (out-of-range behavior is not defined).
// Everything else -- arithmetic wrap, mixed scalar widths, calls into
// earlier helper functions, vectorizable kernel loops over u8/u16/i32/f32
// regions -- is fair game, which is exactly the surface where the tiers,
// targets and pipeline configurations have to agree (src/fuzz/differ.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vm/memory.h"
#include "vm/value.h"

namespace svc::fuzz {

/// Knobs bounding what the generator may produce. Defaults are sized so
/// one program's oracle run costs well under a millisecond; the long-run
/// fuzz mode raises them.
struct GenOptions {
  uint32_t max_helpers = 3;      // helper functions before the entry
  uint32_t max_stmts = 8;        // statements per block body
  uint32_t max_loop_depth = 3;   // loop nesting bound
  uint32_t max_trip = 24;        // trip count of non-kernel loops
  uint64_t cost_budget = 1u << 18;  // static dynamic-step estimate bound
  size_t memory_bytes = 1u << 20;   // linear memory the args assume
};

/// One pointer argument's backing region in linear memory. Regions are
/// laid out at fixed 1 KiB strides from address 1024 and hold 64 typed
/// elements, so every generated index expression is in bounds by
/// construction.
struct PtrRegion {
  uint32_t addr = 0;
  uint32_t elems = 0;
  char elem[4] = {0};  // "u8" | "u16" | "i32" | "f32"

  [[nodiscard]] uint32_t elem_size() const;
};

/// One entry-function argument: the Value passed to run(), plus the
/// region description when the parameter is a pointer.
struct ArgSpec {
  Value value;
  bool is_ptr = false;
  PtrRegion region;
};

/// Static shape summary of a generated program; drives the cell-matrix
/// bounding in src/fuzz/cells.h (more loops -> more pipeline cells, high
/// cost -> no tier-2 cells, ...).
struct ProgramFeatures {
  uint32_t functions = 0;
  uint32_t loops = 0;
  uint32_t kernel_loops = 0;  // unit-stride 64-element loops (vectorizable)
  uint32_t max_loop_depth = 0;
  uint32_t calls = 0;
  uint32_t stmts = 0;
  uint64_t est_cost = 0;  // static dynamic-step estimate
  bool uses_f32 = false;
  bool uses_i64 = false;
};

/// A self-contained differential test case: source, entry point,
/// arguments, and the deterministic recipe for the initial memory image.
/// Also the parsed form of a corpus file (render/parse below), so a
/// committed reproducer replays without the generator that made it.
struct GeneratedProgram {
  uint64_t seed = 0;
  uint64_t fill_seed = 0;  // memory-image substream (stable across edits)
  std::string source;
  std::string entry;
  std::vector<ArgSpec> args;
  ProgramFeatures features;
  // Optional cell hint carried by corpus files: ';'-separated canonical
  // cell keys (src/fuzz/cells.h) to replay against. Empty = caller picks.
  std::string cells_hint;

  /// Writes every pointer region's deterministic fill (derived from
  /// fill_seed, independent per region) into `mem`.
  void init_memory(Memory& mem) const;

  /// The argument Values in call order.
  [[nodiscard]] std::vector<Value> arg_values() const;
};

/// Generates one program from `seed`. Pure: equal (seed, options) give
/// byte-equal results.
[[nodiscard]] GeneratedProgram generate_program(uint64_t seed,
                                                const GenOptions& options = {});

/// Renders `program` as a corpus file: a `// key: value` header block,
/// a `// ---` separator, then the source verbatim. parse_corpus_file
/// inverts it.
[[nodiscard]] std::string render_corpus_file(const GeneratedProgram& program);

/// Parses a corpus file back into a replayable program. Returns nullopt
/// (never dies) on a malformed header.
[[nodiscard]] std::optional<GeneratedProgram> parse_corpus_file(
    std::string_view text);

/// Deterministically damages `source` into a near-miss program (dropped
/// or duplicated characters, stray punctuation, truncation, keyword
/// fragments). Used to fuzz the frontend: the result must be *rejected
/// gracefully* (a Result error), never crash the compiler.
[[nodiscard]] std::string mutate_source(const std::string& source,
                                        uint64_t seed);

}  // namespace svc::fuzz
