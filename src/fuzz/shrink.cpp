#include "fuzz/shrink.h"

#include <algorithm>

#include "driver/offline_compiler.h"

namespace svc::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      out.push_back(text.substr(pos));
      break;
    }
    out.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return out;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// The reduction predicate: a candidate source is interesting iff it
// still compiles, its entry still has the recorded signature (so the
// recorded arguments remain applicable), and the reduced cell still
// disagrees with the oracle on it.
class Predicate {
 public:
  Predicate(const GeneratedProgram& original, const Cell& cell,
            DiffRunner& runner)
      : original_(original), cell_(cell), runner_(runner) {
    if (Result<Module> m = compile_module(original.source); m.ok()) {
      const Module& mod = m.value();
      if (const auto idx = mod.find_function(original.entry)) {
        entry_sig_ = mod.function(*idx).sig();
      }
    }
  }

  bool still_diverges(const std::string& candidate_source,
                      std::string* detail_out = nullptr) {
    Result<Module> m = compile_module(candidate_source);
    if (!m.ok()) return false;
    const auto idx = m.value().find_function(original_.entry);
    if (!idx || !(m.value().function(*idx).sig() == entry_sig_)) return false;

    GeneratedProgram candidate = original_;
    candidate.source = candidate_source;
    const auto problem = runner_.run_cell(candidate, cell_);
    if (problem && detail_out) *detail_out = *problem;
    return problem.has_value();
  }

 private:
  const GeneratedProgram& original_;
  Cell cell_;
  DiffRunner& runner_;
  FunctionSig entry_sig_;
};

// Classic ddmin over lines: try dropping ever-finer chunks, restarting
// at coarse granularity after every successful reduction, then finish
// with a greedy single-line sweep (catches stragglers ddmin's chunk
// boundaries miss).
std::vector<std::string> ddmin(std::vector<std::string> lines,
                               Predicate& pred) {
  size_t n = 2;
  while (lines.size() >= 2) {
    const size_t chunk = (lines.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < lines.size(); start += chunk) {
      std::vector<std::string> candidate;
      candidate.reserve(lines.size());
      for (size_t i = 0; i < lines.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(lines[i]);
      }
      if (candidate.empty()) continue;
      if (pred.still_diverges(join_lines(candidate))) {
        lines = std::move(candidate);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= lines.size()) break;
      n = std::min(lines.size(), n * 2);
    }
  }
  // Greedy singles until a fixed point.
  bool changed = true;
  while (changed && lines.size() > 1) {
    changed = false;
    for (size_t i = 0; i < lines.size(); ++i) {
      std::vector<std::string> candidate = lines;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (pred.still_diverges(join_lines(candidate))) {
        lines = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return lines;
}

}  // namespace

std::optional<ShrinkResult> shrink(const GeneratedProgram& program,
                                   const std::vector<Cell>& cells,
                                   DiffRunner& runner) {
  // Phase 1: cell-set reduction -- find one cell that reproduces alone.
  std::optional<Cell> reduced_cell;
  for (const Cell& c : cells) {
    if (runner.run_cell(program, c)) {
      reduced_cell = c;
      break;
    }
  }
  if (!reduced_cell) return std::nullopt;

  // Phase 2: ddmin the source against that one cell. Reduction
  // candidates routinely delete an induction-variable increment and
  // loop forever, so the predicate runs under a much tighter step
  // budget than the fuzz loop: runaway candidates trap in milliseconds
  // and count as uninteresting. Generated programs' cost model keeps
  // genuine reproducers far below even this bound.
  DiffOptions lo = runner.options();
  lo.step_budget = std::min<uint64_t>(lo.step_budget, uint64_t{1} << 20);
  DiffRunner lo_runner(lo);
  Predicate pred(program, *reduced_cell, lo_runner);
  const std::vector<std::string> before = split_lines(program.source);
  const std::vector<std::string> after = ddmin(before, pred);

  ShrinkResult out;
  out.reduced = program;
  out.reduced.source = join_lines(after);
  out.reduced.cells_hint = reduced_cell->key();
  out.cell = *reduced_cell;
  out.lines_before = before.size();
  out.lines_after = after.size();
  pred.still_diverges(out.reduced.source, &out.detail);
  return out;
}

std::string render_reproducer(const ShrinkResult& result) {
  return render_corpus_file(result.reduced);
}

}  // namespace svc::fuzz
