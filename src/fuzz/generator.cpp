#include "fuzz/generator.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "support/rng.h"

namespace svc::fuzz {

namespace {

// Scalar surface types the generator deals in. (f64 is deliberately
// excluded: the vectorizer and all four targets already exercise it via
// the hand-written suites, and keeping the generated surface to the
// types every pipeline configuration handles identically maximizes the
// cells a single program can legally visit.)
enum class Ty : uint8_t { I32, I64, F32 };

const char* ty_name(Ty t) {
  switch (t) {
    case Ty::I32: return "i32";
    case Ty::I64: return "i64";
    case Ty::F32: return "f32";
  }
  return "i32";
}

struct Var {
  std::string name;
  Ty type;
  bool assignable = true;
};

struct Region {
  std::string name;  // parameter name in the entry function
  uint32_t index = 0;
  uint32_t addr = 0;
  uint32_t elems = 0;
  std::string elem;  // "u8" | "u16" | "i32" | "f32"
};

struct HelperSig {
  std::string name;
  std::vector<Ty> params;
  Ty ret = Ty::I32;
  uint64_t cost = 0;  // static dynamic-step estimate of one call
};

// Renders a quarter-integer f32 literal exactly ("%.2f" is lossless for
// n/4) with the explicit f32 suffix; negatives are parenthesized so the
// literal drops into any expression position.
std::string f32_lit(int32_t quarters) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2ff", static_cast<double>(quarters) / 4.0);
  if (quarters < 0) return std::string("(") + buf + ")";
  return buf;
}

std::string i32_lit(int64_t v) {
  const std::string s = std::to_string(v);
  return v < 0 ? "(" + s + ")" : s;
}

class Generator {
 public:
  Generator(uint64_t seed, const GenOptions& opts)
      : opts_(opts),
        // Independent substreams: structural decisions never perturb the
        // memory image and vice versa.
        rng_(Rng(seed).fork(0xA11)),
        fill_seed_(Rng(seed).fork(0xF111).next_u64()) {
    program_.seed = seed;
    program_.fill_seed = fill_seed_;
  }

  GeneratedProgram run() {
    const auto n_helpers =
        static_cast<uint32_t>(rng_.next_below(opts_.max_helpers + 1));
    for (uint32_t i = 0; i < n_helpers; ++i) gen_helper(i);
    gen_entry();
    program_.source = join_lines();
    program_.features.functions = n_helpers + 1;
    program_.features.est_cost = total_cost_;
    return std::move(program_);
  }

 private:
  // --- emission --------------------------------------------------------

  void emit(const std::string& line) {
    std::string out;
    for (uint32_t i = 0; i < indent_; ++i) out += "  ";
    out += line;
    lines_.push_back(std::move(out));
  }

  std::string join_lines() const {
    std::string out;
    for (const std::string& l : lines_) {
      out += l;
      out += '\n';
    }
    return out;
  }

  std::string fresh(const char* prefix) {
    return std::string(prefix) + std::to_string(name_counter_++);
  }

  // --- cost model ------------------------------------------------------
  // Every simple statement is charged ~4 dynamic steps, scaled by the
  // product of enclosing trip counts; loops refuse to open when the
  // remaining budget cannot absorb a worst-case body. This is what lets
  // the harness promise trap-free termination without running anything.

  [[nodiscard]] uint64_t remaining_budget() const {
    return total_cost_ >= opts_.cost_budget ? 0
                                            : opts_.cost_budget - total_cost_;
  }

  void charge(uint64_t steps) { total_cost_ += steps * mult_; }

  // --- expressions -----------------------------------------------------

  std::vector<const Var*> vars_of(Ty t) const {
    std::vector<const Var*> out;
    for (const Var& v : scope_) {
      if (v.type == t) out.push_back(&v);
    }
    return out;
  }

  std::string gen_load(const Region& r, const std::string& idx) {
    // u8/u16 loads widen to i32; i32/f32 load their own type.
    return r.name + "[" + idx + "]";
  }

  // An index expression provably inside [0, r.elems): a literal, an
  // active loop variable (every loop counts 0..trip-1 with trip <=
  // max(max_trip, 64) == elems), or loopvar + small constant.
  std::string gen_index(const Region& r) {
    if (!loop_vars_.empty() && rng_.next_below(3) != 0) {
      const std::string& iv =
          loop_vars_[rng_.next_below(loop_vars_.size())].name;
      const uint32_t headroom =
          r.elems > opts_.max_trip ? r.elems - opts_.max_trip : 0;
      if (headroom > 0 && rng_.next_bool()) {
        return "(" + iv + " + " +
               std::to_string(rng_.next_below(headroom)) + ")";
      }
      return iv;
    }
    return std::to_string(rng_.next_below(r.elems));
  }

  std::string gen_expr(Ty t, uint32_t depth) {
    if (depth == 0 || rng_.next_below(3) == 0) return gen_leaf(t);
    switch (t) {
      case Ty::I32: return gen_i32(depth);
      case Ty::I64: return gen_i64(depth);
      case Ty::F32: return gen_f32(depth);
    }
    return gen_leaf(t);
  }

  std::string gen_leaf(Ty t) {
    // Pointer loads are leaves too (entry function only).
    if (!regions_.empty() && rng_.next_below(4) == 0) {
      std::vector<const Region*> candidates;
      for (const Region& r : regions_) {
        const bool is_f32 = r.elem == "f32";
        if ((t == Ty::F32) == is_f32 && t != Ty::I64) {
          candidates.push_back(&r);
        }
      }
      if (!candidates.empty()) {
        const Region& r = *candidates[rng_.next_below(candidates.size())];
        return gen_load(r, gen_index(r));
      }
    }
    const auto vs = vars_of(t);
    if (!vs.empty() && rng_.next_below(4) != 0) {
      return vs[rng_.next_below(vs.size())]->name;
    }
    switch (t) {
      case Ty::I32: return i32_lit(rng_.next_range(-99, 99));
      case Ty::I64:
        // Integer literals are contextually typed and the context does
        // not reach every position; the cast form is always unambiguous.
        return "(" + i32_lit(rng_.next_range(-99, 99)) + " as i64)";
      case Ty::F32:
        program_.features.uses_f32 = true;
        return f32_lit(static_cast<int32_t>(rng_.next_range(-64, 64)));
    }
    return "0";
  }

  std::string gen_i32(uint32_t depth) {
    switch (rng_.next_below(8)) {
      case 0:  // division by a positive literal: never traps
        return "(" + gen_expr(Ty::I32, depth - 1) + " / " +
               std::to_string(rng_.next_range(2, 9)) + ")";
      case 1:  // modulo likewise (i32 only; MiniC has no i64 %)
        return "(" + gen_expr(Ty::I32, depth - 1) + " % " +
               std::to_string(rng_.next_range(2, 9)) + ")";
      case 2: {  // comparison (i32-valued)
        static const char* kCmp[] = {"<", ">", "<=", ">=", "==", "!="};
        return "(" + gen_expr(Ty::I32, depth - 1) + " " +
               kCmp[rng_.next_below(6)] + " " + gen_expr(Ty::I32, depth - 1) +
               ")";
      }
      case 3: {  // i32 builtins
        static const char* kB[] = {"max_s", "min_s", "max_u", "min_u"};
        return std::string(kB[rng_.next_below(4)]) + "(" +
               gen_expr(Ty::I32, depth - 1) + ", " +
               gen_expr(Ty::I32, depth - 1) + ")";
      }
      case 4:  // narrowing i64 cast (truncation is well defined)
        program_.features.uses_i64 = true;
        return "(" + gen_expr(Ty::I64, depth - 1) + " as i32)";
      default: {  // wrapping arithmetic
        static const char* kOp[] = {"+", "-", "*"};
        return "(" + gen_expr(Ty::I32, depth - 1) + " " +
               kOp[rng_.next_below(3)] + " " + gen_expr(Ty::I32, depth - 1) +
               ")";
      }
    }
  }

  std::string gen_i64(uint32_t depth) {
    program_.features.uses_i64 = true;
    if (rng_.next_below(4) == 0) {
      return "(" + gen_expr(Ty::I32, depth - 1) + " as i64)";
    }
    static const char* kOp[] = {"+", "-", "*"};
    return "(" + gen_expr(Ty::I64, depth - 1) + " " + kOp[rng_.next_below(3)] +
           " " + gen_expr(Ty::I64, depth - 1) + ")";
  }

  std::string gen_f32(uint32_t depth) {
    program_.features.uses_f32 = true;
    switch (rng_.next_below(7)) {
      case 0: {
        static const char* kB[] = {"fmaxf", "fminf"};
        return std::string(kB[rng_.next_below(2)]) + "(" +
               gen_expr(Ty::F32, depth - 1) + ", " +
               gen_expr(Ty::F32, depth - 1) + ")";
      }
      case 1:  // sqrtf over fabsf keeps the domain non-negative
        return "sqrtf(fabsf(" + gen_expr(Ty::F32, depth - 1) + "))";
      case 2:  // widening int cast (always defined)
        return "(" + gen_expr(Ty::I32, depth - 1) + " as f32)";
      default: {
        static const char* kOp[] = {"+", "-", "*", "/"};
        return "(" + gen_expr(Ty::F32, depth - 1) + " " +
               kOp[rng_.next_below(4)] + " " + gen_expr(Ty::F32, depth - 1) +
               ")";
      }
    }
  }

  // Conditions are i32 in MiniC; comparisons give the best branch mix.
  std::string gen_cond() {
    static const char* kCmp[] = {"<", ">", "<=", ">=", "==", "!="};
    return "(" + gen_expr(Ty::I32, 2) + " " + kCmp[rng_.next_below(6)] + " " +
           gen_expr(Ty::I32, 2) + ")";
  }

  Ty pick_type() {
    switch (rng_.next_below(5)) {
      case 0: return Ty::F32;
      case 1: return Ty::I64;
      default: return Ty::I32;
    }
  }

  // --- statements ------------------------------------------------------

  void stmt_decl() {
    const Ty t = pick_type();
    const std::string name = fresh("v");
    emit("var " + name + ": " + ty_name(t) + " = " + gen_expr(t, 3) + ";");
    scope_.push_back({name, t, true});
    charge(4);
    ++program_.features.stmts;
  }

  void stmt_assign() {
    std::vector<const Var*> mut;
    for (const Var& v : scope_) {
      if (v.assignable) mut.push_back(&v);
    }
    if (mut.empty()) return stmt_decl();
    const Var& v = *mut[rng_.next_below(mut.size())];
    emit(v.name + " = " + gen_expr(v.type, 3) + ";");
    charge(4);
    ++program_.features.stmts;
  }

  void stmt_store() {
    if (regions_.empty()) return stmt_assign();
    const Region& r = regions_[rng_.next_below(regions_.size())];
    const Ty t = r.elem == "f32" ? Ty::F32 : Ty::I32;
    emit(r.name + "[" + gen_index(r) + "] = " + gen_expr(t, 3) + ";");
    charge(5);
    ++program_.features.stmts;
  }

  void stmt_call() {
    if (helpers_.empty()) return stmt_assign();
    const HelperSig& h = helpers_[rng_.next_below(helpers_.size())];
    if (h.cost * mult_ > remaining_budget()) return stmt_assign();
    std::string call = h.name + "(";
    for (size_t i = 0; i < h.params.size(); ++i) {
      if (i > 0) call += ", ";
      call += gen_expr(h.params[i], 2);
    }
    call += ")";
    const std::string name = fresh("v");
    emit("var " + name + ": " + std::string(ty_name(h.ret)) + " = " + call +
         ";");
    scope_.push_back({name, h.ret, true});
    charge(h.cost + 4);
    ++program_.features.calls;
    ++program_.features.stmts;
  }

  void stmt_if(uint32_t depth) {
    emit("if " + gen_cond() + " {");
    ++indent_;
    const size_t mark = scope_.size();
    gen_stmts(depth, /*max=*/2 + rng_.next_below(3));
    scope_.resize(mark);
    --indent_;
    if (rng_.next_bool()) {
      emit("} else {");
      ++indent_;
      gen_stmts(depth, 2 + rng_.next_below(3));
      scope_.resize(mark);
      --indent_;
    }
    emit("}");
    charge(2);
    ++program_.features.stmts;
  }

  void stmt_loop(uint32_t depth) {
    const auto trip = static_cast<uint32_t>(rng_.next_range(2, opts_.max_trip));
    // Worst-case body estimate: refuse when the budget cannot take it.
    const uint64_t body_cap = uint64_t{8} * 6;
    if (mult_ * trip * body_cap > remaining_budget()) return stmt_assign();

    const std::string iv = fresh("i");
    const bool use_for = rng_.next_bool();
    emit("var " + iv + ": i32 = 0;");
    if (use_for) {
      // MiniC's for-init is a simple statement (assignment), not a
      // declaration, so the induction variable is declared just above.
      emit("for (" + iv + " = 0; " + iv + " < " + std::to_string(trip) +
           "; " + iv + " = " + iv + " + 1) {");
    } else {
      emit("while (" + iv + " < " + std::to_string(trip) + ") {");
    }
    ++indent_;
    const size_t mark = scope_.size();
    scope_.push_back({iv, Ty::I32, false});
    loop_vars_.push_back({iv, Ty::I32, false});
    const uint64_t saved_mult = mult_;
    mult_ = std::min<uint64_t>(mult_ * trip, uint64_t{1} << 32);
    loop_depth_ += 1;
    program_.features.max_loop_depth =
        std::max(program_.features.max_loop_depth, loop_depth_);
    charge(3);  // per-iteration loop overhead

    gen_stmts(depth, 1 + rng_.next_below(4));

    if (!use_for) emit(iv + " = " + iv + " + 1;");
    loop_depth_ -= 1;
    mult_ = saved_mult;
    loop_vars_.pop_back();
    scope_.resize(mark);
    --indent_;
    emit("}");
    ++program_.features.loops;
    ++program_.features.stmts;
  }

  // A unit-stride whole-region loop shaped for the vectorizer: the cells
  // disagreeing on vectorize/devectorize decisions must still agree on
  // every byte these write.
  void stmt_kernel_loop() {
    if (regions_.size() < 2) return stmt_assign();
    const Region& dst = regions_[rng_.next_below(regions_.size())];
    const Region& src = regions_[rng_.next_below(regions_.size())];
    const uint64_t cost = uint64_t{dst.elems} * 8;
    if (mult_ * cost > remaining_budget()) return stmt_assign();

    const std::string iv = fresh("i");
    emit("var " + iv + ": i32 = 0;");
    emit("while (" + iv + " < " + std::to_string(dst.elems) + ") {");
    ++indent_;
    const bool dst_f = dst.elem == "f32";
    const bool src_f = src.elem == "f32";
    std::string rhs;
    if (dst_f && src_f) {
      rhs = "(" + src.name + "[" + iv + "] * " +
            f32_lit(static_cast<int32_t>(rng_.next_range(-8, 8))) + ") + " +
            f32_lit(static_cast<int32_t>(rng_.next_range(-8, 8)));
    } else if (dst_f) {
      rhs = "((" + src.name + "[" + iv + "] as f32) * " +
            f32_lit(static_cast<int32_t>(rng_.next_range(1, 8))) + ")";
    } else if (src_f) {
      // No float->int casts (out-of-range conversion is undefined); feed
      // integer destinations from an integer recurrence instead.
      rhs = "((" + iv + " * " + std::to_string(rng_.next_range(1, 7)) +
            ") + " + std::to_string(rng_.next_range(0, 63)) + ")";
    } else {
      rhs = "(" + src.name + "[" + iv + "] + " +
            std::to_string(rng_.next_range(-9, 9)) + ")";
    }
    emit(dst.name + "[" + iv + "] = " + rhs + ";");
    emit(iv + " = " + iv + " + 1;");
    --indent_;
    emit("}");
    charge(cost);
    ++program_.features.loops;
    ++program_.features.kernel_loops;
    program_.features.max_loop_depth =
        std::max(program_.features.max_loop_depth, loop_depth_ + 1);
    ++program_.features.stmts;
  }

  void gen_stmts(uint32_t loop_depth_left, uint32_t max_stmts) {
    const uint64_t n = 1 + rng_.next_below(std::min(max_stmts, opts_.max_stmts));
    for (uint64_t s = 0; s < n; ++s) {
      if (remaining_budget() < 64) break;
      switch (rng_.next_below(10)) {
        case 0:
        case 1: stmt_decl(); break;
        case 2: stmt_assign(); break;
        case 3: stmt_store(); break;
        case 4: stmt_call(); break;
        case 5: stmt_if(loop_depth_left); break;
        case 6:
        case 7:
          if (loop_depth_left > 0) {
            stmt_loop(loop_depth_left - 1);
          } else {
            stmt_assign();
          }
          break;
        case 8:
          if (loop_depth_left == opts_.max_loop_depth && !regions_.empty()) {
            stmt_kernel_loop();
          } else {
            stmt_store();
          }
          break;
        default: stmt_decl(); break;
      }
    }
  }

  // --- functions -------------------------------------------------------

  void gen_helper(uint32_t index) {
    HelperSig sig;
    sig.name = "f" + std::to_string(index);
    const uint64_t n_params = 1 + rng_.next_below(3);
    for (uint64_t i = 0; i < n_params; ++i) sig.params.push_back(pick_type());
    sig.ret = rng_.next_below(4) == 0 ? Ty::F32 : Ty::I32;

    scope_.clear();
    loop_vars_.clear();
    name_counter_ = 0;
    std::string head = "fn " + sig.name + "(";
    for (size_t i = 0; i < sig.params.size(); ++i) {
      if (i > 0) head += ", ";
      const std::string p = "p" + std::to_string(i);
      head += p + ": " + ty_name(sig.params[i]);
      scope_.push_back({p, sig.params[i], true});
    }
    head += ") -> " + std::string(ty_name(sig.ret)) + " {";
    emit(head);
    ++indent_;
    const uint64_t cost_before = total_cost_;
    // Helpers stay cheap: shallow nesting, few statements, short trips.
    gen_stmts(/*loop_depth_left=*/1, 4);
    emit("return " + gen_expr(sig.ret, 3) + ";");
    charge(4);
    --indent_;
    emit("}");
    sig.cost = std::max<uint64_t>(total_cost_ - cost_before, 8);
    helpers_.push_back(std::move(sig));
  }

  void gen_entry() {
    scope_.clear();
    loop_vars_.clear();
    name_counter_ = 0;
    program_.entry = "entry";

    static const char* kElems[] = {"f32", "i32", "u8", "u16", "f32", "i32"};
    const uint64_t n_ptrs = 2 + rng_.next_below(3);
    const uint64_t n_scalars = 1 + rng_.next_below(2);
    std::string head = "fn entry(";
    for (uint64_t i = 0; i < n_ptrs; ++i) {
      Region r;
      r.name = "a" + std::to_string(i);
      r.index = static_cast<uint32_t>(i);
      r.addr = 1024 + static_cast<uint32_t>(i) * 1024;
      r.elems = 64;
      r.elem = kElems[rng_.next_below(6)];
      if (i > 0) head += ", ";
      head += r.name + ": *" + r.elem;

      ArgSpec arg;
      arg.value = Value::make_i32(static_cast<int32_t>(r.addr));
      arg.is_ptr = true;
      arg.region.addr = r.addr;
      arg.region.elems = r.elems;
      std::snprintf(arg.region.elem, sizeof arg.region.elem, "%s",
                    r.elem.c_str());
      program_.args.push_back(arg);
      regions_.push_back(std::move(r));
    }
    for (uint64_t i = 0; i < n_scalars; ++i) {
      const Ty t = rng_.next_below(4) == 0 ? Ty::F32 : Ty::I32;
      const std::string p = "s" + std::to_string(i);
      head += ", " + p + ": " + ty_name(t);
      scope_.push_back({p, t, true});
      ArgSpec arg;
      if (t == Ty::F32) {
        arg.value = Value::make_f32(
            static_cast<float>(rng_.next_range(-64, 64)) / 4.0f);
      } else {
        arg.value =
            Value::make_i32(static_cast<int32_t>(rng_.next_range(-50, 50)));
      }
      program_.args.push_back(arg);
    }
    const Ty ret = rng_.next_below(3) == 0 ? Ty::F32 : Ty::I32;
    head += ") -> " + std::string(ty_name(ret)) + " {";
    emit(head);
    ++indent_;
    gen_stmts(opts_.max_loop_depth, opts_.max_stmts);
    // The return folds loads back in so stores are observable through the
    // value channel too, not only the memory diff.
    emit("return " + gen_expr(ret, 4) + ";");
    charge(4);
    --indent_;
    emit("}");
  }

  GenOptions opts_;
  Rng rng_;
  uint64_t fill_seed_;
  GeneratedProgram program_;
  std::vector<std::string> lines_;
  uint32_t indent_ = 0;
  uint32_t name_counter_ = 0;
  std::vector<Var> scope_;
  std::vector<Var> loop_vars_;
  std::vector<Region> regions_;
  std::vector<HelperSig> helpers_;
  uint64_t total_cost_ = 0;
  uint64_t mult_ = 1;
  uint32_t loop_depth_ = 0;
};

}  // namespace

uint32_t PtrRegion::elem_size() const {
  if (std::strcmp(elem, "u8") == 0) return 1;
  if (std::strcmp(elem, "u16") == 0) return 2;
  return 4;
}

void GeneratedProgram::init_memory(Memory& mem) const {
  const Rng base(fill_seed);
  uint32_t region_index = 0;
  for (const ArgSpec& a : args) {
    if (!a.is_ptr) continue;
    Rng rng = base.fork(region_index++);
    const PtrRegion& r = a.region;
    for (uint32_t i = 0; i < r.elems; ++i) {
      const uint32_t addr = r.addr + i * r.elem_size();
      if (!mem.in_bounds(addr, r.elem_size())) break;
      if (std::strcmp(r.elem, "u8") == 0) {
        mem.store_u8(addr, static_cast<uint8_t>(rng.next_below(256)));
      } else if (std::strcmp(r.elem, "u16") == 0) {
        mem.store_u16(addr, static_cast<uint16_t>(rng.next_below(65536)));
      } else if (std::strcmp(r.elem, "i32") == 0) {
        mem.write_i32(addr, static_cast<int32_t>(rng.next_range(-1000, 1000)));
      } else {  // f32: quarter-integers, exactly representable
        mem.write_f32(addr,
                      static_cast<float>(rng.next_range(-256, 256)) / 4.0f);
      }
    }
  }
}

std::vector<Value> GeneratedProgram::arg_values() const {
  std::vector<Value> out;
  out.reserve(args.size());
  for (const ArgSpec& a : args) out.push_back(a.value);
  return out;
}

GeneratedProgram generate_program(uint64_t seed, const GenOptions& options) {
  return Generator(seed, options).run();
}

// --- corpus files ----------------------------------------------------------

std::string render_corpus_file(const GeneratedProgram& program) {
  std::string out = "// svc_fuzz corpus case (generated; replayed by "
                    "tests/corpus_test.cpp)\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "// seed: %" PRIu64 "\n", program.seed);
  out += buf;
  std::snprintf(buf, sizeof buf, "// fillseed: %" PRIu64 "\n",
                program.fill_seed);
  out += buf;
  out += "// entry: " + program.entry + "\n";
  for (const ArgSpec& a : program.args) {
    if (a.is_ptr) {
      std::snprintf(buf, sizeof buf, "// arg: ptr %u %s %u\n", a.region.addr,
                    a.region.elem, a.region.elems);
    } else if (a.value.type == Type::F32) {
      // Bit-exact: floats round-trip as hex bit patterns, never decimals.
      std::snprintf(buf, sizeof buf, "// arg: f32bits %08x\n",
                    std::bit_cast<uint32_t>(a.value.f32));
    } else if (a.value.type == Type::I64) {
      std::snprintf(buf, sizeof buf, "// arg: i64 %" PRId64 "\n", a.value.i64);
    } else {
      std::snprintf(buf, sizeof buf, "// arg: i32 %d\n", a.value.i32);
    }
    out += buf;
  }
  if (!program.cells_hint.empty()) {
    out += "// cells: " + program.cells_hint + "\n";
  }
  out += "// ---\n";
  out += program.source;
  return out;
}

namespace {

// Splits "key: value" after the "// " prefix; returns false on other lines.
bool header_kv(std::string_view line, std::string_view& key,
               std::string_view& value) {
  if (!line.starts_with("// ")) return false;
  line.remove_prefix(3);
  const size_t colon = line.find(": ");
  if (colon == std::string_view::npos) return false;
  key = line.substr(0, colon);
  value = line.substr(colon + 2);
  return true;
}

template <typename T>
bool parse_num(std::string_view s, T& out) {
  const auto* end = s.data() + s.size();
  return std::from_chars(s.data(), end, out).ec == std::errc() &&
         s.data() != end;
}

}  // namespace

std::optional<GeneratedProgram> parse_corpus_file(std::string_view text) {
  GeneratedProgram p;
  size_t pos = 0;
  bool saw_separator = false;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line == "// ---") {
      saw_separator = true;
      break;
    }
    std::string_view key;
    std::string_view value;
    if (!header_kv(line, key, value)) continue;
    if (key == "seed") {
      if (!parse_num(value, p.seed)) return std::nullopt;
    } else if (key == "fillseed") {
      if (!parse_num(value, p.fill_seed)) return std::nullopt;
    } else if (key == "entry") {
      p.entry = std::string(value);
    } else if (key == "cells") {
      p.cells_hint = std::string(value);
    } else if (key == "arg") {
      ArgSpec a;
      if (value.starts_with("ptr ")) {
        value.remove_prefix(4);
        const size_t sp1 = value.find(' ');
        const size_t sp2 =
            sp1 == std::string_view::npos ? sp1 : value.find(' ', sp1 + 1);
        if (sp2 == std::string_view::npos) return std::nullopt;
        uint32_t addr = 0;
        uint32_t elems = 0;
        const std::string_view elem = value.substr(sp1 + 1, sp2 - sp1 - 1);
        if (!parse_num(value.substr(0, sp1), addr) ||
            !parse_num(value.substr(sp2 + 1), elems) || elem.size() > 3) {
          return std::nullopt;
        }
        a.is_ptr = true;
        a.region.addr = addr;
        a.region.elems = elems;
        std::snprintf(a.region.elem, sizeof a.region.elem, "%.*s",
                      static_cast<int>(elem.size()), elem.data());
        a.value = Value::make_i32(static_cast<int32_t>(addr));
      } else if (value.starts_with("f32bits ")) {
        value.remove_prefix(8);
        uint32_t bits = 0;
        const auto* end = value.data() + value.size();
        if (std::from_chars(value.data(), end, bits, 16).ec != std::errc()) {
          return std::nullopt;
        }
        a.value = Value::make_f32(std::bit_cast<float>(bits));
      } else if (value.starts_with("i64 ")) {
        int64_t v = 0;
        if (!parse_num(value.substr(4), v)) return std::nullopt;
        a.value = Value::make_i64(v);
      } else if (value.starts_with("i32 ")) {
        int32_t v = 0;
        if (!parse_num(value.substr(4), v)) return std::nullopt;
        a.value = Value::make_i32(v);
      } else {
        return std::nullopt;
      }
      p.args.push_back(a);
    }
  }
  if (!saw_separator || p.entry.empty()) return std::nullopt;
  p.source = std::string(text.substr(pos));
  return p;
}

// --- frontend near-miss mutation -------------------------------------------

std::string mutate_source(const std::string& source, uint64_t seed) {
  Rng rng{Rng::mix(seed ^ 0x5EEDF00Dull)};
  std::string s = source;
  if (s.empty()) return "(";
  const uint64_t kind = rng.next_below(6);
  const size_t at = rng.next_below(s.size());
  static const char kPunct[] = ";(){}[]+*<>=:,";
  switch (kind) {
    case 0:  // drop a character
      s.erase(at, 1);
      break;
    case 1:  // duplicate a character
      s.insert(at, 1, s[at]);
      break;
    case 2:  // stray punctuation
      s.insert(at, 1, kPunct[rng.next_below(sizeof kPunct - 1)]);
      break;
    case 3:  // truncate mid-token
      s.resize(at);
      break;
    case 4: {  // splice a keyword fragment
      static const char* kFrag[] = {"var ", "if (", " as ", "-> ",
                                    "fn ",  "}",    "return "};
      s.insert(at, kFrag[rng.next_below(7)]);
      break;
    }
    default:  // smash an identifier character into a digit
      s[at] = static_cast<char>('0' + rng.next_below(10));
      break;
  }
  return s;
}

}  // namespace svc::fuzz
