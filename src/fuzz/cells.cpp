#include "fuzz/cells.h"

#include <algorithm>
#include <unordered_set>

#include "support/pass_manager.h"
#include "support/rng.h"
#include "targets/target_registry.h"

namespace svc::fuzz {

namespace {

const char* tier_name(TierMode t) {
  switch (t) {
    case TierMode::Eager: return "eager";
    case TierMode::Tiered: return "tiered";
    case TierMode::Tier2: return "tier2";
  }
  return "eager";
}

const char* alloc_name(AllocPolicy a) {
  switch (a) {
    case AllocPolicy::NaiveOnline: return "naive";
    case AllocPolicy::LinearScan: return "linear";
    case AllocPolicy::SplitGuided: return "split";
    case AllocPolicy::OfflineChaitin: return "chaitin";
  }
  return "linear";
}

std::optional<TargetKind> parse_target(std::string_view s) {
  for (const TargetKind k : all_targets()) {
    if (target_desc(k).name == s) return k;
  }
  return std::nullopt;
}

// Re-renders a pipeline spec with consecutive duplicate passes dropped
// (running cleanup twice in a row is running it once); returns the input
// unchanged when it does not parse (build() will report it properly).
std::string dedupe_pipeline(const std::string& spec) {
  const auto parsed = PipelineSpec::parse(spec);
  if (!parsed) return spec;
  PipelineSpec out;
  for (const std::string& name : parsed->names()) {
    if (out.names().empty() || out.names().back() != name) out.append(name);
  }
  return out.str();
}

}  // namespace

std::string Cell::key() const {
  std::string out = target_desc(target).name;
  out += '/';
  out += tier_name(tier);
  out += '/';
  out += alloc_name(alloc);
  out += '/';
  if (tier == TierMode::Eager) {
    out += '-';
  } else if (dispatch == DispatchKind::Switch) {
    out += "switch";
  } else {
    out += fusion ? "threaded" : "threaded_nofuse";
  }
  out += "/off=";
  out += offline_pipeline.empty() ? "default" : offline_pipeline;
  out += "/jit=";
  out += jit_pipeline.empty() ? "default" : jit_pipeline;
  if (warm_boot) out += "/warm";
  return out;
}

Cell canonicalize(const Cell& cell) {
  Cell c = cell;
  if (c.dispatch == DispatchKind::Threaded &&
      !Interpreter::threaded_available()) {
    // The build serves Threaded requests on the switch engine anyway.
    c.dispatch = DispatchKind::Switch;
  }
  if (c.dispatch == DispatchKind::Switch) c.fusion = false;
  if (c.tier == TierMode::Eager) {
    // No tier 0 -> the dispatch axis does not exist for this cell.
    c.dispatch = DispatchKind::Switch;
    c.fusion = false;
  }
  c.offline_pipeline = dedupe_pipeline(c.offline_pipeline);
  c.jit_pipeline = dedupe_pipeline(c.jit_pipeline);
  // Warm-boot cells exercise the AOT story: eager, so both boots compile
  // (or disk-load) everything at deploy.
  if (c.warm_boot) {
    c.tier = TierMode::Eager;
    c.dispatch = DispatchKind::Switch;
    c.fusion = false;
  }
  return c;
}

std::optional<Cell> parse_cell(std::string_view text) {
  std::vector<std::string_view> fields;
  while (!text.empty()) {
    const size_t slash = text.find('/');
    fields.push_back(text.substr(0, slash));
    if (slash == std::string_view::npos) break;
    text.remove_prefix(slash + 1);
  }
  if (fields.size() < 6 || fields.size() > 7) return std::nullopt;

  Cell c;
  const auto target = parse_target(fields[0]);
  if (!target) return std::nullopt;
  c.target = *target;

  if (fields[1] == "eager") {
    c.tier = TierMode::Eager;
  } else if (fields[1] == "tiered") {
    c.tier = TierMode::Tiered;
  } else if (fields[1] == "tier2") {
    c.tier = TierMode::Tier2;
  } else {
    return std::nullopt;
  }

  if (fields[2] == "naive") {
    c.alloc = AllocPolicy::NaiveOnline;
  } else if (fields[2] == "linear") {
    c.alloc = AllocPolicy::LinearScan;
  } else if (fields[2] == "split") {
    c.alloc = AllocPolicy::SplitGuided;
  } else if (fields[2] == "chaitin") {
    c.alloc = AllocPolicy::OfflineChaitin;
  } else {
    return std::nullopt;
  }

  if (fields[3] == "switch" || fields[3] == "-") {
    c.dispatch = DispatchKind::Switch;
    c.fusion = false;
  } else if (fields[3] == "threaded") {
    c.dispatch = DispatchKind::Threaded;
    c.fusion = true;
  } else if (fields[3] == "threaded_nofuse") {
    c.dispatch = DispatchKind::Threaded;
    c.fusion = false;
  } else {
    return std::nullopt;
  }

  if (!fields[4].starts_with("off=") || !fields[5].starts_with("jit=")) {
    return std::nullopt;
  }
  const std::string_view off = fields[4].substr(4);
  const std::string_view jit = fields[5].substr(4);
  if (off != "default") c.offline_pipeline = std::string(off);
  if (jit != "default") c.jit_pipeline = std::string(jit);

  if (fields.size() == 7) {
    if (fields[6] != "warm") return std::nullopt;
    c.warm_boot = true;
  }
  return canonicalize(c);
}

std::optional<std::vector<Cell>> parse_cell_list(std::string_view text) {
  std::vector<Cell> out;
  while (!text.empty()) {
    const size_t semi = text.find(';');
    const std::string_view one = text.substr(0, semi);
    if (!one.empty()) {
      const auto cell = parse_cell(one);
      if (!cell) return std::nullopt;
      out.push_back(*cell);
    }
    if (semi == std::string_view::npos) break;
    text.remove_prefix(semi + 1);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::string render_cell_list(const std::vector<Cell>& cells) {
  std::string out;
  for (const Cell& c : cells) {
    if (!out.empty()) out += ';';
    out += c.key();
  }
  return out;
}

std::vector<Cell> build_cell_matrix(uint64_t seed,
                                    const ProgramFeatures& features,
                                    size_t max_cells) {
  Rng rng = Rng(seed).fork(0xCE115);
  std::vector<Cell> raw;
  const auto add = [&raw](TargetKind target, TierMode tier) -> Cell& {
    Cell c;
    c.target = target;
    c.tier = tier;
    raw.push_back(std::move(c));
    return raw.back();
  };

  // Base coverage: every target, eager and tiered, default pipelines.
  for (const TargetKind t : all_targets()) {
    add(t, TierMode::Eager);
    add(t, TierMode::Tiered);
  }

  // Tier-0 dispatch variants (the switch engine doubles as the oracle,
  // but here it runs through the full tiered runtime path).
  add(TargetKind::X86Sim, TierMode::Tiered).dispatch = DispatchKind::Switch;
  add(TargetKind::SpuSim, TierMode::Tiered).fusion = false;

  // Register-allocator diversity on rotating targets.
  add(TargetKind::SparcSim, TierMode::Eager).alloc = AllocPolicy::NaiveOnline;
  add(TargetKind::PpcSim, TierMode::Eager).alloc = AllocPolicy::SplitGuided;
  add(TargetKind::X86Sim, TierMode::Eager).alloc = AllocPolicy::OfflineChaitin;

  // Pipeline variants are only worth buying for programs with loops --
  // vectorize/licm/if_convert decisions cannot diverge otherwise.
  if (features.loops > 0) {
    static const char* kOffline[] = {
        "coalesce,fold,simplify,dce,licm,if_convert,cleanup,vectorize",
        "fold,simplify,dce,cleanup",
        "fold,dce,cleanup",
        "fold,simplify,dce,if_convert,cleanup,vectorize",
        "coalesce,fold,simplify,dce,cleanup",
    };
    static const char* kJit[] = {
        "stack_to_reg,peephole,fma,devectorize,regalloc",
        "stack_to_reg,devectorize,regalloc",
        "stack_to_reg,peephole,devectorize,regalloc",
    };
    const size_t variants = features.kernel_loops > 0 ? 4 : 2;
    for (size_t i = 0; i < variants; ++i) {
      const TargetKind t =
          all_targets()[rng.next_below(all_targets().size())];
      Cell& c = add(t, rng.next_bool() ? TierMode::Eager : TierMode::Tiered);
      c.offline_pipeline = kOffline[rng.next_below(5)];
      c.jit_pipeline = kJit[rng.next_below(3)];
    }
  }

  // Tier-2 re-specialization needs several runs to cross two promotion
  // thresholds; only cheap programs buy those cells.
  if (features.est_cost < (1u << 17)) {
    add(TargetKind::X86Sim, TierMode::Tier2);
    add(all_targets()[rng.next_below(all_targets().size())],
        TierMode::Tier2);
  }

  // One cold-vs-warm persistent-cache cell per program.
  add(all_targets()[rng.next_below(all_targets().size())],
      TierMode::Eager)
      .warm_boot = true;

  // Canonicalize, dedupe by key (order-preserving), bound.
  std::vector<Cell> out;
  std::unordered_set<std::string> seen;
  for (const Cell& c : raw) {
    Cell canon = canonicalize(c);
    if (seen.insert(canon.key()).second) out.push_back(std::move(canon));
  }
  if (out.size() > max_cells) out.resize(max_cells);
  return out;
}

}  // namespace svc::fuzz
