// Delta-debugging reducer for differential divergences: given a program
// and the cell set it diverged on, produce the smallest reproducer we
// can find automatically -- first the cell set is reduced to a single
// diverging cell, then the program is shrunk with ddmin over source
// lines (the generator emits one statement per line precisely so this
// works well). A candidate is kept only if it still compiles, still has
// the same entry signature (the recorded arguments must stay valid), and
// still diverges on the reduced cell. The result renders as a corpus
// file (tests/corpus/) that ctest replays forever after.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzz/cells.h"
#include "fuzz/differ.h"
#include "fuzz/generator.h"

namespace svc::fuzz {

struct ShrinkResult {
  GeneratedProgram reduced;  // source shrunk; args/seed preserved
  Cell cell;                 // the single cell that still diverges
  std::string detail;        // divergence account on the reduced program
  size_t lines_before = 0;
  size_t lines_after = 0;
};

/// Reduces a diverging (program, cells) pair. Returns nullopt when no
/// single cell reproduces the divergence (should not happen for a real
/// divergence; guards against flaky harness bugs). Deterministic.
[[nodiscard]] std::optional<ShrinkResult> shrink(
    const GeneratedProgram& program, const std::vector<Cell>& cells,
    DiffRunner& runner);

/// Renders the reduced case as a corpus file whose cells hint is the one
/// reduced cell -- drop it into tests/corpus/ and it replays in ctest.
[[nodiscard]] std::string render_reproducer(const ShrinkResult& result);

}  // namespace svc::fuzz
