// The differential harness's configuration lattice: one Cell is one
// (tier x target x pipeline) point every generated program must agree on
// with the tier-0 switch-interpreter oracle. See docs/FUZZING.md.
//
// The raw lattice is huge (4 targets x 3 tier modes x 4 alloc policies x
// 3 dispatch variants x unbounded pipeline strings x boot modes), but
// most of it is redundant: many points are *equivalent by construction*
// (fusion is a no-op on the switch engine, the dispatch axis does not
// exist for eager deployments, a pipeline spec with a repeated cleanup
// pass compiles identically to the deduplicated one). Following the
// configuration-pruning idea in access-control model checking (PAPERS.md:
// CoAChecker prunes equivalent policy states before search), cells are
// canonicalized and deduplicated before any program runs, and the matrix
// a program actually visits is *bounded by its features* (a program with
// no loops buys no vectorize-variant cells; an expensive one buys no
// tier-2 cells).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/generator.h"
#include "regalloc/linear_scan.h"
#include "targets/machine.h"
#include "vm/interpreter.h"

namespace svc::fuzz {

/// How the runtime serves calls in this cell.
enum class TierMode : uint8_t {
  Eager,   // JIT everything at deploy(); one run suffices
  Tiered,  // tier 0 -> tier 1 promotion; run repeatedly to cross it
  Tier2,   // + profiling + profile-guided re-specialization
};

/// One point of the differential matrix. Value type; the canonical key
/// is also the parse/render format, so a failing cell prints as the
/// exact `--cells` operand that replays it.
struct Cell {
  TargetKind target = TargetKind::X86Sim;
  TierMode tier = TierMode::Eager;
  AllocPolicy alloc = AllocPolicy::LinearScan;
  // Tier-0 engine (tiered modes only; collapsed for eager cells).
  DispatchKind dispatch = DispatchKind::Threaded;
  bool fusion = true;
  // Pipeline overrides; empty = the engine's default schedule.
  std::string offline_pipeline;
  std::string jit_pipeline;
  // Cold-vs-warm persistent-cache cell: boot the deployment twice
  // against one on-disk store; the warm boot must agree byte-for-byte.
  bool warm_boot = false;

  /// Canonical key, e.g.
  /// "x86sim/tiered/linear/threaded/off=default/jit=default".
  /// Equal keys == equivalent-by-construction cells.
  [[nodiscard]] std::string key() const;
};

/// Normalizes a cell to its equivalence-class representative:
/// switch dispatch drops fusion, eager drops the dispatch axis entirely,
/// threaded downgrades to switch when compiled out, pipeline specs are
/// re-rendered with consecutive duplicate passes removed.
[[nodiscard]] Cell canonicalize(const Cell& cell);

/// Parses a canonical key back into a cell (inverse of Cell::key for
/// canonical cells). Returns nullopt, never dies, on malformed text.
[[nodiscard]] std::optional<Cell> parse_cell(std::string_view text);

/// Parses a ';'-separated list of keys; nullopt if any element fails.
[[nodiscard]] std::optional<std::vector<Cell>> parse_cell_list(
    std::string_view text);

/// Renders cells as the ';'-separated list parse_cell_list accepts.
[[nodiscard]] std::string render_cell_list(const std::vector<Cell>& cells);

/// Builds the deduplicated canonical matrix for one program:
/// deterministic in (seed, features, max_cells). Base cells (every
/// target, eager + tiered, default pipelines) come first; feature-gated
/// cells (pipeline variants for loopy programs, tier-2 for cheap ones,
/// dispatch variants, one warm-boot cell) follow, then the list is
/// truncated to `max_cells`.
[[nodiscard]] std::vector<Cell> build_cell_matrix(
    uint64_t seed, const ProgramFeatures& features, size_t max_cells);

}  // namespace svc::fuzz
