#include "fuzz/differ.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "api/engine.h"
#include "bytecode/opcode.h"
#include "driver/offline_compiler.h"
#include "vm/interpreter.h"

#ifdef __unix__
#include <unistd.h>
#endif

namespace svc::fuzz {

namespace {

const char* trap_name(TrapKind t) {
  switch (t) {
    case TrapKind::None: return "none";
    case TrapKind::OutOfBoundsMemory: return "oob";
    case TrapKind::DivideByZero: return "div0";
    case TrapKind::IntegerOverflow: return "overflow";
    case TrapKind::CallStackOverflow: return "stack";
    case TrapKind::StepBudgetExceeded: return "steps";
    case TrapKind::ExplicitTrap: return "trap";
  }
  return "?";
}

std::string value_str(const Value& v) {
  char buf[64];
  switch (v.type) {
    case Type::I32:
      std::snprintf(buf, sizeof buf, "i32:%d", v.i32);
      break;
    case Type::I64:
      std::snprintf(buf, sizeof buf, "i64:%" PRId64, v.i64);
      break;
    case Type::F32:
      std::snprintf(buf, sizeof buf, "f32:%g(bits %08x)",
                    static_cast<double>(v.f32),
                    std::bit_cast<uint32_t>(v.f32));
      break;
    case Type::F64:
      std::snprintf(buf, sizeof buf, "f64:%g", v.f64);
      break;
    default:
      std::snprintf(buf, sizeof buf, "void");
      break;
  }
  return buf;
}

// Bit-level equality: the differential contract is exact, so float NaN
// payloads and signed zeros must match too.
bool values_equal(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::I32: return a.i32 == b.i32;
    case Type::I64: return a.i64 == b.i64;
    case Type::F32:
      return std::bit_cast<uint32_t>(a.f32) == std::bit_cast<uint32_t>(b.f32);
    case Type::F64:
      return std::bit_cast<uint64_t>(a.f64) == std::bit_cast<uint64_t>(b.f64);
    case Type::V128: return a.v128 == b.v128;
    default: return true;
  }
}

struct Expected {
  TrapKind trap = TrapKind::None;
  Value value;
  std::vector<uint8_t> memory;
  uint64_t steps = 0;  // oracle interpreter steps actually spent
};

// A program is outside the differential contract when the oracle hit the
// step budget -- or came close enough that a cell's different step
// accounting (machine instructions vs bytecode steps) could trip the
// same budget on a semantically identical run. Such programs are skipped
// rather than diffed; the generator's cost model keeps real programs far
// below this, so the rule only bites runaway shrink candidates.
bool oracle_out_of_contract(const Expected& e, const DiffOptions& options) {
  return e.trap == TrapKind::StepBudgetExceeded ||
         e.steps > options.step_budget / 8;
}

void reset_memory(Memory& mem, const GeneratedProgram& program) {
  auto bytes = mem.bytes();
  std::fill(bytes.begin(), bytes.end(), uint8_t{0});
  program.init_memory(mem);
}

std::optional<std::string> diff_memory(std::span<const uint8_t> got,
                                       std::span<const uint8_t> want) {
  const size_t n = std::min(got.size(), want.size());
  if (std::memcmp(got.data(), want.data(), n) != 0) {
    for (size_t i = 0; i < n; ++i) {
      if (got[i] != want[i]) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "memory[%zu]: got 0x%02x, oracle 0x%02x", i, got[i],
                      want[i]);
        return std::string(buf);
      }
    }
  }
  // Size skew is fine as long as the overhang holds nothing.
  const auto longer = got.size() >= want.size() ? got : want;
  for (size_t i = n; i < longer.size(); ++i) {
    if (longer[i] != 0) {
      return "memory size skew with non-zero overhang at byte " +
             std::to_string(i);
    }
  }
  return std::nullopt;
}

// The planted "flipped-condition peephole": the first signed < in the
// module becomes <= -- one extra loop iteration, the classic off-by-one
// a real backend bug produces. Returns false when the module has no <.
bool plant_flip(Module& m) {
  for (Function& fn : m.functions()) {
    for (BasicBlock& bb : fn.blocks()) {
      for (Instruction& inst : bb.insts) {
        if (inst.op == Opcode::LtSI32) {
          inst.op = Opcode::LeSI32;
          return true;
        }
      }
    }
  }
  return false;
}

struct CellRun {
  std::optional<std::string> problem;
  bool internal = false;
  size_t runs = 0;
};

// Compares one executed result against the oracle; nullopt on agreement.
std::optional<std::string> diff_result(const SimResult& got,
                                       const Expected& want,
                                       const Memory& mem,
                                       const char* run_label) {
  if (got.trap != want.trap) {
    return std::string(run_label) + ": trap " + trap_name(got.trap) +
           ", oracle " + trap_name(want.trap);
  }
  if (got.trap == TrapKind::None && !values_equal(got.value, want.value)) {
    return std::string(run_label) + ": value " + value_str(got.value) +
           ", oracle " + value_str(want.value);
  }
  if (auto d = diff_memory(mem.bytes(), want.memory)) {
    return std::string(run_label) + ": " + *d;
  }
  return std::nullopt;
}

class CellExecutor {
 public:
  CellExecutor(const DiffOptions& options, uint64_t& store_counter,
               const GeneratedProgram& program, const ModuleHandle& oracle,
               std::map<std::string, ModuleHandle>& modules)
      : options_(options),
        store_counter_(store_counter),
        program_(program),
        oracle_(oracle),
        modules_(modules) {}

  CellRun run(const Cell& cell, const Expected& expected) {
    CellRun out;
    std::string store_dir;
    if (cell.warm_boot) store_dir = make_store_dir();

    Result<Engine> engine = build_engine(cell, store_dir);
    if (!engine.ok()) {
      out.internal = true;
      out.problem = "engine build failed: " + engine.error_text();
      cleanup_store(store_dir);
      return out;
    }

    ModuleHandle module = cell_module(*engine, cell, out);
    if (!module) {
      cleanup_store(store_dir);
      return out;  // problem already recorded
    }

    const size_t boots = cell.warm_boot ? 2 : 1;
    for (size_t boot = 0; boot < boots && !out.problem; ++boot) {
      run_boot(cell, *engine, module, expected, boot, out);
    }
    cleanup_store(store_dir);
    return out;
  }

 private:
  Result<Engine> build_engine(const Cell& cell,
                              const std::string& store_dir) const {
    Engine::Builder b;
    b.pool_threads(0).memory_bytes(options_.memory_bytes);
    b.alloc_policy(cell.alloc);
    if (!cell.offline_pipeline.empty()) {
      b.offline_pipeline(cell.offline_pipeline);
    }
    if (!cell.jit_pipeline.empty()) b.jit_pipeline(cell.jit_pipeline);
    switch (cell.tier) {
      case TierMode::Eager:
        b.eager();
        break;
      case TierMode::Tiered:
        b.tiered(2).tier0_dispatch(cell.dispatch, cell.fusion);
        break;
      case TierMode::Tier2:
        b.tiered(1).profiling(true).tier2(2).tier0_dispatch(cell.dispatch,
                                                            cell.fusion);
        break;
    }
    if (!store_dir.empty()) b.persistent_cache(store_dir);
    return b.build();
  }

  // The module a cell executes: the oracle's when the offline pipeline
  // is the default, a per-pipeline compile otherwise; with the plant
  // enabled, a flipped copy either way (the oracle stays intact).
  ModuleHandle cell_module(const Engine& engine, const Cell& cell,
                           CellRun& out) {
    const std::string& key = cell.offline_pipeline;
    if (const auto it = modules_.find(key); it != modules_.end()) {
      return it->second;
    }
    ModuleHandle handle;
    if (key.empty() && !options_.plant_miscompile) {
      handle = oracle_;
    } else {
      Result<ModuleHandle> compiled = engine.compile(program_.source);
      if (!compiled.ok()) {
        out.internal = true;
        out.problem = "cell compile failed (off=" +
                      (key.empty() ? std::string("default") : key) +
                      "):\n" + compiled.error_text();
        return {};
      }
      handle = std::move(compiled).value();
      if (options_.plant_miscompile) {
        Module flipped = *handle.get();  // fresh id; mutable copy
        plant_flip(flipped);
        handle = ModuleHandle::adopt(std::move(flipped));
      }
    }
    modules_.emplace(key, handle);
    return handle;
  }

  void run_boot(const Cell& cell, const Engine& engine,
                const ModuleHandle& module, const Expected& expected,
                size_t boot, CellRun& out) {
    Result<Deployment> dep =
        engine.deploy(module, {CoreSpec{.kind = cell.target}});
    if (!dep.ok()) {
      out.internal = true;
      out.problem = "deploy failed: " + dep.error_text();
      return;
    }
    Deployment d = std::move(dep).value();
    if (cell.tier == TierMode::Eager) d.warm_up().get();

    size_t n_runs = 1;
    if (cell.tier == TierMode::Tiered) n_runs = 3;   // cross promotion
    if (cell.tier == TierMode::Tier2) n_runs = 5;    // cross both tiers
    const std::vector<Value> args = program_.arg_values();
    uint64_t first_cycles = 0;

    for (size_t r = 0; r < n_runs; ++r) {
      reset_memory(d.memory(), program_);
      Result<SimResult> res =
          d.run_on(0, program_.entry, args, options_.step_budget);
      ++out.runs;
      if (!res.ok()) {
        out.internal = true;
        out.problem = "run failed: " + res.error_text();
        return;
      }
      char label[48];
      std::snprintf(label, sizeof label, "boot %zu run %zu (tier %u)", boot,
                    r, res.value().tier);
      if (auto d2 = diff_result(res.value(), expected, d.memory(), label)) {
        out.problem = std::move(d2);
        return;
      }
      if (r == 0) first_cycles = res.value().stats.cycles;
    }

    // Cycle determinism: an eager deployment is a pure function of
    // (module, memory image), including its simulated cycles.
    if (options_.check_cycles && cell.tier == TierMode::Eager) {
      reset_memory(d.memory(), program_);
      Result<SimResult> res =
          d.run_on(0, program_.entry, args, options_.step_budget);
      ++out.runs;
      if (res.ok() && res.value().stats.cycles != first_cycles) {
        out.problem = "cycle nondeterminism: " +
                      std::to_string(res.value().stats.cycles) + " vs " +
                      std::to_string(first_cycles) + " simulated cycles";
      }
    }
  }

  std::string make_store_dir() {
#ifdef __unix__
    const long pid = static_cast<long>(getpid());
#else
    const long pid = 0;
#endif
    const std::filesystem::path root =
        options_.store_root.empty()
            ? std::filesystem::temp_directory_path()
            : std::filesystem::path(options_.store_root);
    const std::filesystem::path dir =
        root / ("svc_fuzz_store_" + std::to_string(pid) + "_" +
                std::to_string(store_counter_++));
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);  // stale leftovers
    return dir.string();
  }

  static void cleanup_store(const std::string& dir) {
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  const DiffOptions& options_;
  uint64_t& store_counter_;
  const GeneratedProgram& program_;
  const ModuleHandle& oracle_;
  std::map<std::string, ModuleHandle>& modules_;
};

// The oracle: the portable switch interpreter over the default-pipeline
// module -- the simplest implementation in the repo, differential-tested
// since PR 1, deliberately free of every axis the cells vary.
Expected run_oracle(const GeneratedProgram& program, const Module& module,
                    const DiffOptions& options) {
  Memory mem(std::max<size_t>(options.memory_bytes, module.memory_hint()));
  program.init_memory(mem);
  Interpreter interp(module, mem);
  interp.set_dispatch(DispatchKind::Switch);
  interp.set_fusion(false);
  interp.set_step_budget(options.step_budget);
  const ExecResult r = interp.run(program.entry, program.arg_values());
  Expected e;
  e.trap = r.trap;
  if (r.value) e.value = *r.value;
  e.memory.assign(mem.bytes().begin(), mem.bytes().end());
  e.steps = r.steps;
  return e;
}

}  // namespace

DiffRunner::DiffRunner(DiffOptions options) : options_(std::move(options)) {}

DiffResult DiffRunner::run(const GeneratedProgram& program,
                           const std::vector<Cell>& cells) {
  DiffResult result;
  Result<Module> oracle = compile_module(program.source);
  if (!oracle.ok()) {
    result.internal_error = true;
    result.detail =
        "generated program failed to compile:\n" + oracle.error_text();
    return result;
  }
  const ModuleHandle oracle_handle =
      ModuleHandle::adopt(std::move(oracle).value());
  const Expected expected =
      run_oracle(program, *oracle_handle.get(), options_);
  if (oracle_out_of_contract(expected, options_)) {
    result.detail = "skipped: oracle hit the step budget";
    return result;  // ok(): out of contract, not a divergence
  }

  std::map<std::string, ModuleHandle> modules;
  CellExecutor exec(options_, store_counter_, program, oracle_handle,
                    modules);
  for (const Cell& cell : cells) {
    const CellRun r = exec.run(cell, expected);
    ++result.cells_run;
    result.runs += r.runs;
    if (r.problem) {
      result.diverged = !r.internal;
      result.internal_error = r.internal;
      result.cell_key = cell.key();
      result.detail = *r.problem;
      return result;
    }
  }
  return result;
}

std::optional<std::string> DiffRunner::run_cell(
    const GeneratedProgram& program, const Cell& cell) {
  Result<Module> oracle = compile_module(program.source);
  if (!oracle.ok()) return std::nullopt;  // not a divergence: no oracle
  const ModuleHandle oracle_handle =
      ModuleHandle::adopt(std::move(oracle).value());
  const Expected expected =
      run_oracle(program, *oracle_handle.get(), options_);
  if (oracle_out_of_contract(expected, options_)) return std::nullopt;
  std::map<std::string, ModuleHandle> modules;
  CellExecutor exec(options_, store_counter_, program, oracle_handle,
                    modules);
  CellRun r = exec.run(cell, expected);
  if (r.internal) return std::nullopt;  // harness problem, not a diff
  return r.problem;
}

}  // namespace svc::fuzz
