// Differential execution: one generated program, one tier-0
// switch-interpreter oracle, N configuration cells (src/fuzz/cells.h) --
// every cell must reproduce the oracle's return value, trap kind, and
// final memory image byte for byte; deterministic cells must also
// reproduce their own simulated cycle counts run-to-run. Any mismatch is
// a divergence the shrinker (src/fuzz/shrink.h) reduces to a committed
// reproducer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/cells.h"
#include "fuzz/generator.h"
#include "support/result.h"

namespace svc::fuzz {

struct DiffOptions {
  // Re-run deterministic (eager, pool-free) cells and require identical
  // simulated cycle counts -- the timing model is part of the contract.
  bool check_cycles = false;
  // Emulates a miscompiling backend pass: after each cell-side compile,
  // the first signed-less-than in the module is flipped to
  // less-or-equal (the classic off-by-one peephole bug). The oracle
  // module is left intact, so the harness must catch the plant. Used by
  // the self-test (tests/fuzz_test.cpp) and `svc_fuzz --plant-miscompile`.
  bool plant_miscompile = false;
  // Oracle interpreter step bound; generated programs sit far below it.
  uint64_t step_budget = uint64_t{1} << 24;
  size_t memory_bytes = 1u << 20;
  // Directory for warm-boot cells' persistent stores; empty uses the
  // process temp directory. Each cell makes and removes a unique subdir.
  std::string store_root;
};

/// Outcome of diffing one program against a cell set.
struct DiffResult {
  // First divergence, if any: which cell and a human-readable account.
  bool diverged = false;
  std::string cell_key;
  std::string detail;
  // True when something failed *outside* the differential contract (a
  // generated program that does not compile, an engine build error):
  // harness bugs, reported distinctly from miscompiles.
  bool internal_error = false;
  size_t cells_run = 0;
  size_t runs = 0;  // total executions across cells (tiered cells run 3x+)

  [[nodiscard]] bool ok() const { return !diverged && !internal_error; }
};

class DiffRunner {
 public:
  explicit DiffRunner(DiffOptions options = {});

  /// Runs the oracle once, then every cell; stops at the first
  /// divergence. Deterministic in (program, cells, options).
  [[nodiscard]] DiffResult run(const GeneratedProgram& program,
                               const std::vector<Cell>& cells);

  /// Diffs one cell only (the shrinker's predicate). nullopt = agrees;
  /// otherwise the divergence (or internal-error) detail.
  [[nodiscard]] std::optional<std::string> run_cell(
      const GeneratedProgram& program, const Cell& cell);

  [[nodiscard]] const DiffOptions& options() const { return options_; }

 private:
  DiffOptions options_;
  uint64_t store_counter_ = 0;
};

}  // namespace svc::fuzz
