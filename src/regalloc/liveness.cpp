#include "regalloc/liveness.h"

#include <algorithm>
#include <map>

namespace svc {

std::vector<uint32_t> successors(const MFunction& fn, uint32_t block) {
  const MBlock& bb = fn.blocks[block];
  if (bb.insts.empty()) return {};
  const MInst& term = bb.insts.back();
  if (is_machine_only(term.op)) return {};
  switch (base_opcode(term.op)) {
    case Opcode::Jump:
      return {term.a};
    case Opcode::BranchIf:
      if (term.a == term.b) return {term.a};
      return {term.a, term.b};
    default:
      return {};
  }
}

void for_each_use(const MFunction& fn, const MInst& inst,
                  const std::function<void(Reg)>& f) {
  if (inst.s0.valid) f(inst.s0);
  if (inst.s1.valid) f(inst.s1);
  if (inst.s2.valid) f(inst.s2);
  if (!is_machine_only(inst.op) && base_opcode(inst.op) == Opcode::Call) {
    for (const Reg& r : fn.call_sites[static_cast<size_t>(inst.imm)]) f(r);
  }
}

std::optional<Reg> def_of(const MInst& inst) {
  if (inst.dst.valid) return inst.dst;
  return std::nullopt;
}

Liveness::Liveness(size_t num_blocks, size_t num_keys)
    : num_keys_(num_keys),
      in_(num_blocks, BitRow((num_keys + 63) / 64, 0)),
      out_(num_blocks, BitRow((num_keys + 63) / 64, 0)) {}

void Liveness::for_each_live_in(uint32_t block,
                                const std::function<void(uint32_t)>& f) const {
  for (uint32_t key = 0; key < num_keys_; ++key) {
    if (test(in_[block], key)) f(key);
  }
}

void Liveness::for_each_live_out(
    uint32_t block, const std::function<void(uint32_t)>& f) const {
  for (uint32_t key = 0; key < num_keys_; ++key) {
    if (test(out_[block], key)) f(key);
  }
}

Liveness compute_liveness(const MFunction& fn) {
  const uint32_t max_v =
      std::max({fn.num_vregs[0], fn.num_vregs[1], fn.num_vregs[2]});
  const size_t num_keys =
      static_cast<size_t>(max_v) * kNumRegClasses + kNumRegClasses;
  const size_t nb = fn.blocks.size();
  Liveness lv(nb, num_keys);
  const size_t words = (num_keys + 63) / 64;

  // Per-block gen (upward-exposed uses) and kill (defs) sets.
  std::vector<Liveness::BitRow> gen(nb, Liveness::BitRow(words, 0));
  std::vector<Liveness::BitRow> kill(nb, Liveness::BitRow(words, 0));
  for (size_t b = 0; b < nb; ++b) {
    for (const MInst& inst : fn.blocks[b].insts) {
      for_each_use(fn, inst, [&](Reg r) {
        const uint32_t k = vreg_key(r);
        if (!Liveness::test(kill[b], k)) Liveness::set(gen[b], k);
      });
      if (const auto d = def_of(inst)) Liveness::set(kill[b], vreg_key(*d));
    }
  }

  // Backward fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t bi = nb; bi-- > 0;) {
      const auto b = static_cast<uint32_t>(bi);
      Liveness::BitRow new_out(words, 0);
      for (uint32_t succ : successors(fn, b)) {
        for (size_t w = 0; w < words; ++w) new_out[w] |= lv.in_[succ][w];
      }
      Liveness::BitRow new_in(words);
      for (size_t w = 0; w < words; ++w) {
        new_in[w] = gen[b][w] | (new_out[w] & ~kill[b][w]);
      }
      if (new_out != lv.out_[b] || new_in != lv.in_[b]) {
        lv.out_[b] = std::move(new_out);
        lv.in_[b] = std::move(new_in);
        changed = true;
      }
    }
  }
  return lv;
}

LinearOrder linearize(const MFunction& fn) {
  LinearOrder order;
  order.block_start.resize(fn.blocks.size());
  uint32_t pos = 0;
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    order.block_start[b] = pos;
    pos += static_cast<uint32_t>(fn.blocks[b].insts.size());
  }
  order.total = pos;
  return order;
}

namespace {

Reg key_to_reg(uint32_t key) {
  return Reg::make(static_cast<RegClass>(key % kNumRegClasses),
                   key / kNumRegClasses);
}

}  // namespace

std::vector<LiveInterval> build_intervals(const MFunction& fn,
                                          const LinearOrder& order,
                                          const Liveness* precise) {
  std::map<uint32_t, LiveInterval> by_key;  // ordered for determinism

  // Which vregs are SVIL locals (or de-vectorized lanes of locals)?
  std::map<uint32_t, uint32_t> local_of;
  for (uint32_t i = 0; i < fn.local_regs.size(); ++i) {
    for (const Reg& r : fn.local_regs[i]) {
      if (r.valid) local_of[vreg_key(r)] = i;
    }
  }

  auto extend = [&](Reg r, uint32_t pos, bool count_use) {
    const uint32_t key = vreg_key(r);
    auto [it, inserted] = by_key.try_emplace(key);
    LiveInterval& iv = it->second;
    if (inserted) {
      iv.vreg = r;
      iv.start = pos;
      iv.end = pos;
      const auto lit = local_of.find(key);
      if (lit != local_of.end()) {
        iv.is_local = true;
        iv.local_idx = lit->second;
      }
    } else {
      iv.start = std::min(iv.start, pos);
      iv.end = std::max(iv.end, pos);
    }
    if (count_use) iv.use_count += 1;
  };

  // Parameters are defined at entry.
  for (const Reg& p : fn.param_regs) {
    if (p.valid) extend(p, 0, false);
  }

  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    const uint32_t bstart = order.block_start[b];
    const uint32_t bend =
        bstart +
        (fn.blocks[b].insts.empty()
             ? 0
             : static_cast<uint32_t>(fn.blocks[b].insts.size()) - 1);
    if (precise) {
      precise->for_each_live_in(
          b, [&](uint32_t key) { extend(key_to_reg(key), bstart, false); });
      precise->for_each_live_out(
          b, [&](uint32_t key) { extend(key_to_reg(key), bend, false); });
    }
    for (uint32_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
      const MInst& inst = fn.blocks[b].insts[i];
      const uint32_t pos = order.pos(b, i);
      for_each_use(fn, inst, [&](Reg r) { extend(r, pos, true); });
      if (const auto d = def_of(inst)) extend(*d, pos, true);
    }
  }

  if (!precise) {
    // Naive mode: locals conservatively live for the whole function.
    for (auto& [key, iv] : by_key) {
      if (iv.is_local) {
        iv.start = 0;
        iv.end = order.total == 0 ? 0 : order.total - 1;
      }
    }
  }

  std::vector<LiveInterval> out;
  out.reserve(by_key.size());
  for (auto& [key, iv] : by_key) out.push_back(iv);
  std::sort(out.begin(), out.end(),
            [](const LiveInterval& a, const LiveInterval& b) {
              if (a.start != b.start) return a.start < b.start;
              return vreg_key(a.vreg) < vreg_key(b.vreg);
            });
  return out;
}

}  // namespace svc
