#include "regalloc/interference.h"

namespace svc {

size_t InterferenceGraph::num_edges() const {
  size_t n = 0;
  for (const auto& s : adj_) n += s.size();
  return n / 2;
}

InterferenceGraph build_interference(const MFunction& fn,
                                     const Liveness& live) {
  InterferenceGraph graph(live.num_keys());

  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    // Live set seeded from live-out, walked backward.
    std::set<uint32_t> live_now;
    live.for_each_live_out(b, [&](uint32_t key) { live_now.insert(key); });

    const auto& insts = fn.blocks[b].insts;
    for (size_t i = insts.size(); i-- > 0;) {
      const MInst& inst = insts[i];
      if (const auto d = def_of(inst)) {
        const uint32_t dkey = vreg_key(*d);
        for (uint32_t other : live_now) {
          // Only same-class vregs compete for registers.
          if (other % kNumRegClasses == dkey % kNumRegClasses) {
            graph.add_edge(dkey, other);
          }
        }
        live_now.erase(dkey);
      }
      for_each_use(fn, inst,
                   [&](Reg r) { live_now.insert(vreg_key(r)); });
    }
    // Parameters interfere with everything live at entry alongside them.
    if (b == 0) {
      for (const Reg& p : fn.param_regs) {
        if (!p.valid) continue;
        const uint32_t pkey = vreg_key(p);
        for (uint32_t other : live_now) {
          if (other != pkey && other % kNumRegClasses == pkey % kNumRegClasses) {
            graph.add_edge(pkey, other);
          }
        }
      }
    }
  }
  return graph;
}

}  // namespace svc
