// Dataflow liveness and live-interval construction over virtual-register
// machine code. Two construction modes mirror the paper's split-compilation
// trade-off (S4, Diouf et al. [18]):
//   - precise: iterative dataflow (what an *offline* or expensive online
//     allocator can afford);
//   - naive: no dataflow -- locals are assumed live for the whole
//     function, temporaries within their defining block (what a
//     time-budgeted JIT baseline does).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "targets/machine.h"

namespace svc {

/// Successor blocks of `block` (from its terminator).
[[nodiscard]] std::vector<uint32_t> successors(const MFunction& fn,
                                               uint32_t block);

/// Invokes `f` for every register read by `inst` (including call-site
/// argument registers).
void for_each_use(const MFunction& fn, const MInst& inst,
                  const std::function<void(Reg)>& f);

/// The register written by `inst`, if any.
[[nodiscard]] std::optional<Reg> def_of(const MInst& inst);

/// Flattened dense id for a virtual register (class-interleaved).
[[nodiscard]] inline uint32_t vreg_key(Reg r) {
  return r.idx * static_cast<uint32_t>(kNumRegClasses) +
         static_cast<uint32_t>(r.cls);
}

class Liveness {
 public:
  Liveness(size_t num_blocks, size_t num_keys);

  [[nodiscard]] bool live_in(uint32_t block, uint32_t key) const {
    return test(in_[block], key);
  }
  [[nodiscard]] bool live_out(uint32_t block, uint32_t key) const {
    return test(out_[block], key);
  }
  [[nodiscard]] size_t num_keys() const { return num_keys_; }

  void for_each_live_in(uint32_t block,
                        const std::function<void(uint32_t)>& f) const;
  void for_each_live_out(uint32_t block,
                         const std::function<void(uint32_t)>& f) const;

 private:
  friend Liveness compute_liveness(const MFunction& fn);
  using BitRow = std::vector<uint64_t>;
  static bool test(const BitRow& row, uint32_t key) {
    return (row[key >> 6] >> (key & 63)) & 1;
  }
  static void set(BitRow& row, uint32_t key) {
    row[key >> 6] |= uint64_t{1} << (key & 63);
  }
  size_t num_keys_;
  std::vector<BitRow> in_, out_;
};

[[nodiscard]] Liveness compute_liveness(const MFunction& fn);

/// One allocation unit: a virtual register with a coarse [start, end]
/// range over the linearized instruction order.
struct LiveInterval {
  Reg vreg;
  uint32_t start = 0;
  uint32_t end = 0;
  bool is_local = false;    // corresponds to an SVIL local (or a lane of one)
  uint32_t local_idx = 0;   // valid when is_local
  uint32_t use_count = 0;   // number of reads+writes (spill-cost proxy)
};

/// Linearized instruction numbering: global position of (block, index).
struct LinearOrder {
  std::vector<uint32_t> block_start;
  uint32_t total = 0;

  [[nodiscard]] uint32_t pos(uint32_t block, uint32_t idx) const {
    return block_start[block] + idx;
  }
};

[[nodiscard]] LinearOrder linearize(const MFunction& fn);

/// Builds intervals. `precise == nullptr` selects the naive JIT mode.
[[nodiscard]] std::vector<LiveInterval> build_intervals(
    const MFunction& fn, const LinearOrder& order, const Liveness* precise);

}  // namespace svc
