// Register allocation entry point with four policies bracketing the
// split-compilation experiment (paper S4, Diouf et al. [18]):
//
//   NaiveOnline    fastest JIT baseline: no dataflow liveness (locals are
//                  whole-function intervals), round-robin eviction.
//   LinearScan     classic Poletto-Sarkar: dataflow liveness + furthest-
//                  end eviction. Better code, more JIT time.
//   SplitGuided    the paper's split allocator: *naive-speed* interval
//                  construction, eviction order read from the offline
//                  SpillPriority annotation. Linear-time online.
//   OfflineChaitin Chaitin-Briggs graph coloring over full interference;
//                  the offline quality bound (too slow for a JIT budget).
//
// All policies share the spill rewriter: spilled operands are reloaded
// into reserved scratch registers (allocatable_count + 0..2 per class);
// spilled call arguments and parameters become slot-flagged registers.
#pragma once

#include <cstdint>
#include <optional>

#include "bytecode/annotations.h"
#include "targets/machine.h"

namespace svc {

enum class AllocPolicy : uint8_t {
  NaiveOnline,
  LinearScan,
  SplitGuided,
  OfflineChaitin,
};

[[nodiscard]] const char* alloc_policy_name(AllocPolicy p);

struct AllocResult {
  uint32_t spilled_vregs = 0;
  uint32_t static_spill_loads = 0;
  uint32_t static_spill_stores = 0;
  // Abstract work units: interval/graph operations performed, a
  // deterministic proxy for allocation time (wall clock is also measured
  // by bench/jit_compile_time via google-benchmark).
  uint64_t work_units = 0;
};

/// Allocates `fn` in place (vregs -> physical regs + spill code).
/// `hints` is only consulted by SplitGuided and may be null (falls back
/// to NaiveOnline behavior, per the annotations-are-advisory rule).
AllocResult allocate_registers(MFunction& fn, const MachineDesc& desc,
                               AllocPolicy policy,
                               const SpillPriorityInfo* hints = nullptr);

}  // namespace svc
