// Interference graph over virtual registers, built from precise liveness
// by a backward walk per block (def interferes with everything live after
// it). Used by the offline Chaitin-Briggs allocator -- this construction
// is the "expensive analysis" the split allocator avoids paying online.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "regalloc/liveness.h"
#include "targets/machine.h"

namespace svc {

class InterferenceGraph {
 public:
  explicit InterferenceGraph(size_t num_keys) : adj_(num_keys) {}

  void add_edge(uint32_t a, uint32_t b) {
    if (a == b) return;
    adj_[a].insert(b);
    adj_[b].insert(a);
  }
  [[nodiscard]] bool interferes(uint32_t a, uint32_t b) const {
    return adj_[a].count(b) != 0;
  }
  [[nodiscard]] const std::set<uint32_t>& neighbors(uint32_t key) const {
    return adj_[key];
  }
  [[nodiscard]] size_t degree(uint32_t key) const { return adj_[key].size(); }
  [[nodiscard]] size_t num_keys() const { return adj_.size(); }
  [[nodiscard]] size_t num_edges() const;

 private:
  std::vector<std::set<uint32_t>> adj_;
};

/// Builds the interference graph for `fn` using `live`.
[[nodiscard]] InterferenceGraph build_interference(const MFunction& fn,
                                                   const Liveness& live);

}  // namespace svc
