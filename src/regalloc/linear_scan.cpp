#include "regalloc/linear_scan.h"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "regalloc/alloc_common.h"
#include "regalloc/chaitin.h"
#include "regalloc/liveness.h"
#include "support/diagnostics.h"

namespace svc {

const char* alloc_policy_name(AllocPolicy p) {
  switch (p) {
    case AllocPolicy::NaiveOnline: return "naive-online";
    case AllocPolicy::LinearScan: return "linear-scan";
    case AllocPolicy::SplitGuided: return "split-guided";
    case AllocPolicy::OfflineChaitin: return "offline-chaitin";
  }
  return "?";
}

using regalloc_detail::Assignment;
using regalloc_detail::rewrite_spills;

namespace {

/// Core linear scan over sorted intervals. `evict_rank(interval)` returns
/// the preference for evicting an interval when pressure is exceeded:
/// the candidate (including the incoming interval itself) with the
/// *highest* rank is spilled.
AllocResult run_linear_scan(
    MFunction& fn, const MachineDesc& desc,
    const std::vector<LiveInterval>& intervals,
    const std::function<double(const LiveInterval&, uint64_t seq)>& evict_rank) {
  AllocResult result;
  std::map<uint32_t, Assignment> assign;  // vreg key -> assignment

  // Per-class allocation state.
  struct ActiveEntry {
    LiveInterval iv;
    uint32_t preg;
    uint64_t seq;  // allocation order (for round-robin ranks)
  };
  struct ClassState {
    std::vector<bool> preg_used;
    std::vector<ActiveEntry> active;
    uint32_t next_slot = 0;
  };
  ClassState cls_state[kNumRegClasses];
  for (size_t c = 0; c < kNumRegClasses; ++c) {
    cls_state[c].preg_used.assign(desc.regs[c], false);
  }

  uint64_t seq = 0;
  for (const LiveInterval& iv : intervals) {
    ClassState& st = cls_state[static_cast<size_t>(iv.vreg.cls)];
    result.work_units += 1;

    // Expire intervals that ended before this one starts.
    for (size_t i = 0; i < st.active.size();) {
      result.work_units += 1;
      if (st.active[i].iv.end < iv.start) {
        st.preg_used[st.active[i].preg] = false;
        st.active.erase(st.active.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }

    const uint32_t num_pregs =
        static_cast<uint32_t>(st.preg_used.size());
    // Find a free physical register.
    std::optional<uint32_t> free;
    for (uint32_t p = 0; p < num_pregs; ++p) {
      if (!st.preg_used[p]) {
        free = p;
        break;
      }
    }

    if (free) {
      st.preg_used[*free] = true;
      st.active.push_back({iv, *free, seq});
      assign[vreg_key(iv.vreg)] = {false, *free, 0};
    } else if (num_pregs == 0) {
      // Classes with no registers at all (e.g. Vec on scalar targets
      // before de-vectorization) should never reach allocation.
      fatal("linear scan: no registers in class");
    } else {
      // Pressure exceeded: evict the worst-ranked candidate.
      double worst_rank = evict_rank(iv, seq);
      int victim = -1;  // -1 = spill the incoming interval
      for (size_t i = 0; i < st.active.size(); ++i) {
        const double r = evict_rank(st.active[i].iv, st.active[i].seq);
        result.work_units += 1;
        if (r > worst_rank) {
          worst_rank = r;
          victim = static_cast<int>(i);
        }
      }
      if (victim < 0) {
        assign[vreg_key(iv.vreg)] = {true, 0, st.next_slot++};
        result.spilled_vregs += 1;
      } else {
        const ActiveEntry evicted = st.active[static_cast<size_t>(victim)];
        st.active.erase(st.active.begin() + victim);
        assign[vreg_key(evicted.iv.vreg)] = {true, 0, st.next_slot++};
        result.spilled_vregs += 1;
        st.active.push_back({iv, evicted.preg, seq});
        assign[vreg_key(iv.vreg)] = {false, evicted.preg, 0};
      }
    }
    ++seq;
  }

  for (size_t c = 0; c < kNumRegClasses; ++c) {
    fn.num_slots[c] = cls_state[c].next_slot;
  }
  rewrite_spills(fn, desc, assign, result);
  fn.allocated = true;
  return result;
}

}  // namespace

namespace regalloc_detail {

void rewrite_spills(MFunction& fn, const MachineDesc& desc,
                    const std::map<uint32_t, Assignment>& assign,
                    AllocResult& result) {
  auto lookup = [&](Reg r) -> const Assignment* {
    const auto it = assign.find(vreg_key(r));
    return it == assign.end() ? nullptr : &it->second;
  };

  // Parameters and call-site argument registers: spilled ones become
  // slot-flagged registers (read/written in the frame's spill area).
  auto map_flat = [&](Reg& r) {
    if (!r.valid) return;
    if (const Assignment* a = lookup(r)) {
      r = a->spilled ? Reg::slot(r.cls, a->slot) : Reg::make(r.cls, a->preg);
    }
  };
  for (Reg& r : fn.param_regs) map_flat(r);
  for (auto& site : fn.call_sites) {
    for (Reg& r : site) map_flat(r);
  }
  for (auto& lane_regs : fn.local_regs) {
    for (Reg& r : lane_regs) map_flat(r);
  }

  for (MBlock& block : fn.blocks) {
    std::vector<MInst> out;
    out.reserve(block.insts.size());
    for (MInst inst : block.insts) {
      uint32_t next_scratch = 0;
      auto map_src = [&](Reg& r) {
        if (!r.valid) return;
        const Assignment* a = lookup(r);
        if (!a) return;
        if (!a->spilled) {
          r = Reg::make(r.cls, a->preg);
          return;
        }
        // Reload into a scratch register.
        const uint32_t scratch = desc.regs[static_cast<size_t>(r.cls)] +
                                 (next_scratch++ % 3);
        MInst load;
        load.op = MOp::SpillLoad;
        load.dst = Reg::make(r.cls, scratch);
        load.imm = a->slot;
        out.push_back(load);
        result.static_spill_loads += 1;
        r = load.dst;
      };
      map_src(inst.s0);
      map_src(inst.s1);
      map_src(inst.s2);

      std::optional<MInst> store_after;
      if (inst.dst.valid) {
        const Assignment* a = lookup(inst.dst);
        if (a && a->spilled) {
          const uint32_t scratch = desc.regs[static_cast<size_t>(inst.dst.cls)];
          const Reg scratch_reg = Reg::make(inst.dst.cls, scratch);
          MInst store;
          store.op = MOp::SpillStore;
          store.s0 = scratch_reg;
          store.imm = a->slot;
          store_after = store;
          result.static_spill_stores += 1;
          inst.dst = scratch_reg;
        } else if (a) {
          inst.dst = Reg::make(inst.dst.cls, a->preg);
        }
      }
      out.push_back(inst);
      if (store_after) out.push_back(*store_after);
    }
    block.insts = std::move(out);
  }
}

}  // namespace regalloc_detail

AllocResult allocate_registers(MFunction& fn, const MachineDesc& desc,
                               AllocPolicy policy,
                               const SpillPriorityInfo* hints) {
  if (policy == AllocPolicy::OfflineChaitin) {
    return chaitin_allocate(fn, desc);
  }

  const LinearOrder order = linearize(fn);
  std::optional<Liveness> live;
  std::vector<LiveInterval> intervals;
  switch (policy) {
    case AllocPolicy::LinearScan: {
      live = compute_liveness(fn);
      intervals = build_intervals(fn, order, &*live);
      break;
    }
    case AllocPolicy::NaiveOnline:
    case AllocPolicy::SplitGuided:
      intervals = build_intervals(fn, order, nullptr);
      break;
    case AllocPolicy::OfflineChaitin:
      break;  // handled above
  }

  switch (policy) {
    case AllocPolicy::NaiveOnline:
      // Round-robin-ish: evict the oldest allocated interval, blind to
      // live ranges and use counts.
      return run_linear_scan(fn, desc, intervals,
                             [](const LiveInterval&, uint64_t seq) {
                               return -static_cast<double>(seq);
                             });
    case AllocPolicy::LinearScan:
      // Classic: evict the interval ending furthest in the future.
      return run_linear_scan(fn, desc, intervals,
                             [](const LiveInterval& iv, uint64_t) {
                               return static_cast<double>(iv.end);
                             });
    case AllocPolicy::SplitGuided: {
      // Offline eviction ranks over SVIL locals; temporaries are poor
      // eviction candidates (short-lived by construction), so they rank
      // below every annotated local.
      std::map<uint32_t, double> local_rank;  // local idx -> rank
      if (hints) {
        for (size_t i = 0; i < hints->eviction_order.size(); ++i) {
          // First entry = best spill candidate = highest eviction rank.
          local_rank[hints->eviction_order[i]] =
              static_cast<double>(hints->eviction_order.size() - i);
        }
      }
      return run_linear_scan(
          fn, desc, intervals,
          [&local_rank](const LiveInterval& iv, uint64_t) {
            if (iv.is_local) {
              const auto it = local_rank.find(iv.local_idx);
              if (it != local_rank.end()) return it->second;
              return 0.5;  // unranked local
            }
            return 0.0;  // temporaries: evict last
          });
    }
    case AllocPolicy::OfflineChaitin:
      break;
  }
  fatal("allocate_registers: unreachable");
}

}  // namespace svc
