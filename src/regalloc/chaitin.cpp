#include "regalloc/chaitin.h"

#include <algorithm>
#include <limits>
#include <map>

#include "regalloc/alloc_common.h"
#include "regalloc/interference.h"
#include "regalloc/liveness.h"

namespace svc {

using regalloc_detail::Assignment;
using regalloc_detail::rewrite_spills;

AllocResult chaitin_allocate(MFunction& fn, const MachineDesc& desc) {
  AllocResult result;
  const LinearOrder order = linearize(fn);
  const Liveness live = compute_liveness(fn);
  const InterferenceGraph graph = build_interference(fn, live);
  const std::vector<LiveInterval> intervals =
      build_intervals(fn, order, &live);
  result.work_units = graph.num_edges() + intervals.size();

  // Spill cost: uses per unit of live range (classic Chaitin heuristic).
  std::map<uint32_t, double> cost;
  std::map<uint32_t, LiveInterval> info;
  for (const LiveInterval& iv : intervals) {
    const uint32_t key = vreg_key(iv.vreg);
    const double len = 1.0 + (iv.end - iv.start);
    cost[key] = iv.use_count / len;
    info[key] = iv;
  }

  // Simplify: repeatedly remove the lowest-degree node; when stuck, pick
  // the cheapest spill candidate (still pushed -- optimistic coloring).
  std::map<uint32_t, size_t> degree;
  std::vector<uint32_t> nodes;
  for (const auto& [key, iv] : info) {
    nodes.push_back(key);
    degree[key] = 0;
  }
  for (uint32_t key : nodes) {
    size_t d = 0;
    for (uint32_t n : graph.neighbors(key)) {
      if (degree.count(n)) ++d;
    }
    degree[key] = d;
  }

  auto k_for = [&](uint32_t key) {
    return desc.regs[key % kNumRegClasses];
  };

  std::vector<uint32_t> stack;
  std::set<uint32_t> removed;
  std::set<uint32_t> remaining(nodes.begin(), nodes.end());
  while (!remaining.empty()) {
    result.work_units += remaining.size();
    // Find a trivially colorable node.
    std::optional<uint32_t> pick;
    for (uint32_t key : remaining) {
      if (degree[key] < k_for(key)) {
        pick = key;
        break;
      }
    }
    if (!pick) {
      // Stuck: choose the cheapest-to-spill candidate.
      double best = std::numeric_limits<double>::infinity();
      for (uint32_t key : remaining) {
        const double c = cost[key] / (1.0 + static_cast<double>(degree[key]));
        if (c < best) {
          best = c;
          pick = key;
        }
      }
    }
    stack.push_back(*pick);
    remaining.erase(*pick);
    removed.insert(*pick);
    for (uint32_t n : graph.neighbors(*pick)) {
      if (remaining.count(n)) --degree[n];
    }
  }

  // Optimistic coloring.
  std::map<uint32_t, Assignment> assign;
  uint32_t next_slot[kNumRegClasses] = {0, 0, 0};
  for (size_t i = stack.size(); i-- > 0;) {
    const uint32_t key = stack[i];
    const uint32_t k = k_for(key);
    std::vector<bool> taken(k, false);
    for (uint32_t n : graph.neighbors(key)) {
      const auto it = assign.find(n);
      if (it != assign.end() && !it->second.spilled) {
        if (it->second.preg < k) taken[it->second.preg] = true;
      }
    }
    std::optional<uint32_t> color;
    for (uint32_t c = 0; c < k; ++c) {
      if (!taken[c]) {
        color = c;
        break;
      }
    }
    if (color) {
      assign[key] = {false, *color, 0};
    } else {
      const auto cls = static_cast<size_t>(key % kNumRegClasses);
      assign[key] = {true, 0, next_slot[cls]++};
      result.spilled_vregs += 1;
    }
  }

  for (size_t c = 0; c < kNumRegClasses; ++c) {
    fn.num_slots[c] = next_slot[c];
  }
  rewrite_spills(fn, desc, assign, result);
  fn.allocated = true;
  return result;
}

}  // namespace svc
