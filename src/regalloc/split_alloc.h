// Offline half of split register allocation (paper S4, Diouf et al. [18]).
//
// The offline compiler can afford global analysis of local variables'
// live spans and use densities. The result is distilled into a compact,
// *target-independent* SpillPriority annotation: locals sorted by eviction
// preference. Because the ranking is an order, not an assignment, it is
// valid for any register count K -- the online allocator stays linear-time
// and simply consults the order when pressure exceeds its K.
#pragma once

#include "bytecode/annotations.h"
#include "bytecode/function.h"

namespace svc {

/// Analyzes `fn` and computes the portable spill-priority annotation.
[[nodiscard]] SpillPriorityInfo compute_spill_priorities(const Function& fn);

/// Convenience: computes and attaches the annotation to `fn` (replacing
/// any existing SpillPriority annotation).
void annotate_spill_priorities(Function& fn);

}  // namespace svc
