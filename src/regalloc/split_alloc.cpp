#include "regalloc/split_alloc.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace svc {

SpillPriorityInfo compute_spill_priorities(const Function& fn) {
  const size_t num_locals = fn.num_locals();

  // Linearized positions of block starts.
  std::vector<uint32_t> block_start(fn.num_blocks(), 0);
  uint32_t pos = 0;
  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    block_start[b] = pos;
    pos += static_cast<uint32_t>(fn.block(b).insts.size());
  }
  const uint32_t total = pos;

  // Loop-depth estimate per block: each back-edge (branch to an earlier
  // block) deepens every block in [target, source]. The offline lowering
  // emits blocks in source order, so this matches the real loop forest on
  // structured control flow.
  std::vector<uint32_t> depth(fn.num_blocks(), 0);
  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    const Instruction& term = fn.block(b).terminator();
    auto mark = [&](uint32_t target) {
      if (target <= b) {
        for (uint32_t d = target; d <= b; ++d) depth[d] += 1;
      }
    };
    if (term.op == Opcode::Jump) mark(term.a);
    if (term.op == Opcode::BranchIf) {
      mark(term.a);
      mark(term.b);
    }
  }

  struct LocalStats {
    double weighted_uses = 0;
    uint32_t first = UINT32_MAX;
    uint32_t last = 0;
    bool seen = false;
  };
  std::vector<LocalStats> stats(num_locals);

  for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
    const double weight = std::pow(10.0, std::min<uint32_t>(depth[b], 4));
    for (uint32_t i = 0; i < fn.block(b).insts.size(); ++i) {
      const Instruction& inst = fn.block(b).insts[i];
      if (inst.op != Opcode::LocalGet && inst.op != Opcode::LocalSet) continue;
      LocalStats& s = stats[inst.a];
      const uint32_t p = block_start[b] + i;
      s.weighted_uses += weight;
      s.first = std::min(s.first, p);
      s.last = std::max(s.last, p);
      s.seen = true;
    }
  }
  // Parameters are live from entry.
  for (uint32_t p = 0; p < fn.num_params(); ++p) {
    stats[p].first = 0;
    stats[p].seen = true;
  }

  // Density = weighted uses per unit of span. Low density = long-lived,
  // rarely-touched local = ideal spill candidate.
  std::vector<std::pair<double, uint32_t>> ranked;
  for (uint32_t l = 0; l < num_locals; ++l) {
    const LocalStats& s = stats[l];
    if (!s.seen) continue;
    const double span =
        1.0 + (s.last >= s.first ? s.last - s.first : total);
    ranked.emplace_back(s.weighted_uses / span, l);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  SpillPriorityInfo info;
  info.eviction_order.reserve(ranked.size());
  info.weights.reserve(ranked.size());
  for (const auto& [density, local] : ranked) {
    info.eviction_order.push_back(local);
    info.weights.push_back(
        static_cast<uint32_t>(std::min(density * 256.0, 1e9)));
  }
  return info;
}

void annotate_spill_priorities(Function& fn) {
  auto& anns = fn.annotations();
  anns.erase(std::remove_if(anns.begin(), anns.end(),
                            [](const Annotation& a) {
                              return a.kind == AnnotationKind::SpillPriority;
                            }),
             anns.end());
  anns.push_back(compute_spill_priorities(fn).encode());
}

}  // namespace svc
