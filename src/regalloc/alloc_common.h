// Internals shared between the linear-scan and Chaitin-Briggs allocators:
// the per-vreg assignment record and the spill rewriter.
#pragma once

#include <cstdint>
#include <map>

#include "regalloc/linear_scan.h"
#include "targets/machine.h"

namespace svc {
namespace regalloc_detail {

struct Assignment {
  bool spilled = false;
  uint32_t preg = 0;  // valid when !spilled
  uint32_t slot = 0;  // valid when spilled
};

/// Rewrites `fn` in place: maps vregs to physical registers, inserts
/// scratch-register reload/store code around spilled operands, and turns
/// spilled parameters / call arguments into slot-flagged registers.
void rewrite_spills(MFunction& fn, const MachineDesc& desc,
                    const std::map<uint32_t, Assignment>& assign,
                    AllocResult& result);

}  // namespace regalloc_detail
}  // namespace svc
