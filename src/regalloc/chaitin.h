// Chaitin-Briggs graph-coloring register allocation with optimistic
// coloring. The offline quality bound of the split-regalloc experiment:
// interference construction is O(n^2)-ish and far outside a JIT's time
// budget (which bench/jit_compile_time demonstrates), but its spill
// decisions are near-optimal for our workloads.
#pragma once

#include "regalloc/linear_scan.h"

namespace svc {

AllocResult chaitin_allocate(MFunction& fn, const MachineDesc& desc);

}  // namespace svc
