#include "frontend/sema.h"

#include <array>

namespace svc {

std::string MType::str() const {
  switch (kind) {
    case Kind::Invalid:
      return "<invalid>";
    case Kind::Scalar:
      return std::string(type_name(scalar));
    case Kind::Pointer: {
      std::string s = "*";
      if (elem_size == 1) return s + "u8";
      if (elem_size == 2) return s + "u16";
      s += type_name(elem);
      return s;
    }
  }
  return "?";
}

const Builtin* find_builtin(std::string_view name) {
  static const std::array<Builtin, 8> kBuiltins = {{
      {"max_s", Opcode::MaxSI32, Type::I32, 2},
      {"max_u", Opcode::MaxUI32, Type::I32, 2},
      {"min_s", Opcode::MinSI32, Type::I32, 2},
      {"min_u", Opcode::MinUI32, Type::I32, 2},
      {"fmaxf", Opcode::MaxF32, Type::F32, 2},
      {"fminf", Opcode::MinF32, Type::F32, 2},
      {"sqrtf", Opcode::SqrtF32, Type::F32, 1},
      {"fabsf", Opcode::AbsF32, Type::F32, 1},
  }};
  for (const Builtin& b : kBuiltins) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

std::vector<FnSig> collect_signatures(const Program& program) {
  std::vector<FnSig> sigs;
  sigs.reserve(program.functions.size());
  for (const FnDecl& fn : program.functions) {
    FnSig sig;
    sig.name = fn.name;
    for (const Param& p : fn.params) sig.params.push_back(p.type);
    sig.ret = fn.ret;
    sigs.push_back(std::move(sig));
  }
  return sigs;
}

Type value_type_of(const MType& t) {
  switch (t.kind) {
    case MType::Kind::Scalar:
      return t.scalar;
    case MType::Kind::Pointer:
      return Type::I32;
    case MType::Kind::Invalid:
      return Type::Void;
  }
  return Type::Void;
}

}  // namespace svc
