#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace svc {

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::Eof: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::KwFn: return "fn";
    case Tok::KwVar: return "var";
    case Tok::KwIf: return "if";
    case Tok::KwElse: return "else";
    case Tok::KwWhile: return "while";
    case Tok::KwFor: return "for";
    case Tok::KwReturn: return "return";
    case Tok::KwAs: return "as";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Semi: return ";";
    case Tok::Colon: return ":";
    case Tok::Comma: return ",";
    case Tok::Arrow: return "->";
    case Tok::Star: return "*";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Assign: return "=";
    case Tok::Eq: return "==";
    case Tok::Ne: return "!=";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::AndAnd: return "&&";
    case Tok::OrOr: return "||";
    case Tok::Not: return "!";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok, std::less<>>& keywords() {
  static const std::map<std::string, Tok, std::less<>> kw = {
      {"fn", Tok::KwFn},     {"var", Tok::KwVar},       {"if", Tok::KwIf},
      {"else", Tok::KwElse}, {"while", Tok::KwWhile},   {"for", Tok::KwFor},
      {"return", Tok::KwReturn}, {"as", Tok::KwAs},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(std::string_view src, DiagnosticEngine& diags) {
  std::vector<Token> out;
  uint32_t line = 1, col = 1;
  size_t i = 0;

  auto loc = [&]() { return SourceLoc{line, col}; };
  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  auto push = [&](Tok kind, SourceLoc at) {
    Token t;
    t.kind = kind;
    t.loc = at;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments: // to end of line.
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    const SourceLoc at = loc();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        word += peek();
        advance();
      }
      const auto kw = keywords().find(word);
      if (kw != keywords().end()) {
        push(kw->second, at);
      } else {
        Token t;
        t.kind = Tok::Ident;
        t.text = std::move(word);
        t.loc = at;
        out.push_back(std::move(t));
      }
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_float = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num += peek();
        advance();
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        num += peek();
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        num += peek();
        advance();
        if (peek() == '+' || peek() == '-') {
          num += peek();
          advance();
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      bool f32_suffix = false;
      if (peek() == 'f') {
        f32_suffix = true;
        is_float = true;
        advance();
      }
      Token t;
      t.loc = at;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_value = std::strtod(num.c_str(), nullptr);
        t.float_is_f32 = f32_suffix;
      } else {
        t.kind = Tok::IntLit;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }

    switch (c) {
      case '(': push(Tok::LParen, at); advance(); break;
      case ')': push(Tok::RParen, at); advance(); break;
      case '{': push(Tok::LBrace, at); advance(); break;
      case '}': push(Tok::RBrace, at); advance(); break;
      case '[': push(Tok::LBracket, at); advance(); break;
      case ']': push(Tok::RBracket, at); advance(); break;
      case ';': push(Tok::Semi, at); advance(); break;
      case ':': push(Tok::Colon, at); advance(); break;
      case ',': push(Tok::Comma, at); advance(); break;
      case '*': push(Tok::Star, at); advance(); break;
      case '+': push(Tok::Plus, at); advance(); break;
      case '/': push(Tok::Slash, at); advance(); break;
      case '%': push(Tok::Percent, at); advance(); break;
      case '-':
        if (peek(1) == '>') {
          push(Tok::Arrow, at);
          advance(2);
        } else {
          push(Tok::Minus, at);
          advance();
        }
        break;
      case '=':
        if (peek(1) == '=') {
          push(Tok::Eq, at);
          advance(2);
        } else {
          push(Tok::Assign, at);
          advance();
        }
        break;
      case '!':
        if (peek(1) == '=') {
          push(Tok::Ne, at);
          advance(2);
        } else {
          push(Tok::Not, at);
          advance();
        }
        break;
      case '<':
        if (peek(1) == '=') {
          push(Tok::Le, at);
          advance(2);
        } else {
          push(Tok::Lt, at);
          advance();
        }
        break;
      case '>':
        if (peek(1) == '=') {
          push(Tok::Ge, at);
          advance(2);
        } else {
          push(Tok::Gt, at);
          advance();
        }
        break;
      case '&':
        if (peek(1) == '&') {
          push(Tok::AndAnd, at);
          advance(2);
        } else {
          diags.error(at, "stray '&'");
          advance();
        }
        break;
      case '|':
        if (peek(1) == '|') {
          push(Tok::OrOr, at);
          advance(2);
        } else {
          diags.error(at, "stray '|'");
          advance();
        }
        break;
      default:
        diags.error(at, std::string("unexpected character '") + c + "'");
        advance();
        break;
    }
  }

  Token eof;
  eof.kind = Tok::Eof;
  eof.loc = loc();
  out.push_back(std::move(eof));
  return out;
}

}  // namespace svc
