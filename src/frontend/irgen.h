#pragma once

#include <optional>
#include <vector>

#include "frontend/ast.h"
#include "frontend/sema.h"
#include "ir/ir.h"

namespace svc {

/// Type-checks `program` and generates one IRFunction per declaration.
/// Returns nullopt with diagnostics on any semantic error.
[[nodiscard]] std::optional<std::vector<IRFunction>> generate_ir(
    const Program& program, DiagnosticEngine& diags);

}  // namespace svc
