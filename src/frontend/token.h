// Token stream for MiniC, the paper-facing input language: a small, typed
// C-like kernel language (the role C/C++ play in the paper's toolchain).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/diagnostics.h"

namespace svc {

enum class Tok : uint8_t {
  Eof,
  Ident,
  IntLit,
  FloatLit,
  // Keywords.
  KwFn, KwVar, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwAs,
  // Punctuation / operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Colon, Comma, Arrow,
  Star, Plus, Minus, Slash, Percent,
  Assign, Eq, Ne, Lt, Le, Gt, Ge,
  AndAnd, OrOr, Not,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;       // identifier spelling
  int64_t int_value = 0;  // IntLit
  double float_value = 0; // FloatLit
  bool float_is_f32 = false;
  SourceLoc loc;
};

[[nodiscard]] std::string_view tok_name(Tok t);

}  // namespace svc
