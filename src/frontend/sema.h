// Semantic-analysis support for MiniC: type formatting, builtin function
// signatures (the portable "intrinsics" a kernel language needs: min/max,
// sqrt, abs), and program-level signature collection for call resolution.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "bytecode/opcode.h"
#include "frontend/ast.h"

namespace svc {

/// A builtin that maps 1:1 onto an SVIL opcode (two- or one-operand).
struct Builtin {
  std::string_view name;
  Opcode op;
  Type operand;  // operand/result scalar type
  uint32_t arity;
};

/// Returns the builtin named `name`, if any (max_s, max_u, min_s, min_u,
/// fmaxf, fminf, sqrtf, fabsf).
[[nodiscard]] const Builtin* find_builtin(std::string_view name);

/// Signature of a user function as seen by callers.
struct FnSig {
  std::string name;
  std::vector<MType> params;
  MType ret;
};

/// Collects user-function signatures (call resolution is by index into
/// this vector, matching bytecode function indices after lowering).
[[nodiscard]] std::vector<FnSig> collect_signatures(const Program& program);

/// SVIL scalar type carried by a MiniC value of type `t` (pointers are
/// i32 addresses; u8/u16 elements widen to i32 when loaded).
[[nodiscard]] Type value_type_of(const MType& t);

}  // namespace svc
