#include "frontend/parser.h"

#include "frontend/lexer.h"

namespace svc {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  std::optional<Program> run() {
    Program prog;
    while (!at(Tok::Eof)) {
      auto fn = parse_fn();
      if (!fn) return std::nullopt;
      prog.functions.push_back(std::move(*fn));
    }
    return prog;
  }

 private:
  // Recursion guard: expressions, statements and blocks all recurse, so a
  // pathological-but-lexable input ("((((...", 10k nested ifs) would
  // otherwise overflow the C++ stack -- an abort, which user input must
  // never cause (the fuzz harness feeds exactly these shapes; see
  // src/fuzz). The cap is far above anything a real kernel needs.
  static constexpr uint32_t kMaxNestingDepth = 200;

  class DepthGuard {
   public:
    DepthGuard(Parser& p, bool& ok) : p_(p) {
      ok = ++p_.depth_ <= kMaxNestingDepth;
      if (!ok && !p_.depth_reported_) {
        p_.depth_reported_ = true;
        p_.diags_.error(p_.cur().loc,
                        "nesting too deep (limit " +
                            std::to_string(kMaxNestingDepth) + ")");
      }
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& p_;
  };

  const Token& cur() const { return tokens_[pos_]; }
  bool at(Tok t) const { return cur().kind == t; }
  Token take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok t) {
    if (!at(t)) return false;
    take();
    return true;
  }
  bool expect(Tok t) {
    if (accept(t)) return true;
    diags_.error(cur().loc, "expected '" + std::string(tok_name(t)) +
                                "', found '" +
                                std::string(tok_name(cur().kind)) + "'");
    return false;
  }

  std::optional<MType> parse_type() {
    if (accept(Tok::Star)) {
      if (!at(Tok::Ident)) {
        diags_.error(cur().loc, "expected element type after '*'");
        return std::nullopt;
      }
      const Token t = take();
      if (t.text == "u8") return MType::pointer_of(Type::I32, 1, true);
      if (t.text == "u16") return MType::pointer_of(Type::I32, 2, true);
      if (t.text == "i32") return MType::pointer_of(Type::I32, 4, false);
      if (t.text == "f32") return MType::pointer_of(Type::F32, 4, false);
      if (t.text == "f64") return MType::pointer_of(Type::F64, 8, false);
      diags_.error(t.loc, "unknown element type '" + t.text + "'");
      return std::nullopt;
    }
    if (!at(Tok::Ident)) {
      diags_.error(cur().loc, "expected type");
      return std::nullopt;
    }
    const Token t = take();
    if (t.text == "i32") return MType::scalar_of(Type::I32);
    if (t.text == "i64") return MType::scalar_of(Type::I64);
    if (t.text == "f32") return MType::scalar_of(Type::F32);
    if (t.text == "f64") return MType::scalar_of(Type::F64);
    diags_.error(t.loc, "unknown type '" + t.text + "'");
    return std::nullopt;
  }

  std::optional<FnDecl> parse_fn() {
    FnDecl fn;
    fn.loc = cur().loc;
    if (!expect(Tok::KwFn)) return std::nullopt;
    if (!at(Tok::Ident)) {
      diags_.error(cur().loc, "expected function name");
      return std::nullopt;
    }
    fn.name = take().text;
    if (!expect(Tok::LParen)) return std::nullopt;
    if (!at(Tok::RParen)) {
      do {
        Param p;
        p.loc = cur().loc;
        if (!at(Tok::Ident)) {
          diags_.error(cur().loc, "expected parameter name");
          return std::nullopt;
        }
        p.name = take().text;
        if (!expect(Tok::Colon)) return std::nullopt;
        auto t = parse_type();
        if (!t) return std::nullopt;
        p.type = *t;
        fn.params.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
    if (!expect(Tok::RParen)) return std::nullopt;
    if (accept(Tok::Arrow)) {
      auto t = parse_type();
      if (!t) return std::nullopt;
      if (!t->is_scalar()) {
        diags_.error(fn.loc, "functions return scalar types only");
        return std::nullopt;
      }
      fn.ret = *t;
    }
    auto body = parse_block();
    if (!body) return std::nullopt;
    fn.body = std::move(*body);
    return fn;
  }

  std::optional<std::vector<StmtPtr>> parse_block() {
    bool depth_ok = false;
    const DepthGuard guard(*this, depth_ok);
    if (!depth_ok) return std::nullopt;
    if (!expect(Tok::LBrace)) return std::nullopt;
    std::vector<StmtPtr> stmts;
    while (!at(Tok::RBrace) && !at(Tok::Eof)) {
      auto s = parse_stmt();
      if (!s) return std::nullopt;
      stmts.push_back(std::move(*s));
    }
    if (!expect(Tok::RBrace)) return std::nullopt;
    return stmts;
  }

  std::optional<StmtPtr> parse_stmt() {
    bool depth_ok = false;
    const DepthGuard guard(*this, depth_ok);
    if (!depth_ok) return std::nullopt;
    const SourceLoc loc = cur().loc;
    if (at(Tok::KwVar)) {
      take();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::VarDecl;
      s->loc = loc;
      if (!at(Tok::Ident)) {
        diags_.error(cur().loc, "expected variable name");
        return std::nullopt;
      }
      s->var_name = take().text;
      if (!expect(Tok::Colon)) return std::nullopt;
      auto t = parse_type();
      if (!t) return std::nullopt;
      s->var_type = *t;
      if (accept(Tok::Assign)) {
        auto e = parse_expr();
        if (!e) return std::nullopt;
        s->expr = std::move(*e);
      }
      if (!expect(Tok::Semi)) return std::nullopt;
      return s;
    }
    if (at(Tok::KwIf)) return parse_if();
    if (at(Tok::KwWhile)) {
      take();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::While;
      s->loc = loc;
      if (!expect(Tok::LParen)) return std::nullopt;
      auto c = parse_expr();
      if (!c) return std::nullopt;
      s->expr = std::move(*c);
      if (!expect(Tok::RParen)) return std::nullopt;
      auto body = parse_block();
      if (!body) return std::nullopt;
      s->body = std::move(*body);
      return s;
    }
    if (at(Tok::KwFor)) {
      take();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::For;
      s->loc = loc;
      if (!expect(Tok::LParen)) return std::nullopt;
      if (!at(Tok::Semi)) {
        auto init = parse_simple(cur().loc);
        if (!init) return std::nullopt;
        s->init = std::move(*init);
      }
      if (!expect(Tok::Semi)) return std::nullopt;
      if (!at(Tok::Semi)) {
        auto c = parse_expr();
        if (!c) return std::nullopt;
        s->expr = std::move(*c);
      }
      if (!expect(Tok::Semi)) return std::nullopt;
      if (!at(Tok::RParen)) {
        auto step = parse_simple(cur().loc);
        if (!step) return std::nullopt;
        s->step = std::move(*step);
      }
      if (!expect(Tok::RParen)) return std::nullopt;
      auto body = parse_block();
      if (!body) return std::nullopt;
      s->body = std::move(*body);
      return s;
    }
    if (at(Tok::KwReturn)) {
      take();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::Return;
      s->loc = loc;
      if (!at(Tok::Semi)) {
        auto e = parse_expr();
        if (!e) return std::nullopt;
        s->expr = std::move(*e);
      }
      if (!expect(Tok::Semi)) return std::nullopt;
      return s;
    }
    if (at(Tok::LBrace)) {
      auto body = parse_block();
      if (!body) return std::nullopt;
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::Block;
      s->loc = loc;
      s->body = std::move(*body);
      return s;
    }
    auto s = parse_simple(loc);
    if (!s) return std::nullopt;
    if (!expect(Tok::Semi)) return std::nullopt;
    return s;
  }

  std::optional<StmtPtr> parse_if() {
    bool depth_ok = false;
    const DepthGuard guard(*this, depth_ok);
    if (!depth_ok) return std::nullopt;
    const SourceLoc loc = cur().loc;
    take();  // if
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::If;
    s->loc = loc;
    if (!expect(Tok::LParen)) return std::nullopt;
    auto c = parse_expr();
    if (!c) return std::nullopt;
    s->expr = std::move(*c);
    if (!expect(Tok::RParen)) return std::nullopt;
    auto then = parse_block();
    if (!then) return std::nullopt;
    s->body = std::move(*then);
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        auto nested = parse_if();
        if (!nested) return std::nullopt;
        s->else_body.push_back(std::move(*nested));
      } else {
        auto eb = parse_block();
        if (!eb) return std::nullopt;
        s->else_body = std::move(*eb);
      }
    }
    return s;
  }

  /// Assignment or expression statement (no trailing ';').
  std::optional<StmtPtr> parse_simple(SourceLoc loc) {
    auto lhs = parse_expr();
    if (!lhs) return std::nullopt;
    auto s = std::make_unique<Stmt>();
    s->loc = loc;
    if (accept(Tok::Assign)) {
      if ((*lhs)->kind != ExprKind::VarRef &&
          (*lhs)->kind != ExprKind::Index) {
        diags_.error(loc, "assignment target must be a variable or index");
        return std::nullopt;
      }
      auto rhs = parse_expr();
      if (!rhs) return std::nullopt;
      s->kind = StmtKind::Assign;
      s->target = std::move(*lhs);
      s->expr = std::move(*rhs);
    } else {
      s->kind = StmtKind::ExprStmt;
      s->expr = std::move(*lhs);
    }
    return s;
  }

  // --- expressions, precedence climbing --------------------------------
  std::optional<ExprPtr> parse_expr() {
    bool depth_ok = false;
    const DepthGuard guard(*this, depth_ok);
    if (!depth_ok) return std::nullopt;
    return parse_or();
  }

  std::optional<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs) return std::nullopt;
    while (at(Tok::OrOr)) {
      const SourceLoc loc = take().loc;
      auto rhs = parse_and();
      if (!rhs) return std::nullopt;
      lhs = make_binary(Tok::OrOr, loc, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<ExprPtr> parse_and() {
    auto lhs = parse_cmp();
    if (!lhs) return std::nullopt;
    while (at(Tok::AndAnd)) {
      const SourceLoc loc = take().loc;
      auto rhs = parse_cmp();
      if (!rhs) return std::nullopt;
      lhs = make_binary(Tok::AndAnd, loc, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<ExprPtr> parse_cmp() {
    auto lhs = parse_add();
    if (!lhs) return std::nullopt;
    if (at(Tok::Eq) || at(Tok::Ne) || at(Tok::Lt) || at(Tok::Le) ||
        at(Tok::Gt) || at(Tok::Ge)) {
      const Token op = take();
      auto rhs = parse_add();
      if (!rhs) return std::nullopt;
      lhs = make_binary(op.kind, op.loc, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<ExprPtr> parse_add() {
    auto lhs = parse_mul();
    if (!lhs) return std::nullopt;
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const Token op = take();
      auto rhs = parse_mul();
      if (!rhs) return std::nullopt;
      lhs = make_binary(op.kind, op.loc, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<ExprPtr> parse_mul() {
    auto lhs = parse_cast();
    if (!lhs) return std::nullopt;
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
      const Token op = take();
      auto rhs = parse_cast();
      if (!rhs) return std::nullopt;
      lhs = make_binary(op.kind, op.loc, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<ExprPtr> parse_cast() {
    auto e = parse_unary();
    if (!e) return std::nullopt;
    while (at(Tok::KwAs)) {
      const SourceLoc loc = take().loc;
      auto t = parse_type();
      if (!t) return std::nullopt;
      auto cast = std::make_unique<Expr>();
      cast->kind = ExprKind::Cast;
      cast->loc = loc;
      cast->lhs = std::move(*e);
      cast->cast_to = *t;
      e = std::move(cast);
    }
    return e;
  }

  std::optional<ExprPtr> parse_unary() {
    bool depth_ok = false;
    const DepthGuard guard(*this, depth_ok);
    if (!depth_ok) return std::nullopt;
    if (at(Tok::Minus) || at(Tok::Not)) {
      const Token op = take();
      auto operand = parse_unary();
      if (!operand) return std::nullopt;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Unary;
      e->loc = op.loc;
      e->op = op.kind;
      e->lhs = std::move(*operand);
      return e;
    }
    return parse_postfix();
  }

  std::optional<ExprPtr> parse_postfix() {
    auto e = parse_primary();
    if (!e) return std::nullopt;
    for (;;) {
      if (accept(Tok::LBracket)) {
        auto idx = parse_expr();
        if (!idx) return std::nullopt;
        if (!expect(Tok::RBracket)) return std::nullopt;
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::Index;
        node->loc = (*e)->loc;
        node->lhs = std::move(*e);
        node->rhs = std::move(*idx);
        e = std::move(node);
      } else if (at(Tok::LParen) && (*e)->kind == ExprKind::VarRef) {
        take();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::Call;
        node->loc = (*e)->loc;
        node->name = (*e)->name;
        if (!at(Tok::RParen)) {
          do {
            auto arg = parse_expr();
            if (!arg) return std::nullopt;
            node->args.push_back(std::move(*arg));
          } while (accept(Tok::Comma));
        }
        if (!expect(Tok::RParen)) return std::nullopt;
        e = std::move(node);
      } else {
        break;
      }
    }
    return e;
  }

  std::optional<ExprPtr> parse_primary() {
    const SourceLoc loc = cur().loc;
    if (at(Tok::IntLit)) {
      const Token t = take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::IntLit;
      e->loc = loc;
      e->int_value = t.int_value;
      return e;
    }
    if (at(Tok::FloatLit)) {
      const Token t = take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::FloatLit;
      e->loc = loc;
      e->float_value = t.float_value;
      e->float_is_f32 = t.float_is_f32;
      return e;
    }
    if (at(Tok::Ident)) {
      const Token t = take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::VarRef;
      e->loc = loc;
      e->name = t.text;
      return e;
    }
    if (accept(Tok::LParen)) {
      auto e = parse_expr();
      if (!e) return std::nullopt;
      if (!expect(Tok::RParen)) return std::nullopt;
      return e;
    }
    diags_.error(loc, "expected expression, found '" +
                          std::string(tok_name(cur().kind)) + "'");
    return std::nullopt;
  }

  ExprPtr make_binary(Tok op, SourceLoc loc, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->loc = loc;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  uint32_t depth_ = 0;
  bool depth_reported_ = false;
};

}  // namespace

std::optional<Program> parse_program(std::string_view source,
                                     DiagnosticEngine& diags) {
  std::vector<Token> tokens = lex(source, diags);
  if (diags.has_errors()) return std::nullopt;
  return Parser(std::move(tokens), diags).run();
}

}  // namespace svc
