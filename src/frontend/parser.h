#pragma once

#include <optional>

#include "frontend/ast.h"

namespace svc {

/// Parses a MiniC program. Returns nullopt (with diagnostics) on error.
[[nodiscard]] std::optional<Program> parse_program(std::string_view source,
                                                   DiagnosticEngine& diags);

}  // namespace svc
