// MiniC abstract syntax. Types are annotated onto expression nodes by
// semantic analysis (sema.h) before IR generation consumes the tree.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bytecode/type.h"
#include "frontend/token.h"

namespace svc {

/// A MiniC type: a scalar SVIL type or a pointer to an element type.
/// Pointers are i32 byte addresses into linear memory; u8/u16 are valid
/// *element* types only (loads widen to i32, stores truncate).
struct MType {
  enum class Kind : uint8_t { Invalid, Scalar, Pointer } kind = Kind::Invalid;
  Type scalar = Type::Void;   // Scalar: the value type
  Type elem = Type::Void;     // Pointer: element value type (as loaded)
  uint32_t elem_size = 0;     // Pointer: element size in bytes
  bool elem_unsigned = false; // Pointer: u8/u16 elements load zero-extended

  static MType invalid() { return {}; }
  static MType scalar_of(Type t) {
    return {Kind::Scalar, t, Type::Void, 0, false};
  }
  static MType pointer_of(Type elem, uint32_t size, bool uns) {
    return {Kind::Pointer, Type::I32, elem, size, uns};
  }
  [[nodiscard]] bool is_scalar() const { return kind == Kind::Scalar; }
  [[nodiscard]] bool is_pointer() const { return kind == Kind::Pointer; }
  [[nodiscard]] bool valid() const { return kind != Kind::Invalid; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const MType&, const MType&) = default;
};

// --- Expressions ----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  VarRef,
  Unary,   // op: Minus or Not
  Binary,  // op: arithmetic / comparison / logical
  Index,   // base[index]
  Call,    // callee(args...)
  Cast,    // expr as type
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  MType type;  // filled by sema

  // Literals.
  int64_t int_value = 0;
  double float_value = 0;
  bool float_is_f32 = false;

  // VarRef / Call.
  std::string name;
  uint32_t symbol_id = 0;  // sema: variable slot or callee index

  Tok op = Tok::Eof;  // Unary/Binary operator
  ExprPtr lhs, rhs;   // Binary; Unary/Index/Cast use lhs (+rhs for Index)
  std::vector<ExprPtr> args;  // Call
  MType cast_to;              // Cast
};

// --- Statements -------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
  VarDecl,
  Assign,      // target = value (target: VarRef or Index)
  If,
  While,
  For,
  Return,
  ExprStmt,
  Block,
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // VarDecl.
  std::string var_name;
  MType var_type;
  uint32_t symbol_id = 0;  // sema

  ExprPtr target;  // Assign lhs
  ExprPtr expr;    // init / value / condition / return expr
  StmtPtr init, step;            // For
  std::vector<StmtPtr> body;     // Block / If-then / While / For
  std::vector<StmtPtr> else_body;  // If
};

// --- Declarations ------------------------------------------------------------

struct Param {
  std::string name;
  MType type;
  SourceLoc loc;
};

struct FnDecl {
  std::string name;
  std::vector<Param> params;
  MType ret = MType::scalar_of(Type::Void);
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

struct Program {
  std::vector<FnDecl> functions;
};

}  // namespace svc
