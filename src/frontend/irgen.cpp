#include "frontend/irgen.h"

#include <map>

namespace svc {
namespace {

struct TypedValue {
  ValueId id = kNoValue;
  MType type;
};

class FnGenerator {
 public:
  FnGenerator(const FnDecl& decl, const std::vector<FnSig>& sigs,
              DiagnosticEngine& diags)
      : decl_(decl),
        sigs_(sigs),
        diags_(diags),
        fn_(decl.name, param_types(decl), value_type_of(decl.ret)) {}

  std::optional<IRFunction> run() {
    cur_ = fn_.add_block();
    // Bind parameters.
    for (uint32_t p = 0; p < decl_.params.size(); ++p) {
      vars_[decl_.params[p].name] = {p, decl_.params[p].type};
    }
    for (const StmtPtr& s : decl_.body) {
      if (!gen_stmt(*s)) return std::nullopt;
    }
    // Implicit return for void functions / fall-off guard for non-void,
    // applied to every unterminated block (join blocks can end up empty
    // when both arms of an if return).
    for (uint32_t b = 0; b < fn_.num_blocks(); ++b) {
      IRBlock& blk = fn_.block(b);
      if (!blk.insts.empty() && blk.insts.back().is_terminator()) continue;
      IRBuilder builder{fn_, b};
      if (b == cur_ && fn_.ret_type() == Type::Void) {
        builder.ret();
      } else {
        builder.emit(
            {Opcode::Trap, kNoValue, kNoValue, kNoValue, kNoValue, 0, 0, 0});
      }
    }
    return std::move(fn_);
  }

 private:
  static std::vector<Type> param_types(const FnDecl& decl) {
    std::vector<Type> out;
    for (const Param& p : decl.params) out.push_back(value_type_of(p.type));
    return out;
  }

  bool error(SourceLoc loc, std::string msg) {
    diags_.error(loc, std::move(msg));
    return false;
  }

  [[nodiscard]] bool block_terminated() const {
    const IRBlock& b = fn_.block(cur_);
    return !b.insts.empty() && b.insts.back().is_terminator();
  }

  IRBuilder builder() { return IRBuilder{fn_, cur_}; }

  // --- statements ---------------------------------------------------------

  bool gen_stmt(const Stmt& stmt) {
    if (block_terminated()) return true;  // unreachable code: skip quietly
    switch (stmt.kind) {
      case StmtKind::VarDecl: {
        if (vars_.count(stmt.var_name)) {
          return error(stmt.loc,
                       "redefinition of '" + stmt.var_name + "'");
        }
        const ValueId id = fn_.new_value(value_type_of(stmt.var_type));
        vars_[stmt.var_name] = {id, stmt.var_type};
        if (stmt.expr) {
          auto v = gen_expr(*stmt.expr, &stmt.var_type);
          if (!v) return false;
          if (!(v->type == stmt.var_type)) {
            return error(stmt.loc, "initializer type " + v->type.str() +
                                       " does not match " +
                                       stmt.var_type.str());
          }
          builder().emit(ir_copy(id, v->id));
        } else {
          // Zero-initialize.
          zero_init(id, value_type_of(stmt.var_type));
        }
        return true;
      }
      case StmtKind::Assign:
        return gen_assign(stmt);
      case StmtKind::If:
        return gen_if(stmt);
      case StmtKind::While:
        return gen_while(stmt);
      case StmtKind::For:
        return gen_for(stmt);
      case StmtKind::Return: {
        IRBuilder b = builder();
        if (fn_.ret_type() == Type::Void) {
          if (stmt.expr) return error(stmt.loc, "void function returns value");
          b.ret();
          return true;
        }
        if (!stmt.expr) return error(stmt.loc, "missing return value");
        const MType want = decl_.ret;
        auto v = gen_expr(*stmt.expr, &want);
        if (!v) return false;
        if (value_type_of(v->type) != fn_.ret_type()) {
          return error(stmt.loc, "return type mismatch");
        }
        builder().ret(v->id);
        return true;
      }
      case StmtKind::ExprStmt: {
        auto v = gen_expr(*stmt.expr, nullptr);
        return v.has_value();
      }
      case StmtKind::Block: {
        // MiniC has function-level scoping for simplicity; a block just
        // sequences statements.
        for (const StmtPtr& s : stmt.body) {
          if (!gen_stmt(*s)) return false;
        }
        return true;
      }
    }
    return false;
  }

  void zero_init(ValueId id, Type t) {
    IRBuilder b = builder();
    switch (t) {
      case Type::I32:
        b.emit({Opcode::ConstI32, id, kNoValue, kNoValue, kNoValue, 0, 0, 0});
        break;
      case Type::I64:
        b.emit({Opcode::ConstI64, id, kNoValue, kNoValue, kNoValue, 0, 0, 0});
        break;
      case Type::F32:
        b.emit({Opcode::ConstF32, id, kNoValue, kNoValue, kNoValue, 0, 0, 0});
        break;
      case Type::F64:
        b.emit({Opcode::ConstF64, id, kNoValue, kNoValue, kNoValue, 0, 0, 0});
        break;
      default:
        break;
    }
  }

  bool gen_assign(const Stmt& stmt) {
    const Expr& target = *stmt.target;
    if (target.kind == ExprKind::VarRef) {
      const auto it = vars_.find(target.name);
      if (it == vars_.end()) {
        return error(target.loc, "unknown variable '" + target.name + "'");
      }
      auto v = gen_expr(*stmt.expr, &it->second.type);
      if (!v) return false;
      if (!(v->type == it->second.type)) {
        return error(stmt.loc, "cannot assign " + v->type.str() + " to " +
                                   it->second.type.str());
      }
      builder().emit(ir_copy(it->second.id, v->id));
      return true;
    }
    // Indexed store: base[idx] = value.
    const auto addr = gen_index_addr(target);
    if (!addr) return false;
    const MType elem_mt = elem_value_type(addr->elem);
    auto v = gen_expr(*stmt.expr, &elem_mt);
    if (!v) return false;
    if (value_type_of(v->type) != value_type_of(elem_mt)) {
      return error(stmt.loc, "store type mismatch");
    }
    builder().store(addr->store_op, addr->addr, v->id, 0);
    return true;
  }

  bool gen_if(const Stmt& stmt) {
    const uint32_t then_b = fn_.add_block();
    const uint32_t else_b = stmt.else_body.empty() ? 0 : fn_.add_block();
    const uint32_t join_b = fn_.add_block();
    const uint32_t false_target = stmt.else_body.empty() ? join_b : else_b;

    if (!gen_cond(*stmt.expr, then_b, false_target)) return false;

    cur_ = then_b;
    for (const StmtPtr& s : stmt.body) {
      if (!gen_stmt(*s)) return false;
    }
    if (!block_terminated()) builder().jump(join_b);

    if (!stmt.else_body.empty()) {
      cur_ = else_b;
      for (const StmtPtr& s : stmt.else_body) {
        if (!gen_stmt(*s)) return false;
      }
      if (!block_terminated()) builder().jump(join_b);
    }
    cur_ = join_b;
    return true;
  }

  bool gen_while(const Stmt& stmt) {
    const uint32_t head = fn_.add_block();
    const uint32_t body = fn_.add_block();
    const uint32_t done = fn_.add_block();
    builder().jump(head);

    cur_ = head;
    if (!gen_cond(*stmt.expr, body, done)) return false;

    cur_ = body;
    for (const StmtPtr& s : stmt.body) {
      if (!gen_stmt(*s)) return false;
    }
    if (!block_terminated()) builder().jump(head);

    cur_ = done;
    return true;
  }

  bool gen_for(const Stmt& stmt) {
    if (stmt.init && !gen_stmt(*stmt.init)) return false;
    const uint32_t head = fn_.add_block();
    const uint32_t body = fn_.add_block();
    const uint32_t done = fn_.add_block();
    builder().jump(head);

    cur_ = head;
    if (stmt.expr) {
      if (!gen_cond(*stmt.expr, body, done)) return false;
    } else {
      builder().jump(body);
    }

    cur_ = body;
    for (const StmtPtr& s : stmt.body) {
      if (!gen_stmt(*s)) return false;
    }
    if (!block_terminated()) {
      if (stmt.step && !gen_stmt(*stmt.step)) return false;
      builder().jump(head);
    }
    cur_ = done;
    return true;
  }

  /// Generates a branch on `cond` with short-circuit && / || / !.
  bool gen_cond(const Expr& cond, uint32_t if_true, uint32_t if_false) {
    if (cond.kind == ExprKind::Binary && cond.op == Tok::AndAnd) {
      const uint32_t mid = fn_.add_block();
      if (!gen_cond(*cond.lhs, mid, if_false)) return false;
      cur_ = mid;
      return gen_cond(*cond.rhs, if_true, if_false);
    }
    if (cond.kind == ExprKind::Binary && cond.op == Tok::OrOr) {
      const uint32_t mid = fn_.add_block();
      if (!gen_cond(*cond.lhs, if_true, mid)) return false;
      cur_ = mid;
      return gen_cond(*cond.rhs, if_true, if_false);
    }
    if (cond.kind == ExprKind::Unary && cond.op == Tok::Not) {
      return gen_cond(*cond.lhs, if_false, if_true);
    }
    auto v = gen_expr(cond, nullptr);
    if (!v) return false;
    if (value_type_of(v->type) != Type::I32) {
      return error(cond.loc, "condition must be i32");
    }
    builder().br_if(v->id, if_true, if_false);
    return true;
  }

  // --- expressions ---------------------------------------------------------

  struct IndexAddr {
    ValueId addr;
    MType elem;       // pointer type of the base (element info)
    Opcode load_op;
    Opcode store_op;
  };

  std::optional<IndexAddr> gen_index_addr(const Expr& e) {
    auto base = gen_expr(*e.lhs, nullptr);
    if (!base) return std::nullopt;
    if (!base->type.is_pointer()) {
      error(e.loc, "indexing a non-pointer value");
      return std::nullopt;
    }
    const MType i32 = MType::scalar_of(Type::I32);
    auto idx = gen_expr(*e.rhs, &i32);
    if (!idx) return std::nullopt;
    if (value_type_of(idx->type) != Type::I32) {
      error(e.loc, "index must be i32");
      return std::nullopt;
    }
    IRBuilder b = builder();
    ValueId offset = idx->id;
    if (base->type.elem_size > 1) {
      const ValueId k = b.const_i32(static_cast<int32_t>(base->type.elem_size));
      offset = b.binop(Opcode::MulI32, Type::I32, idx->id, k);
    }
    const ValueId addr = b.binop(Opcode::AddI32, Type::I32, base->id, offset);

    IndexAddr out;
    out.addr = addr;
    out.elem = base->type;
    switch (base->type.elem_size) {
      case 1:
        out.load_op = Opcode::LoadI8U;
        out.store_op = Opcode::StoreI8;
        break;
      case 2:
        out.load_op = Opcode::LoadI16U;
        out.store_op = Opcode::StoreI16;
        break;
      case 4:
        out.load_op = base->type.elem == Type::F32 ? Opcode::LoadF32
                                                   : Opcode::LoadI32;
        out.store_op = base->type.elem == Type::F32 ? Opcode::StoreF32
                                                    : Opcode::StoreI32;
        break;
      default:
        out.load_op = Opcode::LoadF64;
        out.store_op = Opcode::StoreF64;
        break;
    }
    return out;
  }

  /// Element type as a scalar MType (u8/u16 widen to i32).
  static MType elem_value_type(const MType& ptr) {
    return MType::scalar_of(ptr.elem);
  }

  std::optional<TypedValue> gen_expr(const Expr& e, const MType* want) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        IRBuilder b = builder();
        // Contextual typing of integer literals (C-like convenience).
        if (want && want->is_scalar()) {
          switch (want->scalar) {
            case Type::F32: {
              const ValueId id =
                  b.const_f32(static_cast<float>(e.int_value));
              return TypedValue{id, MType::scalar_of(Type::F32)};
            }
            case Type::F64: {
              const ValueId id = fn_.new_value(Type::F64);
              b.emit({Opcode::ConstF64, id, kNoValue, kNoValue, kNoValue,
                      static_cast<int64_t>(std::bit_cast<uint64_t>(
                          static_cast<double>(e.int_value))),
                      0, 0});
              return TypedValue{id, MType::scalar_of(Type::F64)};
            }
            case Type::I64: {
              const ValueId id = fn_.new_value(Type::I64);
              b.emit({Opcode::ConstI64, id, kNoValue, kNoValue, kNoValue,
                      e.int_value, 0, 0});
              return TypedValue{id, MType::scalar_of(Type::I64)};
            }
            default:
              break;
          }
        }
        const ValueId id = b.const_i32(static_cast<int32_t>(e.int_value));
        return TypedValue{id, MType::scalar_of(Type::I32)};
      }
      case ExprKind::FloatLit: {
        IRBuilder b = builder();
        const bool as_f64 = !e.float_is_f32 && want && want->is_scalar() &&
                            want->scalar == Type::F64;
        if (as_f64) {
          const ValueId id = fn_.new_value(Type::F64);
          b.emit({Opcode::ConstF64, id, kNoValue, kNoValue, kNoValue,
                  static_cast<int64_t>(std::bit_cast<uint64_t>(e.float_value)),
                  0, 0});
          return TypedValue{id, MType::scalar_of(Type::F64)};
        }
        const ValueId id = b.const_f32(static_cast<float>(e.float_value));
        return TypedValue{id, MType::scalar_of(Type::F32)};
      }
      case ExprKind::VarRef: {
        const auto it = vars_.find(e.name);
        if (it == vars_.end()) {
          error(e.loc, "unknown variable '" + e.name + "'");
          return std::nullopt;
        }
        return TypedValue{it->second.id, it->second.type};
      }
      case ExprKind::Index: {
        auto addr = gen_index_addr(e);
        if (!addr) return std::nullopt;
        IRBuilder b = builder();
        const Type t = addr->elem.elem;
        const ValueId id = b.load(addr->load_op, addr->addr, 0, t);
        return TypedValue{id, MType::scalar_of(t)};
      }
      case ExprKind::Unary:
        return gen_unary(e);
      case ExprKind::Binary:
        return gen_binary(e, want);
      case ExprKind::Cast:
        return gen_cast(e);
      case ExprKind::Call:
        return gen_call(e);
    }
    return std::nullopt;
  }

  std::optional<TypedValue> gen_unary(const Expr& e) {
    auto v = gen_expr(*e.lhs, nullptr);
    if (!v) return std::nullopt;
    IRBuilder b = builder();
    const Type t = value_type_of(v->type);
    if (e.op == Tok::Not) {
      if (t != Type::I32) {
        error(e.loc, "'!' requires an i32 operand");
        return std::nullopt;
      }
      return TypedValue{b.unop(Opcode::EqzI32, Type::I32, v->id), v->type};
    }
    // Unary minus.
    switch (t) {
      case Type::I32: {
        const ValueId zero = b.const_i32(0);
        return TypedValue{b.binop(Opcode::SubI32, Type::I32, zero, v->id),
                          v->type};
      }
      case Type::I64: {
        const ValueId zero = fn_.new_value(Type::I64);
        b.emit({Opcode::ConstI64, zero, kNoValue, kNoValue, kNoValue, 0, 0,
                0});
        return TypedValue{b.binop(Opcode::SubI64, Type::I64, zero, v->id),
                          v->type};
      }
      case Type::F32:
        return TypedValue{b.unop(Opcode::NegF32, Type::F32, v->id), v->type};
      case Type::F64:
        return TypedValue{b.unop(Opcode::NegF64, Type::F64, v->id), v->type};
      default:
        error(e.loc, "cannot negate this type");
        return std::nullopt;
    }
  }

  std::optional<TypedValue> gen_binary(const Expr& e, const MType* want) {
    // Logical operators in value position: evaluate both, normalize, and
    // combine bitwise (conditions use gen_cond for short-circuit).
    if (e.op == Tok::AndAnd || e.op == Tok::OrOr) {
      auto l = gen_expr(*e.lhs, nullptr);
      auto r = gen_expr(*e.rhs, nullptr);
      if (!l || !r) return std::nullopt;
      IRBuilder b = builder();
      const ValueId zero1 = b.const_i32(0);
      const ValueId ln = b.binop(Opcode::NeI32, Type::I32, l->id, zero1);
      const ValueId zero2 = b.const_i32(0);
      const ValueId rn = b.binop(Opcode::NeI32, Type::I32, r->id, zero2);
      const Opcode op = e.op == Tok::AndAnd ? Opcode::AndI32 : Opcode::OrI32;
      return TypedValue{b.binop(op, Type::I32, ln, rn),
                        MType::scalar_of(Type::I32)};
    }

    // Evaluate operands with cross-typing hints for literals.
    auto l = gen_expr(*e.lhs, want);
    if (!l) return std::nullopt;
    auto r = gen_expr(*e.rhs, &l->type);
    if (!r) return std::nullopt;
    // Re-evaluate the left side as literal-typed if the right side fixed
    // the type (e.g. `2 * x` with x f32): literals only, cheap re-gen.
    if (!(l->type == r->type) && e.lhs->kind == ExprKind::IntLit) {
      l = gen_expr(*e.lhs, &r->type);
      if (!l) return std::nullopt;
    }
    if (!(l->type == r->type)) {
      error(e.loc, "operand types differ: " + l->type.str() + " vs " +
                       r->type.str() + " (use 'as')");
      return std::nullopt;
    }
    const Type t = value_type_of(l->type);
    IRBuilder b = builder();

    struct OpRow {
      Opcode i32, i64, f32, f64;
      bool is_cmp;
    };
    auto row = [&](Tok op) -> std::optional<OpRow> {
      switch (op) {
        case Tok::Plus:
          return OpRow{Opcode::AddI32, Opcode::AddI64, Opcode::AddF32,
                       Opcode::AddF64, false};
        case Tok::Minus:
          return OpRow{Opcode::SubI32, Opcode::SubI64, Opcode::SubF32,
                       Opcode::SubF64, false};
        case Tok::Star:
          return OpRow{Opcode::MulI32, Opcode::MulI64, Opcode::MulF32,
                       Opcode::MulF64, false};
        case Tok::Slash:
          return OpRow{Opcode::DivSI32, Opcode::DivSI64, Opcode::DivF32,
                       Opcode::DivF64, false};
        case Tok::Percent:
          return OpRow{Opcode::RemSI32, Opcode::Nop, Opcode::Nop, Opcode::Nop,
                       false};
        case Tok::Eq:
          return OpRow{Opcode::EqI32, Opcode::EqI64, Opcode::EqF32,
                       Opcode::EqF64, true};
        case Tok::Ne:
          return OpRow{Opcode::NeI32, Opcode::NeI64, Opcode::NeF32,
                       Opcode::NeF64, true};
        case Tok::Lt:
          return OpRow{Opcode::LtSI32, Opcode::LtSI64, Opcode::LtF32,
                       Opcode::LtF64, true};
        case Tok::Le:
          return OpRow{Opcode::LeSI32, Opcode::Nop, Opcode::LeF32,
                       Opcode::LeF64, true};
        case Tok::Gt:
          return OpRow{Opcode::GtSI32, Opcode::GtSI64, Opcode::GtF32,
                       Opcode::GtF64, true};
        case Tok::Ge:
          return OpRow{Opcode::GeSI32, Opcode::Nop, Opcode::GeF32,
                       Opcode::GeF64, true};
        default:
          return std::nullopt;
      }
    };
    const auto r_ = row(e.op);
    if (!r_) {
      error(e.loc, "unsupported operator");
      return std::nullopt;
    }
    Opcode op = Opcode::Nop;
    switch (t) {
      case Type::I32: op = r_->i32; break;
      case Type::I64: op = r_->i64; break;
      case Type::F32: op = r_->f32; break;
      case Type::F64: op = r_->f64; break;
      default: break;
    }
    if (op == Opcode::Nop) {
      error(e.loc, "operator not available for type " + l->type.str());
      return std::nullopt;
    }
    const Type result = r_->is_cmp ? Type::I32 : t;
    const MType result_mt = r_->is_cmp ? MType::scalar_of(Type::I32) : l->type;
    return TypedValue{b.binop(op, result, l->id, r->id), result_mt};
  }

  std::optional<TypedValue> gen_cast(const Expr& e) {
    auto v = gen_expr(*e.lhs, nullptr);
    if (!v) return std::nullopt;
    if (!e.cast_to.is_scalar()) {
      error(e.loc, "can only cast to scalar types");
      return std::nullopt;
    }
    const Type from = value_type_of(v->type);
    const Type to = e.cast_to.scalar;
    if (from == to) return TypedValue{v->id, e.cast_to};
    IRBuilder b = builder();
    struct Conv {
      Type from, to;
      Opcode op;
    };
    static constexpr Conv kConvs[] = {
        {Type::I32, Type::I64, Opcode::I32ToI64S},
        {Type::I64, Type::I32, Opcode::I64ToI32},
        {Type::I32, Type::F32, Opcode::I32ToF32S},
        {Type::F32, Type::I32, Opcode::F32ToI32S},
        {Type::I32, Type::F64, Opcode::I32ToF64S},
        {Type::F64, Type::I32, Opcode::F64ToI32S},
        {Type::F32, Type::F64, Opcode::F32ToF64},
        {Type::F64, Type::F32, Opcode::F64ToF32},
        {Type::I64, Type::F64, Opcode::I64ToF64S},
        {Type::F64, Type::I64, Opcode::F64ToI64S},
    };
    for (const Conv& c : kConvs) {
      if (c.from == from && c.to == to) {
        return TypedValue{b.unop(c.op, to, v->id), e.cast_to};
      }
    }
    error(e.loc, "unsupported cast");
    return std::nullopt;
  }

  std::optional<TypedValue> gen_call(const Expr& e) {
    // Builtins first.
    if (const Builtin* bi = find_builtin(e.name)) {
      if (e.args.size() != bi->arity) {
        error(e.loc, "builtin '" + e.name + "' expects " +
                         std::to_string(bi->arity) + " arguments");
        return std::nullopt;
      }
      const MType want = MType::scalar_of(bi->operand);
      std::vector<TypedValue> args;
      for (const ExprPtr& a : e.args) {
        auto v = gen_expr(*a, &want);
        if (!v) return std::nullopt;
        if (value_type_of(v->type) != bi->operand) {
          error(a->loc, "builtin operand must be " +
                            std::string(type_name(bi->operand)));
          return std::nullopt;
        }
        args.push_back(*v);
      }
      IRBuilder b = builder();
      const ValueId id =
          bi->arity == 2
              ? b.binop(bi->op, bi->operand, args[0].id, args[1].id)
              : b.unop(bi->op, bi->operand, args[0].id);
      return TypedValue{id, want};
    }

    // User functions.
    for (uint32_t f = 0; f < sigs_.size(); ++f) {
      if (sigs_[f].name != e.name) continue;
      const FnSig& sig = sigs_[f];
      if (e.args.size() != sig.params.size()) {
        error(e.loc, "call arity mismatch for '" + e.name + "'");
        return std::nullopt;
      }
      std::vector<ValueId> arg_ids;
      for (size_t i = 0; i < e.args.size(); ++i) {
        auto v = gen_expr(*e.args[i], &sig.params[i]);
        if (!v) return std::nullopt;
        if (value_type_of(v->type) != value_type_of(sig.params[i])) {
          error(e.args[i]->loc, "argument type mismatch");
          return std::nullopt;
        }
        arg_ids.push_back(v->id);
      }
      IRBuilder b = builder();
      IRInst call;
      call.op = Opcode::Call;
      call.a = f;
      // IR calls carry up to 3 register args inline; more use an
      // argument list spilled through extra copy values.
      if (arg_ids.size() > 3) {
        error(e.loc, "calls with more than 3 arguments are not supported "
                     "by the IR (lower the arity or pack into memory)");
        return std::nullopt;
      }
      call.s0 = arg_ids.size() > 0 ? arg_ids[0] : kNoValue;
      call.s1 = arg_ids.size() > 1 ? arg_ids[1] : kNoValue;
      call.s2 = arg_ids.size() > 2 ? arg_ids[2] : kNoValue;
      const Type ret = value_type_of(sig.ret);
      if (ret != Type::Void) {
        call.dst = fn_.new_value(ret);
      }
      b.emit(call);
      return TypedValue{call.dst, sig.ret};
    }
    error(e.loc, "unknown function '" + e.name + "'");
    return std::nullopt;
  }

  const FnDecl& decl_;
  const std::vector<FnSig>& sigs_;
  DiagnosticEngine& diags_;
  IRFunction fn_;
  uint32_t cur_ = 0;
  std::map<std::string, TypedValue, std::less<>> vars_;
};

}  // namespace

std::optional<std::vector<IRFunction>> generate_ir(const Program& program,
                                                   DiagnosticEngine& diags) {
  const std::vector<FnSig> sigs = collect_signatures(program);
  std::vector<IRFunction> out;
  out.reserve(program.functions.size());
  for (const FnDecl& decl : program.functions) {
    FnGenerator gen(decl, sigs, diags);
    auto fn = gen.run();
    if (!fn) return std::nullopt;
    out.push_back(std::move(*fn));
  }
  return out;
}

}  // namespace svc
