#pragma once

#include <vector>

#include "frontend/token.h"

namespace svc {

/// Tokenizes `source`. Lexical errors go to `diags`; the returned stream
/// always ends with an Eof token.
[[nodiscard]] std::vector<Token> lex(std::string_view source,
                                     DiagnosticEngine& diags);

}  // namespace svc
