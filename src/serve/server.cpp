#include "serve/server.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "runtime/mapper.h"
#include "support/latency_histogram.h"
#include "support/mpmc_queue.h"
#include "support/thread_pool.h"

namespace svc {

namespace {
using Clock = std::chrono::steady_clock;
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

struct Server::Impl {
  /// One queued request: everything a worker needs to execute it and
  /// resolve the caller's future.
  struct Request {
    uint32_t func = 0;
    std::vector<Value> args;
    std::promise<Result<SimResult>> promise;
    Clock::time_point enqueued;
  };

  /// Per-function counters; elements live at stable addresses for the
  /// server's lifetime (the vector is sized once, never resized).
  struct FuncShard {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> completed{0};
    std::array<std::atomic<uint64_t>, 3> tiers{};
    LatencyHistogram latency;
  };

  /// Per-core shard: the bounded request queue plus its counters.
  struct CoreShard {
    explicit CoreShard(size_t depth) : queue(depth) {}
    BoundedMpmcQueue<Request> queue;
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> sim_cycles{0};
  };

  /// Per-worker wake-up state: the epoch advances under `mu` on every
  /// accepted submit routed to one of the worker's cores (and at
  /// shutdown), so a worker that swept its queues empty sleeps only if
  /// nothing arrived since it captured the epoch. Per worker -- not one
  /// global -- so a submit wakes exactly the worker that owns the routed
  /// core instead of herding all of them.
  struct WorkerWake {
    std::mutex mu;
    std::condition_variable cv;
    uint64_t epoch = 0;
    bool stopping = false;
  };

  Impl(Deployment deployment, ServerOptions options)
      : dep_(std::move(deployment)),
        opts_(options),
        module_(dep_.module().get()),
        funcs_(module_->num_functions()),
        start_(Clock::now()) {
    const size_t ncores = dep_.num_cores();
    num_workers_ =
        opts_.workers == 0 ? ncores : std::min(opts_.workers, ncores);
    cores_.reserve(ncores);
    for (size_t c = 0; c < ncores; ++c) {
      cores_.push_back(std::make_unique<CoreShard>(opts_.queue_depth));
    }
    wakes_.reserve(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      wakes_.push_back(std::make_unique<WorkerWake>());
    }
    // Routing is fixed up front: core affinity depends only on the
    // functions' HardwareHints annotations and the core specs, both
    // immutable once deployed.
    const Soc& soc = dep_.soc();
    route_.reserve(module_->num_functions());
    for (uint32_t f = 0; f < module_->num_functions(); ++f) {
      route_.push_back(choose_core(soc, module_->function(f)));
    }
  }

  ~Impl() { shutdown(); }

  void start() {
    pool_ = std::make_unique<ThreadPool>(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      pool_->submit([this, w] { worker_loop(w); });
    }
  }

  /// Closes the intake, lets the workers finish every accepted request,
  /// joins them. Idempotent.
  void shutdown() {
    if (!pool_) return;
    // Order matters: queues close before any worker can observe
    // `stopping`, so a worker that sees it and then sweeps its queues
    // empty knows no further push can ever succeed.
    for (auto& core : cores_) core->queue.close();
    for (auto& wake : wakes_) {
      {
        std::lock_guard<std::mutex> lock(wake->mu);
        wake->stopping = true;
        ++wake->epoch;
      }
      wake->cv.notify_all();
    }
    pool_.reset();  // ThreadPool dtor finishes the worker_loop jobs
  }

  std::future<Result<SimResult>> submit(std::string_view name,
                                        std::vector<Value> args) {
    submitted_.fetch_add(1, kRelaxed);
    const auto idx = module_->find_function(name);
    if (!idx) {
      invalid_.fetch_add(1, kRelaxed);
      std::promise<Result<SimResult>> reply;
      reply.set_value(Result<SimResult>::failure(
          "Server::submit: no function '" + std::string(name) +
          "' in module '" + module_->name() + "'"));
      return reply.get_future();
    }

    const size_t core = route_[*idx];
    Request req;
    req.func = *idx;
    req.args = std::move(args);
    req.enqueued = Clock::now();
    std::future<Result<SimResult>> future = req.promise.get_future();

    // Counted as pending *before* the push so a concurrent drain() that
    // starts right after the push cannot return while this request runs.
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      ++pending_;
    }
    if (std::optional<Request> refused =
            cores_[core]->queue.try_push(std::move(req))) {
      // Admission control: the routed core's queue is at its watermark
      // (or the server is shutting down). The request came back; resolve
      // its future with the rejection instead of queueing.
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        --pending_;
        if (pending_ == 0) idle_cv_.notify_all();
      }
      rejected_.fetch_add(1, kRelaxed);
      funcs_[*idx].rejected.fetch_add(1, kRelaxed);
      cores_[core]->rejected.fetch_add(1, kRelaxed);
      refused->promise.set_value(Result<SimResult>::failure(
          "Server::submit: admission control rejected '" + std::string(name) +
          "': core " + std::to_string(core) + " queue at its watermark (" +
          std::to_string(opts_.queue_depth) + " requests)"));
      return future;
    }
    accepted_.fetch_add(1, kRelaxed);
    funcs_[*idx].accepted.fetch_add(1, kRelaxed);
    // Wake exactly the worker that owns the routed core.
    WorkerWake& wake = *wakes_[core % num_workers_];
    {
      std::lock_guard<std::mutex> lock(wake.mu);
      ++wake.epoch;
    }
    wake.cv.notify_one();
    return future;
  }

  void drain() {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Worker `w` owns cores {c : c % num_workers_ == w}: every core is
  /// drained by exactly one worker, so per-core execution is serialized
  /// (and per-function FIFO, since a function routes to one core).
  void worker_loop(size_t w) {
    WorkerWake& wake = *wakes_[w];
    for (;;) {
      uint64_t epoch = 0;
      bool stopping = false;
      {
        std::lock_guard<std::mutex> lock(wake.mu);
        epoch = wake.epoch;
        stopping = wake.stopping;
      }
      bool did_work = false;
      for (size_t c = w; c < cores_.size(); c += num_workers_) {
        did_work = drain_core(c) || did_work;
      }
      if (did_work) continue;
      // Safe exit: once `stopping` was observed true, every push that
      // will ever succeed committed before the queues closed, i.e.
      // before this sweep -- and the sweep found nothing.
      if (stopping) break;
      std::unique_lock<std::mutex> lock(wake.mu);
      wake.cv.wait(lock,
                   [&] { return wake.stopping || wake.epoch != epoch; });
    }
  }

  /// Pops one batch from core `c` and runs it, same-function requests
  /// back-to-back. Returns whether anything was executed.
  bool drain_core(size_t c) {
    CoreShard& shard = *cores_[c];
    std::vector<Request> batch;
    if (shard.queue.try_pop_batch(batch, opts_.batch_max) == 0) return false;
    shard.batches.fetch_add(1, kRelaxed);
    // Coalesce: group the batch by function (stable, so per-function
    // arrival order is preserved). Same-function requests then hit the
    // tiered runtime consecutively, advancing its promotion and
    // re-specialization counters as one aggregate stream.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Request& a, const Request& b) {
                       return a.func < b.func;
                     });
    for (Request& req : batch) execute(c, req);
    return true;
  }

  void execute(size_t core, Request& req) {
    // By index: submit() already resolved and bounds-checked the
    // function, so the hot path skips the by-name lookup entirely.
    SimResult sim = dep_.soc().run_on(core, req.func, req.args);
    const auto ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             req.enqueued)
            .count());
    FuncShard& shard = funcs_[req.func];
    shard.completed.fetch_add(1, kRelaxed);
    shard.tiers[std::min<size_t>(sim.tier, 2)].fetch_add(1, kRelaxed);
    shard.latency.record(ns);
    latency_.record(ns);
    cores_[core]->executed.fetch_add(1, kRelaxed);
    cores_[core]->sim_cycles.fetch_add(sim.stats.cycles, kRelaxed);
    completed_.fetch_add(1, kRelaxed);
    // Resolve the caller's future before releasing drain(): when drain
    // returns, every accepted future is ready.
    req.promise.set_value(Result<SimResult>(std::move(sim)));
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }

  [[nodiscard]] ServerStats stats() const {
    ServerStats s;
    s.submitted = submitted_.load(kRelaxed);
    s.accepted = accepted_.load(kRelaxed);
    s.rejected = rejected_.load(kRelaxed);
    s.invalid = invalid_.load(kRelaxed);
    s.completed = completed_.load(kRelaxed);
    s.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    s.requests_per_sec =
        s.wall_seconds > 0.0
            ? static_cast<double>(s.completed) / s.wall_seconds
            : 0.0;
    s.latency = latency_.snapshot();

    const Soc& soc = dep_.soc();
    s.cores.reserve(cores_.size());
    for (size_t c = 0; c < cores_.size(); ++c) {
      const CoreShard& shard = *cores_[c];
      CoreServeStats cs;
      cs.core = c;
      cs.executed = shard.executed.load(kRelaxed);
      cs.batches = shard.batches.load(kRelaxed);
      cs.rejected = shard.rejected.load(kRelaxed);
      cs.peak_queue_depth = shard.queue.peak_depth();
      cs.sim_cycles = shard.sim_cycles.load(kRelaxed);
      const Soc::CoreCounters counters = soc.core_counters(c);
      cs.interpreted_calls = counters.interpreted;
      cs.jitted_calls = counters.jitted;
      cs.tier2_calls = counters.tier2;
      s.batches += cs.batches;
      s.sim_cycles += cs.sim_cycles;
      s.cores.push_back(cs);
    }

    s.functions.reserve(funcs_.size());
    for (size_t f = 0; f < funcs_.size(); ++f) {
      const FuncShard& shard = funcs_[f];
      FunctionServeStats fs;
      fs.name = module_->function(static_cast<uint32_t>(f)).name();
      fs.core = route_[f];
      fs.accepted = shard.accepted.load(kRelaxed);
      fs.rejected = shard.rejected.load(kRelaxed);
      fs.completed = shard.completed.load(kRelaxed);
      fs.tier0 = shard.tiers[0].load(kRelaxed);
      fs.tier1 = shard.tiers[1].load(kRelaxed);
      fs.tier2 = shard.tiers[2].load(kRelaxed);
      fs.latency = shard.latency.snapshot();
      s.functions.push_back(std::move(fs));
    }
    s.cache = dep_.cache_stats();
    return s;
  }

  Deployment dep_;
  ServerOptions opts_;
  size_t num_workers_ = 0;
  // The deployed module: shared-owned by dep_, so the raw pointer is
  // stable and outlives the server.
  const Module* module_ = nullptr;
  std::vector<size_t> route_;  // function index -> core
  std::vector<std::unique_ptr<CoreShard>> cores_;
  std::vector<std::unique_ptr<WorkerWake>> wakes_;  // one per worker
  std::vector<FuncShard> funcs_;
  Clock::time_point start_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> completed_{0};
  LatencyHistogram latency_;

  // drain(): accepted-but-not-completed requests.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  uint64_t pending_ = 0;

  std::unique_ptr<ThreadPool> pool_;
};

Result<Server> Server::create(Deployment deployment, ServerOptions options) {
  std::vector<Diagnostic> problems;
  validate_server_options(options, problems);
  if (!problems.empty()) return Result<Server>::failure(std::move(problems));

  auto impl = std::make_unique<Impl>(std::move(deployment), options);
  impl->start();
  return Server(std::move(impl));
}

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::Server(Server&&) noexcept = default;
Server& Server::operator=(Server&&) noexcept = default;
Server::~Server() = default;

std::future<Result<SimResult>> Server::submit(std::string_view function,
                                              std::vector<Value> args) {
  return impl_->submit(function, std::move(args));
}

void Server::drain() { impl_->drain(); }

ServerStats Server::stats() const { return impl_->stats(); }

uint64_t Server::inflight() const {
  std::lock_guard<std::mutex> lock(impl_->idle_mu_);
  return impl_->pending_;
}

Result<size_t> Server::routed_core(std::string_view function) const {
  const auto idx = impl_->module_->find_function(function);
  if (!idx) {
    return Result<size_t>::failure("Server::routed_core: no function '" +
                                   std::string(function) + "' in module '" +
                                   impl_->module_->name() + "'");
  }
  return impl_->route_[*idx];
}

size_t Server::num_workers() const { return impl_->num_workers_; }
size_t Server::num_cores() const { return impl_->cores_.size(); }
const ServerOptions& Server::options() const { return impl_->opts_; }
Deployment& Server::deployment() { return impl_->dep_; }
const Deployment& Server::deployment() const { return impl_->dep_; }

Result<Server> serve(const Engine& engine, const ModuleHandle& module,
                     std::vector<CoreSpec> cores) {
  Result<Deployment> deployment = engine.deploy(module, std::move(cores));
  if (!deployment.ok()) return Result<Server>::failure(deployment.error());
  return Server::create(std::move(deployment).value(), engine.options().server);
}

}  // namespace svc
