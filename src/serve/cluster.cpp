#include "serve/cluster.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

namespace svc {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

// FNV-1a, the ring hash: stable across platforms (routing must not
// depend on std::hash), good enough spread for virtual-node placement.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv1a(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv1a_mix(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::future<Result<SimResult>> immediate_failure(std::string message) {
  std::promise<Result<SimResult>> promise;
  promise.set_value(Result<SimResult>::failure(std::move(message)));
  return promise.get_future();
}

}  // namespace

struct Cluster::Impl {
  // One shard: a Server over its own Deployment, plus the routing state
  // the cluster keeps about it. `mu` guards `server` (swapped by
  // restart) and `load_ewma`; `health` is atomic so routing can consult
  // it lock-free -- the authoritative re-check happens under `mu` right
  // before handing a request to the Server, which is what makes
  // drain(shard) lose nothing (see submit()).
  struct Shard {
    std::mutex mu;
    std::shared_ptr<Server> server;       // null only while Down
    std::atomic<ShardHealth> health{ShardHealth::Serving};
    std::atomic<uint64_t> routed{0};
    std::atomic<uint64_t> restarts{0};
    double load_ewma = 0.0;  // under mu (LeastLoaded scoring)
  };

  Impl(Engine engine_in, ModuleHandle module_in,
       std::vector<CoreSpec> shard_cores_in, ClusterOptions opts_in)
      : engine(std::move(engine_in)),
        module(std::move(module_in)),
        shard_cores(std::move(shard_cores_in)),
        opts(std::move(opts_in)) {}

  Engine engine;             // for restart(): re-deploy with same config
  ModuleHandle module;
  std::vector<CoreSpec> shard_cores;
  ClusterOptions opts;
  std::vector<std::unique_ptr<Shard>> shards;

  // Consistent-hash ring: (point, shard), sorted by point. Built once --
  // membership is fixed; health changes re-route by walking the ring.
  std::vector<std::pair<uint64_t, size_t>> ring;

  // Serializes lifecycle transitions (drain(shard), restart, profile
  // merges) against each other. Lock order: lifecycle_mu before any
  // Shard::mu; submit() only ever takes one Shard::mu and never
  // lifecycle_mu while holding it.
  std::mutex lifecycle_mu;

  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> routed{0};
  std::atomic<uint64_t> rejected_unroutable{0};
  std::atomic<uint64_t> profile_merges{0};

  void build_ring() {
    ring.reserve(shards.size() * opts.virtual_nodes);
    for (size_t s = 0; s < shards.size(); ++s) {
      for (size_t v = 0; v < opts.virtual_nodes; ++v) {
        ring.emplace_back(fnv1a_mix(fnv1a_mix(kFnvOffset, s), v), s);
      }
    }
    std::sort(ring.begin(), ring.end());
  }

  // The ring answer ignoring health (what routed_shard reports); the
  // health-aware walk lives in pick_consistent_hash.
  [[nodiscard]] size_t ring_home(std::string_view function) const {
    const uint64_t h = fnv1a(function);
    auto it = std::lower_bound(ring.begin(), ring.end(),
                               std::make_pair(h, size_t{0}));
    if (it == ring.end()) it = ring.begin();
    return it->second;
  }

  // Walks the ring from the function's point to the first Serving
  // shard; SIZE_MAX when no shard serves.
  [[nodiscard]] size_t pick_consistent_hash(std::string_view function) const {
    const uint64_t h = fnv1a(function);
    auto it = std::lower_bound(ring.begin(), ring.end(),
                               std::make_pair(h, size_t{0}));
    for (size_t step = 0; step < ring.size(); ++step) {
      if (it == ring.end()) it = ring.begin();
      const size_t s = it->second;
      if (shards[s]->health.load(kRelaxed) == ShardHealth::Serving) return s;
      ++it;
    }
    return SIZE_MAX;
  }

  // Scores every Serving shard by its in-flight EWMA, rounded to the
  // nearest whole queue level, and picks the minimum level; shards on
  // the same level rotate round-robin. The rounding is what makes the
  // spread even: raw EWMAs are almost never exactly equal (decay tails
  // linger), so comparing them directly would chase sub-request noise
  // and pile consecutive picks onto whichever shard decayed furthest,
  // while whole levels only separate shards that differ by real queued
  // work.
  [[nodiscard]] size_t pick_least_loaded() {
    size_t best = SIZE_MAX;
    uint64_t best_level = 0;
    std::vector<size_t> ties;
    for (size_t s = 0; s < shards.size(); ++s) {
      Shard& shard = *shards[s];
      if (shard.health.load(kRelaxed) != ShardHealth::Serving) continue;
      uint64_t level = 0;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (!shard.server ||
            shard.health.load(kRelaxed) != ShardHealth::Serving) {
          continue;
        }
        const double now = static_cast<double>(shard.server->inflight());
        shard.load_ewma = opts.load_ewma_alpha * now +
                          (1.0 - opts.load_ewma_alpha) * shard.load_ewma;
        level = static_cast<uint64_t>(shard.load_ewma + 0.5);
      }
      if (best == SIZE_MAX || level < best_level) {
        best = s;
        best_level = level;
        ties.clear();
        ties.push_back(s);
      } else if (level == best_level) {
        ties.push_back(s);
      }
    }
    if (ties.size() > 1) {
      // Same load level: level the *cumulative* counts, so a shard that
      // fell behind while busy (or just restarted) catches up instead
      // of the fleet drifting apart one tie at a time.
      size_t least = ties[0];
      uint64_t least_routed = shards[least]->routed.load(kRelaxed);
      for (size_t i = 1; i < ties.size(); ++i) {
        const uint64_t r = shards[ties[i]]->routed.load(kRelaxed);
        if (r < least_routed) {
          least = ties[i];
          least_routed = r;
        }
      }
      return least;
    }
    return best;
  }

  std::future<Result<SimResult>> submit(std::string_view function,
                                        std::vector<Value> args) {
    submitted.fetch_add(1, kRelaxed);
    // A picked shard can leave Serving between the pick and the lock
    // (a concurrent drain); re-pick until a shard accepts under its own
    // lock. Each retry proves some shard changed state, so shards+1
    // attempts suffice before concluding the fleet is unroutable.
    for (size_t attempt = 0; attempt <= shards.size(); ++attempt) {
      const size_t s = opts.routing == RoutingPolicy::ConsistentHash
                           ? pick_consistent_hash(function)
                           : pick_least_loaded();
      if (s == SIZE_MAX) break;
      Shard& shard = *shards[s];
      std::future<Result<SimResult>> future;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.health.load(kRelaxed) != ShardHealth::Serving ||
            !shard.server) {
          continue;  // re-routed: nothing was moved out of `args` yet
        }
        // Enqueued while the shard is provably Serving under its lock:
        // a concurrent drain(s) flips health under this same lock and
        // then waits out the Server's queue, so this request -- and
        // every request accepted before the flip -- completes.
        future = shard.server->submit(function, std::move(args));
      }
      shard.routed.fetch_add(1, kRelaxed);
      const uint64_t n = routed.fetch_add(1, kRelaxed) + 1;
      if (opts.profile_merge_interval > 0 &&
          n % opts.profile_merge_interval == 0) {
        merge_profiles_round();
      }
      return future;
    }
    rejected_unroutable.fetch_add(1, kRelaxed);
    return immediate_failure(
        "cluster: no Serving shard available to route the request");
  }

  // One merge round (see Cluster::merge_profiles): snapshot all, seed
  // each shard with its peers' merge, return the fleet aggregate.
  ProfileData merge_profiles_round() {
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu);
    std::vector<ProfileData> own(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
      std::lock_guard<std::mutex> lock(shards[s]->mu);
      if (shards[s]->server) {
        own[s] = shards[s]->server->deployment().soc().profile();
      }
    }
    for (size_t s = 0; s < shards.size(); ++s) {
      std::vector<const ProfileData*> peers;
      peers.reserve(shards.size() - 1);
      for (size_t p = 0; p < shards.size(); ++p) {
        if (p != s) peers.push_back(&own[p]);
      }
      ProfileData seed = svc::merge_profiles(peers);
      std::lock_guard<std::mutex> lock(shards[s]->mu);
      if (shards[s]->server) {
        shards[s]->server->deployment().soc().seed_profile(seed);
      }
    }
    std::vector<const ProfileData*> all;
    all.reserve(shards.size());
    for (const ProfileData& p : own) all.push_back(&p);
    profile_merges.fetch_add(1, kRelaxed);
    return svc::merge_profiles(all);
  }

  // Deploys one fresh shard Deployment: engine config + memory_init.
  Result<Deployment> deploy_shard() {
    Result<Deployment> dep = engine.deploy(module, shard_cores);
    if (dep.ok() && opts.memory_init) opts.memory_init(dep->memory());
    return dep;
  }
};

Result<Cluster> Cluster::create(const Engine& engine,
                                const ModuleHandle& module,
                                std::vector<CoreSpec> shard_cores,
                                ClusterOptions options) {
  std::vector<Diagnostic> problems;
  validate_cluster_options(options, problems);
  if (!problems.empty()) return Result<Cluster>::failure(std::move(problems));

  auto impl = std::make_unique<Impl>(engine, module, std::move(shard_cores),
                                     std::move(options));
  for (size_t s = 0; s < impl->opts.shards; ++s) {
    Result<Deployment> dep = impl->deploy_shard();
    if (!dep.ok()) return Result<Cluster>::failure(dep.error());
    Result<Server> server =
        Server::create(std::move(dep).value(), engine.options().server);
    if (!server.ok()) return Result<Cluster>::failure(server.error());
    auto shard = std::make_unique<Impl::Shard>();
    shard->server = std::make_shared<Server>(std::move(server).value());
    impl->shards.push_back(std::move(shard));
  }
  impl->build_ring();
  return Cluster(std::move(impl));
}

Cluster::Cluster(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Cluster::Cluster(Cluster&&) noexcept = default;
Cluster& Cluster::operator=(Cluster&&) noexcept = default;
Cluster::~Cluster() = default;

std::future<Result<SimResult>> Cluster::submit(std::string_view function,
                                               std::vector<Value> args) {
  return impl_->submit(function, std::move(args));
}

void Cluster::drain() {
  for (auto& shard : impl_->shards) {
    std::shared_ptr<Server> server;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      server = shard->server;
    }
    if (server) server->drain();
  }
}

Result<void> Cluster::drain(size_t shard_idx) {
  if (shard_idx >= impl_->shards.size()) {
    return Result<void>::failure("cluster: drain() of out-of-range shard " +
                                 std::to_string(shard_idx));
  }
  std::lock_guard<std::mutex> lifecycle(impl_->lifecycle_mu);
  Impl::Shard& shard = *impl_->shards[shard_idx];
  std::shared_ptr<Server> server;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.server) {
      return Result<void>::failure("cluster: drain() of Down shard " +
                                   std::to_string(shard_idx));
    }
    // From here no submit hands this shard another request: submits
    // re-check health under shard.mu before enqueueing.
    shard.health.store(ShardHealth::Draining, kRelaxed);
    server = shard.server;
  }
  server->drain();
  return {};
}

Result<void> Cluster::restart(size_t shard_idx) {
  if (shard_idx >= impl_->shards.size()) {
    return Result<void>::failure("cluster: restart() of out-of-range shard " +
                                 std::to_string(shard_idx));
  }
  std::lock_guard<std::mutex> lifecycle(impl_->lifecycle_mu);
  Impl::Shard& shard = *impl_->shards[shard_idx];

  // Take the shard out of the fleet. Its accepted requests finish in
  // the old Server's destructor (which drains queues and joins
  // workers), so nothing is lost even when restart() is called on a
  // shard under live traffic.
  std::shared_ptr<Server> old;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.health.store(ShardHealth::Down, kRelaxed);
    old = std::move(shard.server);
    shard.server.reset();
  }
  if (old) {
    old->drain();
    old.reset();
  }

  // Fresh Deployment from the same engine: same module, cores, cache
  // budget and persistent store; memory re-initialized.
  Result<Deployment> dep = impl_->deploy_shard();
  if (!dep.ok()) return Result<void>::failure(dep.error());

  // Seed the newcomer with the traffic its peers observed, so its
  // tier-2 decisions resume at fleet scope instead of from zero.
  std::vector<ProfileData> peer_profiles;
  peer_profiles.reserve(impl_->shards.size());
  for (size_t p = 0; p < impl_->shards.size(); ++p) {
    if (p == shard_idx) continue;
    std::lock_guard<std::mutex> lock(impl_->shards[p]->mu);
    if (impl_->shards[p]->server) {
      peer_profiles.push_back(
          impl_->shards[p]->server->deployment().soc().profile());
    }
  }
  std::vector<const ProfileData*> peers;
  peers.reserve(peer_profiles.size());
  for (const ProfileData& p : peer_profiles) peers.push_back(&p);
  dep->soc().seed_profile(svc::merge_profiles(peers));

  // Re-warm before taking traffic. With a persistent store this loads
  // every artifact from disk -- zero JIT compiles on a warm store
  // (tests/cluster_test.cpp asserts exactly that).
  dep->warm_up().get();

  Result<Server> server =
      Server::create(std::move(dep).value(), impl_->engine.options().server);
  if (!server.ok()) return Result<void>::failure(server.error());
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.server = std::make_shared<Server>(std::move(server).value());
    shard.health.store(ShardHealth::Serving, kRelaxed);
  }
  shard.restarts.fetch_add(1, kRelaxed);
  return {};
}

void Cluster::warm_up() {
  std::vector<std::future<void>> warm;
  {
    std::lock_guard<std::mutex> lifecycle(impl_->lifecycle_mu);
    for (auto& shard : impl_->shards) {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (shard->server) warm.push_back(shard->server->deployment().warm_up());
    }
  }
  for (std::future<void>& f : warm) f.get();
}

ProfileData Cluster::merge_profiles() { return impl_->merge_profiles_round(); }

ModuleHandle Cluster::export_profile() const {
  std::lock_guard<std::mutex> lifecycle(impl_->lifecycle_mu);
  std::vector<ProfileData> own;
  own.reserve(impl_->shards.size());
  for (auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->server) {
      own.push_back(shard->server->deployment().soc().profile());
    }
  }
  std::vector<const ProfileData*> parts;
  parts.reserve(own.size());
  for (const ProfileData& p : own) parts.push_back(&p);
  return ModuleHandle::adopt(
      attach_profile(*impl_->module, svc::merge_profiles(parts)));
}

Result<ShardHealth> Cluster::shard_health(size_t shard) const {
  if (shard >= impl_->shards.size()) {
    return Result<ShardHealth>::failure(
        "cluster: shard_health() of out-of-range shard " +
        std::to_string(shard));
  }
  return impl_->shards[shard]->health.load(kRelaxed);
}

Result<size_t> Cluster::routed_shard(std::string_view function) const {
  if (impl_->opts.routing != RoutingPolicy::ConsistentHash) {
    return Result<size_t>::failure(
        "cluster: routed_shard() is only defined for consistent-hash "
        "routing (least-loaded picks per request)");
  }
  return impl_->ring_home(function);
}

size_t Cluster::num_shards() const { return impl_->shards.size(); }

const ClusterOptions& Cluster::options() const { return impl_->opts; }

ClusterStats Cluster::stats() const {
  ClusterStats stats;
  stats.submitted = impl_->submitted.load(kRelaxed);
  stats.routed = impl_->routed.load(kRelaxed);
  stats.rejected_unroutable = impl_->rejected_unroutable.load(kRelaxed);
  stats.profile_merges = impl_->profile_merges.load(kRelaxed);
  std::vector<ServerStats> per_shard;
  per_shard.reserve(impl_->shards.size());
  for (size_t s = 0; s < impl_->shards.size(); ++s) {
    Impl::Shard& shard = *impl_->shards[s];
    ShardStats ss;
    ss.shard = s;
    ss.health = shard.health.load(kRelaxed);
    ss.routed = shard.routed.load(kRelaxed);
    ss.restarts = shard.restarts.load(kRelaxed);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.server) ss.server = shard.server->stats();
    }
    per_shard.push_back(ss.server);
    stats.shards.push_back(std::move(ss));
  }
  stats.aggregate = aggregate_server_stats(per_shard);
  return stats;
}

Result<Cluster> serve_cluster(const Engine& engine, const ModuleHandle& module,
                              std::vector<CoreSpec> shard_cores) {
  return Cluster::create(engine, module, std::move(shard_cores),
                         engine.options().cluster);
}

}  // namespace svc
