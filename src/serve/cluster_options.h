// ClusterOptions: the sharded-serving knobs of the embeddable API. Kept
// in its own near-dependency-free header for the same reason as
// server_options.h: Engine::Builder records and validates it
// (api/engine.h, Builder::cluster) and svc::Cluster consumes and
// re-validates it (serve/cluster.h) -- without api and serve including
// each other, and with both validations sharing the one rule set below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace svc {

class Memory;

/// How a Cluster picks the shard that serves a request.
enum class RoutingPolicy : uint8_t {
  /// Hash the function name onto a ring of virtual nodes and walk to the
  /// first Serving shard. A function sticks to one shard (its tier
  /// counters concentrate, its code stays hot there), and
  /// draining/downing a shard only re-routes the functions that lived on
  /// it -- the classic consistent-hashing stability property.
  ConsistentHash,
  /// Route each request to the shard with the lowest in-flight load
  /// (EWMA over Server::inflight, smoothed by
  /// ClusterOptions::load_ewma_alpha). Ties break round-robin, so idle
  /// fleets still spread traffic instead of piling onto shard 0. Same-
  /// function traffic scales with the shard count; function affinity is
  /// given up in exchange.
  LeastLoaded,
};

/// Configuration of a svc::Cluster. Validated by Cluster::create (and
/// again, all problems at once, by Engine::Builder::build when set
/// through Builder::cluster).
struct ClusterOptions {
  /// Number of Deployment shards (each with its own Soc, Server and
  /// linear memory; all sharing the engine's cache budget policy and
  /// persistent cache directory). Must be at least 1.
  size_t shards = 2;

  RoutingPolicy routing = RoutingPolicy::ConsistentHash;

  /// Ring points per shard for ConsistentHash routing (more points =
  /// smoother function spread across shards). Must be at least 1.
  size_t virtual_nodes = 16;

  /// Smoothing factor of the per-shard in-flight EWMA behind LeastLoaded
  /// routing: score = alpha * inflight_now + (1 - alpha) * score. Must
  /// be in (0, 1].
  double load_ewma_alpha = 0.25;

  /// Merge the shards' runtime profiles every this many accepted
  /// requests, re-seeding every shard with the fleet-wide aggregate so
  /// tier-2 re-specialization sees cluster traffic, not just the slice
  /// one shard happened to serve (see Cluster::merge_profiles). 0 =
  /// merge only when Cluster::merge_profiles() is called explicitly.
  uint64_t profile_merge_interval = 0;

  /// Applied to each shard's linear memory right after deploy -- at
  /// create() and again on every restart(), so a restarted shard comes
  /// back with the same initial memory image as its peers. Empty =
  /// memory starts zeroed.
  std::function<void(Memory&)> memory_init;
};

/// The single rule set behind both validation entry points
/// (Engine::Builder::build and Cluster::create): appends one diagnostic
/// per invalid field to `problems`.
inline void validate_cluster_options(const ClusterOptions& options,
                                     std::vector<Diagnostic>& problems) {
  const auto problem = [&problems](std::string message) {
    problems.push_back({Severity::Error, {}, std::move(message)});
  };
  if (options.shards == 0) {
    problem("ClusterOptions::shards must be at least 1 (each shard is one "
            "Deployment with its own Server)");
  }
  if (options.virtual_nodes == 0) {
    problem("ClusterOptions::virtual_nodes must be at least 1 (ring points "
            "per shard for consistent-hash routing)");
  }
  if (!(options.load_ewma_alpha > 0.0) || options.load_ewma_alpha > 1.0) {
    problem("ClusterOptions::load_ewma_alpha must be in (0, 1] (EWMA "
            "smoothing factor of the least-loaded router)");
  }
}

}  // namespace svc
