// svc::Cluster -- sharded multi-Deployment serving: the front-end that
// turns N independent svc::Servers into one logical endpoint. Each shard
// is a full Deployment (own Soc, own Server, own linear memory) deployed
// from one Engine, so every shard shares the engine's cache budget
// policy and persistent on-disk code store; what the cluster adds on top
// is
//
//   routing     submit(fn, args) picks a shard by policy
//               (serve/cluster_options.h): consistent-hash on the
//               function name (function affinity, minimal re-routing on
//               membership change) or least-loaded (live in-flight EWMA,
//               same-function throughput scales with the shard count).
//   health      every shard is Serving, Draining, or Down. Routing only
//               considers Serving shards; drain(shard) and
//               restart(shard) move a shard through the lifecycle for
//               rolling restarts -- traffic re-routes, nothing accepted
//               is lost, and a restarted shard re-warms from the
//               persistent store (zero JIT compiles on a warm store).
//   profiles    merge_profiles() folds every shard's runtime profile
//               into the fleet-wide aggregate (vm/profile.h,
//               merge_profiles) and seeds each shard with the traffic
//               the *other* shards saw, so tier-2 re-specialization
//               reacts to aggregate fleet behavior instead of one
//               shard's slice. Runs automatically every
//               profile_merge_interval accepted requests when
//               configured.
//   stats       ClusterStats: routing counters, per-shard health +
//               ServerStats, and the fleet-wide aggregate_server_stats
//               fold (serve/server_stats.h).
//
// Determinism: requests produce bit-identical SimResults no matter which
// shard serves them -- shards run the same module through the same
// engine configuration -- so routing policy affects latency and
// throughput, never results (tests/cluster_test.cpp holds this across
// all four simulator targets).
//
// Thread-safety: submit(), drain(), stats(), warm_up() and
// merge_profiles() are safe from any thread. drain(shard) and
// restart(shard) are serialized against each other internally and safe
// concurrently with traffic. The Cluster is move-only; destruction
// drains and joins every shard.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "serve/cluster_options.h"
#include "serve/server.h"
#include "serve/server_stats.h"
#include "support/result.h"
#include "vm/profile.h"

namespace svc {

/// Lifecycle state of one shard. Routing only targets Serving shards.
enum class ShardHealth : uint8_t {
  Serving,   // accepting routed traffic
  Draining,  // finishing accepted work; new traffic re-routes to peers
  Down,      // no Server (mid-restart, or restart failed)
};

/// One shard's slice of ClusterStats.
struct ShardStats {
  size_t shard = 0;
  ShardHealth health = ShardHealth::Serving;
  uint64_t routed = 0;    // requests this cluster routed to the shard
  uint64_t restarts = 0;  // completed restart() cycles
  ServerStats server;     // the shard's own Server::stats() snapshot
};

/// Snapshot of a cluster's counters: cluster-level routing totals, the
/// fleet-wide fold of every shard's ServerStats, and per-shard detail.
/// After drain(): submitted == routed + rejected_unroutable, and
/// aggregate.completed == sum over shards of their completed counts.
struct ClusterStats {
  uint64_t submitted = 0;             // every submit() call
  uint64_t routed = 0;                // handed to some shard's Server
  uint64_t rejected_unroutable = 0;   // no Serving shard available
  uint64_t profile_merges = 0;        // cross-shard merge rounds so far
  ServerStats aggregate;              // aggregate_server_stats over shards
  std::vector<ShardStats> shards;
};

class Cluster {
 public:
  /// Deploys `module` onto `options.shards` shards -- each one
  /// Deployment of `shard_cores` with `engine`'s runtime configuration,
  /// served by its own Server with the engine's ServerOptions -- and
  /// starts routing. `options.memory_init` (when set) runs on each
  /// shard's linear memory before it serves. Fails without starting
  /// anything on invalid options or a failed shard deploy; every
  /// problem is reported.
  [[nodiscard]] static Result<Cluster> create(const Engine& engine,
                                              const ModuleHandle& module,
                                              std::vector<CoreSpec> shard_cores,
                                              ClusterOptions options = {});

  Cluster(Cluster&&) noexcept;
  Cluster& operator=(Cluster&&) noexcept;

  /// Drains and destroys every shard. Futures already handed out stay
  /// valid and are resolved by the time the destructor returns.
  ~Cluster();

  /// Routes one request to a Serving shard and submits it there. The
  /// future carries the shard Server's verdict (serve/server.h:
  /// SimResult, admission-control rejection, or unknown function); when
  /// no shard is Serving the future resolves immediately with an
  /// unroutable error. Safe from any thread, including concurrently
  /// with drain()/restart().
  [[nodiscard]] std::future<Result<SimResult>> submit(
      std::string_view function, std::vector<Value> args);

  /// Blocks until every request accepted so far, on every shard, has
  /// completed. Health states are not changed.
  void drain();

  /// Takes `shard` out of routing (-> Draining) and blocks until the
  /// requests it already accepted have completed. Under live traffic
  /// nothing is lost: a submit either enqueued before the shard left
  /// Serving (drain waits for it) or re-routes to a peer. The shard
  /// stays Draining -- and keeps honoring direct Server traffic --
  /// until restart(shard) brings it back. Fails on an out-of-range
  /// shard or one that is Down.
  [[nodiscard]] Result<void> drain(size_t shard);

  /// Rolling-restart step: drains `shard` (-> Down), destroys its
  /// Server and Deployment, re-deploys from the engine (re-applying
  /// memory_init), re-seeds it with the other shards' merged profile,
  /// re-warms it -- from the persistent store when the engine has one,
  /// so a warm store means zero JIT compiles -- and returns it to
  /// Serving. Concurrent restarts/drains of other shards are
  /// serialized; traffic keeps flowing to the peers throughout. On a
  /// failed re-deploy the shard stays Down and the error is returned.
  [[nodiscard]] Result<void> restart(size_t shard);

  /// Warms every non-Down shard (Deployment::warm_up) and blocks until
  /// all are fully warm. With a persistent store this also populates it,
  /// which is what makes a later restart() compile-free.
  void warm_up();

  /// One cross-shard profile merge round: snapshots every shard's own
  /// observed profile, seeds each shard with the merge of its *peers'*
  /// profiles (Soc::seed_profile -- own observations are never
  /// double-counted, so repeated rounds stay idempotent on quiesced
  /// traffic), and returns the fleet-wide aggregate. Meaningful when
  /// the engine was built with profiling(); otherwise the result is
  /// empty. Runs automatically every profile_merge_interval accepted
  /// requests when that option is nonzero.
  ProfileData merge_profiles();

  /// Copy of the module annotated with the fleet-wide merged profile
  /// (every shard's traffic, one Profile annotation set): feed it to
  /// Engine::Builder::with_profile to close the loop at fleet scope.
  [[nodiscard]] ModuleHandle export_profile() const;

  [[nodiscard]] Result<ShardHealth> shard_health(size_t shard) const;

  /// The shard consistent-hash routing sends `function` to while all
  /// shards are Serving (the ring answer; Draining/Down shards re-route
  /// at submit time). Fails when the cluster routes LeastLoaded --
  /// there is no static answer then.
  [[nodiscard]] Result<size_t> routed_shard(std::string_view function) const;

  [[nodiscard]] size_t num_shards() const;
  [[nodiscard]] const ClusterOptions& options() const;

  [[nodiscard]] ClusterStats stats() const;

 private:
  struct Impl;
  explicit Cluster(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Convenience composition of the facade: deploys and serves `module`
/// as a cluster of engine.options().cluster.shards shards, each on
/// `shard_cores`, with the engine's ClusterOptions
/// (Engine::Builder::cluster).
[[nodiscard]] Result<Cluster> serve_cluster(const Engine& engine,
                                            const ModuleHandle& module,
                                            std::vector<CoreSpec> shard_cores);

}  // namespace svc
