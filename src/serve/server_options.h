// ServerOptions: the serving-layer knobs of the embeddable API. Kept in
// its own near-dependency-free header so both halves of the facade can
// speak it: Engine::Builder records and validates it (api/engine.h,
// Builder::serving) and svc::Server consumes and re-validates it
// (serve/server.h) -- without api and serve including each other, and
// with both validations sharing one rule set below.
#pragma once

#include <cstddef>
#include <vector>

#include "support/diagnostics.h"

namespace svc {

/// Configuration of a svc::Server. Validated by Server::create (and
/// again, for every problem at once, by Engine::Builder::build when set
/// through the Builder).
struct ServerOptions {
  /// Worker threads draining the per-core request queues. 0 = one worker
  /// per deployment core; values above the core count are clamped to it
  /// (each core is drained by exactly one worker, which is what keeps
  /// per-core execution serialized -- see serve/server.h).
  size_t workers = 0;

  /// Capacity of each core's request queue -- the admission-control
  /// watermark. A submit that finds its core's queue at this depth is
  /// rejected with a Result error instead of growing the queue. Must be
  /// at least 1.
  size_t queue_depth = 64;

  /// Most requests one worker pops from a core queue in one drain.
  /// Requests for the same function inside a batch run back-to-back, so
  /// tier promotion and tier-2 re-specialization trigger from aggregate
  /// traffic, not per-caller call counts. Must be at least 1.
  size_t batch_max = 8;
};

/// The single rule set behind both validation entry points
/// (Engine::Builder::build and Server::create): appends one diagnostic
/// per invalid field to `problems`.
inline void validate_server_options(const ServerOptions& options,
                                    std::vector<Diagnostic>& problems) {
  const auto problem = [&problems](std::string message) {
    problems.push_back({Severity::Error, {}, std::move(message)});
  };
  if (options.queue_depth == 0) {
    problem("ServerOptions::queue_depth must be at least 1 (it is the "
            "admission-control watermark of each core's request queue)");
  }
  if (options.batch_max == 0) {
    problem("ServerOptions::batch_max must be at least 1 (a server worker "
            "pops up to this many requests per drain)");
  }
}

}  // namespace svc
