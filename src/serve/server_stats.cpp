#include "serve/server_stats.h"

#include <algorithm>
#include <unordered_map>

namespace svc {

ServerStats aggregate_server_stats(std::span<const ServerStats> shards) {
  ServerStats total;
  std::unordered_map<std::string, size_t> fn_row;  // name -> total.functions
  for (const ServerStats& shard : shards) {
    total.submitted += shard.submitted;
    total.accepted += shard.accepted;
    total.rejected += shard.rejected;
    total.invalid += shard.invalid;
    total.completed += shard.completed;
    total.batches += shard.batches;
    total.sim_cycles += shard.sim_cycles;
    total.wall_seconds = std::max(total.wall_seconds, shard.wall_seconds);
    total.latency.merge(shard.latency);
    total.cache.merge(shard.cache);
    for (const FunctionServeStats& fs : shard.functions) {
      const auto [it, inserted] =
          fn_row.try_emplace(fs.name, total.functions.size());
      if (inserted) {
        total.functions.push_back(fs);
        continue;
      }
      FunctionServeStats& row = total.functions[it->second];
      row.accepted += fs.accepted;
      row.rejected += fs.rejected;
      row.completed += fs.completed;
      row.tier0 += fs.tier0;
      row.tier1 += fs.tier1;
      row.tier2 += fs.tier2;
      row.latency.merge(fs.latency);
    }
  }
  total.requests_per_sec =
      total.wall_seconds > 0.0
          ? static_cast<double>(total.completed) / total.wall_seconds
          : 0.0;
  return total;
}

}  // namespace svc
