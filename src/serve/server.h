// svc::Server -- concurrent request serving over a Deployment: the layer
// between the split-compilation runtime and "heavy traffic from many
// clients". Callers submit (function, args) requests from any number of
// threads and get a std::future<Result<SimResult>> back; the server owns
// the rest:
//
//   routing      every function is routed to the core the annotation-
//                driven mapper ranks best for it (runtime/mapper.h) --
//                the same affinity Deployment::run uses, applied once at
//                server construction.
//   queueing     one bounded MPMC queue per core (support/mpmc_queue.h).
//                The bound is the admission-control watermark: a submit
//                that finds its queue full is rejected with a Result
//                error instead of growing the queue without limit.
//   workers      a fixed pool (support/thread_pool.h) drains the queues.
//                Each core is owned by exactly one worker, so execution
//                on a core is serialized and FIFO -- which is also what
//                lets concurrent clients share the deployment's linear
//                memory as long as their requests touch disjoint (or
//                read-only) regions.
//   batching     a worker pops up to batch_max requests per drain and
//                runs same-function requests back-to-back, so the tiered
//                runtime's promotion counters (tier 1) and
//                re-specialization counters (tier 2) advance from
//                aggregate traffic, not per-caller call counts: many
//                clients each calling a function once still push it past
//                promote_threshold / tier2_threshold.
//   stats        per-function and per-core-shard latency, throughput,
//                tier mix and queue pressure (serve/server_stats.h).
//
// Thread-safety: submit(), drain() and stats() are safe from any thread.
// The Server is move-only; moving it does not invalidate futures or
// in-flight requests (state lives behind a stable Impl). Destruction
// closes the queues, finishes every accepted request, and joins the
// workers -- no future returned by submit() is ever broken.
#pragma once

#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "api/deployment.h"
#include "api/engine.h"
#include "serve/server_options.h"
#include "serve/server_stats.h"
#include "support/result.h"

namespace svc {

class Server {
 public:
  /// Takes ownership of `deployment` and starts serving: spawns the
  /// worker pool and sizes the per-core queues. Fails (without starting
  /// anything) on invalid options -- every problem is reported, in the
  /// Builder's style.
  [[nodiscard]] static Result<Server> create(Deployment deployment,
                                             ServerOptions options = {});

  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;

  /// Closes the queues, completes every accepted request, joins the
  /// workers. Futures already handed out stay valid (and are all
  /// resolved by the time the destructor returns).
  ~Server();

  /// Enqueues one request for `function` on its routed core and returns
  /// a future for the result. Never blocks on execution. The future
  /// resolves with:
  ///   - the SimResult (traps travel inside it, as with Deployment::run),
  ///   - or a Result error when the function name is unknown, or when
  ///     admission control rejects the request (routed core's queue at
  ///     its watermark).
  /// Rejected/invalid submits resolve their future immediately. Safe
  /// from any thread, including concurrently with drain() and stats().
  [[nodiscard]] std::future<Result<SimResult>> submit(
      std::string_view function, std::vector<Value> args);

  /// Blocks until every accepted request so far has completed (queues
  /// empty, no worker mid-request). New submits are allowed during and
  /// after; a concurrent submit storm may keep drain() waiting.
  void drain();

  /// Snapshot of the serving counters. Counters are monotone and safe to
  /// read under load; the identities documented on ServerStats are exact
  /// once traffic has quiesced (e.g. right after drain()).
  [[nodiscard]] ServerStats stats() const;

  /// Accepted-but-unresolved requests right now (queued + mid-execution).
  /// Cheap -- one counter read, no snapshot -- so a load-aware router
  /// (svc::Cluster's least-loaded policy) can consult it per decision.
  /// Safe from any thread; instantaneous, not monotone.
  [[nodiscard]] uint64_t inflight() const;

  /// The core requests for `function` route to (fixed at creation), or
  /// an error for an unknown name.
  [[nodiscard]] Result<size_t> routed_core(std::string_view function) const;

  [[nodiscard]] size_t num_workers() const;
  [[nodiscard]] size_t num_cores() const;
  [[nodiscard]] const ServerOptions& options() const;

  /// The served deployment. Direct Deployment calls remain legal while
  /// the server runs under the deployment's own concurrency contract
  /// (api/deployment.h): they execute on the caller's thread, unrouted
  /// and unbatched, and bypass the server's queues and stats.
  [[nodiscard]] Deployment& deployment();
  [[nodiscard]] const Deployment& deployment() const;

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Convenience composition of the facade: deploys `module` onto `cores`
/// with `engine`'s runtime configuration, then serves the deployment
/// with the engine's ServerOptions (Engine::Builder::serving).
[[nodiscard]] Result<Server> serve(const Engine& engine,
                                   const ModuleHandle& module,
                                   std::vector<CoreSpec> cores);

}  // namespace svc
