// ServerStats: the observable state of a svc::Server, split three ways --
// server-wide totals, per-function rows (latency + tier mix per served
// kernel), and per-core shard rows (queue pressure + the runtime's own
// per-shard tier counters). Produced by Server::stats() as a plain-data
// snapshot: everything here is copyable, printable, and detached from the
// live server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/latency_histogram.h"
#include "support/statistics.h"

namespace svc {

/// One served function: where it routes, how much traffic it saw, which
/// tiers answered, and its end-to-end latency distribution (submit ->
/// future resolved, in nanoseconds).
struct FunctionServeStats {
  std::string name;
  size_t core = 0;  // the mapper-chosen core all its requests route to
  uint64_t accepted = 0;
  uint64_t rejected = 0;  // admission-control refusals
  uint64_t completed = 0;
  // Completed requests answered per tier (tier0 + tier1 + tier2 ==
  // completed; tier2 counts calls served by the re-specialized artifact).
  uint64_t tier0 = 0;
  uint64_t tier1 = 0;
  uint64_t tier2 = 0;
  LatencyHistogram::Snapshot latency;
};

/// One core shard: its queue pressure and what its OnlineTarget ran.
/// interpreted/jitted/tier2_calls come from the runtime itself
/// (Soc::core_counters), so they also include traffic that bypassed the
/// server (e.g. a direct Deployment::run_on).
struct CoreServeStats {
  size_t core = 0;
  uint64_t executed = 0;  // requests this shard completed
  uint64_t batches = 0;   // drains (executed / batches = mean batch size)
  uint64_t rejected = 0;  // admission-control refusals at this shard
  uint64_t peak_queue_depth = 0;
  // Simulated cycles of the requests this shard completed: the
  // deterministic busy-time of the core, host-independent. A scaling
  // bench's bottleneck shard is max(sim_cycles) over shards.
  uint64_t sim_cycles = 0;
  uint64_t interpreted_calls = 0;
  uint64_t jitted_calls = 0;
  uint64_t tier2_calls = 0;
};

/// Snapshot of a server's counters. Identities (exact once traffic has
/// quiesced, e.g. after Server::drain):
///   submitted == accepted + rejected + invalid
///   completed == accepted         (after drain)
///   sum(functions[i].X) == the matching total
///   sum(cores[i].executed) == completed
struct ServerStats {
  uint64_t submitted = 0;  // every submit() call
  uint64_t accepted = 0;   // enqueued past admission control
  uint64_t rejected = 0;   // refused: queue at its watermark
  uint64_t invalid = 0;    // refused: unknown function name
  uint64_t completed = 0;  // futures resolved with a SimResult
  uint64_t batches = 0;
  // Simulated cycles summed over completed requests (deterministic,
  // host-independent; == sum(cores[i].sim_cycles)).
  uint64_t sim_cycles = 0;

  /// Wall-clock seconds since the server started serving.
  double wall_seconds = 0.0;
  /// completed / wall_seconds.
  double requests_per_sec = 0.0;

  /// End-to-end latency over all completed requests (nanoseconds).
  LatencyHistogram::Snapshot latency;

  std::vector<FunctionServeStats> functions;
  std::vector<CoreServeStats> cores;

  /// Shared CodeCache counters of the underlying deployment (cache.hits,
  /// cache.misses, cache.compiles, cache.coalesced, cache.evictions,
  /// cache.bytes).
  Statistics cache;
};

/// Folds any number of per-server snapshots (e.g. a cluster's shards)
/// into one fleet-wide view: totals and cache counters sum, latency
/// histograms merge bucket-wise (exact for the combined stream -- see
/// LatencyHistogram::Snapshot::merge), per-function rows merge by name
/// (a function served by several shards becomes one row; its `core` is
/// the routed core on the first shard that served it), wall_seconds is
/// the max (shards serve concurrently), and requests_per_sec is
/// recomputed from the merged totals. Per-core rows are NOT aggregated
/// -- core indices only mean something within one server, so the result
/// carries no `cores`; per-shard detail stays with the inputs.
[[nodiscard]] ServerStats aggregate_server_stats(
    std::span<const ServerStats> shards);

}  // namespace svc
