#include "targets/machine.h"

#include <sstream>

#include "support/diagnostics.h"

namespace svc {

RegClass reg_class_for(Type t) {
  switch (t) {
    case Type::I32:
    case Type::I64:
      return RegClass::Int;
    case Type::F32:
    case Type::F64:
      return RegClass::Flt;
    case Type::V128:
      return RegClass::Vec;
    case Type::Void:
      break;
  }
  fatal("reg_class_for: void has no register class");
}

const char* reg_class_prefix(RegClass cls) {
  switch (cls) {
    case RegClass::Int: return "r";
    case RegClass::Flt: return "f";
    case RegClass::Vec: return "v";
  }
  return "?";
}

std::string mop_name(MOp op) {
  if (!is_machine_only(op)) return std::string(op_mnemonic(base_opcode(op)));
  switch (op) {
    case MOp::MovRR: return "mov";
    case MOp::MovImm: return "mov.imm";
    case MOp::FMovImm32: return "fmov.imm32";
    case MOp::FMovImm64: return "fmov.imm64";
    case MOp::SpillLoad: return "spill.load";
    case MOp::SpillStore: return "spill.store";
    case MOp::FMA32: return "fma.f32";
    case MOp::LoadAddr: return "lea";
    case MOp::MNop: return "mnop";
  }
  return "?";
}

namespace {

std::string reg_str(const Reg& r) {
  if (!r.valid) return "_";
  std::string s = reg_class_prefix(r.cls);
  s += std::to_string(r.idx);
  return s;
}

}  // namespace

std::string MInst::str() const {
  std::ostringstream os;
  os << mop_name(op);
  if (dst.valid) os << ' ' << reg_str(dst);
  bool first = !dst.valid;
  for (const Reg* r : {&s0, &s1, &s2}) {
    if (!r->valid) continue;
    os << (first ? " " : ", ") << reg_str(*r);
    first = false;
  }
  if (!is_machine_only(op)) {
    const OpInfo& info = op_info(base_opcode(op));
    switch (info.imm) {
      case ImmKind::I64: os << ", #" << imm; break;
      case ImmKind::F32:
      case ImmKind::F64: os << ", #bits:" << imm; break;
      case ImmKind::MemOff:
        if (imm != 0) os << ", +" << imm;
        break;
      case ImmKind::Lane: os << ", [" << a << ']'; break;
      case ImmKind::Block: os << " ->bb" << a; break;
      case ImmKind::Block2: os << " ->bb" << a << "/bb" << b; break;
      case ImmKind::FuncIdx: os << ", @" << a; break;
      default: break;
    }
  } else if (op == MOp::MovImm || op == MOp::FMovImm32 ||
             op == MOp::FMovImm64 || op == MOp::SpillLoad ||
             op == MOp::SpillStore || op == MOp::LoadAddr) {
    os << ", #" << imm;
  }
  return os.str();
}

std::string MFunction::str() const {
  std::ostringstream os;
  os << "mfn " << name << " (vregs i:" << num_vregs[0] << " f:" << num_vregs[1]
     << " v:" << num_vregs[2] << ", slots i:" << num_slots[0]
     << " f:" << num_slots[1] << " v:" << num_slots[2] << ")\n";
  for (size_t b = 0; b < blocks.size(); ++b) {
    os << "bb" << b << ":\n";
    for (const auto& inst : blocks[b].insts) {
      os << "  " << inst.str() << '\n';
    }
  }
  return os.str();
}

uint32_t default_mop_cost(MOp op) {
  if (is_machine_only(op)) {
    switch (op) {
      case MOp::MovRR:
      case MOp::MovImm:
      case MOp::FMovImm32:
      case MOp::FMovImm64:
      case MOp::LoadAddr:
        return 1;
      case MOp::SpillLoad: return 2;
      case MOp::SpillStore: return 1;
      case MOp::FMA32: return 4;
      case MOp::MNop: return 0;
      default: return 1;
    }
  }
  const Opcode bc = base_opcode(op);
  const OpInfo& info = op_info(bc);
  switch (info.category) {
    case OpCategory::Const:
    case OpCategory::Local:
      return 1;
    case OpCategory::IntArith:
      switch (bc) {
        case Opcode::MulI32:
        case Opcode::MulI64:
          return 3;
        case Opcode::DivSI32:
        case Opcode::DivUI32:
        case Opcode::RemSI32:
        case Opcode::RemUI32:
        case Opcode::DivSI64:
          return 20;
        default:
          return 1;
      }
    case OpCategory::FloatArith:
      switch (bc) {
        case Opcode::DivF32:
        case Opcode::DivF64:
          return 16;
        case Opcode::SqrtF32:
        case Opcode::SqrtF64:
          return 20;
        case Opcode::NegF32:
        case Opcode::NegF64:
        case Opcode::AbsF32:
          return 1;
        default:
          return 3;  // add/sub/mul/min/max latency
      }
    case OpCategory::Cmp:
      return 1;
    case OpCategory::Select:
      return 1;
    case OpCategory::Conv:
      return 3;
    case OpCategory::Load:
      return 2;
    case OpCategory::Store:
      return 1;
    case OpCategory::VectorConst:
      return 1;
    case OpCategory::VectorArith:
      switch (bc) {
        case Opcode::VMulF32: return 4;
        case Opcode::VDivF32: return 20;
        case Opcode::VAddF32:
        case Opcode::VSubF32:
        case Opcode::VMinF32:
        case Opcode::VMaxF32:
          return 3;
        case Opcode::VMulI32: return 4;
        default:
          return 1;  // integer lane ops
      }
    case OpCategory::VectorReduce:
      switch (bc) {
        case Opcode::VRSumU8: return 3;   // psadbw-style
        case Opcode::VRSumU16: return 4;
        case Opcode::VRSumI32: return 4;
        case Opcode::VRSumF32: return 6;  // two shuffle+add steps
        case Opcode::VRMaxU8:
        case Opcode::VRMinU8:
        case Opcode::VRMaxU16:
          return 4;
        case Opcode::VRMaxSI32: return 4;
        case Opcode::VRMaxF32:
        case Opcode::VRMinF32:
          return 6;
        default: return 4;
      }
    case OpCategory::VectorLane:
      return 2;  // extract/insert cross the vector/scalar domain
    case OpCategory::Control:
      return 1;
    case OpCategory::Call:
      return 4;
    case OpCategory::Misc:
      return 0;
  }
  return 1;
}

uint32_t MachineDesc::cost(MOp op) const {
  const auto it = cost_overrides.find(static_cast<uint16_t>(op));
  if (it != cost_overrides.end()) return it->second;
  return default_mop_cost(op);
}

}  // namespace svc
