// sparcsim: an UltraSparc-flavored scalar RISC. No SIMD unit: the JIT
// de-vectorizes the portable builtins into per-lane scalar code.
// Characteristics that drive Table 1's shape on this target:
//  - no SIMD, so a 16-lane de-vectorized loop carries 16 live lane values:
//    with only 12 allocatable integer registers (register windows reserve
//    the rest) the byte/short reduction kernels spill, landing slightly
//    *below* scalar (the paper's 0.78-0.95 column);
//  - sub-word memory accesses are comparatively expensive (no byte-merge
//    path: cost 3 vs 2 for word loads);
//  - shallow pipeline: cheap mispredictions (4), so branchy scalar code
//    is not punished the way x86sim punishes it;
//  - conditional moves (movcc) cost 3, making branchless selects mediocre.
#include "targets/target_registry.h"

namespace svc {

MachineDesc make_sparcsim_desc() {
  MachineDesc d;
  d.kind = TargetKind::SparcSim;
  d.name = "sparcsim";
  d.has_simd = false;
  d.has_fma = false;
  d.regs[static_cast<size_t>(RegClass::Int)] = 10;
  d.regs[static_cast<size_t>(RegClass::Flt)] = 14;
  d.regs[static_cast<size_t>(RegClass::Vec)] = 0;  // de-vectorized anyway
  d.load_use_penalty = 2;
  d.taken_branch_penalty = 1;
  d.mispredict_penalty = 4;

  d.override_cost(Opcode::LoadI8U, 3);
  d.override_cost(Opcode::LoadI8S, 3);
  d.override_cost(Opcode::LoadI16U, 3);
  d.override_cost(Opcode::LoadI16S, 3);
  d.override_cost(Opcode::StoreI8, 2);
  d.override_cost(Opcode::StoreI16, 2);
  d.override_cost(Opcode::SelectI32, 3);
  d.override_cost(Opcode::SelectF32, 3);
  d.override_cost(Opcode::SelectF64, 3);
  // FPU: competitive fp add/mul (UltraSparc had a good FPU).
  d.override_cost(Opcode::AddF32, 3);
  d.override_cost(Opcode::MulF32, 3);
  // Spill traffic is painful with the register-window save area.
  d.override_cost(MOp::SpillLoad, 4);
  d.override_cost(MOp::SpillStore, 3);
  return d;
}

}  // namespace svc
