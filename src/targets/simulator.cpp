#include "targets/simulator.h"

#include <bit>
#include <cmath>
#include <limits>

#include "support/diagnostics.h"

namespace svc {
namespace {

// Register-file view of one call frame. Physical register files are per
// frame (the call cost models save/restore traffic in aggregate).
struct RegFiles {
  std::vector<int64_t> iregs;
  std::vector<double> fregs;
  std::vector<V128> vregs;
  std::vector<int64_t> islots;
  std::vector<double> fslots;
  std::vector<V128> vslots;
};

}  // namespace

class SimFrame {
 public:
  SimFrame(Simulator& sim, const MFunction& fn, uint32_t func_idx)
      : sim_(sim), desc_(sim.desc_), mem_(sim.memory_), fn_(fn),
        func_idx_(func_idx) {
    // +2 scratch registers per class used by the spill rewriter.
    regs_.iregs.assign(desc_.regs[0] + 4, 0);
    regs_.fregs.assign(desc_.regs[1] + 4, 0.0);
    regs_.vregs.assign(desc_.regs[2] + 4, V128{});
    regs_.islots.assign(fn.num_slots[0], 0);
    regs_.fslots.assign(fn.num_slots[1], 0.0);
    regs_.vslots.assign(fn.num_slots[2], V128{});
  }

  TrapKind run(std::span<const Value> args, Value& ret_out);

 private:
  // --- register accessors -------------------------------------------------
  // Slot-flagged registers (spilled parameters / call arguments) read and
  // write the frame's spill area directly.
  [[nodiscard]] int64_t iget(const Reg& r) const {
    return r.is_slot() ? regs_.islots[r.slot_index()] : regs_.iregs[r.idx];
  }
  void iset(const Reg& r, int64_t v) {
    if (r.is_slot()) {
      regs_.islots[r.slot_index()] = v;
    } else {
      regs_.iregs[r.idx] = v;
    }
  }
  [[nodiscard]] int32_t i32get(const Reg& r) const {
    return static_cast<int32_t>(iget(r));
  }
  void i32set(const Reg& r, int32_t v) { iset(r, v); }
  [[nodiscard]] double fget(const Reg& r) const {
    return r.is_slot() ? regs_.fslots[r.slot_index()] : regs_.fregs[r.idx];
  }
  void fset(const Reg& r, double v) {
    if (r.is_slot()) {
      regs_.fslots[r.slot_index()] = v;
    } else {
      regs_.fregs[r.idx] = v;
    }
  }
  [[nodiscard]] float f32get(const Reg& r) const {
    return static_cast<float>(fget(r));
  }
  void f32set(const Reg& r, float v) { fset(r, v); }
  [[nodiscard]] const V128& vget(const Reg& r) const {
    return r.is_slot() ? regs_.vslots[r.slot_index()] : regs_.vregs[r.idx];
  }
  void vset(const Reg& r, const V128& v) {
    if (r.is_slot()) {
      regs_.vslots[r.slot_index()] = v;
    } else {
      regs_.vregs[r.idx] = v;
    }
  }

  void set_value(const Reg& r, const Value& v) {
    switch (v.type) {
      case Type::I32: i32set(r, v.i32); break;
      case Type::I64: iset(r, v.i64); break;
      case Type::F32: f32set(r, v.f32); break;
      case Type::F64: fset(r, v.f64); break;
      case Type::V128: vset(r, v.v128); break;
      case Type::Void: break;
    }
  }
  [[nodiscard]] Value get_value(const Reg& r, Type t) const {
    switch (t) {
      case Type::I32: return Value::make_i32(i32get(r));
      case Type::I64: return Value::make_i64(iget(r));
      case Type::F32: return Value::make_f32(f32get(r));
      case Type::F64: return Value::make_f64(fget(r));
      case Type::V128: return Value::make_v128(vget(r));
      case Type::Void: return Value{};
    }
    return Value{};
  }

  // --- timing helpers -----------------------------------------------------
  void account(const MInst& inst) {
    sim_.stats_.cycles += desc_.cost(inst.op);
    sim_.stats_.instructions += 1;
    // Load-use stall: consuming the previous load's destination.
    if (last_load_valid_) {
      const Reg& lr = last_load_dst_;
      if ((inst.s0.valid && inst.s0 == lr) ||
          (inst.s1.valid && inst.s1 == lr) ||
          (inst.s2.valid && inst.s2 == lr)) {
        sim_.stats_.cycles += desc_.load_use_penalty;
      }
    }
    last_load_valid_ = false;
  }
  void mark_load(const MInst& inst) {
    last_load_dst_ = inst.dst;
    last_load_valid_ = true;
  }

  /// 2-bit saturating counter prediction; returns true if mispredicted.
  bool predict(uint32_t block, uint32_t inst_idx, bool taken) {
    const uint64_t key = (static_cast<uint64_t>(func_idx_) << 40) |
                         (static_cast<uint64_t>(block) << 16) | inst_idx;
    uint8_t& ctr = sim_.predictor_[key];  // init 0 = strongly not-taken
    const bool predicted_taken = ctr >= 2;
    if (taken && ctr < 3) ++ctr;
    if (!taken && ctr > 0) --ctr;
    return predicted_taken != taken;
  }

  void account_jump(uint32_t from_block, uint32_t to_block) {
    // Fall-through (next block in layout order) is free; anything else
    // pays the taken-branch penalty.
    if (to_block != from_block + 1) {
      sim_.stats_.cycles += desc_.taken_branch_penalty;
      sim_.stats_.taken_branches += 1;
    }
  }

  Simulator& sim_;
  const MachineDesc& desc_;
  Memory& mem_;
  const MFunction& fn_;
  uint32_t func_idx_;
  RegFiles regs_;
  Reg last_load_dst_;
  bool last_load_valid_ = false;
};

TrapKind SimFrame::run(std::span<const Value> args, Value& ret_out) {
  for (size_t i = 0; i < args.size() && i < fn_.param_regs.size(); ++i) {
    set_value(fn_.param_regs[i], args[i]);
  }

  uint32_t block = 0;
  for (;;) {
    const MBlock& bb = fn_.blocks[block];
    for (uint32_t idx = 0; idx < bb.insts.size(); ++idx) {
      const MInst& inst = bb.insts[idx];
      if (sim_.stats_.instructions >= sim_.step_budget_) {
        return TrapKind::StepBudgetExceeded;
      }
      account(inst);

      // --- machine-only ops ---------------------------------------------
      if (is_machine_only(inst.op)) {
        switch (inst.op) {
          case MOp::MovRR:
            switch (inst.dst.cls) {
              case RegClass::Int: iset(inst.dst, iget(inst.s0)); break;
              case RegClass::Flt: fset(inst.dst, fget(inst.s0)); break;
              case RegClass::Vec: vset(inst.dst, vget(inst.s0)); break;
            }
            break;
          case MOp::MovImm:
            iset(inst.dst, inst.imm);
            break;
          case MOp::FMovImm32:
            f32set(inst.dst, std::bit_cast<float>(
                                 static_cast<uint32_t>(inst.imm)));
            break;
          case MOp::FMovImm64:
            fset(inst.dst,
                 std::bit_cast<double>(static_cast<uint64_t>(inst.imm)));
            break;
          case MOp::SpillLoad: {
            sim_.stats_.spill_loads += 1;
            const auto slot = static_cast<size_t>(inst.imm);
            switch (inst.dst.cls) {
              case RegClass::Int: iset(inst.dst, regs_.islots[slot]); break;
              case RegClass::Flt: fset(inst.dst, regs_.fslots[slot]); break;
              case RegClass::Vec: vset(inst.dst, regs_.vslots[slot]); break;
            }
            mark_load(inst);
            break;
          }
          case MOp::SpillStore: {
            sim_.stats_.spill_stores += 1;
            const auto slot = static_cast<size_t>(inst.imm);
            switch (inst.s0.cls) {
              case RegClass::Int: regs_.islots[slot] = iget(inst.s0); break;
              case RegClass::Flt: regs_.fslots[slot] = fget(inst.s0); break;
              case RegClass::Vec: regs_.vslots[slot] = vget(inst.s0); break;
            }
            break;
          }
          case MOp::FMA32:
            f32set(inst.dst, f32get(inst.s0) * f32get(inst.s1) +
                                 f32get(inst.s2));
            break;
          case MOp::LoadAddr:
            i32set(inst.dst,
                   static_cast<int32_t>(i32get(inst.s0) + inst.imm));
            break;
          case MOp::MNop:
            break;
          default:
            fatal("simulator: unknown machine-only op");
        }
        continue;
      }

      // --- shared-semantics ops -------------------------------------------
      const Opcode bc = base_opcode(inst.op);
      switch (bc) {
        // Integer arithmetic (i32 slices of int registers).
        case Opcode::AddI32:
          i32set(inst.dst,
                 static_cast<int32_t>(static_cast<uint32_t>(i32get(inst.s0)) +
                                      static_cast<uint32_t>(i32get(inst.s1))));
          break;
        case Opcode::SubI32:
          i32set(inst.dst,
                 static_cast<int32_t>(static_cast<uint32_t>(i32get(inst.s0)) -
                                      static_cast<uint32_t>(i32get(inst.s1))));
          break;
        case Opcode::MulI32:
          i32set(inst.dst,
                 static_cast<int32_t>(static_cast<uint32_t>(i32get(inst.s0)) *
                                      static_cast<uint32_t>(i32get(inst.s1))));
          break;
        case Opcode::DivSI32: {
          const int32_t a = i32get(inst.s0), b = i32get(inst.s1);
          if (b == 0) return TrapKind::DivideByZero;
          if (a == std::numeric_limits<int32_t>::min() && b == -1) {
            return TrapKind::IntegerOverflow;
          }
          i32set(inst.dst, a / b);
          break;
        }
        case Opcode::DivUI32: {
          const auto a = static_cast<uint32_t>(i32get(inst.s0));
          const auto b = static_cast<uint32_t>(i32get(inst.s1));
          if (b == 0) return TrapKind::DivideByZero;
          i32set(inst.dst, static_cast<int32_t>(a / b));
          break;
        }
        case Opcode::RemSI32: {
          const int32_t a = i32get(inst.s0), b = i32get(inst.s1);
          if (b == 0) return TrapKind::DivideByZero;
          if (a == std::numeric_limits<int32_t>::min() && b == -1) {
            i32set(inst.dst, 0);
          } else {
            i32set(inst.dst, a % b);
          }
          break;
        }
        case Opcode::RemUI32: {
          const auto a = static_cast<uint32_t>(i32get(inst.s0));
          const auto b = static_cast<uint32_t>(i32get(inst.s1));
          if (b == 0) return TrapKind::DivideByZero;
          i32set(inst.dst, static_cast<int32_t>(a % b));
          break;
        }
        case Opcode::AndI32:
          i32set(inst.dst, i32get(inst.s0) & i32get(inst.s1));
          break;
        case Opcode::OrI32:
          i32set(inst.dst, i32get(inst.s0) | i32get(inst.s1));
          break;
        case Opcode::XorI32:
          i32set(inst.dst, i32get(inst.s0) ^ i32get(inst.s1));
          break;
        case Opcode::ShlI32:
          i32set(inst.dst,
                 static_cast<int32_t>(static_cast<uint32_t>(i32get(inst.s0))
                                      << (i32get(inst.s1) & 31)));
          break;
        case Opcode::ShrSI32:
          i32set(inst.dst, i32get(inst.s0) >> (i32get(inst.s1) & 31));
          break;
        case Opcode::ShrUI32:
          i32set(inst.dst,
                 static_cast<int32_t>(static_cast<uint32_t>(i32get(inst.s0)) >>
                                      (i32get(inst.s1) & 31)));
          break;
        case Opcode::MinSI32:
          i32set(inst.dst, std::min(i32get(inst.s0), i32get(inst.s1)));
          break;
        case Opcode::MaxSI32:
          i32set(inst.dst, std::max(i32get(inst.s0), i32get(inst.s1)));
          break;
        case Opcode::MinUI32:
          i32set(inst.dst, static_cast<int32_t>(
                               std::min(static_cast<uint32_t>(i32get(inst.s0)),
                                        static_cast<uint32_t>(i32get(inst.s1)))));
          break;
        case Opcode::MaxUI32:
          i32set(inst.dst, static_cast<int32_t>(
                               std::max(static_cast<uint32_t>(i32get(inst.s0)),
                                        static_cast<uint32_t>(i32get(inst.s1)))));
          break;
        case Opcode::EqzI32:
          i32set(inst.dst, i32get(inst.s0) == 0);
          break;

        case Opcode::EqI32: i32set(inst.dst, i32get(inst.s0) == i32get(inst.s1)); break;
        case Opcode::NeI32: i32set(inst.dst, i32get(inst.s0) != i32get(inst.s1)); break;
        case Opcode::LtSI32: i32set(inst.dst, i32get(inst.s0) < i32get(inst.s1)); break;
        case Opcode::LtUI32:
          i32set(inst.dst, static_cast<uint32_t>(i32get(inst.s0)) <
                               static_cast<uint32_t>(i32get(inst.s1)));
          break;
        case Opcode::LeSI32: i32set(inst.dst, i32get(inst.s0) <= i32get(inst.s1)); break;
        case Opcode::LeUI32:
          i32set(inst.dst, static_cast<uint32_t>(i32get(inst.s0)) <=
                               static_cast<uint32_t>(i32get(inst.s1)));
          break;
        case Opcode::GtSI32: i32set(inst.dst, i32get(inst.s0) > i32get(inst.s1)); break;
        case Opcode::GtUI32:
          i32set(inst.dst, static_cast<uint32_t>(i32get(inst.s0)) >
                               static_cast<uint32_t>(i32get(inst.s1)));
          break;
        case Opcode::GeSI32: i32set(inst.dst, i32get(inst.s0) >= i32get(inst.s1)); break;
        case Opcode::GeUI32:
          i32set(inst.dst, static_cast<uint32_t>(i32get(inst.s0)) >=
                               static_cast<uint32_t>(i32get(inst.s1)));
          break;

        // i64.
        case Opcode::AddI64:
          iset(inst.dst, static_cast<int64_t>(static_cast<uint64_t>(iget(inst.s0)) +
                                              static_cast<uint64_t>(iget(inst.s1))));
          break;
        case Opcode::SubI64:
          iset(inst.dst, static_cast<int64_t>(static_cast<uint64_t>(iget(inst.s0)) -
                                              static_cast<uint64_t>(iget(inst.s1))));
          break;
        case Opcode::MulI64:
          iset(inst.dst, static_cast<int64_t>(static_cast<uint64_t>(iget(inst.s0)) *
                                              static_cast<uint64_t>(iget(inst.s1))));
          break;
        case Opcode::DivSI64: {
          const int64_t a = iget(inst.s0), b = iget(inst.s1);
          if (b == 0) return TrapKind::DivideByZero;
          if (a == std::numeric_limits<int64_t>::min() && b == -1) {
            return TrapKind::IntegerOverflow;
          }
          iset(inst.dst, a / b);
          break;
        }
        case Opcode::AndI64: iset(inst.dst, iget(inst.s0) & iget(inst.s1)); break;
        case Opcode::OrI64: iset(inst.dst, iget(inst.s0) | iget(inst.s1)); break;
        case Opcode::XorI64: iset(inst.dst, iget(inst.s0) ^ iget(inst.s1)); break;
        case Opcode::ShlI64:
          iset(inst.dst, static_cast<int64_t>(static_cast<uint64_t>(iget(inst.s0))
                                              << (iget(inst.s1) & 63)));
          break;
        case Opcode::ShrSI64:
          iset(inst.dst, iget(inst.s0) >> (iget(inst.s1) & 63));
          break;
        case Opcode::ShrUI64:
          iset(inst.dst, static_cast<int64_t>(static_cast<uint64_t>(iget(inst.s0)) >>
                                              (iget(inst.s1) & 63)));
          break;
        case Opcode::EqI64: i32set(inst.dst, iget(inst.s0) == iget(inst.s1)); break;
        case Opcode::NeI64: i32set(inst.dst, iget(inst.s0) != iget(inst.s1)); break;
        case Opcode::LtSI64: i32set(inst.dst, iget(inst.s0) < iget(inst.s1)); break;
        case Opcode::GtSI64: i32set(inst.dst, iget(inst.s0) > iget(inst.s1)); break;

        // f32 (computed in float precision, stored widened).
        case Opcode::AddF32: f32set(inst.dst, f32get(inst.s0) + f32get(inst.s1)); break;
        case Opcode::SubF32: f32set(inst.dst, f32get(inst.s0) - f32get(inst.s1)); break;
        case Opcode::MulF32: f32set(inst.dst, f32get(inst.s0) * f32get(inst.s1)); break;
        case Opcode::DivF32: f32set(inst.dst, f32get(inst.s0) / f32get(inst.s1)); break;
        case Opcode::MinF32:
          f32set(inst.dst, std::fmin(f32get(inst.s0), f32get(inst.s1)));
          break;
        case Opcode::MaxF32:
          f32set(inst.dst, std::fmax(f32get(inst.s0), f32get(inst.s1)));
          break;
        case Opcode::NegF32: f32set(inst.dst, -f32get(inst.s0)); break;
        case Opcode::AbsF32: f32set(inst.dst, std::fabs(f32get(inst.s0))); break;
        case Opcode::SqrtF32: f32set(inst.dst, std::sqrt(f32get(inst.s0))); break;
        case Opcode::EqF32: i32set(inst.dst, f32get(inst.s0) == f32get(inst.s1)); break;
        case Opcode::NeF32: i32set(inst.dst, f32get(inst.s0) != f32get(inst.s1)); break;
        case Opcode::LtF32: i32set(inst.dst, f32get(inst.s0) < f32get(inst.s1)); break;
        case Opcode::LeF32: i32set(inst.dst, f32get(inst.s0) <= f32get(inst.s1)); break;
        case Opcode::GtF32: i32set(inst.dst, f32get(inst.s0) > f32get(inst.s1)); break;
        case Opcode::GeF32: i32set(inst.dst, f32get(inst.s0) >= f32get(inst.s1)); break;

        // f64.
        case Opcode::AddF64: fset(inst.dst, fget(inst.s0) + fget(inst.s1)); break;
        case Opcode::SubF64: fset(inst.dst, fget(inst.s0) - fget(inst.s1)); break;
        case Opcode::MulF64: fset(inst.dst, fget(inst.s0) * fget(inst.s1)); break;
        case Opcode::DivF64: fset(inst.dst, fget(inst.s0) / fget(inst.s1)); break;
        case Opcode::MinF64:
          fset(inst.dst, std::fmin(fget(inst.s0), fget(inst.s1)));
          break;
        case Opcode::MaxF64:
          fset(inst.dst, std::fmax(fget(inst.s0), fget(inst.s1)));
          break;
        case Opcode::NegF64: fset(inst.dst, -fget(inst.s0)); break;
        case Opcode::SqrtF64: fset(inst.dst, std::sqrt(fget(inst.s0))); break;
        case Opcode::EqF64: i32set(inst.dst, fget(inst.s0) == fget(inst.s1)); break;
        case Opcode::NeF64: i32set(inst.dst, fget(inst.s0) != fget(inst.s1)); break;
        case Opcode::LtF64: i32set(inst.dst, fget(inst.s0) < fget(inst.s1)); break;
        case Opcode::LeF64: i32set(inst.dst, fget(inst.s0) <= fget(inst.s1)); break;
        case Opcode::GtF64: i32set(inst.dst, fget(inst.s0) > fget(inst.s1)); break;
        case Opcode::GeF64: i32set(inst.dst, fget(inst.s0) >= fget(inst.s1)); break;

        // Selects: dst = cond (s2) ? s0 : s1.
        case Opcode::SelectI32:
        case Opcode::SelectI64:
          iset(inst.dst, i32get(inst.s2) != 0 ? iget(inst.s0) : iget(inst.s1));
          break;
        case Opcode::SelectF32:
        case Opcode::SelectF64:
          fset(inst.dst, i32get(inst.s2) != 0 ? fget(inst.s0) : fget(inst.s1));
          break;

        // Conversions.
        case Opcode::I32ToI64S: iset(inst.dst, i32get(inst.s0)); break;
        case Opcode::I32ToI64U:
          iset(inst.dst, static_cast<uint32_t>(i32get(inst.s0)));
          break;
        case Opcode::I64ToI32:
          i32set(inst.dst, static_cast<int32_t>(iget(inst.s0)));
          break;
        case Opcode::I32ToF32S:
          f32set(inst.dst, static_cast<float>(i32get(inst.s0)));
          break;
        case Opcode::F32ToI32S:
          i32set(inst.dst, static_cast<int32_t>(f32get(inst.s0)));
          break;
        case Opcode::I32ToF64S: fset(inst.dst, i32get(inst.s0)); break;
        case Opcode::F64ToI32S:
          i32set(inst.dst, static_cast<int32_t>(fget(inst.s0)));
          break;
        case Opcode::F32ToF64: fset(inst.dst, f32get(inst.s0)); break;
        case Opcode::F64ToF32:
          f32set(inst.dst, static_cast<float>(fget(inst.s0)));
          break;
        case Opcode::I64ToF64S:
          fset(inst.dst, static_cast<double>(iget(inst.s0)));
          break;
        case Opcode::F64ToI64S:
          iset(inst.dst, static_cast<int64_t>(fget(inst.s0)));
          break;

        // Memory.
        case Opcode::LoadI8U:
        case Opcode::LoadI8S:
        case Opcode::LoadI16U:
        case Opcode::LoadI16S:
        case Opcode::LoadI32:
        case Opcode::LoadI64:
        case Opcode::LoadF32:
        case Opcode::LoadF64:
        case Opcode::LoadV128: {
          const uint64_t addr = static_cast<uint32_t>(i32get(inst.s0)) +
                                static_cast<uint64_t>(inst.imm);
          const uint32_t len = op_info(bc).mem_bytes;
          if (!mem_.in_bounds(addr, len)) return TrapKind::OutOfBoundsMemory;
          const auto a32 = static_cast<uint32_t>(addr);
          sim_.stats_.loads += 1;
          switch (bc) {
            case Opcode::LoadI8U: i32set(inst.dst, mem_.load_u8(a32)); break;
            case Opcode::LoadI8S:
              i32set(inst.dst, static_cast<int8_t>(mem_.load_u8(a32)));
              break;
            case Opcode::LoadI16U: i32set(inst.dst, mem_.load_u16(a32)); break;
            case Opcode::LoadI16S:
              i32set(inst.dst, static_cast<int16_t>(mem_.load_u16(a32)));
              break;
            case Opcode::LoadI32:
              i32set(inst.dst, static_cast<int32_t>(mem_.load_u32(a32)));
              break;
            case Opcode::LoadI64:
              iset(inst.dst, static_cast<int64_t>(mem_.load_u64(a32)));
              break;
            case Opcode::LoadF32:
              f32set(inst.dst, std::bit_cast<float>(mem_.load_u32(a32)));
              break;
            case Opcode::LoadF64:
              fset(inst.dst, std::bit_cast<double>(mem_.load_u64(a32)));
              break;
            case Opcode::LoadV128:
              vset(inst.dst, mem_.load_v128(a32));
              break;
            default: break;
          }
          mark_load(inst);
          break;
        }
        case Opcode::StoreI8:
        case Opcode::StoreI16:
        case Opcode::StoreI32:
        case Opcode::StoreI64:
        case Opcode::StoreF32:
        case Opcode::StoreF64:
        case Opcode::StoreV128: {
          const uint64_t addr = static_cast<uint32_t>(i32get(inst.s0)) +
                                static_cast<uint64_t>(inst.imm);
          const uint32_t len = op_info(bc).mem_bytes;
          if (!mem_.in_bounds(addr, len)) return TrapKind::OutOfBoundsMemory;
          const auto a32 = static_cast<uint32_t>(addr);
          sim_.stats_.stores += 1;
          switch (bc) {
            case Opcode::StoreI8:
              mem_.store_u8(a32, static_cast<uint8_t>(i32get(inst.s1)));
              break;
            case Opcode::StoreI16:
              mem_.store_u16(a32, static_cast<uint16_t>(i32get(inst.s1)));
              break;
            case Opcode::StoreI32:
              mem_.store_u32(a32, static_cast<uint32_t>(i32get(inst.s1)));
              break;
            case Opcode::StoreI64:
              mem_.store_u64(a32, static_cast<uint64_t>(iget(inst.s1)));
              break;
            case Opcode::StoreF32:
              mem_.store_u32(a32, std::bit_cast<uint32_t>(f32get(inst.s1)));
              break;
            case Opcode::StoreF64:
              mem_.store_u64(a32, std::bit_cast<uint64_t>(fget(inst.s1)));
              break;
            case Opcode::StoreV128:
              mem_.store_v128(a32, vget(inst.s1));
              break;
            default: break;
          }
          break;
        }

        // Vector ops (only selected on has_simd targets; semantics shared
        // with the interpreter definitions).
        case Opcode::VZero: vset(inst.dst, V128{}); break;
        case Opcode::VSplatI8:
          vset(inst.dst, V128::splat_u8(static_cast<uint8_t>(i32get(inst.s0))));
          break;
        case Opcode::VSplatI16:
          vset(inst.dst,
               V128::splat_u16(static_cast<uint16_t>(i32get(inst.s0))));
          break;
        case Opcode::VSplatI32:
          vset(inst.dst,
               V128::splat_u32(static_cast<uint32_t>(i32get(inst.s0))));
          break;
        case Opcode::VSplatF32:
          vset(inst.dst, V128::splat_f32(f32get(inst.s0)));
          break;

        case Opcode::VAddI8:
        case Opcode::VSubI8:
        case Opcode::VMinU8:
        case Opcode::VMaxU8: {
          const V128& a = vget(inst.s0);
          const V128& b = vget(inst.s1);
          V128 r;
          for (size_t i = 0; i < 16; ++i) {
            const uint8_t x = a.u8(i), y = b.u8(i);
            uint8_t o = 0;
            switch (bc) {
              case Opcode::VAddI8: o = static_cast<uint8_t>(x + y); break;
              case Opcode::VSubI8: o = static_cast<uint8_t>(x - y); break;
              case Opcode::VMinU8: o = std::min(x, y); break;
              case Opcode::VMaxU8: o = std::max(x, y); break;
              default: break;
            }
            r.set_u8(i, o);
          }
          vset(inst.dst, r);
          break;
        }
        case Opcode::VAddI16:
        case Opcode::VSubI16:
        case Opcode::VMinU16:
        case Opcode::VMaxU16: {
          const V128& a = vget(inst.s0);
          const V128& b = vget(inst.s1);
          V128 r;
          for (size_t i = 0; i < 8; ++i) {
            const uint16_t x = a.u16(i), y = b.u16(i);
            uint16_t o = 0;
            switch (bc) {
              case Opcode::VAddI16: o = static_cast<uint16_t>(x + y); break;
              case Opcode::VSubI16: o = static_cast<uint16_t>(x - y); break;
              case Opcode::VMinU16: o = std::min(x, y); break;
              case Opcode::VMaxU16: o = std::max(x, y); break;
              default: break;
            }
            r.set_u16(i, o);
          }
          vset(inst.dst, r);
          break;
        }
        case Opcode::VAddI32:
        case Opcode::VSubI32:
        case Opcode::VMulI32:
        case Opcode::VMinSI32:
        case Opcode::VMaxSI32: {
          const V128& a = vget(inst.s0);
          const V128& b = vget(inst.s1);
          V128 r;
          for (size_t i = 0; i < 4; ++i) {
            const uint32_t x = a.u32(i), y = b.u32(i);
            const auto xs = static_cast<int32_t>(x);
            const auto ys = static_cast<int32_t>(y);
            uint32_t o = 0;
            switch (bc) {
              case Opcode::VAddI32: o = x + y; break;
              case Opcode::VSubI32: o = x - y; break;
              case Opcode::VMulI32: o = x * y; break;
              case Opcode::VMinSI32:
                o = static_cast<uint32_t>(std::min(xs, ys));
                break;
              case Opcode::VMaxSI32:
                o = static_cast<uint32_t>(std::max(xs, ys));
                break;
              default: break;
            }
            r.set_u32(i, o);
          }
          vset(inst.dst, r);
          break;
        }
        case Opcode::VAddF32:
        case Opcode::VSubF32:
        case Opcode::VMulF32:
        case Opcode::VDivF32:
        case Opcode::VMinF32:
        case Opcode::VMaxF32: {
          const V128& a = vget(inst.s0);
          const V128& b = vget(inst.s1);
          V128 r;
          for (size_t i = 0; i < 4; ++i) {
            const float x = a.f32(i), y = b.f32(i);
            float o = 0;
            switch (bc) {
              case Opcode::VAddF32: o = x + y; break;
              case Opcode::VSubF32: o = x - y; break;
              case Opcode::VMulF32: o = x * y; break;
              case Opcode::VDivF32: o = x / y; break;
              case Opcode::VMinF32: o = std::fmin(x, y); break;
              case Opcode::VMaxF32: o = std::fmax(x, y); break;
              default: break;
            }
            r.set_f32(i, o);
          }
          vset(inst.dst, r);
          break;
        }
        case Opcode::VAnd:
        case Opcode::VOr:
        case Opcode::VXor: {
          const V128& a = vget(inst.s0);
          const V128& b = vget(inst.s1);
          V128 r;
          for (size_t i = 0; i < 16; ++i) {
            uint8_t o = 0;
            switch (bc) {
              case Opcode::VAnd: o = a.u8(i) & b.u8(i); break;
              case Opcode::VOr: o = a.u8(i) | b.u8(i); break;
              case Opcode::VXor: o = a.u8(i) ^ b.u8(i); break;
              default: break;
            }
            r.set_u8(i, o);
          }
          vset(inst.dst, r);
          break;
        }
        case Opcode::VRSumU8: {
          const V128& a = vget(inst.s0);
          int32_t s = 0;
          for (size_t i = 0; i < 16; ++i) s += a.u8(i);
          i32set(inst.dst, s);
          break;
        }
        case Opcode::VRSumU16: {
          const V128& a = vget(inst.s0);
          int32_t s = 0;
          for (size_t i = 0; i < 8; ++i) s += a.u16(i);
          i32set(inst.dst, s);
          break;
        }
        case Opcode::VRSumI32: {
          const V128& a = vget(inst.s0);
          uint32_t s = 0;
          for (size_t i = 0; i < 4; ++i) s += a.u32(i);
          i32set(inst.dst, static_cast<int32_t>(s));
          break;
        }
        case Opcode::VRSumF32: {
          const V128& a = vget(inst.s0);
          f32set(inst.dst, (a.f32(0) + a.f32(1)) + (a.f32(2) + a.f32(3)));
          break;
        }
        case Opcode::VRMaxU8: {
          const V128& a = vget(inst.s0);
          uint8_t m = 0;
          for (size_t i = 0; i < 16; ++i) m = std::max(m, a.u8(i));
          i32set(inst.dst, m);
          break;
        }
        case Opcode::VRMinU8: {
          const V128& a = vget(inst.s0);
          uint8_t m = 0xff;
          for (size_t i = 0; i < 16; ++i) m = std::min(m, a.u8(i));
          i32set(inst.dst, m);
          break;
        }
        case Opcode::VRMaxU16: {
          const V128& a = vget(inst.s0);
          uint16_t m = 0;
          for (size_t i = 0; i < 8; ++i) m = std::max(m, a.u16(i));
          i32set(inst.dst, m);
          break;
        }
        case Opcode::VRMaxSI32: {
          const V128& a = vget(inst.s0);
          int32_t m = std::numeric_limits<int32_t>::min();
          for (size_t i = 0; i < 4; ++i) {
            m = std::max(m, static_cast<int32_t>(a.u32(i)));
          }
          i32set(inst.dst, m);
          break;
        }
        case Opcode::VRMaxF32: {
          const V128& a = vget(inst.s0);
          float m = a.f32(0);
          for (size_t i = 1; i < 4; ++i) m = std::fmax(m, a.f32(i));
          f32set(inst.dst, m);
          break;
        }
        case Opcode::VRMinF32: {
          const V128& a = vget(inst.s0);
          float m = a.f32(0);
          for (size_t i = 1; i < 4; ++i) m = std::fmin(m, a.f32(i));
          f32set(inst.dst, m);
          break;
        }
        case Opcode::VExtractU8:
          i32set(inst.dst, vget(inst.s0).u8(inst.a));
          break;
        case Opcode::VExtractU16:
          i32set(inst.dst, vget(inst.s0).u16(inst.a));
          break;
        case Opcode::VExtractI32:
          i32set(inst.dst, static_cast<int32_t>(vget(inst.s0).u32(inst.a)));
          break;
        case Opcode::VExtractF32:
          f32set(inst.dst, vget(inst.s0).f32(inst.a));
          break;
        case Opcode::VInsertI8: {
          V128 r = vget(inst.s0);
          r.set_u8(inst.a, static_cast<uint8_t>(i32get(inst.s1)));
          vset(inst.dst, r);
          break;
        }
        case Opcode::VInsertI16: {
          V128 r = vget(inst.s0);
          r.set_u16(inst.a, static_cast<uint16_t>(i32get(inst.s1)));
          vset(inst.dst, r);
          break;
        }
        case Opcode::VInsertI32: {
          V128 r = vget(inst.s0);
          r.set_u32(inst.a, static_cast<uint32_t>(i32get(inst.s1)));
          vset(inst.dst, r);
          break;
        }
        case Opcode::VInsertF32: {
          V128 r = vget(inst.s0);
          r.set_f32(inst.a, f32get(inst.s1));
          vset(inst.dst, r);
          break;
        }

        // Control.
        case Opcode::Jump:
          sim_.stats_.branches += 1;
          account_jump(block, inst.a);
          block = inst.a;
          goto next_block;
        case Opcode::BranchIf: {
          sim_.stats_.branches += 1;
          const bool taken = i32get(inst.s0) != 0;
          if (predict(block, idx, taken)) {
            sim_.stats_.mispredicts += 1;
            sim_.stats_.cycles += desc_.mispredict_penalty;
          }
          const uint32_t next = taken ? inst.a : inst.b;
          account_jump(block, next);
          block = next;
          goto next_block;
        }
        case Opcode::Ret:
          if (fn_.ret_type != Type::Void) {
            ret_out = get_value(inst.s0, fn_.ret_type);
          }
          return TrapKind::None;
        case Opcode::Trap:
          return TrapKind::ExplicitTrap;
        case Opcode::Call: {
          sim_.stats_.calls += 1;
          if (++sim_.call_depth_ > Simulator::kMaxCallDepth) {
            return TrapKind::CallStackOverflow;
          }
          const MFunction& callee = sim_.functions_[inst.a];
          // Argument registers live in the caller's frame, listed by the
          // call-site table (inst.imm indexes fn_.call_sites).
          const auto& arg_regs =
              fn_.call_sites[static_cast<size_t>(inst.imm)];
          std::vector<Value> args;
          args.reserve(arg_regs.size());
          for (const Reg& src : arg_regs) {
            Type t = Type::I64;
            switch (src.cls) {
              case RegClass::Int: t = Type::I64; break;
              case RegClass::Flt: t = Type::F64; break;
              case RegClass::Vec: t = Type::V128; break;
            }
            args.push_back(get_value(src, t));
          }
          // Save/restore traffic approximation.
          sim_.stats_.cycles += 2 * static_cast<uint64_t>(args.size());
          SimFrame child(sim_, callee, inst.a);
          Value ret;
          const TrapKind trap = child.run(args, ret);
          --sim_.call_depth_;
          if (trap != TrapKind::None) return trap;
          if (callee.ret_type != Type::Void && inst.dst.valid) {
            set_value(inst.dst, ret);
          }
          break;
        }
        case Opcode::Drop:
        case Opcode::Nop:
          break;
        default:
          fatal("simulator: unhandled opcode " + std::string(op_mnemonic(bc)));
      }
    }
    // Blocks always end in a terminator; reaching here is a JIT bug.
    fatal("simulator: block fell through");
  next_block:;
  }
}

SimResult Simulator::run(uint32_t func_idx, std::span<const Value> args) {
  stats_ = SimStats{};
  predictor_.clear();
  call_depth_ = 0;
  SimResult result;
  SimFrame frame(*this, functions_[func_idx], func_idx);
  result.trap = frame.run(args, result.value);
  result.stats = stats_;
  return result;
}

}  // namespace svc
