// ppcsim: a PowerPC-flavored scalar RISC (the JIT in the paper ignored
// AltiVec on this machine, so we model it SIMD-less: builtins are
// de-vectorized). Characteristics that drive Table 1's shape:
//  - 24 allocatable GPRs/FPRs: de-vectorized 16-lane loops fit without
//    spilling, so implicit unrolling wins (the paper's 1.1-1.5 column);
//  - cheap sub-word access (lbz/lhz) and update-form addressing;
//  - fused multiply-add (fmadds), which the instruction selector uses for
//    the saxpy pattern;
//  - moderate misprediction cost (5).
#include "targets/target_registry.h"

namespace svc {

MachineDesc make_ppcsim_desc() {
  MachineDesc d;
  d.kind = TargetKind::PpcSim;
  d.name = "ppcsim";
  d.has_simd = false;
  d.has_fma = true;
  d.regs[static_cast<size_t>(RegClass::Int)] = 24;
  d.regs[static_cast<size_t>(RegClass::Flt)] = 24;
  d.regs[static_cast<size_t>(RegClass::Vec)] = 0;
  d.load_use_penalty = 1;
  d.taken_branch_penalty = 1;
  d.mispredict_penalty = 5;

  d.override_cost(Opcode::LoadI8U, 2);   // lbz
  d.override_cost(Opcode::LoadI16U, 2);  // lhz
  d.override_cost(Opcode::SelectI32, 2); // isel
  d.override_cost(Opcode::SelectF32, 2); // fsel
  d.override_cost(Opcode::SelectF64, 2);
  d.override_cost(MOp::FMA32, 4);        // fmadds
  return d;
}

}  // namespace svc
