// spusim: a Cell-SPU-flavored wide-SIMD accelerator for the paper's S3
// offload scenario ("the JIT compiler for an IBM Cell processor could
// decide to offload some of the numerical computations to a vector
// accelerator"). Characteristics:
//  - everything runs on the vector unit: vector ops are fast and fully
//    pipelined (cost 1-2); *scalar* code is awkward (runs on the vector
//    unit with extract/insert overhead, modeled as cost 2-3 scalar ops);
//  - a huge unified register file (128), so spilling never happens;
//  - no branch predictor (hint-based), so mispredictions hurt (18) --
//    control-heavy code belongs on the host core, which is exactly what
//    the annotation-driven mapper decides;
//  - memory is a local store reached by DMA in the SoC model.
#include "targets/target_registry.h"

namespace svc {

MachineDesc make_spusim_desc() {
  MachineDesc d;
  d.kind = TargetKind::SpuSim;
  d.name = "spusim";
  d.has_simd = true;
  d.has_fma = true;
  d.regs[static_cast<size_t>(RegClass::Int)] = 40;
  d.regs[static_cast<size_t>(RegClass::Flt)] = 40;
  d.regs[static_cast<size_t>(RegClass::Vec)] = 48;
  d.load_use_penalty = 3;  // local-store latency 6, partly hidden
  d.taken_branch_penalty = 2;
  d.mispredict_penalty = 18;

  // Scalar ops pay the preferred-slot tax.
  d.override_cost(Opcode::AddI32, 2);
  d.override_cost(Opcode::SubI32, 2);
  d.override_cost(Opcode::AndI32, 2);
  d.override_cost(Opcode::OrI32, 2);
  d.override_cost(Opcode::XorI32, 2);
  d.override_cost(Opcode::ShlI32, 2);
  d.override_cost(Opcode::MulI32, 4);
  d.override_cost(Opcode::AddF32, 3);
  d.override_cost(Opcode::MulF32, 3);
  d.override_cost(Opcode::LoadI8U, 4);  // sub-word: rotate+mask from qword
  d.override_cost(Opcode::LoadI16U, 4);
  d.override_cost(Opcode::StoreI8, 4);
  d.override_cost(Opcode::StoreI16, 4);
  // Wide SIMD unit: fully pipelined vector ops.
  d.override_cost(Opcode::VAddF32, 2);
  d.override_cost(Opcode::VMulF32, 2);
  d.override_cost(Opcode::VAddI8, 1);
  d.override_cost(Opcode::VAddI16, 1);
  d.override_cost(Opcode::VAddI32, 1);
  d.override_cost(Opcode::VMaxU8, 1);
  d.override_cost(Opcode::VMinU8, 1);
  d.override_cost(MOp::FMA32, 3);
  return d;
}

}  // namespace svc
