// Machine layer: target-neutral machine IR (MInst/MFunction), register
// classes, and per-target machine descriptions (register files, SIMD
// capability, cost tables). Four concrete targets are registered:
// x86sim, sparcsim, ppcsim (the Table 1 triple) and spusim (the Cell-like
// vector accelerator of the S3 offload scenario).
//
// Machine ops reuse the SVIL Opcode enumeration in three-address register
// form for all shared semantics; a small set of machine-only ops (moves,
// spills, fused multiply-add) lives above Opcode::Count_. This mirrors how
// a simple JIT maps a virtual ISA onto a RISC-like core 1:1, and lets the
// simulator share semantic definitions with the reference interpreter.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bytecode/opcode.h"

namespace svc {

// --- Machine opcodes -----------------------------------------------------

enum class MOp : uint16_t {
  // Values below kMachineOnlyBase mirror svc::Opcode semantics.
  MovRR = 1000,   // dst <- s0 (same class)
  MovImm,         // int dst <- imm
  FMovImm32,      // flt dst <- f32 imm (bits in imm)
  FMovImm64,      // flt dst <- f64 imm (bits in imm)
  SpillLoad,      // dst <- frame[imm]   (slot index, class of dst)
  SpillStore,     // frame[imm] <- s0
  FMA32,          // dst <- s0 * s1 + s2 (targets with has_fma)
  LoadAddr,       // dst <- s0 + imm     (address arithmetic, int)
  MNop,
};

inline constexpr uint16_t kMachineOnlyBase = 1000;

/// Wraps a bytecode opcode as a machine op (three-address form).
[[nodiscard]] inline MOp mop(Opcode op) {
  return static_cast<MOp>(static_cast<uint16_t>(op));
}
[[nodiscard]] inline bool is_machine_only(MOp op) {
  return static_cast<uint16_t>(op) >= kMachineOnlyBase;
}
/// Valid only when !is_machine_only(op).
[[nodiscard]] inline Opcode base_opcode(MOp op) {
  return static_cast<Opcode>(static_cast<uint16_t>(op));
}

[[nodiscard]] std::string mop_name(MOp op);

// --- Registers -------------------------------------------------------------

enum class RegClass : uint8_t { Int = 0, Flt = 1, Vec = 2 };
inline constexpr size_t kNumRegClasses = 3;

[[nodiscard]] RegClass reg_class_for(Type t);
[[nodiscard]] const char* reg_class_prefix(RegClass cls);

/// After register allocation, a register index with this bit set denotes a
/// spill slot instead of a physical register. Used for call-site argument
/// and parameter registers that were spilled (operands of ordinary
/// instructions are rewritten to scratch registers instead).
inline constexpr uint32_t kSlotFlag = 1u << 31;

struct Reg {
  RegClass cls = RegClass::Int;
  uint32_t idx = 0;
  bool valid = false;

  static Reg make(RegClass cls, uint32_t idx) { return {cls, idx, true}; }
  static Reg slot(RegClass cls, uint32_t slot_idx) {
    return {cls, slot_idx | kSlotFlag, true};
  }
  [[nodiscard]] bool is_slot() const { return (idx & kSlotFlag) != 0; }
  [[nodiscard]] uint32_t slot_index() const { return idx & ~kSlotFlag; }
  friend bool operator==(const Reg&, const Reg&) = default;
};

// --- Machine instructions ----------------------------------------------------

struct MInst {
  MOp op = MOp::MNop;
  Reg dst;
  Reg s0, s1, s2;
  int64_t imm = 0;   // constant bits | memory offset | spill slot
  uint32_t a = 0;    // branch target 0 | callee index | lane
  uint32_t b = 0;    // branch target 1

  [[nodiscard]] std::string str() const;
};

struct MBlock {
  std::vector<MInst> insts;
};

/// A function in machine form. Registers are virtual until register
/// allocation rewrites them to physical indices and records frame sizes.
struct MFunction {
  std::string name;
  std::vector<MBlock> blocks;
  // Virtual register counts per class (valid pre-allocation).
  uint32_t num_vregs[kNumRegClasses] = {0, 0, 0};
  // Spill-slot counts per class (valid post-allocation).
  uint32_t num_slots[kNumRegClasses] = {0, 0, 0};
  // Parameter registers in declaration order (entry values arrive here).
  std::vector<Reg> param_regs;
  // Call-site argument registers: a Call instruction's imm field indexes
  // this table; the listed registers (in the caller's frame) hold the
  // arguments in declaration order.
  std::vector<std::vector<Reg>> call_sites;
  // SVIL-local -> vreg mapping maintained by the JIT front end and the
  // de-vectorizer; consumed by split register allocation (annotation
  // eviction ranks are expressed over SVIL locals). A de-vectorized v128
  // local maps to one vreg per lane; all lanes inherit the local's rank.
  std::vector<std::vector<Reg>> local_regs;
  Type ret_type = Type::Void;
  bool allocated = false;  // physical registers assigned?

  [[nodiscard]] size_t size() const {
    size_t n = 0;
    for (const auto& b : blocks) n += b.insts.size();
    return n;
  }
  /// Deployment size estimate: 4 bytes per instruction (RISC-style).
  [[nodiscard]] size_t code_bytes() const { return size() * 4; }

  [[nodiscard]] std::string str() const;
};

// --- Machine description -----------------------------------------------------

/// Identifier for registered targets.
enum class TargetKind : uint8_t { X86Sim, SparcSim, PpcSim, SpuSim };

/// Static description of a simulated core: what the JIT needs (register
/// budget, SIMD support, lowering preferences) and what the simulator
/// needs (cycle cost tables, penalty model). All knobs are named so
/// DESIGN.md S6 can point at them.
struct MachineDesc {
  TargetKind kind = TargetKind::X86Sim;
  std::string name;
  bool has_simd = false;
  bool has_fma = false;
  // Allocatable registers per class (beyond reserved scratch).
  uint32_t regs[kNumRegClasses] = {8, 8, 8};
  // Pipeline penalties (cycles).
  uint32_t load_use_penalty = 1;
  uint32_t taken_branch_penalty = 1;
  uint32_t mispredict_penalty = 10;
  // Cost-table overrides keyed by MOp raw value; everything else uses
  // default_mop_cost().
  std::map<uint16_t, uint32_t> cost_overrides;

  [[nodiscard]] uint32_t cost(MOp op) const;
  void override_cost(MOp op, uint32_t cycles) {
    cost_overrides[static_cast<uint16_t>(op)] = cycles;
  }
  void override_cost(Opcode op, uint32_t cycles) {
    override_cost(mop(op), cycles);
  }
};

/// Baseline per-op cycle costs shared by all targets (latency-flavored,
/// approximating CPI of dependent code on an in-order core).
[[nodiscard]] uint32_t default_mop_cost(MOp op);

}  // namespace svc
