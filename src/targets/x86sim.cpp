// x86sim: a CISC-flavored out-of-order-ish core with a 128-bit SIMD unit,
// standing in for the paper's x86/SSE machine. Characteristics that drive
// Table 1's shape on this target:
//  - full SIMD: vector builtins select 1:1 onto 128-bit ops;
//  - deep pipeline: expensive branch mispredictions (the scalar `max u8`
//    kernel pays here; the branchless vmax.u8 does not);
//  - good addressing: loads fold scale+offset cheaply (cost 2);
//  - moderate architectural register count (16 minus reserved).
#include "targets/target_registry.h"

namespace svc {

MachineDesc make_x86sim_desc() {
  MachineDesc d;
  d.kind = TargetKind::X86Sim;
  d.name = "x86sim";
  d.has_simd = true;
  d.has_fma = false;
  d.regs[static_cast<size_t>(RegClass::Int)] = 14;
  d.regs[static_cast<size_t>(RegClass::Flt)] = 14;
  d.regs[static_cast<size_t>(RegClass::Vec)] = 14;
  d.load_use_penalty = 1;
  d.taken_branch_penalty = 1;
  d.mispredict_penalty = 14;

  // Latency-ish tweaks: x86 forwards float adds in 3 (default), mul 4.
  d.override_cost(Opcode::MulF32, 4);
  d.override_cost(Opcode::MulF64, 4);
  // cmov is a first-class instruction.
  d.override_cost(Opcode::SelectI32, 1);
  d.override_cost(Opcode::SelectF32, 1);
  // Vector memory ops are throughput-limited (one 128-bit port).
  d.override_cost(Opcode::LoadV128, 3);
  d.override_cost(Opcode::StoreV128, 2);
  // psadbw + movd + add: the u8 horizontal sum crosses to the scalar
  // domain each iteration.
  d.override_cost(Opcode::VRSumU8, 5);
  d.override_cost(Opcode::VRSumU16, 6);
  return d;
}

}  // namespace svc
