// Cycle-approximate simulator for JIT-compiled machine code. This is the
// measurement substrate replacing the paper's physical x86/UltraSparc/
// PowerPC hosts (DESIGN.md S2).
//
// Timing model (deterministic):
//   cycles += desc.cost(op) for every executed instruction
//   + load_use_penalty when an instruction consumes the result of the
//     immediately preceding load;
//   + taken_branch_penalty when control transfers anywhere but the
//     fall-through block (blocks are laid out in emission order);
//   + mispredict_penalty when the 2-bit saturating per-site predictor
//     gets a conditional branch wrong.
//
// Functional semantics match the reference interpreter bit-for-bit; the
// differential test suite enforces this on random programs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "targets/machine.h"
#include "vm/interpreter.h"  // TrapKind
#include "vm/memory.h"

namespace svc {

struct SimStats {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t spill_loads = 0;
  uint64_t spill_stores = 0;
  uint64_t branches = 0;
  uint64_t mispredicts = 0;
  uint64_t taken_branches = 0;
  uint64_t calls = 0;
};

struct SimResult {
  Value value;  // return value (Void -> default)
  TrapKind trap = TrapKind::None;
  SimStats stats;
  // True when the tiered runtime served this call from the tier-0
  // interpreter (cycles then follow the deterministic interpreter cost
  // model, see online_compiler.h) instead of JITed code.
  bool interpreted = false;
  // Which tier of the runtime answered: 0 = interpreter, 1 = fast JIT,
  // 2 = profile-guided optimizing recompile. Results are bit-identical
  // across tiers; only timing/codegen may differ.
  uint8_t tier = 1;

  [[nodiscard]] bool ok() const { return trap == TrapKind::None; }
};

/// Executes machine code for one target. Holds the branch-predictor state
/// across calls within one run (reset per `run`).
class Simulator {
 public:
  Simulator(const MachineDesc& desc, std::span<const MFunction> functions,
            Memory& memory)
      : desc_(desc), functions_(functions), memory_(memory) {}

  void set_step_budget(uint64_t steps) { step_budget_ = steps; }

  [[nodiscard]] SimResult run(uint32_t func_idx, std::span<const Value> args);

 private:
  friend class SimFrame;
  const MachineDesc& desc_;
  std::span<const MFunction> functions_;
  Memory& memory_;
  uint64_t step_budget_ = uint64_t{1} << 32;
  // Shared across frames during one run:
  SimStats stats_;
  std::unordered_map<uint64_t, uint8_t> predictor_;
  uint32_t call_depth_ = 0;
  static constexpr uint32_t kMaxCallDepth = 128;
};

}  // namespace svc
