// Registry of the simulated targets. Each target is defined in its own
// translation unit (x86sim.cpp, ...) and exposes a factory; the registry
// hands out stable const references so MachineDesc pointers can be used
// as identities throughout a process.
#pragma once

#include <span>

#include "targets/machine.h"

namespace svc {

[[nodiscard]] const MachineDesc& target_desc(TargetKind kind);

/// The Table 1 triple plus the accelerator, in a stable order.
[[nodiscard]] std::span<const TargetKind> all_targets();

/// The three host-class targets of Table 1 (x86sim, sparcsim, ppcsim).
[[nodiscard]] std::span<const TargetKind> table1_targets();

// Factories (one per TU).
[[nodiscard]] MachineDesc make_x86sim_desc();
[[nodiscard]] MachineDesc make_sparcsim_desc();
[[nodiscard]] MachineDesc make_ppcsim_desc();
[[nodiscard]] MachineDesc make_spusim_desc();

}  // namespace svc
