#include "targets/target_registry.h"

#include <array>

#include "support/diagnostics.h"

namespace svc {

const MachineDesc& target_desc(TargetKind kind) {
  static const MachineDesc x86 = make_x86sim_desc();
  static const MachineDesc sparc = make_sparcsim_desc();
  static const MachineDesc ppc = make_ppcsim_desc();
  static const MachineDesc spu = make_spusim_desc();
  switch (kind) {
    case TargetKind::X86Sim: return x86;
    case TargetKind::SparcSim: return sparc;
    case TargetKind::PpcSim: return ppc;
    case TargetKind::SpuSim: return spu;
  }
  fatal("target_desc: unknown target");
}

std::span<const TargetKind> all_targets() {
  static const std::array<TargetKind, 4> kAll = {
      TargetKind::X86Sim, TargetKind::SparcSim, TargetKind::PpcSim,
      TargetKind::SpuSim};
  return kAll;
}

std::span<const TargetKind> table1_targets() {
  static const std::array<TargetKind, 3> kTable1 = {
      TargetKind::X86Sim, TargetKind::SparcSim, TargetKind::PpcSim};
  return kTable1;
}

}  // namespace svc
