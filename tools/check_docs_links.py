#!/usr/bin/env python3
"""Intra-repo link checker for README.md and docs/*.md.

Checks every markdown link whose target is inside the repository:

  - relative file links must point at an existing file or directory,
  - fragment links (``path#heading`` or ``#heading``) must match a
    heading in the target file, using GitHub's anchor slug rules.

External links (http/https/mailto) are ignored -- this is a hygiene
gate for the docs/ tree, not a crawler. Runs from CI (docs job) and as
the ``docs_link_check`` ctest target.

Usage: check_docs_links.py [repo_root]
Exit status: 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

# Inline markdown links: [text](target). Images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def anchor_slug(heading: str) -> str:
    """GitHub-style anchor: lowercase, punctuation stripped, spaces to
    dashes. Good enough for ASCII headings, which is all we use."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)  # inline formatting
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" +", "-", text.strip())


def heading_anchors(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(anchor_slug(match.group(1)))
    return anchors


def iter_links(path: Path):
    """(line number, target) for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def anchor_exists(fragment: str, anchors: set) -> bool:
    slug = anchor_slug(fragment)
    if slug in anchors:
        return True
    # GitHub dedupes repeated headings as slug-1, slug-2, ...: accept a
    # numeric suffix when the base heading exists.
    base = re.match(r"^(.*)-\d+$", slug)
    return bool(base) and base.group(1) in anchors


def check_file(md: Path, root: Path) -> list:
    errors = []
    for lineno, target in iter_links(md):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            if path_part.startswith("/"):
                # Root-relative: GitHub resolves these against the repo
                # root, not the filesystem root.
                dest = (root / path_part.lstrip("/")).resolve()
            else:
                dest = (md.parent / path_part).resolve()
            try:
                dest.relative_to(root.resolve())
            except ValueError:
                errors.append(
                    f"{md}:{lineno}: link escapes the repository: {target}"
                )
                continue
            if not dest.exists():
                errors.append(f"{md}:{lineno}: broken link: {target}")
                continue
        else:
            dest = md
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                continue  # only markdown targets have checkable anchors
            if not anchor_exists(fragment, heading_anchors(dest)):
                errors.append(
                    f"{md}:{lineno}: broken anchor: {target} "
                    f"(no heading '#{fragment}' in {dest.name})"
                )
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    files = [f for f in files if f.exists()]
    if not files:
        print(f"check_docs_links: nothing to check under {root}", file=sys.stderr)
        return 1
    errors = []
    checked = 0
    for md in files:
        errors.extend(check_file(md, root))
        checked += 1
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"check_docs_links: {checked} file(s), "
        f"{'OK' if not errors else f'{len(errors)} broken link(s)'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
