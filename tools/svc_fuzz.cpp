// svc_fuzz: the differential correctness harness as a command-line tool.
// Generates deterministic random MiniC programs (src/fuzz/generator.h)
// and diffs every (tier x target x pipeline) cell against the tier-0
// switch-interpreter oracle (src/fuzz/differ.h). On a divergence it
// prints the exact seed + cell, shrinks the program with ddmin
// (src/fuzz/shrink.h), and writes a corpus-format reproducer.
//
//   svc_fuzz --seed 1 --programs 25          # PR-gate sweep (ci.yml)
//   svc_fuzz --seed 7 --cells "x86sim/tiered/linear/threaded/off=default/jit=default"
//   svc_fuzz --long-run --report             # BENCH_fuzz.json trajectory
//   svc_fuzz --plant-miscompile --programs 5 # self-test: must be caught
//   svc_fuzz --emit-corpus tests/corpus 12   # refresh the committed corpus
//   svc_fuzz --replay tests/corpus/*.minic   # what corpus_test.cpp runs
//
// Exit codes: 0 = clean (or plant caught), 1 = divergence (or plant
// missed), 2 = usage/internal error. See docs/FUZZING.md.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "driver/offline_compiler.h"
#include "fuzz/cells.h"
#include "fuzz/differ.h"
#include "fuzz/generator.h"
#include "fuzz/shrink.h"

namespace {

using namespace svc;
using namespace svc::fuzz;

struct CliOptions {
  uint64_t seed = 1;
  uint64_t programs = 25;
  double budget_seconds = 0;  // 0 = no wall-clock bound
  size_t max_cells = 12;
  std::string cells;  // explicit ';'-separated cell keys
  bool check_cycles = false;
  bool plant_miscompile = false;
  bool no_shrink = false;
  bool report = false;
  bool verbose = false;
  std::string emit_corpus_dir;
  uint64_t emit_corpus_count = 0;
  std::vector<std::string> replay_files;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: svc_fuzz [options]\n"
      "  --seed N             base seed (default 1); fully deterministic\n"
      "  --programs N         programs to fuzz (default 25)\n"
      "  --budget SECONDS     stop after this much wall clock\n"
      "  --cells LIST         explicit ';'-separated cell keys\n"
      "  --max-cells N        bound the per-program matrix (default 12)\n"
      "  --check-cycles       also require run-to-run cycle determinism\n"
      "  --plant-miscompile   self-test: plant an off-by-one miscompile;\n"
      "                       exit 0 iff it is caught and shrunk\n"
      "  --no-shrink          report divergences without reducing them\n"
      "  --emit-corpus DIR N  write N corpus files under DIR and exit\n"
      "  --replay FILE...     replay corpus files (rest of argv)\n"
      "  --report             write BENCH_fuzz.json (schema 2)\n"
      "  --long-run           preset: 400 programs, cycles checked, report\n"
      "  -v                   per-program progress\n");
}

bool parse_u64(const char* s, uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

std::optional<CliOptions> parse_cli(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "svc_fuzz: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = need("--seed");
      if (!v || !parse_u64(v, opts.seed)) return std::nullopt;
    } else if (arg == "--programs") {
      const char* v = need("--programs");
      if (!v || !parse_u64(v, opts.programs)) return std::nullopt;
    } else if (arg == "--budget") {
      const char* v = need("--budget");
      if (!v) return std::nullopt;
      opts.budget_seconds = std::atof(v);
    } else if (arg == "--max-cells") {
      uint64_t n = 0;
      const char* v = need("--max-cells");
      if (!v || !parse_u64(v, n) || n == 0) return std::nullopt;
      opts.max_cells = static_cast<size_t>(n);
    } else if (arg == "--cells") {
      const char* v = need("--cells");
      if (!v) return std::nullopt;
      opts.cells = v;
    } else if (arg == "--check-cycles") {
      opts.check_cycles = true;
    } else if (arg == "--plant-miscompile") {
      opts.plant_miscompile = true;
    } else if (arg == "--no-shrink") {
      opts.no_shrink = true;
    } else if (arg == "--report") {
      opts.report = true;
    } else if (arg == "--long-run") {
      opts.programs = 400;
      opts.check_cycles = true;
      opts.report = true;
    } else if (arg == "-v" || arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--emit-corpus") {
      const char* dir = need("--emit-corpus");
      if (!dir) return std::nullopt;
      const char* n = need("--emit-corpus count");
      if (!n || !parse_u64(n, opts.emit_corpus_count)) return std::nullopt;
      opts.emit_corpus_dir = dir;
    } else if (arg == "--replay") {
      for (++i; i < argc; ++i) opts.replay_files.emplace_back(argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "svc_fuzz: unknown option '%s'\n",
                   std::string(arg).c_str());
      return std::nullopt;
    }
  }
  return opts;
}

std::vector<Cell> cells_for(const CliOptions& opts,
                            const GeneratedProgram& program) {
  if (!opts.cells.empty()) {
    if (const auto parsed = parse_cell_list(opts.cells)) return *parsed;
    std::fprintf(stderr, "svc_fuzz: bad --cells list '%s'\n",
                 opts.cells.c_str());
    return {};
  }
  return build_cell_matrix(program.seed, program.features, opts.max_cells);
}

// A divergence report always leads with the exact replay command.
void print_divergence(const GeneratedProgram& program,
                      const std::string& cell_key,
                      const std::string& detail) {
  std::fprintf(stderr,
               "\nDIVERGENCE\n"
               "  seed: %" PRIu64 "\n"
               "  cell: %s\n"
               "  %s\n"
               "  replay: svc_fuzz --seed %" PRIu64 " --programs 1 "
               "--cells \"%s\"\n",
               program.seed, cell_key.c_str(), detail.c_str(), program.seed,
               cell_key.c_str());
}

// Shrinks and writes the reproducer; returns its path (empty on failure).
std::string shrink_and_write(const GeneratedProgram& program,
                             const std::vector<Cell>& cells,
                             DiffRunner& runner) {
  const auto reduced = shrink(program, cells, runner);
  if (!reduced) {
    std::fprintf(stderr, "  (shrink could not isolate a single cell)\n");
    return {};
  }
  std::fprintf(stderr, "  shrunk: %zu -> %zu lines, cell %s\n",
               reduced->lines_before, reduced->lines_after,
               reduced->cell.key().c_str());
  const std::string path =
      "svc_fuzz_repro_" + std::to_string(program.seed) + ".minic";
  std::ofstream out(path, std::ios::binary);
  out << render_reproducer(*reduced);
  out.close();
  std::fprintf(stderr,
               "  reproducer: %s (move into tests/corpus/ to pin)\n",
               path.c_str());
  return path;
}

// Frontend robustness ride-along: every program also yields two
// near-miss mutants that must be *rejected or accepted gracefully* --
// any crash/abort here kills the fuzzer itself and fails the run.
uint64_t fuzz_frontend(const GeneratedProgram& program) {
  uint64_t rejected = 0;
  for (uint64_t m = 0; m < 2; ++m) {
    const std::string mutant =
        mutate_source(program.source, program.seed * 2 + m);
    if (!compile_module(mutant).ok()) ++rejected;
  }
  return rejected;
}

int run_replay(const CliOptions& opts) {
  DiffOptions diff_opts;
  diff_opts.check_cycles = opts.check_cycles;
  DiffRunner runner(diff_opts);
  int failures = 0;
  for (const std::string& path : opts.replay_files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "svc_fuzz: cannot read %s\n", path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const auto program = parse_corpus_file(ss.str());
    if (!program) {
      std::fprintf(stderr, "svc_fuzz: malformed corpus file %s\n",
                   path.c_str());
      return 2;
    }
    std::vector<Cell> cells;
    if (!program->cells_hint.empty()) {
      if (const auto parsed = parse_cell_list(program->cells_hint)) {
        cells = *parsed;
      }
    }
    if (cells.empty()) {
      cells = build_cell_matrix(program->seed, program->features,
                                opts.max_cells);
    }
    const DiffResult r = runner.run(*program, cells);
    if (opts.verbose || !r.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   r.ok() ? "ok" : r.detail.c_str());
    }
    if (r.internal_error) return 2;
    if (r.diverged) {
      print_divergence(*program, r.cell_key, r.detail);
      ++failures;
    }
  }
  std::printf("svc_fuzz: replayed %zu corpus case(s), %d failure(s)\n",
              opts.replay_files.size(), failures);
  return failures == 0 ? 0 : 1;
}

int run_emit_corpus(const CliOptions& opts) {
  std::error_code ec;
  std::filesystem::create_directories(opts.emit_corpus_dir, ec);
  DiffRunner runner;
  uint64_t written = 0;
  uint64_t seed = opts.seed;
  while (written < opts.emit_corpus_count) {
    GeneratedProgram program = generate_program(seed++);
    // Corpus cases should earn their keep: loops and memory traffic.
    if (program.features.loops == 0 || program.features.stmts < 4) continue;
    std::vector<Cell> cells =
        build_cell_matrix(program.seed, program.features, 4);
    const DiffResult r = runner.run(program, cells);
    if (!r.ok()) {
      std::fprintf(stderr, "svc_fuzz: seed %" PRIu64 " not clean: %s\n",
                   program.seed, r.detail.c_str());
      return r.diverged ? 1 : 2;
    }
    program.cells_hint = render_cell_list(cells);
    const std::filesystem::path path =
        std::filesystem::path(opts.emit_corpus_dir) /
        ("seed_" + std::to_string(program.seed) + ".minic");
    std::ofstream out(path, std::ios::binary);
    out << render_corpus_file(program);
    ++written;
    std::printf("wrote %s (%u stmts, %u loops, %zu cells)\n",
                path.string().c_str(), program.features.stmts,
                program.features.loops, cells.size());
  }
  return 0;
}

int run_fuzz(const CliOptions& opts) {
  DiffOptions diff_opts;
  diff_opts.check_cycles = opts.check_cycles;
  diff_opts.plant_miscompile = opts.plant_miscompile;
  DiffRunner runner(diff_opts);

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  uint64_t programs_run = 0;
  uint64_t cells_run = 0;
  uint64_t runs = 0;
  uint64_t mutants_rejected = 0;
  uint64_t divergences = 0;
  bool plant_caught = false;

  for (uint64_t p = 0; p < opts.programs; ++p) {
    if (opts.budget_seconds > 0 && elapsed() > opts.budget_seconds) break;
    const uint64_t seed = opts.seed + p;
    const GeneratedProgram program = generate_program(seed);
    const std::vector<Cell> cells = cells_for(opts, program);
    if (cells.empty()) return 2;

    const DiffResult r = runner.run(program, cells);
    ++programs_run;
    cells_run += r.cells_run;
    runs += r.runs;
    mutants_rejected += fuzz_frontend(program);

    if (opts.verbose) {
      std::printf("seed %" PRIu64 ": %zu cells, %zu runs, cost %" PRIu64
                  "%s\n",
                  seed, r.cells_run, r.runs, program.features.est_cost,
                  r.ok() ? "" : " DIVERGED");
    }
    if (r.internal_error) {
      std::fprintf(stderr, "svc_fuzz: internal error at seed %" PRIu64
                           ":\n%s\n",
                   seed, r.detail.c_str());
      return 2;
    }
    if (r.diverged) {
      ++divergences;
      print_divergence(program, r.cell_key, r.detail);
      if (!opts.no_shrink) shrink_and_write(program, cells, runner);
      if (opts.plant_miscompile) {
        plant_caught = true;
        break;  // the self-test only needs one catch
      }
      return 1;
    }
  }

  const double seconds = elapsed();
  std::printf("svc_fuzz: %" PRIu64 " program(s), %" PRIu64 " cell(s), %" PRIu64
              " run(s), %" PRIu64 " divergence(s) in %.2fs\n",
              programs_run, cells_run, runs, divergences, seconds);

  if (opts.report) {
    svc::bench::bench_report(
        "fuzz",
        {{"seed", std::to_string(opts.seed)},
         {"programs", std::to_string(opts.programs)},
         {"max_cells", std::to_string(opts.max_cells)},
         {"check_cycles", opts.check_cycles ? "true" : "false"}},
        {{"fuzz.programs", static_cast<double>(programs_run)},
         {"fuzz.cells", static_cast<double>(cells_run)},
         {"fuzz.runs", static_cast<double>(runs)},
         {"fuzz.divergences", static_cast<double>(divergences)},
         {"fuzz.frontend_mutants_rejected",
          static_cast<double>(mutants_rejected)},
         {"fuzz.seconds", seconds},
         {"fuzz.programs_per_sec",
          seconds > 0 ? static_cast<double>(programs_run) / seconds : 0}});
  }

  if (opts.plant_miscompile) {
    if (plant_caught) {
      std::printf("svc_fuzz: planted miscompile caught and shrunk\n");
      return 0;
    }
    std::fprintf(stderr,
                 "svc_fuzz: planted miscompile was NOT caught -- the "
                 "differential harness is blind\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_cli(argc, argv);
  if (!opts) {
    usage(stderr);
    return 2;
  }
  if (!opts->replay_files.empty()) return run_replay(*opts);
  if (!opts->emit_corpus_dir.empty()) return run_emit_corpus(*opts);
  return run_fuzz(*opts);
}
