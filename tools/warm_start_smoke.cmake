# Warm-start smoke (ctest): runs the embed_api example twice against one
# fresh persistent-store directory. The first run cold-boots (compiles,
# writes artifacts back); the second runs with --assert-warm, which makes
# the example exit non-zero unless warm-up was served entirely from disk
# (cache.disk_hits > 0 and zero JIT compiles). Invoked by add_test as
#   cmake -DEXAMPLE=<example_embed_api> -DSTORE=<dir> -P this-file
if(NOT DEFINED EXAMPLE OR NOT DEFINED STORE)
  message(FATAL_ERROR "usage: cmake -DEXAMPLE=<binary> -DSTORE=<dir> -P warm_start_smoke.cmake")
endif()

file(REMOVE_RECURSE "${STORE}")

execute_process(COMMAND "${EXAMPLE}" --store "${STORE}"
                RESULT_VARIABLE cold_result)
if(NOT cold_result EQUAL 0)
  message(FATAL_ERROR "cold boot failed (exit ${cold_result})")
endif()

execute_process(COMMAND "${EXAMPLE}" --store "${STORE}" --assert-warm
                RESULT_VARIABLE warm_result)
if(NOT warm_result EQUAL 0)
  message(FATAL_ERROR "second boot was not warm (exit ${warm_result}): "
                      "expected disk hits and zero JIT compiles")
endif()

file(REMOVE_RECURSE "${STORE}")
