#include <gtest/gtest.h>

#include "support/crc32.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/statistics.h"
#include "support/varint.h"

namespace svc {
namespace {

TEST(Varint, UnsignedRoundtrip) {
  const uint64_t cases[] = {0,    1,    127,        128,
                            129,  255,  16383,      16384,
                            1u << 20, uint64_t{1} << 35, ~uint64_t{0}};
  for (uint64_t v : cases) {
    std::vector<uint8_t> buf;
    write_uleb(buf, v);
    ByteReader r(buf);
    const auto got = r.read_uleb();
    ASSERT_TRUE(got.has_value()) << v;
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Varint, SignedRoundtrip) {
  const int64_t cases[] = {0,  1,  -1, 63, -64, 64, -65, 1 << 20, -(1 << 20),
                           INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    std::vector<uint8_t> buf;
    write_sleb(buf, v);
    ByteReader r(buf);
    const auto got = r.read_sleb();
    ASSERT_TRUE(got.has_value()) << v;
    EXPECT_EQ(*got, v);
  }
}

TEST(Varint, SmallMagnitudeIsCompact) {
  std::vector<uint8_t> buf;
  write_sleb(buf, -3);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  write_uleb(buf, 100);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, TruncatedInputRejected) {
  std::vector<uint8_t> buf;
  write_uleb(buf, uint64_t{1} << 40);
  buf.pop_back();
  ByteReader r(buf);
  EXPECT_FALSE(r.read_uleb().has_value());
}

TEST(Varint, PropertyRoundtripSweep) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.next_u64() >> (rng.next_u64() % 64);
    std::vector<uint8_t> buf;
    write_uleb(buf, v);
    ByteReader r(buf);
    ASSERT_EQ(r.read_uleb().value(), v);

    const auto s = static_cast<int64_t>(rng.next_u64());
    buf.clear();
    write_sleb(buf, s);
    ByteReader r2(buf);
    ASSERT_EQ(r2.read_sleb().value(), s);
  }
}

TEST(ByteReader, ReadBytesBounds) {
  const std::vector<uint8_t> buf = {1, 2, 3};
  ByteReader r(buf);
  auto a = r.read_bytes(2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ((*a)[0], 1);
  EXPECT_FALSE(r.read_bytes(2).has_value());
  EXPECT_TRUE(r.read_bytes(1).has_value());
  EXPECT_TRUE(r.at_end());
}

TEST(Crc32, KnownVectors) {
  const std::string s = "123456789";
  const std::vector<uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xcbf43926u);  // classic check value
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, DetectsBitFlip) {
  std::vector<uint8_t> data(64, 0xab);
  const uint32_t base = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), base);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const float f = rng.next_f32();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Statistics, AddGetMergeDump) {
  Statistics s;
  s.add("spills", 3);
  s.add("spills", 2);
  s.set("code_bytes", 128);
  EXPECT_EQ(s.get("spills"), 5);
  EXPECT_EQ(s.get("missing"), 0);
  EXPECT_TRUE(s.has("code_bytes"));

  Statistics t;
  t.add("spills", 10);
  s.merge(t);
  EXPECT_EQ(s.get("spills"), 15);
  EXPECT_NE(s.dump().find("spills=15"), std::string::npos);
}

TEST(Diagnostics, CountsAndFormats) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({3, 7}, "odd");
  diags.error({1, 2}, "bad");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  const std::string dump = diags.dump();
  EXPECT_NE(dump.find("1:2: error: bad"), std::string::npos);
  EXPECT_NE(dump.find("3:7: warning: odd"), std::string::npos);
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
}

}  // namespace
}  // namespace svc
