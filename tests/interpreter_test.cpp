#include <gtest/gtest.h>

#include "test_util.h"

namespace svc {
namespace {

using ::svc::testing::build_call_module;
using ::svc::testing::build_scalar_saxpy;
using ::svc::testing::build_vector_dot_f32;
using ::svc::testing::build_vector_max_u8;

/// Runs a single-function module returning the result.
ExecResult run_fn(Function fn, const std::vector<Value>& args,
                  Memory* mem = nullptr) {
  Module m;
  m.add_function(std::move(fn));
  svc::testing::expect_verifies(m);
  Memory local(1 << 16);
  Interpreter interp(m, mem ? *mem : local);
  return interp.run(0u, args);
}

/// Expression evaluator helper: builds fn() -> type running `body`.
template <typename BodyFn>
ExecResult eval(Type ret, BodyFn&& body) {
  FunctionBuilder b("expr", {{}, ret});
  body(b);
  b.ret();
  return run_fn(b.take(), {});
}

TEST(Interp, IntegerArithmetic) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(7).const_i32(5).op(Opcode::MulI32);  // 35
    b.const_i32(3).op(Opcode::SubI32);               // 32
    b.const_i32(6).op(Opcode::DivSI32);              // 5
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->i32, 5);
}

TEST(Interp, UnsignedOps) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(-1).const_i32(16).op(Opcode::ShrUI32);
  });
  EXPECT_EQ(r.value->i32, 0xffff);

  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(-1).const_i32(1).op(Opcode::LtUI32);  // 0xffffffff < 1 ? no
  });
  EXPECT_EQ(r.value->i32, 0);

  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(-1).const_i32(1).op(Opcode::MaxUI32);
  });
  EXPECT_EQ(r.value->i32, -1);
}

TEST(Interp, WrappingOverflow) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(INT32_MAX).const_i32(1).op(Opcode::AddI32);
  });
  EXPECT_EQ(r.value->i32, INT32_MIN);
}

TEST(Interp, DivideByZeroTraps) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(1).const_i32(0).op(Opcode::DivSI32);
  });
  EXPECT_EQ(r.trap, TrapKind::DivideByZero);

  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(1).const_i32(0).op(Opcode::RemUI32);
  });
  EXPECT_EQ(r.trap, TrapKind::DivideByZero);
}

TEST(Interp, DivisionOverflowTraps) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(INT32_MIN).const_i32(-1).op(Opcode::DivSI32);
  });
  EXPECT_EQ(r.trap, TrapKind::IntegerOverflow);
  // rem INT_MIN % -1 is defined as 0, not a trap.
  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(INT32_MIN).const_i32(-1).op(Opcode::RemSI32);
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->i32, 0);
}

TEST(Interp, FloatArithmetic) {
  auto r = eval(Type::F32, [](FunctionBuilder& b) {
    b.const_f32(1.5f).const_f32(2.25f).op(Opcode::MulF32);
    b.const_f32(0.625f).op(Opcode::AddF32);
  });
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(r.value->f32, 1.5f * 2.25f + 0.625f);
}

TEST(Interp, F64Precision) {
  auto r = eval(Type::F64, [](FunctionBuilder& b) {
    b.const_f64(1e300).const_f64(1e-300).op(Opcode::MulF64);
  });
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value->f64, 1.0);
}

TEST(Interp, Conversions) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_f32(-3.75f).op(Opcode::F32ToI32S);
  });
  EXPECT_EQ(r.value->i32, -3);  // trunc toward zero

  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i64(0x1'0000'0005).op(Opcode::I64ToI32);
  });
  EXPECT_EQ(r.value->i32, 5);
}

TEST(Interp, Select) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(111).const_i32(222).const_i32(1).op(Opcode::SelectI32);
  });
  EXPECT_EQ(r.value->i32, 111);
  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(111).const_i32(222).const_i32(0).op(Opcode::SelectI32);
  });
  EXPECT_EQ(r.value->i32, 222);
}

TEST(Interp, MemoryRoundtripAndSignExtension) {
  FunctionBuilder b("mem", {{}, Type::I32});
  b.const_i32(100).const_i32(-2).store(Opcode::StoreI8);
  b.const_i32(100).load(Opcode::LoadI8S);  // -2
  b.const_i32(100).load(Opcode::LoadI8U);  // 254
  b.op(Opcode::AddI32);                    // 252
  b.ret();
  auto r = run_fn(b.take(), {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->i32, 252);
}

TEST(Interp, OutOfBoundsLoadTraps) {
  FunctionBuilder b("oob", {{}, Type::I32});
  b.const_i32(1 << 20).load(Opcode::LoadI32).ret();
  auto r = run_fn(b.take(), {});
  EXPECT_EQ(r.trap, TrapKind::OutOfBoundsMemory);
}

TEST(Interp, OutOfBoundsVectorStoreTraps) {
  FunctionBuilder b("oobv", {{}, Type::Void});
  b.const_i32((1 << 16) - 8).op(Opcode::VZero).store(Opcode::StoreV128).ret();
  auto r = run_fn(b.take(), {});
  EXPECT_EQ(r.trap, TrapKind::OutOfBoundsMemory);
}

TEST(Interp, LoopSum) {
  // sum 1..n
  FunctionBuilder b("sum", {{Type::I32}, Type::I32});
  const uint32_t n = 0;
  const uint32_t i = b.add_local(Type::I32);
  const uint32_t acc = b.add_local(Type::I32);
  const uint32_t head = b.new_block(), body = b.new_block(),
                 done = b.new_block();
  b.const_i32(1).set(i).const_i32(0).set(acc).jump(head);
  b.switch_to(head);
  b.get(i).get(n).op(Opcode::LeSI32).br_if(body, done);
  b.switch_to(body);
  b.get(acc).get(i).op(Opcode::AddI32).set(acc);
  b.get(i).const_i32(1).op(Opcode::AddI32).set(i).jump(head);
  b.switch_to(done);
  b.get(acc).ret();

  auto r = run_fn(b.take(), {Value::make_i32(100)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->i32, 5050);
}

TEST(Interp, SaxpyMatchesHostComputation) {
  Module m;
  m.add_function(build_scalar_saxpy());
  Memory mem(1 << 16);
  const uint32_t x = 256, y = 1024, n = 33;
  for (uint32_t k = 0; k < n; ++k) {
    mem.write_f32(x + 4 * k, 0.5f * static_cast<float>(k));
    mem.write_f32(y + 4 * k, 2.0f + static_cast<float>(k));
  }
  Interpreter interp(m, mem);
  auto r = interp.run("saxpy",
                      {Value::make_f32(3.0f), Value::make_i32(x),
                       Value::make_i32(y), Value::make_i32(n)});
  ASSERT_TRUE(r.ok());
  for (uint32_t k = 0; k < n; ++k) {
    const float expect =
        3.0f * (0.5f * static_cast<float>(k)) + (2.0f + static_cast<float>(k));
    EXPECT_FLOAT_EQ(mem.read_f32(y + 4 * k), expect) << k;
  }
}

TEST(Interp, VectorLaneSemantics) {
  // splat(200) + splat(100) wraps per u8 lane: (200+100) & 0xff = 44.
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(200).op(Opcode::VSplatI8);
    b.const_i32(100).op(Opcode::VSplatI8);
    b.op(Opcode::VAddI8).lane_op(Opcode::VExtractU8, 7);
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->i32, 44);
}

TEST(Interp, VectorReductions) {
  auto r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(3).op(Opcode::VSplatI8).op(Opcode::VRSumU8);  // 16*3
  });
  EXPECT_EQ(r.value->i32, 48);

  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.const_i32(1000).op(Opcode::VSplatI16).op(Opcode::VRSumU16);  // 8*1000
  });
  EXPECT_EQ(r.value->i32, 8000);

  r = eval(Type::I32, [](FunctionBuilder& b) {
    b.op(Opcode::VZero).const_i32(99).lane_op(Opcode::VInsertI8, 11);
    b.op(Opcode::VRMaxU8);
  });
  EXPECT_EQ(r.value->i32, 99);
}

TEST(Interp, VectorF32Ops) {
  auto r = eval(Type::F32, [](FunctionBuilder& b) {
    b.const_f32(1.5f).op(Opcode::VSplatF32);
    b.const_f32(2.0f).op(Opcode::VSplatF32);
    b.op(Opcode::VMulF32).op(Opcode::VRSumF32);  // 4 * 3.0
  });
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(r.value->f32, 12.0f);
}

TEST(Interp, VectorKernels) {
  Module m;
  m.add_function(build_vector_max_u8());
  Memory mem(1 << 16);
  Rng rng(123);
  const uint32_t p = 512, nv = 9;
  uint8_t expect = 0;
  for (uint32_t k = 0; k < nv * 16; ++k) {
    const auto v = static_cast<uint8_t>(rng.next_u32() & 0xff);
    mem.store_u8(p + k, v);
    expect = std::max(expect, v);
  }
  Interpreter interp(m, mem);
  auto r = interp.run("vmax_u8", {Value::make_i32(p), Value::make_i32(nv)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->i32, expect);
}

TEST(Interp, DotKernelMatchesHost) {
  Module m;
  m.add_function(build_vector_dot_f32());
  Memory mem(1 << 16);
  const uint32_t x = 256, y = 2048, nv = 5;
  float expect = 0.0f;
  for (uint32_t k = 0; k < nv * 4; ++k) {
    const float a = 0.25f * static_cast<float>(k + 1);
    const float b = 1.0f / static_cast<float>(k + 1);
    mem.write_f32(x + 4 * k, a);
    mem.write_f32(y + 4 * k, b);
  }
  // Mirror the defined pairwise reduction order.
  for (uint32_t v = 0; v < nv; ++v) {
    float l[4];
    for (int j = 0; j < 4; ++j) {
      l[j] = mem.read_f32(x + 16 * v + 4 * j) * mem.read_f32(y + 16 * v + 4 * j);
    }
    expect += (l[0] + l[1]) + (l[2] + l[3]);
  }
  Interpreter interp(m, mem);
  auto r = interp.run("vdot_f32", {Value::make_i32(x), Value::make_i32(y),
                                   Value::make_i32(nv)});
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(r.value->f32, expect);
}

TEST(Interp, Calls) {
  Module m = build_call_module();
  Memory mem(1 << 12);
  Interpreter interp(m, mem);
  auto r = interp.run("combine", {Value::make_i32(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->i32, 10);  // (1+2) + (3+4)
}

TEST(Interp, RecursionDepthLimit) {
  Module m;
  {
    FunctionBuilder b("inf", {{}, Type::Void});
    b.call(0).ret();
    m.add_function(b.take());
  }
  Memory mem(1 << 12);
  Interpreter interp(m, mem);
  interp.set_max_call_depth(32);
  auto r = interp.run("inf", {});
  EXPECT_EQ(r.trap, TrapKind::CallStackOverflow);
}

TEST(Interp, StepBudget) {
  FunctionBuilder b("spin", {{}, Type::Void});
  b.jump(0);
  Module m;
  m.add_function(b.take());
  Memory mem(1 << 12);
  Interpreter interp(m, mem);
  interp.set_step_budget(1000);
  auto r = interp.run("spin", {});
  EXPECT_EQ(r.trap, TrapKind::StepBudgetExceeded);
}

TEST(Interp, ExplicitTrap) {
  FunctionBuilder b("t", {{}, Type::Void});
  b.op(Opcode::Trap);
  Module m;
  m.add_function(b.take());
  Memory mem(1 << 12);
  Interpreter interp(m, mem);
  EXPECT_EQ(interp.run("t", {}).trap, TrapKind::ExplicitTrap);
}

}  // namespace
}  // namespace svc
