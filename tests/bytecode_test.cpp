#include <gtest/gtest.h>

#include "bytecode/disassembler.h"
#include "bytecode/serializer.h"
#include "test_util.h"

namespace svc {
namespace {

using ::svc::testing::build_call_module;
using ::svc::testing::build_scalar_saxpy;
using ::svc::testing::build_vector_max_u8;

TEST(OpcodeTable, EveryOpcodeHasSaneMetadata) {
  for (size_t i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const OpInfo& info = op_info(op);
    EXPECT_FALSE(info.mnemonic.empty());
    for (char c : info.pops) {
      EXPECT_NE(type_from_code(c), Type::Void)
          << info.mnemonic << " has bad pop code " << c;
    }
    EXPECT_LE(info.pushes.size(), 1u);
    if (!info.pushes.empty()) {
      EXPECT_NE(type_from_code(info.pushes[0]), Type::Void);
    }
    if (info.imm == ImmKind::Lane) {
      EXPECT_GT(lane_count(info.lanes), 0u) << info.mnemonic;
    }
  }
}

TEST(OpcodeTable, MnemonicLookupRoundtrip) {
  for (size_t i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto found = opcode_from_mnemonic(op_mnemonic(op));
    ASSERT_TRUE(found.has_value()) << op_mnemonic(op);
    EXPECT_EQ(*found, op);
  }
}

TEST(OpcodeTable, TerminatorsMarked) {
  EXPECT_TRUE(is_terminator(Opcode::Jump));
  EXPECT_TRUE(is_terminator(Opcode::BranchIf));
  EXPECT_TRUE(is_terminator(Opcode::Ret));
  EXPECT_TRUE(is_terminator(Opcode::Trap));
  EXPECT_FALSE(is_terminator(Opcode::Call));
  EXPECT_FALSE(is_terminator(Opcode::AddI32));
}

TEST(OpcodeTable, VectorOpsClassified) {
  EXPECT_TRUE(is_vector_op(Opcode::VAddF32));
  EXPECT_TRUE(is_vector_op(Opcode::LoadV128));
  EXPECT_TRUE(is_vector_op(Opcode::VRSumU8));
  EXPECT_FALSE(is_vector_op(Opcode::AddI32));
  EXPECT_FALSE(is_vector_op(Opcode::LoadI32));
}

TEST(Types, SizesAndCodes) {
  EXPECT_EQ(type_size(Type::I32), 4u);
  EXPECT_EQ(type_size(Type::V128), 16u);
  EXPECT_EQ(type_from_code(type_code(Type::F64)), Type::F64);
  EXPECT_EQ(lane_count(LaneKind::U8x16), 16u);
  EXPECT_EQ(lane_bytes(LaneKind::U16x8), 2u);
  EXPECT_EQ(lane_scalar_type(LaneKind::F32x4), Type::F32);
  EXPECT_EQ(lane_scalar_type(LaneKind::U8x16), Type::I32);
}

TEST(Verifier, AcceptsHandBuiltKernels) {
  Module m;
  m.add_function(build_scalar_saxpy());
  m.add_function(build_vector_max_u8());
  DiagnosticEngine diags;
  EXPECT_TRUE(verify_module(m, diags)) << diags.dump();
}

TEST(Verifier, RejectsEmptyBlock) {
  Module m;
  FunctionBuilder b("f", {{}, Type::Void});
  b.new_block();  // never filled
  b.ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("empty"), std::string::npos);
}

TEST(Verifier, RejectsMissingTerminator) {
  Module m;
  FunctionBuilder b("f", {{}, Type::Void});
  b.const_i32(1).op(Opcode::Drop);
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
}

TEST(Verifier, RejectsStackUnderflow) {
  Module m;
  FunctionBuilder b("f", {{}, Type::Void});
  b.op(Opcode::AddI32).op(Opcode::Drop).ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("underflow"), std::string::npos);
}

TEST(Verifier, RejectsTypeMismatch) {
  Module m;
  FunctionBuilder b("f", {{}, Type::Void});
  b.const_i32(1).const_f32(2.0f).op(Opcode::AddI32).op(Opcode::Drop).ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("expected i32"), std::string::npos);
}

TEST(Verifier, RejectsBadLocalIndex) {
  Module m;
  FunctionBuilder b("f", {{}, Type::Void});
  b.get(5).op(Opcode::Drop).ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("local index"), std::string::npos);
}

TEST(Verifier, RejectsBadBranchTarget) {
  Module m;
  FunctionBuilder b("f", {{}, Type::Void});
  b.jump(9);
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("branch target"), std::string::npos);
}

TEST(Verifier, RejectsValueLeftOnStack) {
  Module m;
  FunctionBuilder b("f", {{}, Type::Void});
  const uint32_t next = b.new_block();
  b.const_i32(1).jump(next);
  b.switch_to(next);
  b.ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("stack"), std::string::npos);
}

TEST(Verifier, RejectsBadLaneIndex) {
  Module m;
  FunctionBuilder b("f", {{}, Type::I32});
  b.op(Opcode::VZero).lane_op(Opcode::VExtractU8, 16).ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("lane"), std::string::npos);
}

TEST(Verifier, RejectsCallArgMismatch) {
  Module m = build_call_module();
  FunctionBuilder b("bad_caller", {{}, Type::I32});
  b.const_f32(1.0f).const_i32(2).call(0).ret();  // add2 wants (i32, i32)
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
}

TEST(Verifier, RejectsWrongReturnType) {
  Module m;
  FunctionBuilder b("f", {{}, Type::F32});
  b.const_i32(1).ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
}

TEST(Verifier, RejectsNegativeMemOffset) {
  Module m;
  FunctionBuilder b("f", {{}, Type::I32});
  b.const_i32(0).load(Opcode::LoadI32, -4).ret();
  m.add_function(b.take());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.dump().find("offset"), std::string::npos);
}

TEST(Serializer, RoundtripPreservesEverything) {
  Module m;
  m.set_name("kernels");
  m.set_memory_hint(1 << 16);
  Function f = build_vector_max_u8();
  SpillPriorityInfo prio;
  prio.eviction_order = {2, 3, 0, 1};
  prio.weights = {1, 2, 3, 4};
  f.annotations().push_back(prio.encode());
  // The versioned profile section rides the same annotation channel.
  ProfileInfo profile;
  profile.calls = 9;
  profile.branches[1] = {50, 14};
  profile.loops[1][2] = 6;
  f.annotations().push_back(profile.encode());
  m.add_function(std::move(f));
  m.add_function(build_scalar_saxpy());

  const std::vector<uint8_t> bytes = serialize_module(m);
  const DeserializeResult result = deserialize_module(bytes);
  ASSERT_TRUE(result.module.has_value()) << result.error;
  const Module& got = *result.module;

  EXPECT_EQ(got.name(), "kernels");
  EXPECT_EQ(got.memory_hint(), uint64_t{1} << 16);
  ASSERT_EQ(got.num_functions(), m.num_functions());
  for (uint32_t i = 0; i < m.num_functions(); ++i) {
    const Function& a = m.function(i);
    const Function& b = got.function(i);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.sig(), b.sig());
    EXPECT_EQ(a.locals(), b.locals());
    ASSERT_EQ(a.num_blocks(), b.num_blocks());
    for (uint32_t bb = 0; bb < a.num_blocks(); ++bb) {
      EXPECT_EQ(a.block(bb).insts, b.block(bb).insts) << "block " << bb;
    }
    EXPECT_EQ(a.annotations(), b.annotations());
  }
  // And the roundtripped module still verifies.
  DiagnosticEngine diags;
  EXPECT_TRUE(verify_module(got, diags)) << diags.dump();
}

TEST(Serializer, RejectsCorruptImage) {
  Module m;
  m.add_function(build_scalar_saxpy());
  std::vector<uint8_t> bytes = serialize_module(m);
  bytes[bytes.size() / 2] ^= 0x40;
  const DeserializeResult result = deserialize_module(bytes);
  EXPECT_FALSE(result.module.has_value());
  EXPECT_NE(result.error.find("checksum"), std::string::npos);
}

TEST(Serializer, RejectsTruncatedImage) {
  Module m;
  m.add_function(build_scalar_saxpy());
  std::vector<uint8_t> bytes = serialize_module(m);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(deserialize_module(bytes).module.has_value());
}

TEST(Serializer, RejectsBadMagic) {
  std::vector<uint8_t> junk = {'J', 'U', 'N', 'K', 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(deserialize_module(junk).module.has_value());
}

TEST(Annotations, VectorizedLoopRoundtrip) {
  VectorizedLoopInfo info{3, 16, true};
  const Annotation a = info.encode();
  const auto got = VectorizedLoopInfo::decode(a.payload);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header_block, 3u);
  EXPECT_EQ(got->vector_factor, 16u);
  EXPECT_TRUE(got->has_epilogue);
}

TEST(Annotations, SpillPriorityRoundtripAndCompact) {
  SpillPriorityInfo info;
  for (uint32_t i = 0; i < 20; ++i) {
    info.eviction_order.push_back(19 - i);
    info.weights.push_back(i * 7);
  }
  const Annotation a = info.encode();
  // Compactness: ~1 byte per small entry plus headers.
  EXPECT_LT(a.payload.size(), 64u);
  const auto got = SpillPriorityInfo::decode(a.payload);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->eviction_order, info.eviction_order);
  EXPECT_EQ(got->weights, info.weights);
}

TEST(Annotations, HardwareHintsRoundtrip) {
  HardwareHintsInfo info{kFeatureSimd | kFeatureFloat, 85};
  const auto got = HardwareHintsInfo::decode(info.encode().payload);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->features, info.features);
  EXPECT_EQ(got->vector_intensity, 85u);
}

TEST(Annotations, DecodeRejectsTruncated) {
  SpillPriorityInfo info;
  info.eviction_order = {1, 2, 3};
  info.weights = {4, 5, 6};
  Annotation a = info.encode();
  a.payload.resize(2);
  EXPECT_FALSE(SpillPriorityInfo::decode(a.payload).has_value());
}

TEST(Annotations, FindAnnotation) {
  std::vector<Annotation> anns;
  anns.push_back(HardwareHintsInfo{kFeatureSimd, 10}.encode());
  EXPECT_EQ(find_annotation(anns, AnnotationKind::SpillPriority), nullptr);
  EXPECT_NE(find_annotation(anns, AnnotationKind::HardwareHints), nullptr);
}

TEST(Disassembler, ContainsStructure) {
  const std::string text = disassemble(build_scalar_saxpy());
  EXPECT_NE(text.find("fn saxpy(f32, i32, i32, i32)"), std::string::npos);
  EXPECT_NE(text.find("bb0:"), std::string::npos);
  EXPECT_NE(text.find("load.f32"), std::string::npos);
  EXPECT_NE(text.find("br_if"), std::string::npos);
  EXPECT_NE(text.find("mul.f32"), std::string::npos);
}

TEST(Module, FindFunction) {
  Module m = build_call_module();
  EXPECT_EQ(m.find_function("add2"), std::optional<uint32_t>(0));
  EXPECT_EQ(m.find_function("combine"), std::optional<uint32_t>(1));
  EXPECT_FALSE(m.find_function("nope").has_value());
}

}  // namespace
}  // namespace svc
